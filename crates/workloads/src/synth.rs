//! Random uniform data generation for the synthetic experiments.

use htqo_engine::relation::Relation;
use htqo_engine::schema::{ColumnType, Database, Schema};
use htqo_engine::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Value distribution for synthetic attributes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Distribution {
    /// Uniform over `0..selectivity` (the paper's setting).
    Uniform,
    /// Zipf with the given exponent over `0..selectivity` — an extension
    /// used by the skew ablation: uniform-assumption cardinality estimates
    /// degrade under skew while the structural guarantee does not.
    Zipf(f64),
}

/// Parameters of one synthetic database (Section 6: "synthetic data were
/// used, which has been generated randomly by using an uniform
/// distribution over a fixed range of values, and setting the desired
/// values for the cardinality of each relation and the selectivity of
/// each attribute").
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of binary relations `p0 … p{n-1}`.
    pub relations: usize,
    /// Rows per relation.
    pub cardinality: usize,
    /// Distinct values per attribute (the paper's "selectivity").
    pub selectivity: u64,
    /// RNG seed.
    pub seed: u64,
    /// Value distribution (uniform in the paper's experiments).
    pub distribution: Distribution,
}

impl WorkloadSpec {
    /// Convenience constructor (uniform distribution, as in the paper).
    pub fn new(relations: usize, cardinality: usize, selectivity: u64, seed: u64) -> Self {
        WorkloadSpec {
            relations,
            cardinality,
            selectivity,
            seed,
            distribution: Distribution::Uniform,
        }
    }

    /// Switches the value distribution to Zipf with the given exponent.
    pub fn with_zipf(mut self, exponent: f64) -> Self {
        self.distribution = Distribution::Zipf(exponent);
        self
    }
}

/// A sampler over `0..n` for either distribution.
struct Sampler {
    /// Cumulative weights (empty for uniform).
    cumulative: Vec<f64>,
    n: u64,
}

impl Sampler {
    fn new(n: u64, distribution: Distribution) -> Self {
        match distribution {
            Distribution::Uniform => Sampler {
                cumulative: Vec::new(),
                n,
            },
            Distribution::Zipf(s) => {
                let mut cumulative = Vec::with_capacity(n as usize);
                let mut total = 0.0;
                for i in 1..=n {
                    total += (i as f64).powf(-s);
                    cumulative.push(total);
                }
                Sampler { cumulative, n }
            }
        }
    }

    fn sample(&self, rng: &mut StdRng) -> i64 {
        if self.cumulative.is_empty() {
            return rng.gen_range(0..self.n) as i64;
        }
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c < u) as i64
    }
}

/// Generates the database for a spec: binary relations `p0 … p{n-1}` with
/// columns `l`, `r`, values uniform over `0..selectivity`.
pub fn workload_db(spec: &WorkloadSpec) -> Database {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let sampler = Sampler::new(spec.selectivity, spec.distribution);
    let mut db = Database::new();
    for i in 0..spec.relations {
        let mut rel = Relation::new(Schema::new(&[
            ("l", ColumnType::Int),
            ("r", ColumnType::Int),
        ]));
        rel.reserve(spec.cardinality);
        for _ in 0..spec.cardinality {
            rel.push_row(vec![
                Value::Int(sampler.sample(&mut rng)),
                Value::Int(sampler.sample(&mut rng)),
            ])
            .expect("binary int schema");
        }
        db.insert_table(&format!("p{i}"), rel);
    }
    db
}

/// Generates the database for a [`crate::queries::star_query`]: a `hub`
/// relation with `satellites` integer columns `c0…` plus binary satellite
/// relations `p0…`.
pub fn star_db(satellites: usize, cardinality: usize, selectivity: u64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = workload_db(&WorkloadSpec::new(
        satellites,
        cardinality,
        selectivity,
        seed,
    ));
    let mut schema = Schema::default();
    for i in 0..satellites {
        schema.push(&format!("c{i}"), ColumnType::Int);
    }
    let mut hub = Relation::new(schema);
    hub.reserve(cardinality);
    for _ in 0..cardinality {
        let row: Vec<Value> = (0..satellites)
            .map(|_| Value::Int(rng.gen_range(0..selectivity) as i64))
            .collect();
        hub.push_row(row).expect("hub schema");
    }
    db.insert_table("hub", hub);
    db
}

/// Generates the database for a [`crate::queries::clique_query`]: one
/// binary relation `e{i}_{j}` per variable pair.
pub fn clique_db(n: usize, cardinality: usize, selectivity: u64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let mut rel = Relation::new(Schema::new(&[
                ("l", ColumnType::Int),
                ("r", ColumnType::Int),
            ]));
            rel.reserve(cardinality);
            for _ in 0..cardinality {
                rel.push_row(vec![
                    Value::Int(rng.gen_range(0..selectivity) as i64),
                    Value::Int(rng.gen_range(0..selectivity) as i64),
                ])
                .expect("binary int schema");
            }
            db.insert_table(&format!("e{i}_{j}"), rel);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let db = workload_db(&WorkloadSpec::new(4, 100, 30, 1));
        assert_eq!(db.len(), 4);
        for (_, rel) in db.tables() {
            assert_eq!(rel.len(), 100);
            for row in rel.iter_rows() {
                let Value::Int(l) = row[0] else { panic!() };
                let Value::Int(r) = row[1] else { panic!() };
                assert!((0..30).contains(&l));
                assert!((0..30).contains(&r));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = workload_db(&WorkloadSpec::new(2, 50, 60, 9));
        let b = workload_db(&WorkloadSpec::new(2, 50, 60, 9));
        assert_eq!(
            a.table("p0").unwrap().to_rows(),
            b.table("p0").unwrap().to_rows()
        );
        let c = workload_db(&WorkloadSpec::new(2, 50, 60, 10));
        assert_ne!(
            a.table("p0").unwrap().to_rows(),
            c.table("p0").unwrap().to_rows()
        );
    }

    #[test]
    fn zipf_skews_the_frequency_distribution() {
        let uniform = workload_db(&WorkloadSpec::new(1, 2000, 50, 3));
        let zipf = workload_db(&WorkloadSpec::new(1, 2000, 50, 3).with_zipf(1.2));
        let freq_of = |db: &Database, v: i64| {
            db.table("p0")
                .unwrap()
                .iter_rows()
                .filter(|r| r[0] == Value::Int(v))
                .count()
        };
        // The most frequent value under Zipf dominates far more than under
        // uniform.
        assert!(freq_of(&zipf, 0) > 3 * freq_of(&uniform, 0));
        // Values stay within the domain.
        for row in zipf.table("p0").unwrap().iter_rows().take(100) {
            let Value::Int(v) = row[0] else { panic!() };
            assert!((0..50).contains(&v));
        }
    }

    #[test]
    fn star_db_has_hub_and_satellites() {
        let db = star_db(3, 50, 10, 4);
        assert_eq!(db.len(), 4);
        let hub = db.table("hub").unwrap();
        assert_eq!(hub.schema().arity(), 3);
        assert_eq!(hub.len(), 50);
    }

    #[test]
    fn clique_db_has_all_pairs() {
        let db = clique_db(4, 20, 5, 9);
        assert_eq!(db.len(), 6);
        assert!(db.table("e0_3").is_some());
        assert!(db.table("e3_0").is_none());
    }

    #[test]
    fn selectivity_bounds_distinct_values() {
        let db = workload_db(&WorkloadSpec::new(1, 1000, 30, 3));
        let stats = htqo_stats::analyze(&db);
        let d = stats.table("p0").unwrap().column("l").unwrap().distinct;
        assert!(d <= 30);
        assert!(
            d >= 25,
            "uniform over 30 values should hit most of them, got {d}"
        );
    }
}
