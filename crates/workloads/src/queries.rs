//! The paper's synthetic query families (Section 6).

use htqo_cq::{ConjunctiveQuery, CqBuilder};

/// An acyclic *line* query over `n` binary atoms:
/// `q(X0) ← p0(X0,X1) ∧ p1(X1,X2) ∧ … ∧ p{n-1}(X{n-1},Xn)`.
/// Consecutive atoms share exactly one variable; non-consecutive atoms
/// share none — exactly the paper's "Acyclic Queries".
pub fn acyclic_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1, "need at least one atom");
    let mut b = CqBuilder::new();
    for i in 0..n {
        let l = format!("X{i}");
        let r = format!("X{}", i + 1);
        b = b.atom(&format!("p{i}"), &format!("p{i}"), &[("l", &l), ("r", &r)]);
    }
    b.out_var("X0").build()
}

/// A cyclic *chain* query: the line with its first and last atoms sharing
/// a variable (`x₁ ∩ xₙ ≠ ∅`):
/// `q(X0) ← p0(X0,X1) ∧ … ∧ p{n-1}(X{n-1},X0)`.
pub fn chain_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 2, "a chain needs at least two atoms");
    let mut b = CqBuilder::new();
    for i in 0..n {
        let l = format!("X{i}");
        let r = format!("X{}", (i + 1) % n);
        b = b.atom(&format!("p{i}"), &format!("p{i}"), &[("l", &l), ("r", &r)]);
    }
    b.out_var("X0").build()
}

/// A *star* query: a central atom `p0(X1, …)` sharing one variable with
/// each satellite `p_i(X_i, Y_i)`. Acyclic for any `n`; used by the
/// width-ablation benches.
///
/// The hub is (n)-ary, so tree-decomposition-based methods pay width
/// `n - 1` where hypertree width stays 1.
pub fn star_query(satellites: usize) -> ConjunctiveQuery {
    assert!(satellites >= 1, "need at least one satellite");
    let mut b = CqBuilder::new();
    let hub_args: Vec<(String, String)> = (0..satellites)
        .map(|i| (format!("c{i}"), format!("X{i}")))
        .collect();
    let hub_refs: Vec<(&str, &str)> = hub_args
        .iter()
        .map(|(c, v)| (c.as_str(), v.as_str()))
        .collect();
    b = b.atom("hub", "hub", &hub_refs);
    for i in 0..satellites {
        let x = format!("X{i}");
        let y = format!("Y{i}");
        b = b.atom(&format!("p{i}"), &format!("p{i}"), &[("l", &x), ("r", &y)]);
    }
    b.out_var("X0").build()
}

/// A *clique* query: one binary atom per pair of `n` variables. Its
/// hypertree width grows as ⌈n/2⌉, so it exercises the width-bound
/// Failure path of Algorithm q-HypertreeDecomp.
pub fn clique_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 2, "a clique needs at least two variables");
    let mut b = CqBuilder::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let l = format!("X{i}");
            let r = format!("X{j}");
            b = b.atom(
                &format!("e{i}_{j}"),
                &format!("e{i}_{j}"),
                &[("l", &l), ("r", &r)],
            );
        }
    }
    b.out_var("X0").build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_core::hypertree_width;
    use htqo_hypergraph::acyclic::is_acyclic;

    #[test]
    fn lines_are_acyclic_chains_are_not() {
        for n in 2..=10 {
            let line = acyclic_query(n).hypergraph().hypergraph;
            assert!(is_acyclic(&line), "line n={n}");
            assert_eq!(hypertree_width(&line), 1);
            if n >= 4 {
                let chain = chain_query(n).hypergraph().hypergraph;
                assert!(!is_acyclic(&chain), "chain n={n}");
                assert_eq!(hypertree_width(&chain), 2);
            }
        }
    }

    #[test]
    fn consecutive_atoms_share_one_variable() {
        let q = acyclic_query(5);
        for i in 0..4 {
            let a = &q.atoms[i];
            let b = &q.atoms[i + 1];
            let shared: Vec<&str> = a
                .vars()
                .into_iter()
                .filter(|v| b.vars().contains(v))
                .collect();
            assert_eq!(shared.len(), 1);
        }
        // Non-consecutive atoms are disjoint.
        let a = &q.atoms[0];
        let c = &q.atoms[2];
        assert!(a.vars().iter().all(|v| !c.vars().contains(v)));
    }

    #[test]
    fn chain_closes_the_loop() {
        let q = chain_query(5);
        let first = &q.atoms[0];
        let last = &q.atoms[4];
        assert!(first.vars().iter().any(|v| last.vars().contains(v)));
    }

    #[test]
    fn output_is_first_variable() {
        assert_eq!(acyclic_query(3).out_vars(), vec!["X0".to_string()]);
        assert_eq!(chain_query(3).out_vars(), vec!["X0".to_string()]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn chain_needs_two_atoms() {
        chain_query(1);
    }

    #[test]
    fn stars_are_acyclic_width_1() {
        for n in [1usize, 3, 5] {
            let q = star_query(n);
            assert_eq!(q.atoms.len(), n + 1);
            let h = q.hypergraph().hypergraph;
            assert!(is_acyclic(&h), "star n={n}");
            assert_eq!(hypertree_width(&h), 1);
        }
    }

    #[test]
    fn clique_width_grows() {
        // hw(K_n) = ⌈n/2⌉ for cliques of binary edges (n ≥ 3).
        assert_eq!(hypertree_width(&clique_query(3).hypergraph().hypergraph), 2);
        assert_eq!(hypertree_width(&clique_query(4).hypergraph().hypergraph), 2);
        assert_eq!(hypertree_width(&clique_query(5).hypergraph().hypergraph), 3);
        let q6 = clique_query(6);
        assert_eq!(q6.atoms.len(), 15);
        assert_eq!(hypertree_width(&q6.hypergraph().hypergraph), 3);
    }

    #[test]
    fn clique_triggers_qhd_failure_at_low_k() {
        let q = clique_query(5);
        let fail = htqo_core::q_hypertree_decomp(
            &q,
            &htqo_core::QhdOptions {
                max_width: 2,
                run_optimize: true,
                threads: 0,
            },
            &htqo_core::StructuralCost,
        );
        assert!(fail.is_err());
        assert!(htqo_core::q_hypertree_decomp(
            &q,
            &htqo_core::QhdOptions {
                max_width: 3,
                run_optimize: true,
                threads: 0
            },
            &htqo_core::StructuralCost,
        )
        .is_ok());
    }
}
