//! Synthetic workloads from Section 6 of the paper:
//!
//! - **Acyclic queries**: lines `q(y) ← p₁(x₁), …, pₙ(xₙ)` where
//!   consecutive atoms share exactly one variable;
//! - **Chain queries**: the simplest cyclic variation, where the first and
//!   last atoms also share a variable;
//! - random uniform data with configurable **cardinality** (rows per
//!   relation) and **selectivity** (number of distinct values per
//!   attribute — the paper varies 30/60/90; *lower* selectivity means
//!   bigger joins and a bigger structural advantage).

#![warn(missing_docs)]

pub mod queries;
pub mod synth;

pub use queries::{acyclic_query, chain_query, clique_query, star_query};
pub use synth::{clique_db, star_db, workload_db, Distribution, WorkloadSpec};
