//! The buffer pool: a fixed-capacity page cache with clock (second
//! chance) eviction, pin/unpin guards, and exact byte accounting against
//! the engine's [`Budget`].
//!
//! Invariants (property-tested in `tests/storage_prop.rs`):
//! - a pinned page is never evicted;
//! - a dirty page is written back exactly once per dirty period (on
//!   eviction or an explicit flush), clean evictions never write;
//! - the budget charge equals `resident frames × PAGE_SIZE` at all
//!   times, and drops to zero when the pool is dropped.
//!
//! Pages are handed out as [`PagePin`] guards holding an `Arc` snapshot
//! of the frame bytes, so readers never block the pool lock while they
//! decode. A concurrent [`BufferPool::update`] publishes a new snapshot;
//! outstanding pins keep reading the one they started with.
//!
//! **WAL-before-data.** When a [`Wal`] is attached, every logged
//! mutation stamps its frame with the record's LSN
//! ([`BufferPool::update_logged`]), and no dirty frame reaches the data
//! file — on eviction, flush, or drop — until the WAL is synced past
//! that LSN ([`Wal::sync_to`]). A data page can therefore never hit disk
//! ahead of the log record that recreates it, which is the entire
//! recovery contract.

use crate::page::PAGE_SIZE;
use crate::pager::PageFile;
use crate::wal::Wal;
use htqo_engine::{Budget, EvalError};
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex};

/// Observability counters for one pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pins served from a resident frame.
    pub hits: u64,
    /// Pins that had to read from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty write-backs (eviction or flush).
    pub flushes: u64,
    /// Frames currently resident.
    pub resident: usize,
    /// Maximum resident frames.
    pub capacity: usize,
}

struct Frame {
    pid: u64,
    data: Arc<Vec<u8>>,
    pins: u32,
    dirty: bool,
    referenced: bool,
    /// LSN of the newest WAL record covering this frame's content; the
    /// frame must not be written back until the WAL is synced past it.
    /// Zero for unlogged mutations (always writable).
    page_lsn: u64,
}

struct Inner {
    file: PageFile,
    cap: usize,
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    hand: usize,
    budget: Option<Budget>,
    stats: PoolStats,
    wal: Option<Arc<Wal>>,
    /// Next page id handed out by [`BufferPool::create_page`]; may run
    /// ahead of `file.pages()` until the created frames are written
    /// back (via `write_extend`).
    next_pid: u64,
}

impl Inner {
    /// The WAL-before-data barrier for one frame.
    fn wal_barrier(&self, lsn: u64) -> Result<(), EvalError> {
        if lsn > 0 {
            if let Some(wal) = &self.wal {
                wal.sync_to(lsn)?;
            }
        }
        Ok(())
    }

    /// Writes frame `i` back to the data file (WAL barrier first).
    fn write_back(&mut self, i: usize) -> Result<(), EvalError> {
        let lsn = self.frames[i].page_lsn;
        self.wal_barrier(lsn)?;
        let (pid, data) = (self.frames[i].pid, Arc::clone(&self.frames[i].data));
        self.file.write_extend(pid, &data)?;
        self.frames[i].dirty = false;
        self.stats.flushes += 1;
        Ok(())
    }

    /// Clock sweep: frees one frame slot, flushing it first if dirty.
    /// Fails only when every frame is pinned.
    fn evict_one(&mut self) -> Result<usize, EvalError> {
        for _ in 0..2 * self.frames.len() {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[i].pins > 0 {
                continue;
            }
            if self.frames[i].referenced {
                self.frames[i].referenced = false;
                continue;
            }
            if self.frames[i].dirty {
                self.write_back(i)?;
            }
            let pid = self.frames[i].pid;
            self.map.remove(&pid);
            self.stats.evictions += 1;
            self.uncharge_page();
            return Ok(i);
        }
        Err(EvalError::Internal(format!(
            "buffer pool exhausted: all {} frames pinned",
            self.frames.len()
        )))
    }

    fn charge_page(&mut self) -> Result<(), EvalError> {
        if let Some(b) = self.budget.as_mut() {
            // Hard reservation (not the batched `charge_bytes`): a denied
            // frame is a MemoryExceeded before the page is cached, and a
            // granted one is immediately visible to sibling handles.
            b.reserve_bytes(PAGE_SIZE as u64)?;
        }
        Ok(())
    }

    fn uncharge_page(&mut self) {
        if let Some(b) = self.budget.as_mut() {
            b.uncharge_bytes(PAGE_SIZE as u64);
        }
    }

    /// Frees (or allocates) a slot for a new frame.
    fn slot(&mut self) -> Result<usize, EvalError> {
        if self.frames.len() < self.cap {
            self.charge_page()?;
            self.frames.push(Frame {
                pid: u64::MAX,
                data: Arc::new(Vec::new()),
                pins: 0,
                dirty: false,
                referenced: false,
                page_lsn: 0,
            });
            Ok(self.frames.len() - 1)
        } else {
            let i = self.evict_one()?;
            self.charge_page()?;
            Ok(i)
        }
    }

    /// Makes `pid` resident and returns its frame index.
    fn frame_of(&mut self, pid: u64) -> Result<usize, EvalError> {
        if let Some(&i) = self.map.get(&pid) {
            self.stats.hits += 1;
            self.frames[i].referenced = true;
            return Ok(i);
        }
        self.stats.misses += 1;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read(pid, &mut buf)?;
        let i = self.slot()?;
        self.frames[i] = Frame {
            pid,
            data: Arc::new(buf),
            pins: 0,
            dirty: false,
            referenced: true,
            page_lsn: 0,
        };
        self.map.insert(pid, i);
        Ok(i)
    }
}

/// A shared page cache over one [`PageFile`].
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("BufferPool").field("stats", &stats).finish()
    }
}

impl BufferPool {
    /// Builds a pool over `file` with at most `cap_bytes` of resident
    /// pages (rounded down to whole pages, minimum one). When `budget`
    /// is given, every resident frame charges [`PAGE_SIZE`] bytes
    /// against it and uncharges on eviction or drop, so cached pages
    /// compete with query memory in one pool.
    pub fn new(file: PageFile, cap_bytes: u64, budget: Option<Budget>) -> Self {
        let cap = ((cap_bytes / PAGE_SIZE as u64).max(1)) as usize;
        let next_pid = file.pages();
        BufferPool {
            inner: Mutex::new(Inner {
                file,
                cap,
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
                budget,
                stats: PoolStats {
                    capacity: cap,
                    ..PoolStats::default()
                },
                wal: None,
                next_pid,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attaches the WAL whose records cover this pool's file; from now
    /// on every dirty write-back waits for the WAL to sync past the
    /// frame's `page_lsn` first.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        self.lock().wal = Some(wal);
    }

    /// Pins page `pid` and returns a read guard; the page cannot be
    /// evicted until the guard drops.
    pub fn pin(&self, pid: u64) -> Result<PagePin<'_>, EvalError> {
        let mut inner = self.lock();
        let i = inner.frame_of(pid)?;
        inner.frames[i].pins += 1;
        let data = Arc::clone(&inner.frames[i].data);
        Ok(PagePin {
            pool: self,
            pid,
            data,
        })
    }

    fn unpin(&self, pid: u64) {
        let mut inner = self.lock();
        if let Some(&i) = inner.map.get(&pid) {
            debug_assert!(inner.frames[i].pins > 0, "unpin of unpinned page");
            inner.frames[i].pins = inner.frames[i].pins.saturating_sub(1);
        }
    }

    /// Mutates page `pid` in the cache and marks it dirty; the write
    /// reaches disk on eviction, [`BufferPool::flush`], or drop. The
    /// mutation must preserve the page size.
    pub fn update(&self, pid: u64, f: impl FnOnce(&mut Vec<u8>)) -> Result<(), EvalError> {
        self.update_at(pid, 0, f)
    }

    /// Like [`BufferPool::update`], but records that the mutation is
    /// covered by the WAL record at `lsn`: the frame will not be written
    /// back until the WAL is synced past it.
    pub fn update_logged(
        &self,
        pid: u64,
        lsn: u64,
        f: impl FnOnce(&mut Vec<u8>),
    ) -> Result<(), EvalError> {
        self.update_at(pid, lsn, f)
    }

    fn update_at(&self, pid: u64, lsn: u64, f: impl FnOnce(&mut Vec<u8>)) -> Result<(), EvalError> {
        let mut inner = self.lock();
        let i = inner.frame_of(pid)?;
        let data = Arc::make_mut(&mut inner.frames[i].data);
        f(data);
        assert_eq!(data.len(), PAGE_SIZE, "update changed the page size");
        inner.frames[i].dirty = true;
        inner.frames[i].page_lsn = inner.frames[i].page_lsn.max(lsn);
        Ok(())
    }

    /// Allocates a fresh zeroed page *in the cache* and returns its page
    /// id. The page reaches the file (zero-extending any gap) when the
    /// frame is written back — after the covering WAL record is durable,
    /// like any other logged mutation.
    pub fn create_page(&self) -> Result<u64, EvalError> {
        let mut inner = self.lock();
        let pid = inner.next_pid;
        inner.next_pid += 1;
        let i = inner.slot()?;
        inner.frames[i] = Frame {
            pid,
            data: Arc::new(vec![0u8; PAGE_SIZE]),
            pins: 0,
            dirty: true,
            referenced: true,
            page_lsn: 0,
        };
        inner.map.insert(pid, i);
        Ok(pid)
    }

    /// Writes back every dirty frame (each exactly once, WAL barrier
    /// first) and syncs the data file.
    pub fn flush(&self) -> Result<(), EvalError> {
        let mut inner = self.lock();
        for i in 0..inner.frames.len() {
            if inner.frames[i].dirty {
                inner.write_back(i)?;
            }
        }
        inner.file.sync()
    }

    /// Drops every frame **without** write-back, losing all dirty
    /// content — the crash-simulation primitive. The budget returns to
    /// its pre-pool level; the pool stays usable (rereads from disk).
    pub fn discard(&self) {
        let mut inner = self.lock();
        for _ in 0..inner.map.len() {
            inner.uncharge_page();
        }
        inner.map.clear();
        inner.frames.clear();
        inner.hand = 0;
        inner.next_pid = inner.file.pages();
    }

    /// Current counters (with `resident` filled in).
    pub fn stats(&self) -> PoolStats {
        let inner = self.lock();
        PoolStats {
            resident: inner.map.len(),
            ..inner.stats
        }
    }

    /// Pages in the underlying file.
    pub fn file_pages(&self) -> u64 {
        self.lock().file.pages()
    }

    /// Page ids handed out so far (file pages plus created-but-unwritten
    /// cache pages) — the id the next [`BufferPool::create_page`] gets.
    pub fn next_pid(&self) -> u64 {
        self.lock().next_pid
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        let mut inner = self.lock();
        // Best-effort write-back; a frame whose WAL barrier fails is
        // skipped (writing it would violate WAL-before-data — recovery
        // will redo it from the log instead). Uncharge every resident
        // frame so the budget returns to its pre-pool level exactly.
        for i in 0..inner.frames.len() {
            if inner.frames[i].dirty {
                let _ = inner.write_back(i);
            }
        }
        for _ in 0..inner.map.len() {
            inner.uncharge_page();
        }
        inner.map.clear();
        inner.frames.clear();
    }
}

/// Read guard returned by [`BufferPool::pin`]; dereferences to the page
/// bytes and unpins on drop.
pub struct PagePin<'a> {
    pool: &'a BufferPool,
    pid: u64,
    data: Arc<Vec<u8>>,
}

impl Deref for PagePin<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PagePin<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PageFile;
    use std::path::PathBuf;

    fn pool_file(name: &str, pages: u64) -> PageFile {
        let dir = std::env::temp_dir().join(format!("htqo-buffer-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path: PathBuf = dir.join("t.pages");
        let mut f = PageFile::create(&path).unwrap();
        for p in 0..pages {
            f.append(&vec![p as u8; PAGE_SIZE]).unwrap();
        }
        f.sync().unwrap();
        f
    }

    #[test]
    fn hits_after_first_read_and_eviction_under_pressure() {
        let pool = BufferPool::new(pool_file("clock", 8), 3 * PAGE_SIZE as u64, None);
        for pid in 0..8 {
            let p = pool.pin(pid).unwrap();
            assert_eq!(p[0], pid as u8);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.resident, 3);
        assert_eq!(s.evictions, 5);
        // Clean pages never hit the disk on the way out.
        assert_eq!(s.flushes, 0);
        let _p = pool.pin(7).unwrap();
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn pinned_pages_survive_pressure_and_full_pool_errors() {
        let pool = BufferPool::new(pool_file("pins", 8), 2 * PAGE_SIZE as u64, None);
        let keep = pool.pin(0).unwrap();
        for pid in 1..8 {
            let p = pool.pin(pid).unwrap();
            assert_eq!(p[0], pid as u8);
        }
        // Page 0 was pinned throughout: still resident, still a hit.
        assert_eq!(keep[0], 0);
        let again = pool.pin(0).unwrap();
        assert_eq!(again[0], 0);
        assert!(pool.stats().hits >= 1);
        drop((keep, again));

        let a = pool.pin(1).unwrap();
        let b = pool.pin(2).unwrap();
        // Both frames pinned: a third distinct page cannot be cached.
        assert!(pool.pin(3).is_err());
        drop((a, b));
        assert!(pool.pin(3).is_ok());
    }

    #[test]
    fn budget_charges_match_residency_exactly() {
        let mut budget = Budget::unlimited().with_mem_limit(1 << 30);
        let _ = budget.fork();
        let observer = budget.fork();
        {
            let pool = BufferPool::new(pool_file("budget", 6), 2 * PAGE_SIZE as u64, Some(budget));
            for pid in 0..6 {
                let _ = pool.pin(pid).unwrap();
            }
            assert_eq!(
                observer.mem_used(),
                2 * PAGE_SIZE as u64,
                "resident frames × PAGE_SIZE"
            );
        }
        assert_eq!(observer.mem_used(), 0, "drop returns every byte");
    }

    #[test]
    fn dirty_pages_flush_once_and_persist() {
        let file = pool_file("dirty", 4);
        let path = file.path().to_path_buf();
        {
            let pool = BufferPool::new(file, 4 * PAGE_SIZE as u64, None);
            pool.update(2, |d| d[0] = 0xEE).unwrap();
            pool.flush().unwrap();
            assert_eq!(pool.stats().flushes, 1);
            // A second flush has nothing to write.
            pool.flush().unwrap();
            assert_eq!(pool.stats().flushes, 1);
        }
        let mut f = PageFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read(2, &mut buf).unwrap();
        assert_eq!(buf[0], 0xEE);
    }

    #[test]
    fn created_pages_extend_the_file_on_flush() {
        let file = pool_file("create", 2);
        let path = file.path().to_path_buf();
        {
            let pool = BufferPool::new(file, 8 * PAGE_SIZE as u64, None);
            let a = pool.create_page().unwrap();
            let b = pool.create_page().unwrap();
            assert_eq!((a, b), (2, 3));
            pool.update(b, |d| d[7] = 0x77).unwrap();
            // The file has not grown yet; the pages live in the cache.
            assert_eq!(pool.file_pages(), 2);
            let pin = pool.pin(b).unwrap();
            assert_eq!(pin[7], 0x77);
            drop(pin);
            pool.flush().unwrap();
            assert_eq!(pool.file_pages(), 4);
        }
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.pages(), 4);
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read(3, &mut buf).unwrap();
        assert_eq!(buf[7], 0x77);
    }

    #[test]
    fn discard_loses_dirty_content_and_returns_budget() {
        let mut budget = Budget::unlimited().with_mem_limit(1 << 30);
        let observer = budget.fork();
        let file = pool_file("discard", 3);
        let pool = BufferPool::new(file, 4 * PAGE_SIZE as u64, Some(budget.fork()));
        pool.update(1, |d| d[0] = 0x99).unwrap();
        pool.discard();
        assert_eq!(observer.mem_used(), 0, "discard returns every byte");
        // The dirty update never reached disk: rereading sees old bytes.
        let p = pool.pin(1).unwrap();
        assert_eq!(p[0], 1);
    }
}
