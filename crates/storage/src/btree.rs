//! Bulk-loaded B+tree secondary indexes over encoded join keys.
//!
//! Built once per `(table, column)` at ingest from the sorted
//! `(encoded key, ascending rowids)` pairs of an in-memory
//! [`htqo_engine::MemIndex`], written as pages appended to the table's
//! [`PageFile`], and read back through the [`BufferPool`] — so index
//! probes at query time are cache-governed page reads, not heap walks.
//!
//! Page layout (raw, not slotted — cells are scanned in order):
//! `[kind: u8][ncells: u16 LE][next: u64 LE]` then packed cells.
//! Leaf cells are `[klen: u16][key][npost: u32][rowid: u32 × npost]`;
//! internal cells are `[klen: u16][key][child: u64]` keyed by the first
//! key of the child subtree. A key whose posting list outgrows one page
//! spills into consecutive cells (possibly crossing leaves via the
//! `next` chain), so lookups descend to the *predecessor* leaf boundary
//! and then walk forward while cells still match.

use crate::buffer::BufferPool;
use crate::page::{MAX_CELL, PAGE_SIZE};
use crate::pager::PageFile;
use htqo_engine::{EvalError, JoinIndex};
use std::fmt;
use std::sync::Arc;

const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;
const HEADER: usize = 11;
const NO_NEXT: u64 = u64::MAX;

fn corrupt(what: &str) -> EvalError {
    EvalError::SpillIo(format!("btree page corruption: {what}"))
}

/// Catalog-persisted description of one built index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexMeta {
    /// Root page id (in the table's page file).
    pub root: u64,
    /// Number of distinct keys.
    pub distinct: usize,
    /// Total indexed rows.
    pub entries: usize,
}

struct NodeBuilder {
    kind: u8,
    cells: Vec<u8>,
    ncells: u16,
    first_key: Vec<u8>,
}

impl NodeBuilder {
    fn new(kind: u8) -> Self {
        NodeBuilder {
            kind,
            cells: Vec::new(),
            ncells: 0,
            first_key: Vec::new(),
        }
    }

    fn fits(&self, cell_len: usize) -> bool {
        // Cells must stay inside the data region: the pager stamps the
        // checksum trailer over the last PAGE_TRAILER bytes on write.
        HEADER + self.cells.len() + cell_len <= crate::page::PAGE_DATA
    }

    fn push(&mut self, key: &[u8], cell: &[u8]) {
        if self.ncells == 0 {
            self.first_key = key.to_vec();
        }
        self.cells.extend_from_slice(cell);
        self.ncells += 1;
    }

    fn finish(self, next: u64) -> (Vec<u8>, Vec<u8>) {
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = self.kind;
        page[1..3].copy_from_slice(&self.ncells.to_le_bytes());
        page[3..11].copy_from_slice(&next.to_le_bytes());
        page[HEADER..HEADER + self.cells.len()].copy_from_slice(&self.cells);
        (page, self.first_key)
    }
}

fn leaf_cell(key: &[u8], posts: &[u32]) -> Vec<u8> {
    let mut c = Vec::with_capacity(2 + key.len() + 4 + 4 * posts.len());
    c.extend_from_slice(&(key.len() as u16).to_le_bytes());
    c.extend_from_slice(key);
    c.extend_from_slice(&(posts.len() as u32).to_le_bytes());
    for r in posts {
        c.extend_from_slice(&r.to_le_bytes());
    }
    c
}

fn internal_cell(key: &[u8], child: u64) -> Vec<u8> {
    let mut c = Vec::with_capacity(2 + key.len() + 8);
    c.extend_from_slice(&(key.len() as u16).to_le_bytes());
    c.extend_from_slice(key);
    c.extend_from_slice(&child.to_le_bytes());
    c
}

/// Largest posting chunk that fits a fresh leaf next to its key.
fn chunk_rows(key_len: usize) -> usize {
    // MAX_CELL already excludes the checksum trailer, so chunks sized
    // from it stay inside the data region with room to spare.
    (MAX_CELL - HEADER - 2 - key_len - 4) / 4
}

/// Bulk-loads an index from sorted `(key, ascending rowids)` pairs,
/// appending its pages to `file`.
pub fn build_index<'a>(
    file: &mut PageFile,
    pairs: impl Iterator<Item = (&'a [u8], &'a [u32])>,
) -> Result<IndexMeta, EvalError> {
    // Pack leaves in memory first: `next` pointers need the final pids,
    // which are contiguous because all leaves are appended in one run.
    let mut leaves: Vec<NodeBuilder> = vec![NodeBuilder::new(KIND_LEAF)];
    let mut distinct = 0usize;
    let mut entries = 0usize;
    for (key, posts) in pairs {
        if key.len() > u16::MAX as usize || 2 + key.len() + 8 > MAX_CELL - HEADER {
            return Err(EvalError::SpillIo(format!(
                "index key too large ({} bytes)",
                key.len()
            )));
        }
        distinct += 1;
        entries += posts.len();
        for chunk in posts.chunks(chunk_rows(key.len()).max(1)) {
            let cell = leaf_cell(key, chunk);
            if !leaves.last().unwrap().fits(cell.len()) {
                leaves.push(NodeBuilder::new(KIND_LEAF));
            }
            leaves.last_mut().unwrap().push(key, &cell);
        }
    }
    let base = file.pages();
    let n_leaves = leaves.len() as u64;
    let mut level: Vec<(Vec<u8>, u64)> = Vec::with_capacity(leaves.len());
    for (i, leaf) in leaves.into_iter().enumerate() {
        let next = if (i as u64) < n_leaves - 1 {
            base + i as u64 + 1
        } else {
            NO_NEXT
        };
        let (page, first_key) = leaf.finish(next);
        let pid = file.append(&page)?;
        level.push((first_key, pid));
    }
    // Internal levels, bottom-up, until one page holds the whole level.
    while level.len() > 1 {
        let mut nodes: Vec<NodeBuilder> = vec![NodeBuilder::new(KIND_INTERNAL)];
        for (key, child) in &level {
            let cell = internal_cell(key, *child);
            if !nodes.last().unwrap().fits(cell.len()) {
                nodes.push(NodeBuilder::new(KIND_INTERNAL));
            }
            nodes.last_mut().unwrap().push(key, &cell);
        }
        let mut up = Vec::with_capacity(nodes.len());
        for node in nodes {
            let (page, first_key) = node.finish(NO_NEXT);
            let pid = file.append(&page)?;
            up.push((first_key, pid));
        }
        level = up;
    }
    Ok(IndexMeta {
        root: level[0].1,
        distinct,
        entries,
    })
}

struct PageView<'a> {
    kind: u8,
    ncells: u16,
    next: u64,
    body: &'a [u8],
}

fn view(page: &[u8]) -> Result<PageView<'_>, EvalError> {
    if page.len() != PAGE_SIZE {
        return Err(corrupt("wrong page size"));
    }
    Ok(PageView {
        kind: page[0],
        ncells: u16::from_le_bytes([page[1], page[2]]),
        next: u64::from_le_bytes(page[3..11].try_into().unwrap()),
        body: &page[HEADER..],
    })
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], EvalError> {
    let end = pos.checked_add(n).ok_or_else(|| corrupt("cell overflow"))?;
    if end > buf.len() {
        return Err(corrupt("cell truncated"));
    }
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

/// A paged B+tree exposed to the engine as a [`JoinIndex`]; probes read
/// through the shared [`BufferPool`].
pub struct PagedIndex {
    pool: Arc<BufferPool>,
    meta: IndexMeta,
}

impl PagedIndex {
    /// Opens a built index rooted at `meta.root` in `pool`'s file.
    pub fn new(pool: Arc<BufferPool>, meta: IndexMeta) -> Self {
        PagedIndex { pool, meta }
    }

    /// The pool this index reads through (shared with the table heap).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }
}

impl fmt::Debug for PagedIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagedIndex")
            .field("meta", &self.meta)
            .finish()
    }
}

impl JoinIndex for PagedIndex {
    fn seek(&self, key: &[u8]) -> Result<Vec<u32>, EvalError> {
        let mut pid = self.meta.root;
        // Descend to the predecessor boundary: the last child whose
        // first key is `< key` (first child if none), so duplicates that
        // straddle a leaf boundary are reached via the forward chain.
        loop {
            let page = self.pool.pin(pid)?;
            let v = view(&page)?;
            if v.kind == KIND_LEAF {
                break;
            }
            if v.kind != KIND_INTERNAL {
                return Err(corrupt("unknown page kind"));
            }
            let mut pos = 0usize;
            let mut child: Option<u64> = None;
            for _ in 0..v.ncells {
                let klen =
                    u16::from_le_bytes(take(v.body, &mut pos, 2)?.try_into().unwrap()) as usize;
                let k = take(v.body, &mut pos, klen)?;
                let c = u64::from_le_bytes(take(v.body, &mut pos, 8)?.try_into().unwrap());
                match child {
                    None => child = Some(c),
                    Some(_) if k < key => child = Some(c),
                    Some(_) => break,
                }
            }
            pid = child.ok_or_else(|| corrupt("internal page with no cells"))?;
        }
        // Walk the leaf chain collecting exact matches; keys are sorted,
        // so the first greater key (or a greater leaf first-key) ends it.
        let mut out = Vec::new();
        let mut remaining = self.pool.file_pages();
        loop {
            let page = self.pool.pin(pid)?;
            let v = view(&page)?;
            if v.kind != KIND_LEAF {
                return Err(corrupt("leaf chain reached a non-leaf"));
            }
            let mut pos = 0usize;
            for _ in 0..v.ncells {
                let klen =
                    u16::from_le_bytes(take(v.body, &mut pos, 2)?.try_into().unwrap()) as usize;
                let k = take(v.body, &mut pos, klen)?;
                let npost =
                    u32::from_le_bytes(take(v.body, &mut pos, 4)?.try_into().unwrap()) as usize;
                let posts = take(v.body, &mut pos, 4 * npost)?;
                if k > key {
                    return Ok(out);
                }
                if k == key {
                    for c in posts.chunks_exact(4) {
                        out.push(u32::from_le_bytes(c.try_into().unwrap()));
                    }
                }
            }
            if v.next == NO_NEXT {
                return Ok(out);
            }
            pid = v.next;
            remaining = remaining
                .checked_sub(1)
                .ok_or_else(|| corrupt("leaf chain cycle"))?;
        }
    }

    fn distinct_keys(&self) -> usize {
        self.meta.distinct
    }

    fn entries(&self) -> usize {
        self.meta.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(name: &str) -> PageFile {
        let dir = std::env::temp_dir().join(format!("htqo-btree-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path: PathBuf = dir.join("t.pages");
        PageFile::create(&path).unwrap()
    }

    fn built(name: &str, pairs: &[(Vec<u8>, Vec<u32>)]) -> PagedIndex {
        let mut f = file(name);
        let meta = build_index(&mut f, pairs.iter().map(|(k, p)| (&k[..], &p[..]))).unwrap();
        let pool = Arc::new(BufferPool::new(f, 4 * PAGE_SIZE as u64, None));
        PagedIndex::new(pool, meta)
    }

    #[test]
    fn empty_and_miss_seeks() {
        let idx = built("empty", &[]);
        assert_eq!(idx.seek(b"anything").unwrap(), Vec::<u32>::new());
        assert_eq!(idx.distinct_keys(), 0);
        assert_eq!(idx.entries(), 0);
    }

    #[test]
    fn multi_level_tree_finds_every_key() {
        // Wide keys force many leaves and at least one internal level.
        let pairs: Vec<(Vec<u8>, Vec<u32>)> = (0u32..2000)
            .map(|i| {
                let key = format!("key-{i:08}-{}", "x".repeat(40)).into_bytes();
                (key, vec![i, i + 100_000])
            })
            .collect();
        let mut sorted = pairs.clone();
        sorted.sort();
        let idx = built("multi", &sorted);
        assert_eq!(idx.distinct_keys(), 2000);
        assert_eq!(idx.entries(), 4000);
        for (k, p) in &pairs {
            assert_eq!(
                &idx.seek(k).unwrap(),
                p,
                "key {:?}",
                String::from_utf8_lossy(k)
            );
        }
        assert_eq!(idx.seek(b"key-zzz").unwrap(), Vec::<u32>::new());
        assert_eq!(idx.seek(b"").unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn huge_posting_list_spans_leaves_in_order() {
        // One key with more postings than a single page can hold, with
        // neighbors on both sides.
        let big: Vec<u32> = (0..10_000).collect();
        let pairs = vec![
            (b"aaa".to_vec(), vec![1, 2, 3]),
            (b"big".to_vec(), big.clone()),
            (b"zzz".to_vec(), vec![9]),
        ];
        let idx = built("span", &pairs);
        assert_eq!(idx.seek(b"big").unwrap(), big);
        assert_eq!(idx.seek(b"aaa").unwrap(), vec![1, 2, 3]);
        assert_eq!(idx.seek(b"zzz").unwrap(), vec![9]);
        assert_eq!(idx.entries(), 10_004);
    }
}
