//! Write-ahead log: redo records, group commit, and checkpoint
//! truncation.
//!
//! The WAL makes small mutations durable without rewriting whole tables.
//! Records reuse the spill frame format — `len: u32 LE | checksum: u64 LE
//! | payload`, FxHash over the payload — after a fixed 16-byte file
//! header. The **LSN** of a record is simply the file offset one past its
//! last byte, so "WAL synced past LSN `x`" is a single offset comparison.
//!
//! Three payload kinds (first payload byte is the tag):
//!
//! | tag | kind      | payload                                          |
//! |-----|-----------|--------------------------------------------------|
//! | 1   | PageImage | `nlen u16 | page-file name | pid u64 | page image` |
//! | 2   | Catalog   | `nlen u16 | table name | catalog text`           |
//! | 3   | Commit    | `batch id u64`                                   |
//!
//! Page images are **full post-images** (physical redo), so replay is
//! idempotent: applying a batch twice writes the same bytes twice. That
//! is what makes crash-during-recovery safe — see the recovery
//! idempotence test in `tests/crash_recovery_prop.rs`.
//!
//! A batch is the records between two Commit markers. Recovery replays
//! committed batches in order and drops everything after the last valid
//! Commit (including a torn final record, which a mid-write crash can
//! leave behind).
//!
//! **Commit protocol.** Appends buffer in memory (byte-charged against
//! the engine [`Budget`] like every other materialization site).
//! [`Wal::commit`] appends a Commit record, writes the whole pending
//! buffer to the OS, then fsyncs per [`WalPolicy`]:
//!
//! - `commit` (default): fsync on every commit — power-loss durable;
//! - `batch`: fsync every `group_every` commits (group commit) — a
//!   power cut can lose the last unsynced group, never tear a batch;
//! - `off`: never fsync — process-crash safe only.
//!
//! Under every policy the pending buffer is written to the OS at commit,
//! so a *process* crash (not power loss) never loses a committed batch.
//!
//! **WAL-before-data.** [`Wal::sync_to`] is the barrier the buffer pool
//! calls before writing a dirty page whose `page_lsn` is not yet
//! durable; a data page can therefore never reach disk ahead of the log
//! record that recreates it.

use htqo_engine::{Budget, EvalError};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"htqoWAL1";

/// Fixed header length: magic + 8 reserved bytes.
pub const WAL_HEADER: u64 = 16;

/// Frame prefix: `len u32 | checksum u64`.
const FRAME: usize = 12;

/// Sanity cap on one record's payload; anything larger is treated as a
/// torn length field during scan.
const MAX_PAYLOAD: usize = 1 << 20;

const TAG_PAGE: u8 = 1;
const TAG_CATALOG: u8 = 2;
const TAG_COMMIT: u8 = 3;

/// Commits between fsyncs under [`WalPolicy::Batch`].
pub const GROUP_EVERY: u64 = 8;

fn checksum(payload: &[u8]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = htqo_engine::hash::FxHasher::default();
    payload.hash(&mut h);
    h.finish()
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> EvalError {
    EvalError::SpillIo(format!("{}: wal {op}: {e}", path.display()))
}

/// When the WAL fsyncs (see the module docs for the durability ladder).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WalPolicy {
    /// Never fsync: process-crash safe, not power-loss safe.
    Off,
    /// Fsync on every commit (the default).
    #[default]
    Commit,
    /// Group commit: fsync every [`GROUP_EVERY`] commits.
    Batch,
}

impl WalPolicy {
    /// Resolves the policy from `HTQO_WAL` (`off`/`commit`/`batch`,
    /// default `commit`; unknown values fall back to the default).
    pub fn from_env() -> Self {
        match std::env::var("HTQO_WAL").ok().as_deref() {
            Some("off") => WalPolicy::Off,
            Some("batch") => WalPolicy::Batch,
            _ => WalPolicy::Commit,
        }
    }
}

/// One redo record recovered by [`scan`].
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Full post-image of page `pid` in the named page file.
    Page {
        /// Page-file name within the storage directory (generation
        /// specific, e.g. `t.3.pages`).
        file: String,
        /// Page id within that file.
        pid: u64,
        /// The [`crate::page::PAGE_SIZE`] image (trailer unstamped; the
        /// pager restamps on write).
        image: Vec<u8>,
    },
    /// Full replacement text for a table's catalog file.
    Catalog {
        /// Table name.
        table: String,
        /// New catalog text.
        text: String,
    },
}

/// Result of scanning a WAL file: the committed batches in order, plus
/// what had to be dropped from the tail.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// Committed batches, oldest first.
    pub batches: Vec<Vec<WalRecord>>,
    /// True when the scan stopped at a torn or corrupt record before
    /// end-of-file.
    pub torn_tail: bool,
    /// Records after the last valid Commit (an uncommitted batch and/or
    /// the torn record) that were discarded.
    pub dropped_records: u64,
    /// Bytes in the file when scanned.
    pub bytes: u64,
}

struct WalInner {
    file: File,
    /// Offset after the last byte written to the OS (≥ [`WAL_HEADER`]).
    written: u64,
    /// Offset known durable (fsynced).
    durable: u64,
    /// Appended records not yet written to the OS.
    pending: Vec<u8>,
    commits_since_sync: u64,
    batch_seq: u64,
    budget: Option<Budget>,
    /// Set after a failed pending flush: the on-disk tail is torn and
    /// the offset unknown, so further appends must not pretend to work.
    poisoned: bool,
}

impl WalInner {
    fn uncharge_pending(&mut self) {
        if let Some(b) = self.budget.as_mut() {
            b.uncharge_bytes(self.pending.len() as u64);
        }
        self.pending.clear();
    }

    /// Writes the pending buffer to the OS. Honors the
    /// `storage::wal_append` failpoint by leaving half the buffer behind
    /// — a torn WAL tail, exactly what a crash mid-`write(2)` produces.
    fn flush_pending(&mut self, path: &Path) -> Result<(), EvalError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if self.poisoned {
            return Err(EvalError::SpillIo(format!(
                "{}: wal poisoned by an earlier torn write",
                path.display()
            )));
        }
        self.file
            .seek(SeekFrom::Start(self.written))
            .map_err(|e| io_err(path, "seek", e))?;
        if htqo_engine::failpoint::armed() {
            if let Err(e) = htqo_engine::failpoint::eval("storage::wal_append") {
                let half = self.pending.len() / 2;
                let _ = self.file.write_all(&self.pending[..half]);
                self.uncharge_pending();
                self.poisoned = true;
                return Err(e);
            }
        }
        let n = self.pending.len() as u64;
        let res = self.file.write_all(&self.pending);
        self.uncharge_pending();
        res.map_err(|e| {
            self.poisoned = true;
            io_err(path, "write", e)
        })?;
        self.written += n;
        Ok(())
    }

    /// Fsync; on success everything written so far is durable.
    fn fsync(&mut self, path: &Path) -> Result<(), EvalError> {
        if htqo_engine::failpoint::armed() {
            // A failed fsync leaves durability indeterminate: the bytes
            // are in the OS, which may or may not persist them. The
            // crash harness asserts committed-or-absent, never partial.
            htqo_engine::failpoint::eval("storage::wal_fsync")?;
        }
        self.file.sync_all().map_err(|e| io_err(path, "fsync", e))?;
        self.durable = self.written;
        self.commits_since_sync = 0;
        Ok(())
    }
}

/// An open write-ahead log (see the module docs for format and
/// protocol). All methods are internally synchronized.
pub struct Wal {
    path: PathBuf,
    policy: WalPolicy,
    group_every: u64,
    inner: Mutex<WalInner>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .finish()
    }
}

impl Wal {
    /// Opens `path` as a fresh log (truncating any previous content —
    /// callers run recovery *before* opening, so anything left in the
    /// file has already been replayed and checkpointed). WAL buffer
    /// bytes are charged against `budget` until flushed.
    pub fn open(path: &Path, policy: WalPolicy, budget: Option<Budget>) -> Result<Self, EvalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        let mut header = [0u8; WAL_HEADER as usize];
        header[..8].copy_from_slice(WAL_MAGIC);
        let mut inner = WalInner {
            file,
            written: WAL_HEADER,
            durable: 0,
            pending: Vec::new(),
            commits_since_sync: 0,
            batch_seq: 0,
            budget,
            poisoned: false,
        };
        inner
            .file
            .write_all(&header)
            .map_err(|e| io_err(path, "write header", e))?;
        if policy != WalPolicy::Off {
            inner
                .file
                .sync_all()
                .map_err(|e| io_err(path, "fsync header", e))?;
        }
        inner.durable = WAL_HEADER;
        Ok(Wal {
            path: path.to_path_buf(),
            policy,
            group_every: GROUP_EVERY,
            inner: Mutex::new(inner),
        })
    }

    /// The active sync policy.
    pub fn policy(&self) -> WalPolicy {
        self.policy
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Appends one framed record to the pending buffer; returns its LSN.
    fn append(&self, payload: &[u8]) -> Result<u64, EvalError> {
        let mut inner = self.lock();
        if inner.poisoned {
            return Err(EvalError::SpillIo(format!(
                "{}: wal poisoned by an earlier torn write",
                self.path.display()
            )));
        }
        if let Some(b) = inner.budget.as_mut() {
            // Hard reservation (like the buffer pool): a denied append
            // is a MemoryExceeded before the bytes are buffered, and a
            // granted one is immediately visible to sibling handles.
            b.reserve_bytes((FRAME + payload.len()) as u64)?;
        }
        inner
            .pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        inner
            .pending
            .extend_from_slice(&checksum(payload).to_le_bytes());
        inner.pending.extend_from_slice(payload);
        Ok(inner.written + inner.pending.len() as u64)
    }

    /// Logs a full post-image of page `pid` of the named page file.
    /// Returns the record's LSN for the page's `page_lsn` stamp.
    pub fn log_page(&self, file: &str, pid: u64, image: &[u8]) -> Result<u64, EvalError> {
        assert_eq!(image.len(), crate::page::PAGE_SIZE);
        let name = file.as_bytes();
        assert!(name.len() <= u16::MAX as usize);
        let mut payload = Vec::with_capacity(1 + 2 + name.len() + 8 + image.len());
        payload.push(TAG_PAGE);
        payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
        payload.extend_from_slice(name);
        payload.extend_from_slice(&pid.to_le_bytes());
        payload.extend_from_slice(image);
        self.append(&payload)
    }

    /// Logs a full replacement of `table`'s catalog text.
    pub fn log_catalog(&self, table: &str, text: &str) -> Result<u64, EvalError> {
        let name = table.as_bytes();
        assert!(name.len() <= u16::MAX as usize);
        let mut payload = Vec::with_capacity(1 + 2 + name.len() + text.len());
        payload.push(TAG_CATALOG);
        payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
        payload.extend_from_slice(name);
        payload.extend_from_slice(text.as_bytes());
        self.append(&payload)
    }

    /// Commits the current batch: appends a Commit record, writes the
    /// pending buffer to the OS, and fsyncs per policy. Returns the
    /// commit record's LSN.
    pub fn commit(&self) -> Result<u64, EvalError> {
        let lsn = {
            let batch_id = {
                let mut inner = self.lock();
                inner.batch_seq += 1;
                inner.batch_seq
            };
            let mut payload = Vec::with_capacity(9);
            payload.push(TAG_COMMIT);
            payload.extend_from_slice(&batch_id.to_le_bytes());
            self.append(&payload)?
        };
        let mut inner = self.lock();
        inner.flush_pending(&self.path)?;
        inner.commits_since_sync += 1;
        match self.policy {
            WalPolicy::Off => {}
            WalPolicy::Commit => inner.fsync(&self.path)?,
            WalPolicy::Batch => {
                if inner.commits_since_sync >= self.group_every {
                    inner.fsync(&self.path)?;
                }
            }
        }
        Ok(lsn)
    }

    /// The WAL-before-data barrier: after this returns, every record up
    /// to `lsn` is as durable as the policy allows (under `off`, written
    /// to the OS but deliberately not fsynced).
    pub fn sync_to(&self, lsn: u64) -> Result<(), EvalError> {
        let mut inner = self.lock();
        if inner.written < lsn {
            inner.flush_pending(&self.path)?;
        }
        if self.policy != WalPolicy::Off && inner.durable < lsn {
            inner.fsync(&self.path)?;
        }
        Ok(())
    }

    /// Flushes and (policy permitting) fsyncs everything appended so
    /// far — the pre-checkpoint barrier.
    pub fn sync_all(&self) -> Result<(), EvalError> {
        let mut inner = self.lock();
        inner.flush_pending(&self.path)?;
        if self.policy != WalPolicy::Off && inner.durable < inner.written {
            inner.fsync(&self.path)?;
        }
        Ok(())
    }

    /// Logical size in bytes (header + written + pending) — the
    /// checkpoint trigger compares this against its threshold.
    pub fn size(&self) -> u64 {
        let inner = self.lock();
        inner.written + inner.pending.len() as u64
    }

    /// The offset known durable (fsynced). Records at or below this LSN
    /// survive a power cut; anything past it is only as safe as the OS
    /// page cache. The catalog layer uses this as the barrier for
    /// renaming a new catalog into place under group commit: the rename
    /// must never become durable ahead of the WAL group that redoes the
    /// pages it describes.
    pub fn durable_lsn(&self) -> u64 {
        self.lock().durable
    }

    /// Checkpoint truncation: every logged change is already durable in
    /// the data files, so the log restarts empty.
    pub fn reset(&self) -> Result<(), EvalError> {
        let mut inner = self.lock();
        inner.uncharge_pending();
        inner
            .file
            .set_len(WAL_HEADER)
            .map_err(|e| io_err(&self.path, "truncate", e))?;
        if self.policy != WalPolicy::Off {
            inner
                .file
                .sync_all()
                .map_err(|e| io_err(&self.path, "fsync", e))?;
        }
        inner.written = WAL_HEADER;
        inner.durable = WAL_HEADER;
        inner.commits_since_sync = 0;
        inner.poisoned = false;
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.lock().uncharge_pending();
    }
}

fn parse_record(payload: &[u8]) -> Option<(Option<WalRecord>, u64)> {
    let (&tag, rest) = payload.split_first()?;
    match tag {
        TAG_PAGE => {
            if rest.len() < 2 {
                return None;
            }
            let nlen = u16::from_le_bytes([rest[0], rest[1]]) as usize;
            let rest = &rest[2..];
            if rest.len() != nlen + 8 + crate::page::PAGE_SIZE {
                return None;
            }
            let file = String::from_utf8(rest[..nlen].to_vec()).ok()?;
            let pid = u64::from_le_bytes(rest[nlen..nlen + 8].try_into().ok()?);
            let image = rest[nlen + 8..].to_vec();
            Some((Some(WalRecord::Page { file, pid, image }), 0))
        }
        TAG_CATALOG => {
            if rest.len() < 2 {
                return None;
            }
            let nlen = u16::from_le_bytes([rest[0], rest[1]]) as usize;
            let rest = &rest[2..];
            if rest.len() < nlen {
                return None;
            }
            let table = String::from_utf8(rest[..nlen].to_vec()).ok()?;
            let text = String::from_utf8(rest[nlen..].to_vec()).ok()?;
            Some((Some(WalRecord::Catalog { table, text }), 0))
        }
        TAG_COMMIT => {
            if rest.len() != 8 {
                return None;
            }
            Some((None, u64::from_le_bytes(rest.try_into().ok()?)))
        }
        _ => None,
    }
}

/// Scans a WAL file, validating frame checksums, and returns the
/// committed batches. Tolerates a torn tail: the scan stops at the first
/// truncated or corrupt record and everything after the last valid
/// Commit is reported as dropped. A missing file is an empty scan.
pub fn scan(path: &Path) -> Result<WalScan, EvalError> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(io_err(path, "read", e)),
    };
    let mut out = WalScan {
        bytes: data.len() as u64,
        ..WalScan::default()
    };
    if data.len() < WAL_HEADER as usize || &data[..8] != WAL_MAGIC {
        // A torn header means the log never finished initializing —
        // nothing can have committed through it.
        out.torn_tail = !data.is_empty();
        return Ok(out);
    }
    let mut off = WAL_HEADER as usize;
    let mut current: Vec<WalRecord> = Vec::new();
    while off < data.len() {
        if off + FRAME > data.len() {
            out.torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(data[off + 4..off + 12].try_into().unwrap());
        if len == 0 || len > MAX_PAYLOAD || off + FRAME + len > data.len() {
            out.torn_tail = true;
            break;
        }
        let payload = &data[off + FRAME..off + FRAME + len];
        if checksum(payload) != sum {
            out.torn_tail = true;
            break;
        }
        match parse_record(payload) {
            Some((Some(rec), _)) => current.push(rec),
            Some((None, _batch_id)) => {
                out.batches.push(std::mem::take(&mut current));
            }
            None => {
                out.torn_tail = true;
                break;
            }
        }
        off += FRAME + len;
    }
    out.dropped_records = current.len() as u64 + u64::from(out.torn_tail);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("htqo-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.wal")
    }

    #[test]
    fn commit_scan_roundtrip_in_batch_order() {
        let path = tmp("rt");
        let wal = Wal::open(&path, WalPolicy::Commit, None).unwrap();
        let img = vec![3u8; PAGE_SIZE];
        wal.log_page("t.0.pages", 4, &img).unwrap();
        wal.log_catalog("t", "htqo-table v2\nrows 9\n").unwrap();
        wal.commit().unwrap();
        wal.log_page("t.0.pages", 5, &img).unwrap();
        wal.commit().unwrap();

        let scan = scan(&path).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.dropped_records, 0);
        assert_eq!(scan.batches.len(), 2);
        assert_eq!(
            scan.batches[0][0],
            WalRecord::Page {
                file: "t.0.pages".into(),
                pid: 4,
                image: img.clone()
            }
        );
        assert_eq!(
            scan.batches[0][1],
            WalRecord::Catalog {
                table: "t".into(),
                text: "htqo-table v2\nrows 9\n".into()
            }
        );
        assert_eq!(scan.batches[1].len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uncommitted_tail_is_dropped() {
        let path = tmp("tail");
        let wal = Wal::open(&path, WalPolicy::Commit, None).unwrap();
        wal.log_page("p", 0, &vec![1u8; PAGE_SIZE]).unwrap();
        wal.commit().unwrap();
        // Appended but never committed: must not surface as a batch.
        wal.log_page("p", 1, &vec![2u8; PAGE_SIZE]).unwrap();
        wal.sync_all().unwrap();
        drop(wal);
        let scan = scan(&path).unwrap();
        assert_eq!(scan.batches.len(), 1);
        assert_eq!(scan.dropped_records, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_tolerated_and_checksums_catch_corruption() {
        let path = tmp("torn");
        let wal = Wal::open(&path, WalPolicy::Commit, None).unwrap();
        wal.log_page("p", 0, &vec![1u8; PAGE_SIZE]).unwrap();
        wal.commit().unwrap();
        wal.log_page("p", 1, &vec![2u8; PAGE_SIZE]).unwrap();
        wal.commit().unwrap();
        drop(wal);

        // Tear the file mid-way through the second batch.
        let full = std::fs::read(&path).unwrap();
        let torn_len = full.len() - PAGE_SIZE / 2;
        std::fs::write(&path, &full[..torn_len]).unwrap();
        let s = scan(&path).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.batches.len(), 1, "first batch survives the tear");

        // Restore, then flip a byte inside the second batch's image.
        std::fs::write(&path, &full).unwrap();
        let mut bad = full.clone();
        let n = bad.len();
        bad[n - 10] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        let s = scan(&path).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.batches.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_truncates_and_log_restarts_clean() {
        let path = tmp("reset");
        let wal = Wal::open(&path, WalPolicy::Commit, None).unwrap();
        wal.log_page("p", 0, &vec![1u8; PAGE_SIZE]).unwrap();
        wal.commit().unwrap();
        assert!(wal.size() > WAL_HEADER);
        wal.reset().unwrap();
        assert_eq!(wal.size(), WAL_HEADER);
        assert!(scan(&path).unwrap().batches.is_empty());
        // The log keeps working after a checkpoint.
        wal.log_page("p", 1, &vec![2u8; PAGE_SIZE]).unwrap();
        wal.commit().unwrap();
        assert_eq!(scan(&path).unwrap().batches.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_charges_pending_and_returns_on_flush() {
        let mut master = htqo_engine::Budget::unlimited().with_mem_limit(1 << 30);
        let observer = master.fork();
        let path = tmp("budget");
        let wal = Wal::open(&path, WalPolicy::Commit, Some(master.fork())).unwrap();
        wal.log_page("p", 0, &vec![1u8; PAGE_SIZE]).unwrap();
        assert!(
            observer.mem_used() >= PAGE_SIZE as u64,
            "pending records are charged"
        );
        wal.commit().unwrap();
        assert_eq!(observer.mem_used(), 0, "flush returns every byte");
        drop(wal);
        std::fs::remove_file(&path).ok();
    }
}
