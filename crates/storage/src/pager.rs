//! Page-granular file IO.
//!
//! A [`PageFile`] is a flat sequence of [`PAGE_SIZE`] pages addressed by
//! page id; all reads and writes are whole pages. IO failures surface as
//! [`EvalError::SpillIo`] — the same retryable class the spill layer
//! uses, so the degradation ladder treats storage faults uniformly.

use crate::page::PAGE_SIZE;
use htqo_engine::EvalError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// An open heap/index file with page-granular access.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    path: PathBuf,
    pages: u64,
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> EvalError {
    EvalError::SpillIo(format!("{}: {op}: {e}", path.display()))
}

impl PageFile {
    /// Creates (truncating) a new page file.
    pub fn create(path: &Path) -> Result<Self, EvalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, "create", e))?;
        Ok(PageFile {
            file,
            path: path.to_path_buf(),
            pages: 0,
        })
    }

    /// Opens an existing page file; its length must be a whole number of
    /// pages.
    pub fn open(path: &Path) -> Result<Self, EvalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        let len = file.metadata().map_err(|e| io_err(path, "stat", e))?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(EvalError::SpillIo(format!(
                "{}: length {len} is not page-aligned",
                path.display()
            )));
        }
        Ok(PageFile {
            file,
            path: path.to_path_buf(),
            pages: len / PAGE_SIZE as u64,
        })
    }

    /// Number of pages in the file.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn seek_to(&mut self, pid: u64, op: &str) -> Result<(), EvalError> {
        if pid >= self.pages {
            return Err(EvalError::SpillIo(format!(
                "{}: page {pid} out of range (file has {})",
                self.path.display(),
                self.pages
            )));
        }
        self.file
            .seek(SeekFrom::Start(pid * PAGE_SIZE as u64))
            .map_err(|e| io_err(&self.path, op, e))?;
        Ok(())
    }

    /// Reads page `pid` into `buf` (must be [`PAGE_SIZE`] long).
    pub fn read(&mut self, pid: u64, buf: &mut [u8]) -> Result<(), EvalError> {
        htqo_engine::fail_point!("storage::page_read");
        assert_eq!(buf.len(), PAGE_SIZE);
        self.seek_to(pid, "read")?;
        self.file
            .read_exact(buf)
            .map_err(|e| io_err(&self.path, "read", e))
    }

    /// Overwrites page `pid` with `page` (must be [`PAGE_SIZE`] long).
    pub fn write(&mut self, pid: u64, page: &[u8]) -> Result<(), EvalError> {
        assert_eq!(page.len(), PAGE_SIZE);
        self.seek_to(pid, "write")?;
        self.file
            .write_all(page)
            .map_err(|e| io_err(&self.path, "write", e))
    }

    /// Appends `page` (must be [`PAGE_SIZE`] long); returns its page id.
    pub fn append(&mut self, page: &[u8]) -> Result<u64, EvalError> {
        assert_eq!(page.len(), PAGE_SIZE);
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err(&self.path, "append", e))?;
        self.file
            .write_all(page)
            .map_err(|e| io_err(&self.path, "append", e))?;
        let pid = self.pages;
        self.pages += 1;
        Ok(pid)
    }

    /// Durability point: fsync.
    pub fn sync(&mut self) -> Result<(), EvalError> {
        self.file
            .sync_all()
            .map_err(|e| io_err(&self.path, "sync", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("htqo-pager-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.pages")
    }

    #[test]
    fn append_read_write_roundtrip() {
        let path = tmp("rt");
        let mut f = PageFile::create(&path).unwrap();
        let a = vec![1u8; PAGE_SIZE];
        let b = vec![2u8; PAGE_SIZE];
        assert_eq!(f.append(&a).unwrap(), 0);
        assert_eq!(f.append(&b).unwrap(), 1);
        f.sync().unwrap();

        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.pages(), 2);
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read(1, &mut buf).unwrap();
        assert_eq!(buf, b);
        f.write(1, &a).unwrap();
        f.read(1, &mut buf).unwrap();
        assert_eq!(buf, a);
        assert!(f.read(2, &mut buf).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unaligned_file_is_rejected() {
        let path = tmp("unaligned");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(PageFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
