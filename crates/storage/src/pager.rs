//! Page-granular file IO.
//!
//! A [`PageFile`] is a flat sequence of [`PAGE_SIZE`] pages addressed by
//! page id; all reads and writes are whole pages. Every write stamps the
//! page's checksum trailer ([`crate::page::stamp`]) and every read
//! verifies it — a torn or bit-flipped page surfaces as the typed
//! [`EvalError::CorruptPage`], never as silently-decoded garbage. Other
//! IO failures surface as [`EvalError::SpillIo`] — the same retryable
//! class the spill layer uses, so the degradation ladder treats storage
//! faults uniformly.
//!
//! Under the `failpoints` feature, `storage::page_write` simulates a
//! torn write: the first half of the page reaches the file before the
//! injected error, exactly the partial state a power cut mid-`write(2)`
//! can leave behind.

use crate::page::{stamp, verify, PAGE_SIZE};
use htqo_engine::EvalError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// An open heap/index file with page-granular access.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    path: PathBuf,
    pages: u64,
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> EvalError {
    EvalError::SpillIo(format!("{}: {op}: {e}", path.display()))
}

impl PageFile {
    /// Creates (truncating) a new page file.
    pub fn create(path: &Path) -> Result<Self, EvalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, "create", e))?;
        Ok(PageFile {
            file,
            path: path.to_path_buf(),
            pages: 0,
        })
    }

    /// Opens an existing page file; its length must be a whole number of
    /// pages.
    pub fn open(path: &Path) -> Result<Self, EvalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        let len = file.metadata().map_err(|e| io_err(path, "stat", e))?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(EvalError::SpillIo(format!(
                "{}: length {len} is not page-aligned",
                path.display()
            )));
        }
        Ok(PageFile {
            file,
            path: path.to_path_buf(),
            pages: len / PAGE_SIZE as u64,
        })
    }

    /// Number of pages in the file.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn seek_to(&mut self, pid: u64, op: &str) -> Result<(), EvalError> {
        if pid >= self.pages {
            return Err(EvalError::SpillIo(format!(
                "{}: page {pid} out of range (file has {})",
                self.path.display(),
                self.pages
            )));
        }
        self.file
            .seek(SeekFrom::Start(pid * PAGE_SIZE as u64))
            .map_err(|e| io_err(&self.path, op, e))?;
        Ok(())
    }

    /// Reads page `pid` into `buf` (must be [`PAGE_SIZE`] long) and
    /// verifies its checksum trailer.
    pub fn read(&mut self, pid: u64, buf: &mut [u8]) -> Result<(), EvalError> {
        htqo_engine::fail_point!("storage::page_read");
        assert_eq!(buf.len(), PAGE_SIZE);
        self.seek_to(pid, "read")?;
        self.file
            .read_exact(buf)
            .map_err(|e| io_err(&self.path, "read", e))?;
        if !verify(buf) {
            return Err(EvalError::CorruptPage {
                file: self.path.display().to_string(),
                pid,
            });
        }
        Ok(())
    }

    /// Stamps `page`'s checksum, honoring the `storage::page_write`
    /// failpoint by leaving a half-written (torn) page behind.
    fn stamped_write_at(&mut self, offset: u64, page: &[u8]) -> Result<(), EvalError> {
        let mut stamped = page.to_vec();
        stamp(&mut stamped);
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| io_err(&self.path, "write", e))?;
        if htqo_engine::failpoint::armed() {
            if let Err(e) = htqo_engine::failpoint::eval("storage::page_write") {
                // Simulate a torn write: half the page lands, then the
                // "crash". The half-page carries a stale/invalid
                // trailer, so recovery sees it as corrupt — exactly
                // like real hardware.
                let _ = self.file.write_all(&stamped[..PAGE_SIZE / 2]);
                return Err(e);
            }
        }
        self.file
            .write_all(&stamped)
            .map_err(|e| io_err(&self.path, "write", e))
    }

    /// Overwrites page `pid` with `page` (must be [`PAGE_SIZE`] long).
    /// The checksum trailer is (re)stamped; callers need not fill it.
    pub fn write(&mut self, pid: u64, page: &[u8]) -> Result<(), EvalError> {
        assert_eq!(page.len(), PAGE_SIZE);
        if pid >= self.pages {
            return Err(EvalError::SpillIo(format!(
                "{}: page {pid} out of range (file has {})",
                self.path.display(),
                self.pages
            )));
        }
        self.stamped_write_at(pid * PAGE_SIZE as u64, page)
    }

    /// Writes page `pid`, growing the file (zero-extended, with valid
    /// trailers on the gap pages) when `pid` is at or beyond the current
    /// end — the write-back path for pages created in the buffer pool.
    pub fn write_extend(&mut self, pid: u64, page: &[u8]) -> Result<(), EvalError> {
        assert_eq!(page.len(), PAGE_SIZE);
        while self.pages < pid {
            let gap = self.pages;
            self.stamped_write_at(gap * PAGE_SIZE as u64, &[0u8; PAGE_SIZE])?;
            self.pages += 1;
        }
        self.stamped_write_at(pid * PAGE_SIZE as u64, page)?;
        if pid == self.pages {
            self.pages += 1;
        }
        Ok(())
    }

    /// Appends `page` (must be [`PAGE_SIZE`] long); returns its page id.
    pub fn append(&mut self, page: &[u8]) -> Result<u64, EvalError> {
        assert_eq!(page.len(), PAGE_SIZE);
        let pid = self.pages;
        self.stamped_write_at(pid * PAGE_SIZE as u64, page)?;
        self.pages += 1;
        Ok(pid)
    }

    /// Durability point: fsync.
    pub fn sync(&mut self) -> Result<(), EvalError> {
        self.file
            .sync_all()
            .map_err(|e| io_err(&self.path, "sync", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_DATA;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("htqo-pager-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.pages")
    }

    #[test]
    fn append_read_write_roundtrip() {
        let path = tmp("rt");
        let mut f = PageFile::create(&path).unwrap();
        let a = vec![1u8; PAGE_SIZE];
        let b = vec![2u8; PAGE_SIZE];
        assert_eq!(f.append(&a).unwrap(), 0);
        assert_eq!(f.append(&b).unwrap(), 1);
        f.sync().unwrap();

        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.pages(), 2);
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read(1, &mut buf).unwrap();
        // The trailer is overwritten by the stamp; the data region must
        // round-trip bit-identically.
        assert_eq!(buf[..PAGE_DATA], b[..PAGE_DATA]);
        f.write(1, &a).unwrap();
        f.read(1, &mut buf).unwrap();
        assert_eq!(buf[..PAGE_DATA], a[..PAGE_DATA]);
        assert!(f.read(2, &mut buf).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unaligned_file_is_rejected() {
        let path = tmp("unaligned");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(PageFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_is_reported_as_corrupt_page() {
        let path = tmp("flip");
        let mut f = PageFile::create(&path).unwrap();
        f.append(&vec![9u8; PAGE_SIZE]).unwrap();
        f.sync().unwrap();
        drop(f);

        // Flip one data byte behind the pager's back.
        let mut raw = std::fs::read(&path).unwrap();
        raw[123] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();

        let mut f = PageFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        match f.read(0, &mut buf) {
            Err(EvalError::CorruptPage { pid, .. }) => assert_eq!(pid, 0),
            other => panic!("expected CorruptPage, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_extend_grows_with_valid_gap_pages() {
        let path = tmp("extend");
        let mut f = PageFile::create(&path).unwrap();
        f.write_extend(3, &vec![5u8; PAGE_SIZE]).unwrap();
        assert_eq!(f.pages(), 4);
        let mut buf = vec![0u8; PAGE_SIZE];
        // Gap pages are zeroed but checksummed — readable, not corrupt.
        f.read(1, &mut buf).unwrap();
        assert!(buf[..PAGE_DATA].iter().all(|&b| b == 0));
        f.read(3, &mut buf).unwrap();
        assert_eq!(buf[..PAGE_DATA], vec![5u8; PAGE_DATA][..]);
        std::fs::remove_file(&path).ok();
    }
}
