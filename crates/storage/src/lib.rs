//! Paged persistent storage for the htqo engine.
//!
//! The in-memory engine gets a disk story in four layers:
//!
//! 1. [`page`] — slotted 8 KiB pages holding variable-length row cells;
//! 2. [`pager`] — page-granular file IO ([`PageFile`]);
//! 3. [`buffer`] — a pinned/unpinned page cache with clock eviction,
//!    capacity from `HTQO_PAGE_CACHE`, byte-charged against the engine's
//!    [`htqo_engine::Budget`] so cached pages compete with query memory;
//! 4. [`btree`] + [`catalog`] — bulk-loaded B+tree join indexes and a
//!    restart-surviving table catalog ([`StorageDb`]), read back through
//!    the buffer pool.
//!
//! Ingest a CSV/TPC-H load once with [`StorageDb::ingest`]; later runs
//! call [`StorageDb::load_database`] and skip the parse entirely (the
//! "warm restart" path benchmarked in the kernels harness). Persisted
//! indexes come back as [`btree::PagedIndex`] values implementing the
//! engine's [`htqo_engine::JoinIndex`], which the evaluator's
//! index-seek join ([`htqo_engine::iseek`]) probes per accumulator row.

#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod codec;
pub mod page;
pub mod pager;

pub use btree::{IndexMeta, PagedIndex};
pub use buffer::{BufferPool, PagePin, PoolStats};
pub use catalog::{cache_bytes_from_env, dir_from_env, StorageDb, TableMeta, DEFAULT_CACHE_BYTES};
pub use page::PAGE_SIZE;
pub use pager::PageFile;
