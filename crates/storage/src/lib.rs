//! Paged persistent storage for the htqo engine.
//!
//! The in-memory engine gets a disk story in five layers:
//!
//! 1. [`page`] — slotted 8 KiB pages holding variable-length row cells,
//!    with a per-page checksum trailer verified on every read;
//! 2. [`pager`] — page-granular file IO ([`PageFile`]) that stamps the
//!    checksum on write and reports mismatches as typed
//!    `EvalError::CorruptPage`;
//! 3. [`wal`] — an LSN-stamped, checksummed redo log ([`wal::Wal`])
//!    giving mutations crash durability under the WAL-before-data
//!    protocol (`HTQO_WAL=off|commit|batch` picks the fsync policy);
//! 4. [`buffer`] — a pinned/unpinned page cache with clock eviction,
//!    capacity from `HTQO_PAGE_CACHE`, byte-charged against the engine's
//!    [`htqo_engine::Budget`] so cached pages compete with query memory —
//!    and a WAL barrier that blocks dirty write-back until the log is
//!    durable past each page's LSN;
//! 5. [`btree`] + [`catalog`] — bulk-loaded B+tree join indexes and a
//!    restart-surviving table catalog ([`StorageDb`]) with logged
//!    incremental mutations ([`MutationBatch`]), crash recovery
//!    ([`StorageDb::recover`]), and checkpointing, read back through the
//!    buffer pool.
//!
//! Ingest a CSV/TPC-H load once with [`StorageDb::ingest`]; later runs
//! call [`StorageDb::load_database`] — which first replays any committed
//! WAL tail a crash left behind — and skip the parse entirely (the
//! "warm restart" path benchmarked in the kernels harness). Persisted
//! indexes come back as [`btree::PagedIndex`] values implementing the
//! engine's [`htqo_engine::JoinIndex`], which the evaluator's
//! index-seek join ([`htqo_engine::iseek`]) probes per accumulator row.

#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod codec;
pub mod page;
pub mod pager;
pub mod wal;

pub use btree::{IndexMeta, PagedIndex};
pub use buffer::{BufferPool, PagePin, PoolStats};
pub use catalog::{
    cache_bytes_from_env, checkpoint_bytes_from_env, dir_from_env, MutationBatch, RecoveryReport,
    StorageDb, TableMeta, DEFAULT_CACHE_BYTES, DEFAULT_CHECKPOINT_BYTES,
};
pub use page::{PAGE_DATA, PAGE_SIZE};
pub use pager::PageFile;
pub use wal::{Wal, WalPolicy, WalRecord};
