//! Slotted 8 KiB pages.
//!
//! Layout: a 4-byte header (`cell count: u16 LE`, `free end: u16 LE`),
//! then the slot directory growing forward (one `(offset: u16, len: u16)`
//! pair per cell) while cell payloads grow backward from the end of the
//! page. This is the classic heap-page shape: inserts never move existing
//! cells, and a page is full exactly when directory and payload regions
//! would meet.

use htqo_engine::EvalError;

/// Fixed page size for heap files and B+tree nodes.
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 4;
const SLOT: usize = 4;

/// Largest cell a single (otherwise empty) page can hold.
pub const MAX_CELL: usize = PAGE_SIZE - HEADER - SLOT;

fn corrupt(what: &str) -> EvalError {
    EvalError::SpillIo(format!("slotted page corruption: {what}"))
}

/// Builds one slotted page in memory; [`PageBuilder::finish`] yields the
/// exact [`PAGE_SIZE`] byte image.
#[derive(Debug)]
pub struct PageBuilder {
    data: Vec<u8>,
    cells: u16,
    free_end: usize,
}

impl PageBuilder {
    /// An empty page.
    pub fn new() -> Self {
        PageBuilder {
            data: vec![0u8; PAGE_SIZE],
            cells: 0,
            free_end: PAGE_SIZE,
        }
    }

    /// Number of cells inserted so far.
    pub fn cells(&self) -> u16 {
        self.cells
    }

    /// True if `cell` fits in the remaining free space.
    pub fn fits(&self, cell: &[u8]) -> bool {
        let dir_end = HEADER + (self.cells as usize + 1) * SLOT;
        cell.len() <= MAX_CELL && dir_end + cell.len() <= self.free_end
    }

    /// Appends `cell`; returns `false` (leaving the page unchanged) when
    /// it does not fit.
    pub fn push(&mut self, cell: &[u8]) -> bool {
        if !self.fits(cell) {
            return false;
        }
        let start = self.free_end - cell.len();
        self.data[start..self.free_end].copy_from_slice(cell);
        let slot = HEADER + self.cells as usize * SLOT;
        self.data[slot..slot + 2].copy_from_slice(&(start as u16).to_le_bytes());
        self.data[slot + 2..slot + 4].copy_from_slice(&(cell.len() as u16).to_le_bytes());
        self.free_end = start;
        self.cells += 1;
        true
    }

    /// Finalizes the header and returns the page image.
    pub fn finish(mut self) -> Vec<u8> {
        self.data[0..2].copy_from_slice(&self.cells.to_le_bytes());
        self.data[2..4].copy_from_slice(&(self.free_end as u16).to_le_bytes());
        self.data
    }
}

impl Default for PageBuilder {
    fn default() -> Self {
        PageBuilder::new()
    }
}

/// Number of cells in a finished page image.
pub fn cell_count(page: &[u8]) -> Result<u16, EvalError> {
    if page.len() != PAGE_SIZE {
        return Err(corrupt("wrong page size"));
    }
    Ok(u16::from_le_bytes([page[0], page[1]]))
}

/// Cell `i` of a finished page image, bounds-checked.
pub fn cell(page: &[u8], i: u16) -> Result<&[u8], EvalError> {
    let n = cell_count(page)?;
    if i >= n {
        return Err(corrupt("cell index out of range"));
    }
    let slot = HEADER + i as usize * SLOT;
    let off = u16::from_le_bytes([page[slot], page[slot + 1]]) as usize;
    let len = u16::from_le_bytes([page[slot + 2], page[slot + 3]]) as usize;
    let end = off
        .checked_add(len)
        .ok_or_else(|| corrupt("slot overflow"))?;
    if off < HEADER + n as usize * SLOT || end > PAGE_SIZE {
        return Err(corrupt("slot out of bounds"));
    }
    Ok(&page[off..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_cells_in_insert_order() {
        let mut b = PageBuilder::new();
        let cells: Vec<Vec<u8>> = (0u32..50).map(|i| i.to_le_bytes()[..3].to_vec()).collect();
        for c in &cells {
            assert!(b.push(c));
        }
        let page = b.finish();
        assert_eq!(cell_count(&page).unwrap(), 50);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(cell(&page, i as u16).unwrap(), &c[..]);
        }
        assert!(cell(&page, 50).is_err());
    }

    #[test]
    fn fills_to_capacity_and_rejects_overflow() {
        let mut b = PageBuilder::new();
        let big = vec![7u8; MAX_CELL];
        assert!(b.push(&big));
        assert!(!b.push(&[1]));
        let page = b.finish();
        assert_eq!(cell(&page, 0).unwrap().len(), MAX_CELL);

        let mut b = PageBuilder::new();
        assert!(!b.push(&vec![0u8; MAX_CELL + 1]));
        assert_eq!(b.cells(), 0);
    }

    #[test]
    fn many_small_cells_account_exactly() {
        let mut b = PageBuilder::new();
        let mut n = 0u32;
        while b.push(&[0xab; 4]) {
            n += 1;
        }
        // Each cell costs 4 payload + 4 slot bytes against PAGE_SIZE - 4.
        assert_eq!(n as usize, (PAGE_SIZE - HEADER) / (4 + SLOT));
    }
}
