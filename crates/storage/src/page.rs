//! Slotted 8 KiB pages.
//!
//! Layout: a 4-byte header (`cell count: u16 LE`, `free end: u16 LE`),
//! then the slot directory growing forward (one `(offset: u16, len: u16)`
//! pair per cell) while cell payloads grow backward from the end of the
//! *data region*. This is the classic heap-page shape: inserts never move
//! existing cells, and a page is full exactly when directory and payload
//! regions would meet.
//!
//! The last [`PAGE_TRAILER`] bytes of every page are reserved for a
//! checksum over the data region, stamped by [`crate::pager::PageFile`]
//! on every write and verified on every read — a torn or bit-flipped
//! page surfaces as a typed `EvalError::CorruptPage` instead of being
//! silently decoded.
//!
//! A zero-length cell is a **tombstone**: the slot survives (so physical
//! slot ids stay stable across deletes) but the row is gone. Readers
//! skip tombstones; [`cell`] returns an empty slice for them.

use htqo_engine::EvalError;

/// Fixed page size for heap files and B+tree nodes.
pub const PAGE_SIZE: usize = 8192;

/// Bytes at the end of every page reserved for the checksum trailer.
pub const PAGE_TRAILER: usize = 8;

/// End of the usable data region: `PAGE_SIZE - PAGE_TRAILER`.
pub const PAGE_DATA: usize = PAGE_SIZE - PAGE_TRAILER;

const HEADER: usize = 4;
const SLOT: usize = 4;

/// Largest cell a single (otherwise empty) page can hold.
pub const MAX_CELL: usize = PAGE_DATA - HEADER - SLOT;

fn corrupt(what: &str) -> EvalError {
    EvalError::SpillIo(format!("slotted page corruption: {what}"))
}

/// FxHash checksum of a page's data region (`page[..PAGE_DATA]`) — the
/// same hash family the spill frame format uses.
pub fn checksum(page: &[u8]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = htqo_engine::hash::FxHasher::default();
    page[..PAGE_DATA].hash(&mut h);
    h.finish()
}

/// Stamps the checksum of `page`'s data region into its trailer.
/// `page` must be [`PAGE_SIZE`] long.
pub fn stamp(page: &mut [u8]) {
    debug_assert_eq!(page.len(), PAGE_SIZE);
    let sum = checksum(page);
    page[PAGE_DATA..].copy_from_slice(&sum.to_le_bytes());
}

/// True when `page`'s trailer matches its data region.
pub fn verify(page: &[u8]) -> bool {
    debug_assert_eq!(page.len(), PAGE_SIZE);
    let stored = u64::from_le_bytes(page[PAGE_DATA..].try_into().unwrap());
    stored == checksum(page)
}

/// Builds one slotted page in memory; [`PageBuilder::finish`] yields the
/// exact [`PAGE_SIZE`] byte image (trailer zeroed — the pager stamps it
/// on write).
#[derive(Debug)]
pub struct PageBuilder {
    data: Vec<u8>,
    cells: u16,
    free_end: usize,
}

impl PageBuilder {
    /// An empty page.
    pub fn new() -> Self {
        PageBuilder {
            data: vec![0u8; PAGE_SIZE],
            cells: 0,
            free_end: PAGE_DATA,
        }
    }

    /// Number of cells inserted so far.
    pub fn cells(&self) -> u16 {
        self.cells
    }

    /// True if `cell` fits in the remaining free space.
    pub fn fits(&self, cell: &[u8]) -> bool {
        let dir_end = HEADER + (self.cells as usize + 1) * SLOT;
        cell.len() <= MAX_CELL && dir_end + cell.len() <= self.free_end
    }

    /// Appends `cell`; returns `false` (leaving the page unchanged) when
    /// it does not fit. An empty `cell` records a tombstone slot.
    pub fn push(&mut self, cell: &[u8]) -> bool {
        if !self.fits(cell) {
            return false;
        }
        let start = self.free_end - cell.len();
        self.data[start..self.free_end].copy_from_slice(cell);
        let slot = HEADER + self.cells as usize * SLOT;
        self.data[slot..slot + 2].copy_from_slice(&(start as u16).to_le_bytes());
        self.data[slot + 2..slot + 4].copy_from_slice(&(cell.len() as u16).to_le_bytes());
        self.free_end = start;
        self.cells += 1;
        true
    }

    /// Finalizes the header and returns the page image.
    pub fn finish(mut self) -> Vec<u8> {
        self.data[0..2].copy_from_slice(&self.cells.to_le_bytes());
        self.data[2..4].copy_from_slice(&(self.free_end as u16).to_le_bytes());
        self.data
    }
}

impl Default for PageBuilder {
    fn default() -> Self {
        PageBuilder::new()
    }
}

/// Number of cells in a finished page image.
pub fn cell_count(page: &[u8]) -> Result<u16, EvalError> {
    if page.len() != PAGE_SIZE {
        return Err(corrupt("wrong page size"));
    }
    Ok(u16::from_le_bytes([page[0], page[1]]))
}

/// Cell `i` of a finished page image, bounds-checked. Tombstone slots
/// come back as an empty slice.
pub fn cell(page: &[u8], i: u16) -> Result<&[u8], EvalError> {
    let n = cell_count(page)?;
    if i >= n {
        return Err(corrupt("cell index out of range"));
    }
    let slot = HEADER + i as usize * SLOT;
    let off = u16::from_le_bytes([page[slot], page[slot + 1]]) as usize;
    let len = u16::from_le_bytes([page[slot + 2], page[slot + 3]]) as usize;
    let end = off
        .checked_add(len)
        .ok_or_else(|| corrupt("slot overflow"))?;
    if off < HEADER + n as usize * SLOT || end > PAGE_DATA {
        return Err(corrupt("slot out of bounds"));
    }
    Ok(&page[off..end])
}

/// All cells of a page image, in slot order (tombstones included, as
/// empty vectors) — the decode half of a page rebuild.
pub fn cells(page: &[u8]) -> Result<Vec<Vec<u8>>, EvalError> {
    let n = cell_count(page)?;
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        out.push(cell(page, i)?.to_vec());
    }
    Ok(out)
}

/// True when one more `cell` still fits a page already holding `cells`
/// — the planning half of a page rebuild.
pub fn page_fits(cells: &[Vec<u8>], cell: &[u8]) -> bool {
    let used: usize = cells.iter().map(|c| SLOT + c.len()).sum();
    cell.len() <= MAX_CELL && HEADER + used + SLOT + cell.len() <= PAGE_DATA
}

/// Rebuilds one page image from a cell list (the mutation path: update a
/// cell, tombstone a cell, append to a partially full page). Errors when
/// the cells no longer fit one page.
pub fn rebuild(cells: &[Vec<u8>]) -> Result<Vec<u8>, EvalError> {
    let mut b = PageBuilder::new();
    for c in cells {
        if !b.push(c) {
            return Err(corrupt("rebuilt page overflows"));
        }
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_cells_in_insert_order() {
        let mut b = PageBuilder::new();
        let cells: Vec<Vec<u8>> = (0u32..50).map(|i| i.to_le_bytes()[..3].to_vec()).collect();
        for c in &cells {
            assert!(b.push(c));
        }
        let page = b.finish();
        assert_eq!(cell_count(&page).unwrap(), 50);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(cell(&page, i as u16).unwrap(), &c[..]);
        }
        assert!(cell(&page, 50).is_err());
    }

    #[test]
    fn fills_to_capacity_and_rejects_overflow() {
        let mut b = PageBuilder::new();
        let big = vec![7u8; MAX_CELL];
        assert!(b.push(&big));
        assert!(!b.push(&[1]));
        let page = b.finish();
        assert_eq!(cell(&page, 0).unwrap().len(), MAX_CELL);

        let mut b = PageBuilder::new();
        assert!(!b.push(&vec![0u8; MAX_CELL + 1]));
        assert_eq!(b.cells(), 0);
    }

    #[test]
    fn many_small_cells_account_exactly() {
        let mut b = PageBuilder::new();
        let mut n = 0u32;
        while b.push(&[0xab; 4]) {
            n += 1;
        }
        // Each cell costs 4 payload + 4 slot bytes against PAGE_DATA - 4.
        assert_eq!(n as usize, (PAGE_DATA - HEADER) / (4 + SLOT));
    }

    #[test]
    fn stamp_verify_and_corruption_detection() {
        let mut page = vec![0xCDu8; PAGE_SIZE];
        stamp(&mut page);
        assert!(verify(&page));
        page[100] ^= 0x01;
        assert!(!verify(&page));
        page[100] ^= 0x01;
        assert!(verify(&page));
    }

    #[test]
    fn tombstones_rebuild_and_enumerate() {
        let mut b = PageBuilder::new();
        assert!(b.push(b"alpha"));
        assert!(b.push(b""));
        assert!(b.push(b"gamma"));
        let page = b.finish();
        let cs = cells(&page).unwrap();
        assert_eq!(cs, vec![b"alpha".to_vec(), Vec::new(), b"gamma".to_vec()]);
        // Tombstone another slot and rebuild.
        let mut cs = cs;
        cs[2].clear();
        let page2 = rebuild(&cs).unwrap();
        assert_eq!(cell(&page2, 0).unwrap(), b"alpha");
        assert!(cell(&page2, 1).unwrap().is_empty());
        assert!(cell(&page2, 2).unwrap().is_empty());
    }
}
