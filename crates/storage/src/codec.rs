//! Binary row codec for heap-page cells.
//!
//! Each cell is the concatenation of the row's values, every value a
//! one-byte tag followed by a fixed- or length-prefixed payload. The
//! encoding is self-describing (the tag disambiguates), so corruption is
//! detected on decode instead of silently reinterpreted. Strings are
//! stored as raw UTF-8 bytes and re-wrapped (and re-interned by the
//! engine's dictionary on insert) at load time; dictionary codes are a
//! process-local detail and never reach disk.

use htqo_engine::{ColumnType, EvalError, Value};
use std::sync::Arc;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DATE: u8 = 4;

fn corrupt(what: &str) -> EvalError {
    EvalError::SpillIo(format!("heap page corruption: {what}"))
}

/// Appends the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            let b = s.as_bytes();
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

/// Encodes a whole row as one heap cell.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 9);
    for v in row {
        encode_value(v, &mut out);
    }
    out
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], EvalError> {
    let end = pos
        .checked_add(n)
        .ok_or_else(|| corrupt("length overflow"))?;
    if end > buf.len() {
        return Err(corrupt("cell truncated"));
    }
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

/// Decodes one value starting at `pos`, advancing it past the value.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, EvalError> {
    let tag = take(buf, pos, 1)?[0];
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => {
            let b: [u8; 8] = take(buf, pos, 8)?.try_into().unwrap();
            Ok(Value::Int(i64::from_le_bytes(b)))
        }
        TAG_FLOAT => {
            let b: [u8; 8] = take(buf, pos, 8)?.try_into().unwrap();
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(b))))
        }
        TAG_STR => {
            let b: [u8; 4] = take(buf, pos, 4)?.try_into().unwrap();
            let len = u32::from_le_bytes(b) as usize;
            let bytes = take(buf, pos, len)?;
            let s = std::str::from_utf8(bytes).map_err(|_| corrupt("non-utf8 string"))?;
            Ok(Value::Str(Arc::from(s)))
        }
        TAG_DATE => {
            let b: [u8; 4] = take(buf, pos, 4)?.try_into().unwrap();
            Ok(Value::Date(i32::from_le_bytes(b)))
        }
        t => Err(corrupt(&format!("unknown value tag {t}"))),
    }
}

/// Decodes a full row cell of known arity; the cell must be consumed
/// exactly.
pub fn decode_row(cell: &[u8], arity: usize) -> Result<Vec<Value>, EvalError> {
    let mut pos = 0;
    let mut row = Vec::with_capacity(arity);
    for _ in 0..arity {
        row.push(decode_value(cell, &mut pos)?);
    }
    if pos != cell.len() {
        return Err(corrupt("trailing bytes in row cell"));
    }
    Ok(row)
}

/// True when a decoded value is legal for a column of type `ty`
/// (NULL is legal everywhere, mirroring the insert-time check).
pub fn type_matches(v: &Value, ty: ColumnType) -> bool {
    matches!(
        (v, ty),
        (Value::Null, _)
            | (Value::Int(_), ColumnType::Int)
            | (Value::Float(_), ColumnType::Float)
            | (Value::Str(_), ColumnType::Str)
            | (Value::Date(_), ColumnType::Date)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(row: Vec<Value>) {
        let cell = encode_row(&row);
        let back = decode_row(&cell, row.len()).unwrap();
        assert_eq!(row, back);
    }

    #[test]
    fn roundtrips_every_type() {
        roundtrip(vec![
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(1.5),
            Value::Float(-0.0),
            Value::str("héllo, wörld"),
            Value::str(""),
            Value::Date(19876),
            Value::Date(-3),
        ]);
    }

    #[test]
    fn truncation_and_bad_tags_are_errors() {
        let cell = encode_row(&[Value::Int(7)]);
        assert!(decode_row(&cell[..cell.len() - 1], 1).is_err());
        assert!(decode_row(&[9], 1).is_err());
        // Trailing garbage is rejected too.
        let mut cell = encode_row(&[Value::Null]);
        cell.push(0);
        assert!(decode_row(&cell, 1).is_err());
    }

    #[test]
    fn type_check_matches_schema_semantics() {
        assert!(type_matches(&Value::Null, ColumnType::Int));
        assert!(type_matches(&Value::Int(1), ColumnType::Int));
        assert!(!type_matches(&Value::Int(1), ColumnType::Float));
        assert!(!type_matches(&Value::str("x"), ColumnType::Date));
    }
}
