//! The persistent catalog: tables ingested once survive restarts — and
//! now survive crashes.
//!
//! A [`StorageDb`] is a directory holding, per table, a page file
//! (heap pages in catalog-listed extents, plus any B+tree index pages)
//! and a human-readable catalog file (`<name>.cat`) recording the
//! schema, heap extents, page-file name, and index roots, plus one
//! shared write-ahead log (`db.wal`). [`StorageDb::ingest`] writes a
//! **fresh generation** page file (`<name>.pages`, then `<name>.1.pages`,
//! `<name>.2.pages`, …) and atomically renames the catalog over the old
//! one — the switch point. The old generation is deleted afterwards;
//! a crash between switch and delete leaves an orphan that recovery
//! garbage-collects. Because the live file is never truncated in place,
//! a crash mid-re-ingest can no longer corrupt the previous version.
//!
//! Small mutations skip the whole-table rewrite: [`StorageDb::apply`]
//! takes a [`MutationBatch`] of appends, updates, and deletes, logs
//! full post-images of every touched page plus the new catalog text to
//! the WAL, commits, and only then applies the changes to the shared
//! [`BufferPool`] — so the data files never contain uncommitted state,
//! and recovery ([`StorageDb::recover`]) restores exactly the committed
//! prefix by replaying the log (see [`crate::wal`] for the protocol).
//! Deletes leave zero-length **tombstone** cells so physical rowids
//! (slot positions) stay stable; mutations drop a table's secondary
//! indexes, which are bulk-loaded structures rebuilt at the next ingest.
//!
//! On the next run, [`StorageDb::load_database`] first runs the recovery
//! pass (scan → validate → redo, torn tail tolerated), then rebuilds the
//! in-memory [`Database`] by decoding heap pages through per-table
//! buffer pools — skipping CSV parsing entirely — and re-attaches each
//! index as a [`crate::btree::PagedIndex`] reading through the same
//! pool, so index-seek joins stay cache-governed after the warm start.

use crate::btree::{self, IndexMeta, PagedIndex};
use crate::buffer::BufferPool;
use crate::codec;
use crate::page::{self, PageBuilder, MAX_CELL};
use crate::pager::PageFile;
use crate::wal::{self, Wal, WalPolicy, WalRecord};
use htqo_engine::{Budget, ColumnType, Database, EvalError, MemIndex, Relation, Schema, Value};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Default page-cache budget when `HTQO_PAGE_CACHE` is unset: 64 MiB.
pub const DEFAULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// Default WAL size that triggers an automatic checkpoint when
/// `HTQO_WAL_CHECKPOINT` is unset: 4 MiB.
pub const DEFAULT_CHECKPOINT_BYTES: u64 = 4 * 1024 * 1024;

/// The persisted indexes of one loaded table: `(column name, index)`
/// pairs, ready to register on a [`Database`].
pub type LoadedIndexes = Vec<(String, Arc<PagedIndex>)>;

/// Resolves the page-cache byte budget from `HTQO_PAGE_CACHE`
/// (suffixes as in [`htqo_engine::exec::parse_bytes`]).
pub fn cache_bytes_from_env() -> u64 {
    std::env::var("HTQO_PAGE_CACHE")
        .ok()
        .as_deref()
        .and_then(htqo_engine::exec::parse_bytes)
        .unwrap_or(DEFAULT_CACHE_BYTES)
}

/// Resolves the auto-checkpoint threshold from `HTQO_WAL_CHECKPOINT`
/// (suffixes as in [`htqo_engine::exec::parse_bytes`]).
pub fn checkpoint_bytes_from_env() -> u64 {
    std::env::var("HTQO_WAL_CHECKPOINT")
        .ok()
        .as_deref()
        .and_then(htqo_engine::exec::parse_bytes)
        .unwrap_or(DEFAULT_CHECKPOINT_BYTES)
}

/// Resolves the storage directory from `HTQO_STORAGE_DIR` (default
/// `.htqo_storage` under the working directory).
pub fn dir_from_env() -> PathBuf {
    std::env::var_os("HTQO_STORAGE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(".htqo_storage"))
}

/// Catalog format header. v2 marks the checksum-trailer page layout
/// introduced with the WAL; v1 stores (no trailer) are rejected with a
/// re-ingest error rather than failing every page read as corrupt.
const CATALOG_HEADER: &str = "htqo-table v2";

fn bad_catalog(path: &Path, what: &str) -> EvalError {
    EvalError::SpillIo(format!("{}: bad catalog: {what}", path.display()))
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> EvalError {
    EvalError::SpillIo(format!("{}: {op}: {e}", path.display()))
}

fn ty_name(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Int => "int",
        ColumnType::Float => "float",
        ColumnType::Str => "str",
        ColumnType::Date => "date",
    }
}

fn ty_parse(s: &str) -> Option<ColumnType> {
    match s {
        "int" => Some(ColumnType::Int),
        "float" => Some(ColumnType::Float),
        "str" => Some(ColumnType::Str),
        "date" => Some(ColumnType::Date),
        _ => None,
    }
}

/// Catalog entry for one persisted table.
#[derive(Clone, Debug)]
pub struct TableMeta {
    /// Table name (catalog file stem).
    pub name: String,
    /// Live rows (tombstoned slots excluded).
    pub rows: usize,
    /// Page-file name within the storage directory — generation
    /// specific, so a re-ingest never truncates the live file.
    pub file: String,
    /// Heap extents `(first page, page count)` in rowid order; index
    /// pages live between and after them.
    pub heap: Vec<(u64, u64)>,
    /// Column names and types, in order.
    pub columns: Vec<(String, ColumnType)>,
    /// Built secondary indexes: column name and B+tree location.
    pub indexes: Vec<(String, IndexMeta)>,
}

impl TableMeta {
    /// Total heap pages across all extents.
    pub fn heap_pages(&self) -> u64 {
        self.heap.iter().map(|&(_, c)| c).sum()
    }
}

/// What one recovery pass found and did; surfaced through
/// `ServiceMetrics` so operators see crash recoveries happen.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL bytes scanned.
    pub wal_bytes: u64,
    /// Committed batches replayed.
    pub batches_replayed: u64,
    /// Page images redone into data files.
    pub pages_redone: u64,
    /// Catalog records redone.
    pub catalogs_redone: u64,
    /// True when the scan stopped at a torn or corrupt record.
    pub torn_tail: bool,
    /// Uncommitted-tail records discarded.
    pub dropped_records: u64,
    /// Orphan generation files (and stale catalog temps) removed.
    pub orphans_removed: u64,
    /// Catalog files present but unparseable. While any exist, orphan
    /// GC is skipped entirely: a data file must never be deleted on the
    /// strength of a catalog that failed to parse, or a recoverable
    /// corruption would escalate into irreversible data loss.
    pub unreadable_catalogs: u64,
}

impl RecoveryReport {
    /// True when recovery actually changed or discarded anything (a
    /// clean restart reports all-zero).
    pub fn did_work(&self) -> bool {
        *self != RecoveryReport::default() && {
            let clean = RecoveryReport {
                wal_bytes: self.wal_bytes,
                ..RecoveryReport::default()
            };
            *self != clean
        }
    }
}

/// One table's batched mutations, applied atomically (all or nothing)
/// by [`StorageDb::apply`]. Rowids are *physical slot positions* in
/// heap-extent order, counting tombstones — exactly the enumeration
/// order of [`StorageDb::load_table`] before any deletes.
#[derive(Clone, Debug)]
pub struct MutationBatch {
    table: String,
    ops: Vec<MutOp>,
}

#[derive(Clone, Debug)]
enum MutOp {
    Append(Vec<Value>),
    Update(u64, Vec<Value>),
    Delete(u64),
}

impl MutationBatch {
    /// An empty batch against `table`.
    pub fn new(table: &str) -> Self {
        MutationBatch {
            table: table.to_string(),
            ops: Vec::new(),
        }
    }

    /// The target table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Number of operations queued.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Queues a row append.
    pub fn append(&mut self, row: Vec<Value>) -> &mut Self {
        self.ops.push(MutOp::Append(row));
        self
    }

    /// Queues a full-row update of the slot at `rowid`.
    pub fn update(&mut self, rowid: u64, row: Vec<Value>) -> &mut Self {
        self.ops.push(MutOp::Update(rowid, row));
        self
    }

    /// Queues a delete (tombstone) of the slot at `rowid`.
    pub fn delete(&mut self, rowid: u64) -> &mut Self {
        self.ops.push(MutOp::Delete(rowid));
        self
    }
}

/// A catalog update whose covering WAL commit is not yet durable
/// (group commit / fsync-off): served to readers from memory and
/// renamed into place only once the log is synced past `lsn`, so the
/// on-disk catalog can never run ahead of the WAL records that redo
/// the pages it describes.
struct StagedCatalog {
    text: String,
    /// LSN of the commit record covering this catalog version.
    lsn: u64,
}

/// Shared mutable state behind every clone of one [`StorageDb`].
struct DbShared {
    wal: Mutex<Option<Arc<Wal>>>,
    recovery: Mutex<Option<RecoveryReport>>,
    pools: Mutex<HashMap<String, Arc<BufferPool>>>,
    budget: Mutex<Option<Budget>>,
    staged: Mutex<HashMap<String, StagedCatalog>>,
    recovered: AtomicBool,
}

/// A directory of persisted tables with WAL-backed durability. Clones
/// share the buffer pools, the WAL, and the recovery state; keep at most
/// one (cloned) handle family per directory, and serialize mutations —
/// concurrent *reads* through the pools are fine.
#[derive(Clone)]
pub struct StorageDb {
    dir: PathBuf,
    policy: WalPolicy,
    checkpoint_bytes: u64,
    shared: Arc<DbShared>,
}

impl std::fmt::Debug for StorageDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageDb")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .finish()
    }
}

impl StorageDb {
    /// Opens (creating if needed) the storage directory, with the WAL
    /// policy from `HTQO_WAL` and the checkpoint threshold from
    /// `HTQO_WAL_CHECKPOINT`.
    pub fn open(dir: &Path) -> Result<Self, EvalError> {
        Self::open_with(dir, WalPolicy::from_env(), checkpoint_bytes_from_env())
    }

    /// Opens with an explicit WAL policy and auto-checkpoint threshold
    /// (bytes of WAL that trigger a checkpoint after a mutation).
    pub fn open_with(
        dir: &Path,
        policy: WalPolicy,
        checkpoint_bytes: u64,
    ) -> Result<Self, EvalError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create dir", e))?;
        Ok(StorageDb {
            dir: dir.to_path_buf(),
            policy,
            checkpoint_bytes,
            shared: Arc::new(DbShared {
                wal: Mutex::new(None),
                recovery: Mutex::new(None),
                pools: Mutex::new(HashMap::new()),
                budget: Mutex::new(None),
                staged: Mutex::new(HashMap::new()),
                recovered: AtomicBool::new(false),
            }),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Attaches an engine [`Budget`]: WAL buffers (and pools created
    /// from now on without an explicit budget) charge against it.
    pub fn set_budget(&self, budget: Option<Budget>) {
        *lock(&self.shared.budget) = budget;
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("db.wal")
    }

    fn cat_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.cat"))
    }

    /// Page-file name for the generation after `current` (`None` for a
    /// first ingest): `t.pages`, then `t.1.pages`, `t.2.pages`, …
    fn next_gen_file(name: &str, current: Option<&str>) -> String {
        let Some(current) = current else {
            return format!("{name}.pages");
        };
        let gen = current
            .strip_prefix(name)
            .and_then(|r| r.strip_suffix(".pages"))
            .and_then(|mid| {
                if mid.is_empty() {
                    Some(0)
                } else {
                    mid.strip_prefix('.').and_then(|g| g.parse::<u64>().ok())
                }
            })
            .unwrap_or(0);
        format!("{name}.{}.pages", gen + 1)
    }

    /// Names of persisted tables (sorted).
    pub fn tables(&self) -> Result<Vec<String>, EvalError> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, "read dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, "read dir", e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("cat") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// True when `name` has a complete catalog entry with its page file
    /// present.
    pub fn has_table(&self, name: &str) -> bool {
        self.table_meta(name)
            .map(|m| self.dir.join(&m.file).exists())
            .unwrap_or(false)
    }

    // ---- recovery ------------------------------------------------------

    /// Runs recovery once per handle family (no-op if already run) —
    /// every public operation calls this first.
    fn ensure_recovered(&self) -> Result<(), EvalError> {
        if self.shared.recovered.load(Ordering::Acquire) {
            return Ok(());
        }
        self.recover().map(|_| ())
    }

    /// The recovery pass: scans the WAL (validating checksums, torn tail
    /// tolerated), redoes every committed batch in order, truncates the
    /// log, and garbage-collects orphan generation files. Idempotent —
    /// records are full post-images, so replaying twice (e.g. after a
    /// crash *during* recovery) lands in the same state. Returns what it
    /// did; on a handle that already recovered, returns the stored
    /// report without rescanning.
    pub fn recover(&self) -> Result<RecoveryReport, EvalError> {
        let mut slot = lock(&self.shared.recovery);
        if self.shared.recovered.load(Ordering::Acquire) {
            return Ok(slot.clone().unwrap_or_default());
        }
        let report = self.recover_inner()?;
        *slot = Some(report.clone());
        self.shared.recovered.store(true, Ordering::Release);
        Ok(report)
    }

    /// The report from this handle family's recovery pass, if it ran.
    pub fn last_recovery(&self) -> Option<RecoveryReport> {
        lock(&self.shared.recovery).clone()
    }

    fn recover_inner(&self) -> Result<RecoveryReport, EvalError> {
        // Any staged (in-memory) catalogs died with the crash being
        // simulated or are about to be superseded by replay; they must
        // not shadow the on-disk state while recovery runs.
        lock(&self.shared.staged).clear();
        let scan = wal::scan(&self.wal_path())?;
        let mut report = RecoveryReport {
            wal_bytes: scan.bytes,
            torn_tail: scan.torn_tail,
            dropped_records: scan.dropped_records,
            ..RecoveryReport::default()
        };
        let mut files: HashMap<String, PageFile> = HashMap::new();
        for batch in &scan.batches {
            for rec in batch {
                match rec {
                    WalRecord::Page { file, pid, image } => {
                        let pf = match files.entry(file.clone()) {
                            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(open_repair(&self.dir.join(file))?)
                            }
                        };
                        pf.write_extend(*pid, image)?;
                        report.pages_redone += 1;
                    }
                    WalRecord::Catalog { table, text } => {
                        self.write_catalog_text(table, text)?;
                        report.catalogs_redone += 1;
                    }
                }
            }
            report.batches_replayed += 1;
        }
        for f in files.values_mut() {
            f.sync()?;
        }
        // Everything replayed and durable: restart the log empty.
        if self.wal_path().exists() {
            drop(Wal::open(&self.wal_path(), self.policy, None)?);
        }
        let (removed, unreadable) = self.gc_orphans()?;
        report.orphans_removed = removed;
        report.unreadable_catalogs = unreadable;
        // Pools (if any survived a simulated crash) point at pre-redo
        // bytes; drop them so reads see the recovered files.
        lock(&self.shared.pools).clear();
        Ok(report)
    }

    /// Removes page files no catalog references (crash leftovers from a
    /// generational switch) and stale catalog temp files. Returns
    /// `(files removed, unreadable catalogs)`. If **any** `.cat` file
    /// exists but fails to parse, GC deletes nothing: the "orphan"
    /// might be that table's live data file, and deleting it would turn
    /// a repairable catalog problem into permanent data loss. The
    /// unreadable count is surfaced through [`RecoveryReport`] so the
    /// operator can repair or re-ingest the table.
    fn gc_orphans(&self) -> Result<(u64, u64), EvalError> {
        let mut referenced: HashSet<String> = HashSet::new();
        let mut unreadable = 0u64;
        for name in self.tables()? {
            match self.table_meta(&name) {
                Ok(meta) => {
                    referenced.insert(meta.file);
                }
                Err(_) => unreadable += 1,
            }
        }
        if unreadable > 0 {
            return Ok((0, unreadable));
        }
        let mut removed = 0u64;
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, "read dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, "read dir", e))?;
            let path = entry.path();
            let Some(fname) = path.file_name().and_then(|s| s.to_str()) else {
                continue;
            };
            let orphan_pages = fname.ends_with(".pages") && !referenced.contains(fname);
            let stale_tmp = fname.ends_with(".cat.tmp");
            if orphan_pages || stale_tmp {
                std::fs::remove_file(&path).map_err(|e| io_err(&path, "remove", e))?;
                removed += 1;
            }
        }
        Ok((removed, 0))
    }

    /// Drops every cached page and the in-memory WAL tail without any
    /// write-back — the crash-simulation primitive for the recovery
    /// harness. The on-disk state is exactly what a process kill at this
    /// point would leave; the next operation runs recovery.
    pub fn simulate_crash(&self) {
        let mut slot = lock(&self.shared.recovery);
        {
            let mut pools = lock(&self.shared.pools);
            for p in pools.values() {
                p.discard();
            }
            pools.clear();
        }
        // Dropping the Wal discards its unflushed pending buffer — the
        // bytes a real crash would lose — without touching the file.
        *lock(&self.shared.wal) = None;
        // Staged catalogs live only in memory until their WAL group is
        // durable; a crash loses them (the WAL replays them if the
        // group survived).
        lock(&self.shared.staged).clear();
        *slot = None;
        self.shared.recovered.store(false, Ordering::Release);
    }

    // ---- shared infrastructure -----------------------------------------

    /// The WAL handle, created lazily at the first mutation and attached
    /// to every pool (existing and future).
    fn wal_handle(&self) -> Result<Arc<Wal>, EvalError> {
        let mut slot = lock(&self.shared.wal);
        if let Some(w) = slot.as_ref() {
            return Ok(Arc::clone(w));
        }
        let budget = lock(&self.shared.budget).clone();
        let w = Arc::new(Wal::open(&self.wal_path(), self.policy, budget)?);
        for pool in lock(&self.shared.pools).values() {
            pool.attach_wal(Arc::clone(&w));
        }
        *slot = Some(Arc::clone(&w));
        Ok(w)
    }

    /// The shared buffer pool for `meta`'s page file, creating it (with
    /// `cache_bytes` capacity and `budget`) on first use.
    fn pool_for(
        &self,
        meta: &TableMeta,
        cache_bytes: u64,
        budget: Option<Budget>,
    ) -> Result<Arc<BufferPool>, EvalError> {
        let mut pools = lock(&self.shared.pools);
        if let Some(p) = pools.get(&meta.name) {
            return Ok(Arc::clone(p));
        }
        let file = PageFile::open(&self.dir.join(&meta.file))?;
        let pool = Arc::new(BufferPool::new(file, cache_bytes, budget));
        if let Some(w) = lock(&self.shared.wal).as_ref() {
            pool.attach_wal(Arc::clone(w));
        }
        pools.insert(meta.name.clone(), Arc::clone(&pool));
        Ok(pool)
    }

    /// Checkpoint: makes the WAL durable, writes every dirty page back
    /// (data fsync), then truncates the log — after which the WAL
    /// records are redundant and the data files self-contained.
    pub fn checkpoint(&self) -> Result<(), EvalError> {
        self.ensure_recovered()?;
        let wal = lock(&self.shared.wal).clone();
        if let Some(w) = &wal {
            w.sync_all()?;
        }
        let pools: Vec<Arc<BufferPool>> = lock(&self.shared.pools).values().cloned().collect();
        for p in &pools {
            p.flush()?;
        }
        // The WAL is durable (sync_all above), so every staged catalog
        // can now be renamed into place — and must be, before the
        // truncation below discards the records that would redo it.
        self.flush_staged(u64::MAX)?;
        // Crash window: data durable, log not yet truncated — recovery
        // replays the (idempotent) records onto identical bytes.
        htqo_engine::fail_point!("storage::checkpoint");
        if let Some(w) = &wal {
            w.reset()?;
        }
        Ok(())
    }

    // ---- ingest --------------------------------------------------------

    /// Persists `rel` as `name`, replacing any previous version, and
    /// builds a B+tree index on each column named in `index_cols`
    /// (unknown columns are an error). The new version is written to a
    /// fresh generation file and switched in with an atomic catalog
    /// rename; a crash at any point leaves either the old version or the
    /// new one, never a mix. Returns the catalog entry.
    pub fn ingest(
        &self,
        name: &str,
        rel: &Relation,
        index_cols: &[&str],
    ) -> Result<TableMeta, EvalError> {
        self.ensure_recovered()?;
        // Resolve index columns before touching any file, so a bad
        // request cannot clobber an existing table.
        let mut index_pos = Vec::with_capacity(index_cols.len());
        for col in index_cols {
            let pos = rel
                .schema()
                .index_of(col)
                .ok_or_else(|| EvalError::UnknownColumn {
                    relation: name.to_string(),
                    column: col.to_string(),
                })?;
            index_pos.push((*col, pos));
        }
        // Checkpoint first: stale WAL records naming this table (or its
        // current generation file) must not outlive the switch, or a
        // later recovery would resurrect pre-ingest state over it.
        self.checkpoint()?;

        let old = self.table_meta(name).ok();
        let file_name = Self::next_gen_file(name, old.as_ref().map(|m| m.file.as_str()));
        let mut file = PageFile::create(&self.dir.join(&file_name))?;
        // Heap pages: one cell per row, in row order, so the implicit
        // rowid (enumeration order) matches the in-memory relation and
        // the index postings built from it.
        let mut builder = PageBuilder::new();
        for row in rel.iter_rows() {
            let cell = codec::encode_row(&row);
            if cell.len() > MAX_CELL {
                return Err(EvalError::SpillIo(format!(
                    "table {name}: row of {} bytes exceeds page capacity",
                    cell.len()
                )));
            }
            if !builder.push(&cell) {
                file.append(&builder.finish())?;
                builder = PageBuilder::new();
                assert!(builder.push(&cell));
            }
        }
        if builder.cells() > 0 {
            file.append(&builder.finish())?;
        }
        let heap_pages = file.pages();

        let mut indexes = Vec::new();
        for (col, pos) in index_pos {
            let mem = MemIndex::build(rel, pos);
            let meta = btree::build_index(&mut file, mem.pairs())?;
            indexes.push((col.to_string(), meta));
        }
        file.sync()?;

        let meta = TableMeta {
            name: name.to_string(),
            rows: rel.len(),
            file: file_name,
            heap: if heap_pages > 0 {
                vec![(0, heap_pages)]
            } else {
                Vec::new()
            },
            columns: rel
                .schema()
                .columns()
                .iter()
                .map(|c| (c.name.clone(), c.ty))
                .collect(),
            indexes,
        };
        // The switch point: after this rename the new generation is
        // live; before it, the old one is untouched.
        self.write_catalog(&meta)?;
        // Invalidate the cached pool (it reads the old generation) and
        // delete the old file; a failure here just leaves an orphan for
        // the next recovery's GC.
        lock(&self.shared.pools).remove(name);
        if let Some(old) = &old {
            if old.file != meta.file {
                let _ = std::fs::remove_file(self.dir.join(&old.file));
            }
        }
        Ok(meta)
    }

    // ---- catalog io ----------------------------------------------------

    fn catalog_text(meta: &TableMeta) -> String {
        let mut text = String::new();
        text.push_str(CATALOG_HEADER);
        text.push('\n');
        text.push_str(&format!("rows {}\n", meta.rows));
        text.push_str(&format!("file {}\n", meta.file));
        for (start, count) in &meta.heap {
            text.push_str(&format!("heap {start} {count}\n"));
        }
        for (name, ty) in &meta.columns {
            text.push_str(&format!("col {} {name}\n", ty_name(*ty)));
        }
        for (col, idx) in &meta.indexes {
            text.push_str(&format!(
                "index {} {} {} {col}\n",
                idx.root, idx.distinct, idx.entries
            ));
        }
        text
    }

    fn write_catalog(&self, meta: &TableMeta) -> Result<(), EvalError> {
        self.write_catalog_text(&meta.name, &Self::catalog_text(meta))
    }

    /// Renames every staged catalog whose covering commit LSN is at or
    /// below `durable` into place (pass `u64::MAX` once the whole log
    /// is known synced).
    fn flush_staged(&self, durable: u64) -> Result<(), EvalError> {
        let mut staged = lock(&self.shared.staged);
        let ready: Vec<String> = staged
            .iter()
            .filter(|(_, s)| s.lsn <= durable)
            .map(|(name, _)| name.clone())
            .collect();
        for name in ready {
            let text = staged[&name].text.clone();
            self.write_catalog_text(&name, &text)?;
            staged.remove(&name);
        }
        Ok(())
    }

    fn write_catalog_text(&self, name: &str, text: &str) -> Result<(), EvalError> {
        let path = self.cat_path(name);
        let tmp = path.with_extension("cat.tmp");
        let res = (|| {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", e))?;
            f.write_all(text.as_bytes())
                .map_err(|e| io_err(&tmp, "write", e))?;
            if self.policy != WalPolicy::Off {
                // The rename below must never become durable ahead of
                // its content (a power cut could otherwise persist an
                // empty/torn catalog under a completed rename).
                f.sync_all().map_err(|e| io_err(&tmp, "fsync", e))?;
            }
            drop(f);
            htqo_engine::fail_point!("storage::catalog_rename");
            std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, "rename", e))?;
            if self.policy != WalPolicy::Off {
                // Make the rename itself durable: checkpoint() and
                // recovery truncate the WAL afterwards, at which point
                // the redo record covering this catalog is gone.
                let d =
                    std::fs::File::open(&self.dir).map_err(|e| io_err(&self.dir, "open dir", e))?;
                d.sync_all()
                    .map_err(|e| io_err(&self.dir, "fsync dir", e))?;
            }
            Ok(())
        })();
        if res.is_err() {
            // A failed write or rename must not leave the temp file
            // behind.
            let _ = std::fs::remove_file(&tmp);
        }
        res
    }

    /// Reads the catalog entry for `name` — from the in-memory staging
    /// area when the latest committed version's WAL group is not yet
    /// durable, else from the catalog file.
    pub fn table_meta(&self, name: &str) -> Result<TableMeta, EvalError> {
        let path = self.cat_path(name);
        if let Some(staged) = lock(&self.shared.staged).get(name) {
            return Self::parse_catalog(name, &staged.text, &path);
        }
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, "read", e))?;
        Self::parse_catalog(name, &text, &path)
    }

    fn parse_catalog(name: &str, text: &str, path: &Path) -> Result<TableMeta, EvalError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(CATALOG_HEADER) => {}
            // v1 stores predate the per-page checksum trailer: their
            // page files would fail every read as CorruptPage, so give
            // the operator an actionable error instead.
            Some("htqo-table v1") => {
                return Err(bad_catalog(
                    path,
                    "format v1 predates page checksums — incompatible store, re-ingest the table",
                ));
            }
            _ => return Err(bad_catalog(path, "missing header")),
        }
        let mut meta = TableMeta {
            name: name.to_string(),
            rows: 0,
            file: format!("{name}.pages"),
            heap: Vec::new(),
            columns: Vec::new(),
            indexes: Vec::new(),
        };
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("rows") => {
                    meta.rows = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(path, "rows"))?;
                }
                Some("file") => {
                    meta.file = parts
                        .next()
                        .ok_or_else(|| bad_catalog(path, "file"))?
                        .to_string();
                }
                Some("heap") => {
                    let start = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(path, "heap start"))?;
                    let count = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(path, "heap count"))?;
                    meta.heap.push((start, count));
                }
                Some("col") => {
                    let ty = parts
                        .next()
                        .and_then(ty_parse)
                        .ok_or_else(|| bad_catalog(path, "col type"))?;
                    let col = parts.next().ok_or_else(|| bad_catalog(path, "col name"))?;
                    meta.columns.push((col.to_string(), ty));
                }
                Some("index") => {
                    let root = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(path, "index root"))?;
                    let distinct = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(path, "index distinct"))?;
                    let entries = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(path, "index entries"))?;
                    let col = parts
                        .next()
                        .ok_or_else(|| bad_catalog(path, "index column"))?;
                    meta.indexes.push((
                        col.to_string(),
                        IndexMeta {
                            root,
                            distinct,
                            entries,
                        },
                    ));
                }
                Some(other) => return Err(bad_catalog(path, &format!("unknown key {other}"))),
                None => {}
            }
        }
        Ok(meta)
    }

    // ---- mutations -----------------------------------------------------

    /// Appends `rows` to `table` (convenience for a one-op batch).
    pub fn append_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<TableMeta, EvalError> {
        let mut batch = MutationBatch::new(table);
        for row in rows {
            batch.append(row);
        }
        self.apply(&batch)
    }

    /// Replaces the row at `rowid` (convenience for a one-op batch).
    pub fn update_row(
        &self,
        table: &str,
        rowid: u64,
        row: Vec<Value>,
    ) -> Result<TableMeta, EvalError> {
        let mut batch = MutationBatch::new(table);
        batch.update(rowid, row);
        self.apply(&batch)
    }

    /// Tombstones the rows at `rowids` (convenience for a one-op batch).
    pub fn delete_rows(&self, table: &str, rowids: &[u64]) -> Result<TableMeta, EvalError> {
        let mut batch = MutationBatch::new(table);
        for &r in rowids {
            batch.delete(r);
        }
        self.apply(&batch)
    }

    /// Applies one [`MutationBatch`] atomically: validates everything,
    /// logs full post-images of each touched page plus the new catalog
    /// text to the WAL, commits (fsync per policy), and only then
    /// updates the shared buffer pool and catalog file. A crash before
    /// the commit record is durable loses the whole batch; after, the
    /// whole batch survives recovery — never a partial application.
    ///
    /// Rowids in a batch address the table state *before* the batch:
    /// rows appended by the same batch cannot be updated or deleted by
    /// it. Mutations drop the table's secondary indexes (bulk-loaded
    /// B+trees are rebuilt at the next [`StorageDb::ingest`]). Returns
    /// the new catalog entry.
    pub fn apply(&self, batch: &MutationBatch) -> Result<TableMeta, EvalError> {
        self.ensure_recovered()?;
        let mut meta = self.table_meta(&batch.table)?;
        if batch.is_empty() {
            return Ok(meta);
        }
        let arity = meta.columns.len();
        let validate = |row: &[Value]| -> Result<(), EvalError> {
            if row.len() != arity {
                return Err(EvalError::SpillIo(format!(
                    "table {}: row arity {} != schema arity {arity}",
                    batch.table,
                    row.len()
                )));
            }
            for (v, (col, ty)) in row.iter().zip(&meta.columns) {
                if !codec::type_matches(v, *ty) {
                    return Err(EvalError::SpillIo(format!(
                        "table {}: column {col} given a value of the wrong type",
                        batch.table
                    )));
                }
            }
            Ok(())
        };
        for op in &batch.ops {
            match op {
                MutOp::Append(row) | MutOp::Update(_, row) => validate(row)?,
                MutOp::Delete(_) => {}
            }
        }

        let pool = self.pool_for(
            &meta,
            cache_bytes_from_env(),
            lock(&self.shared.budget).clone(),
        )?;

        // Physical slot map: (pid, cell count) per heap page, in rowid
        // order.
        let mut slot_pages: Vec<(u64, u16)> = Vec::new();
        for &(start, count) in &meta.heap {
            for pid in start..start + count {
                let n = {
                    let p = pool.pin(pid)?;
                    page::cell_count(&p)?
                };
                slot_pages.push((pid, n));
            }
        }
        let locate = |rowid: u64| -> Option<(u64, u16)> {
            let mut base = 0u64;
            for &(pid, n) in &slot_pages {
                if rowid < base + n as u64 {
                    return Some((pid, (rowid - base) as u16));
                }
                base += n as u64;
            }
            None
        };

        // Stage every change against in-memory cell lists.
        let mut changed: HashMap<u64, Vec<Vec<u8>>> = HashMap::new();
        let load_cells =
            |pid: u64, changed: &mut HashMap<u64, Vec<Vec<u8>>>| -> Result<(), EvalError> {
                if let std::collections::hash_map::Entry::Vacant(e) = changed.entry(pid) {
                    e.insert(page::cells(&pool.pin(pid)?)?);
                }
                Ok(())
            };
        let mut appends: Vec<Vec<u8>> = Vec::new();
        let mut live_delta: i64 = 0;
        for op in &batch.ops {
            match op {
                MutOp::Append(row) => {
                    let cell = codec::encode_row(row);
                    if cell.len() > MAX_CELL {
                        return Err(EvalError::SpillIo(format!(
                            "table {}: row of {} bytes exceeds page capacity",
                            batch.table,
                            cell.len()
                        )));
                    }
                    appends.push(cell);
                    live_delta += 1;
                }
                MutOp::Update(rowid, _) | MutOp::Delete(rowid) => {
                    let (pid, slot) = locate(*rowid).ok_or_else(|| {
                        EvalError::SpillIo(format!(
                            "table {}: rowid {rowid} out of range",
                            batch.table
                        ))
                    })?;
                    load_cells(pid, &mut changed)?;
                    let cells = changed.get_mut(&pid).unwrap();
                    if cells[slot as usize].is_empty() {
                        return Err(EvalError::SpillIo(format!(
                            "table {}: rowid {rowid} is deleted",
                            batch.table
                        )));
                    }
                    match op {
                        MutOp::Update(_, row) => {
                            let cell = codec::encode_row(row);
                            if cell.len() > MAX_CELL {
                                return Err(EvalError::SpillIo(format!(
                                    "table {}: row of {} bytes exceeds page capacity",
                                    batch.table,
                                    cell.len()
                                )));
                            }
                            cells[slot as usize] = cell;
                        }
                        MutOp::Delete(_) => {
                            cells[slot as usize].clear();
                            live_delta -= 1;
                        }
                        MutOp::Append(_) => unreachable!(),
                    }
                }
            }
        }

        // Place appends: top up the last heap page, then fresh pages.
        let mut append_iter = appends.into_iter().peekable();
        if let Some(&(last_pid, _)) = slot_pages.last() {
            load_cells(last_pid, &mut changed)?;
            let cells = changed.get_mut(&last_pid).unwrap();
            while let Some(cell) = append_iter.peek() {
                if !page::page_fits(cells, cell) {
                    break;
                }
                cells.push(append_iter.next().unwrap());
            }
        }
        let mut fresh: Vec<Vec<Vec<u8>>> = Vec::new();
        for cell in append_iter {
            let start_new = match fresh.last() {
                Some(p) => !page::page_fits(p, &cell),
                None => true,
            };
            if start_new {
                fresh.push(Vec::new());
            }
            fresh.last_mut().unwrap().push(cell);
        }

        // Rebuild the page images (an update that overflows its page is
        // rejected here, before anything is logged).
        let mut images: Vec<(u64, Vec<u8>)> = Vec::with_capacity(changed.len() + fresh.len());
        for (&pid, cells) in &changed {
            images.push((pid, page::rebuild(cells)?));
        }
        images.sort_by_key(|&(pid, _)| pid);
        let base = pool.next_pid();
        let fresh_count = fresh.len() as u64;
        for (k, cells) in fresh.iter().enumerate() {
            images.push((base + k as u64, page::rebuild(cells)?));
        }
        if fresh_count > 0 {
            // New pages extend the rowid space at the end, so the new
            // extent goes last (merged with a contiguous predecessor).
            match meta.heap.last_mut() {
                Some((s, c)) if *s + *c == base => *c += fresh_count,
                _ => meta.heap.push((base, fresh_count)),
            }
        }
        meta.rows = (meta.rows as i64 + live_delta) as usize;
        // Bulk-loaded B+trees cannot be maintained incrementally; the
        // next ingest rebuilds them. Stale index pages stay as dead
        // space until then.
        meta.indexes.clear();

        // Log → commit → apply (WAL-before-data).
        let wal = self.wal_handle()?;
        pool.attach_wal(Arc::clone(&wal));
        for (pid, img) in &images {
            wal.log_page(&meta.file, *pid, img)?;
        }
        wal.log_catalog(&meta.name, &Self::catalog_text(&meta))?;
        let commit_lsn = wal.commit()?;

        for (pid, img) in &images {
            if *pid >= base {
                let got = pool.create_page()?;
                debug_assert_eq!(got, *pid);
            }
            pool.update_logged(*pid, commit_lsn, |d| d.copy_from_slice(img))?;
        }
        // The on-disk catalog rename must never become durable ahead of
        // the WAL group that redoes the pages it describes (a power cut
        // would otherwise leave a catalog whose row count is ahead of
        // the data — a torn, unreadable table). Stage the new text and
        // rename only what the log already covers durably: under
        // `commit` that is always this batch; under `batch` the rename
        // waits for the group fsync (readers are served from the
        // staging area meanwhile); under `off` it waits for the next
        // checkpoint. Recovery replays staged-but-unrenamed catalogs
        // from the WAL, so a process crash loses nothing.
        lock(&self.shared.staged).insert(
            meta.name.clone(),
            StagedCatalog {
                text: Self::catalog_text(&meta),
                lsn: commit_lsn,
            },
        );
        self.flush_staged(wal.durable_lsn())?;

        if wal.size() > self.checkpoint_bytes {
            self.checkpoint()?;
        }
        Ok(meta)
    }

    // ---- loading -------------------------------------------------------

    /// Loads one table: decodes its heap extents through the shared
    /// [`BufferPool`] (created with `cache_bytes` capacity and
    /// budget-charged when `budget` is given), skipping tombstoned
    /// slots, and attaches its indexes to the same pool.
    pub fn load_table(
        &self,
        name: &str,
        cache_bytes: u64,
        budget: Option<Budget>,
    ) -> Result<(Relation, LoadedIndexes), EvalError> {
        self.ensure_recovered()?;
        let meta = self.table_meta(name)?;
        let pool = self.pool_for(&meta, cache_bytes, budget)?;

        let mut schema = Schema::default();
        for (col, ty) in &meta.columns {
            schema.push(col, *ty);
        }
        let arity = meta.columns.len();
        let mut rel = Relation::new(schema);
        rel.reserve(meta.rows);
        for &(start, count) in &meta.heap {
            for pid in start..start + count {
                let page = pool.pin(pid)?;
                let n = page::cell_count(&page)?;
                for i in 0..n {
                    let cell = page::cell(&page, i)?;
                    if cell.is_empty() {
                        continue; // tombstone
                    }
                    let row = codec::decode_row(cell, arity)?;
                    for (v, (col, ty)) in row.iter().zip(&meta.columns) {
                        if !codec::type_matches(v, *ty) {
                            return Err(EvalError::SpillIo(format!(
                                "table {name}: column {col} holds a value of the wrong type"
                            )));
                        }
                    }
                    rel.push_many_unchecked(std::iter::once(row));
                }
            }
        }
        if rel.len() != meta.rows {
            return Err(EvalError::SpillIo(format!(
                "table {name}: catalog says {} rows, pages hold {}",
                meta.rows,
                rel.len()
            )));
        }
        let indexes = meta
            .indexes
            .into_iter()
            .map(|(col, m)| (col, Arc::new(PagedIndex::new(Arc::clone(&pool), m))))
            .collect();
        Ok((rel, indexes))
    }

    /// Loads every persisted table into a [`Database`], splitting
    /// `cache_bytes` evenly across the per-table buffer pools and
    /// registering all indexes. This is the warm-restart path; it runs
    /// the recovery pass first.
    pub fn load_database(
        &self,
        cache_bytes: u64,
        budget: Option<Budget>,
    ) -> Result<Database, EvalError> {
        self.ensure_recovered()?;
        let names = self.tables()?;
        let per_table = if names.is_empty() {
            cache_bytes
        } else {
            (cache_bytes / names.len() as u64).max(crate::page::PAGE_SIZE as u64)
        };
        let mut db = Database::new();
        for name in &names {
            let (rel, indexes) = self.load_table(name, per_table, budget.clone())?;
            db.insert_table(name, rel);
            for (col, idx) in indexes {
                db.register_index(name, &col, idx);
            }
        }
        Ok(db)
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Opens a page file for recovery, first truncating any torn tail (a
/// crash mid-write can leave a non-page-aligned length; the redo records
/// recreate whatever the tear destroyed).
fn open_repair(path: &Path) -> Result<PageFile, EvalError> {
    if !path.exists() {
        return PageFile::create(path);
    }
    let len = std::fs::metadata(path)
        .map_err(|e| io_err(path, "stat", e))?
        .len();
    let aligned = len - len % crate::page::PAGE_SIZE as u64;
    if aligned != len {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        f.set_len(aligned)
            .map_err(|e| io_err(path, "truncate", e))?;
    }
    PageFile::open(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_engine::{JoinIndex, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("htqo-catalog-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample() -> Relation {
        let mut rel = Relation::new(Schema::new(&[
            ("id", ColumnType::Int),
            ("name", ColumnType::Str),
            ("score", ColumnType::Float),
            ("day", ColumnType::Date),
        ]));
        for i in 0..500i64 {
            rel.push_row(vec![
                Value::Int(i % 50),
                Value::str(&format!("name-{i}")),
                Value::Float(i as f64 / 3.0),
                Value::Date(i as i32),
            ])
            .unwrap();
        }
        rel.push_row(vec![Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
        rel
    }

    #[test]
    fn ingest_then_warm_restart_roundtrips_rows_and_indexes() {
        let dir = tmpdir("roundtrip");
        let rel = sample();
        {
            let db = StorageDb::open(&dir).unwrap();
            db.ingest("t", &rel, &["id"]).unwrap();
        }
        // "Restart": a fresh handle with no shared state.
        let storage = StorageDb::open(&dir).unwrap();
        assert_eq!(storage.tables().unwrap(), vec!["t".to_string()]);
        let db = storage.load_database(1 << 20, None).unwrap();
        let loaded = db.table("t").unwrap();
        assert_eq!(loaded.len(), rel.len());
        assert_eq!(loaded.to_rows(), rel.to_rows());
        // A clean restart reports a no-op recovery.
        assert!(!storage.last_recovery().unwrap().did_work());
        // The persisted index agrees with a fresh in-memory one.
        let idx = db.index_on("t", "id").unwrap();
        let mem = MemIndex::build(&rel, 0);
        assert_eq!(idx.distinct_keys(), mem.distinct_keys());
        assert_eq!(idx.entries(), mem.entries());
        for key in [Value::Int(7), Value::Int(49), Value::Null, Value::Int(999)] {
            let k = htqo_engine::index::key_bytes(&key);
            assert_eq!(idx.seek(&k).unwrap(), mem.seek(&k).unwrap(), "{key:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reingest_replaces_and_bad_index_column_errors() {
        let dir = tmpdir("replace");
        let storage = StorageDb::open(&dir).unwrap();
        let rel = sample();
        storage.ingest("t", &rel, &["id"]).unwrap();
        // A bad index column fails before the page file is touched…
        assert!(storage.ingest("t", &rel, &["nope"]).is_err());
        let (still, _) = storage.load_table("t", 1 << 20, None).unwrap();
        assert_eq!(still.len(), rel.len());
        // …and a good re-ingest fully replaces the previous version —
        // in a fresh generation file, with the old one gone.
        let meta = storage.ingest("t", &rel, &[]).unwrap();
        assert!(meta.indexes.is_empty());
        assert_ne!(meta.file, "t.pages");
        assert!(!dir.join("t.pages").exists(), "old generation deleted");
        let (loaded, indexes) = storage.load_table("t", 1 << 20, None).unwrap();
        assert_eq!(loaded.len(), rel.len());
        assert!(indexes.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_charges_the_page_cache_against_the_budget() {
        let dir = tmpdir("budget");
        let storage = StorageDb::open(&dir).unwrap();
        storage.ingest("t", &sample(), &["id"]).unwrap();
        // A fresh handle so the ingest-time pool is not reused.
        let storage = StorageDb::open(&dir).unwrap();
        let mut master = Budget::unlimited().with_mem_limit(1 << 30);
        let observer = master.fork();
        let cache = 2 * crate::page::PAGE_SIZE as u64;
        let db = storage.load_database(cache, Some(master.fork())).unwrap();
        assert!(observer.mem_used() > 0, "resident pages are charged");
        assert!(observer.mem_used() <= cache, "never more than the cap");
        drop(db);
        // The shared pool keeps its frames until the handle drops too.
        drop(storage);
        assert_eq!(observer.mem_used(), 0, "dropping the db frees the cache");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutations_roundtrip_through_restart() {
        let dir = tmpdir("mutate");
        let storage = StorageDb::open(&dir).unwrap();
        let mut rel = Relation::new(Schema::new(&[
            ("id", ColumnType::Int),
            ("name", ColumnType::Str),
        ]));
        for i in 0..10i64 {
            rel.push_row(vec![Value::Int(i), Value::str(&format!("r{i}"))])
                .unwrap();
        }
        storage.ingest("t", &rel, &["id"]).unwrap();

        // Append, update, delete in one batch.
        let mut batch = MutationBatch::new("t");
        batch
            .append(vec![Value::Int(100), Value::str("new-a")])
            .append(vec![Value::Int(101), Value::str("new-b")])
            .update(3, vec![Value::Int(33), Value::str("updated")])
            .delete(5);
        let meta = storage.apply(&batch).unwrap();
        assert_eq!(meta.rows, 11); // 10 + 2 - 1
        assert!(meta.indexes.is_empty(), "mutations drop indexes");

        // Visible immediately through the shared pool…
        let (rel2, _) = storage.load_table("t", 1 << 20, None).unwrap();
        let rows = rel2.to_rows();
        assert_eq!(rows.len(), 11);
        assert!(rows.iter().any(|r| r[1] == Value::str("updated")));
        assert!(!rows.iter().any(|r| r[0] == Value::Int(5)));
        assert!(rows.iter().any(|r| r[0] == Value::Int(101)));

        // …and after a full restart (checkpoint not required: the WAL
        // replays into the data file).
        storage.simulate_crash();
        let storage2 = StorageDb::open(&dir).unwrap();
        let report = storage2.recover().unwrap();
        assert!(report.batches_replayed >= 1);
        let (rel3, _) = storage2.load_table("t", 1 << 20, None).unwrap();
        assert_eq!(rel3.to_rows(), rows);

        // Deleted and out-of-range rowids are typed errors.
        assert!(storage2.delete_rows("t", &[5]).is_err(), "double delete");
        assert!(storage2.delete_rows("t", &[999]).is_err(), "out of range");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_wal_and_preserves_state() {
        let dir = tmpdir("checkpoint");
        let storage = StorageDb::open(&dir).unwrap();
        let mut rel = Relation::new(Schema::new(&[("id", ColumnType::Int)]));
        for i in 0..4i64 {
            rel.push_row(vec![Value::Int(i)]).unwrap();
        }
        storage.ingest("t", &rel, &[]).unwrap();
        storage
            .append_rows("t", vec![vec![Value::Int(42)]])
            .unwrap();
        let wal_len_before = std::fs::metadata(dir.join("db.wal")).unwrap().len();
        assert!(wal_len_before > wal::WAL_HEADER);
        storage.checkpoint().unwrap();
        let wal_len_after = std::fs::metadata(dir.join("db.wal")).unwrap().len();
        assert_eq!(wal_len_after, wal::WAL_HEADER);
        // State intact after checkpoint + crash (nothing to replay).
        storage.simulate_crash();
        let storage2 = StorageDb::open(&dir).unwrap();
        let report = storage2.recover().unwrap();
        assert_eq!(report.batches_replayed, 0);
        let (rel2, _) = storage2.load_table("t", 1 << 20, None).unwrap();
        assert_eq!(rel2.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_policy_serves_staged_catalog_and_checkpoint_renames_it() {
        let dir = tmpdir("staged");
        let storage = StorageDb::open_with(&dir, WalPolicy::Batch, u64::MAX).unwrap();
        let mut rel = Relation::new(Schema::new(&[("id", ColumnType::Int)]));
        for i in 0..3i64 {
            rel.push_row(vec![Value::Int(i)]).unwrap();
        }
        storage.ingest("t", &rel, &[]).unwrap();
        let on_disk = std::fs::read_to_string(dir.join("t.cat")).unwrap();
        // One commit < group size: the WAL group is not durable yet, so
        // the catalog switch stays in memory…
        let meta = storage.append_rows("t", vec![vec![Value::Int(9)]]).unwrap();
        assert_eq!(meta.rows, 4);
        assert_eq!(
            std::fs::read_to_string(dir.join("t.cat")).unwrap(),
            on_disk,
            "rename must wait for the group fsync"
        );
        // …while readers see the committed state through the staging
        // area, including a second batch stacked on the first.
        let (rel2, _) = storage.load_table("t", 1 << 20, None).unwrap();
        assert_eq!(rel2.len(), 4);
        storage
            .append_rows("t", vec![vec![Value::Int(10)]])
            .unwrap();
        assert_eq!(storage.table_meta("t").unwrap().rows, 5);
        // Checkpoint syncs the log, so the staged text lands on disk.
        storage.checkpoint().unwrap();
        let flushed = std::fs::read_to_string(dir.join("t.cat")).unwrap();
        assert!(flushed.contains("rows 5"), "checkpoint flushes the rename");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_catalog_disables_orphan_gc() {
        let dir = tmpdir("badcat");
        {
            let storage = StorageDb::open(&dir).unwrap();
            storage.ingest("t", &sample(), &[]).unwrap();
        }
        std::fs::write(dir.join("t.cat"), "not a catalog\n").unwrap();
        std::fs::write(dir.join("t.9.pages"), vec![0u8; 16]).unwrap();
        let storage = StorageDb::open(&dir).unwrap();
        let report = storage.recover().unwrap();
        assert_eq!(report.unreadable_catalogs, 1);
        assert_eq!(report.orphans_removed, 0);
        assert!(dir.join("t.pages").exists(), "data must never be GC'd");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_catalog_is_rejected_with_reingest_error() {
        let dir = tmpdir("v1");
        let storage = StorageDb::open(&dir).unwrap();
        std::fs::write(dir.join("old.cat"), "htqo-table v1\nrows 0\n").unwrap();
        let msg = format!("{}", storage.table_meta("old").unwrap_err());
        assert!(msg.contains("re-ingest"), "unhelpful v1 error: {msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_fill_the_last_heap_page_before_growing() {
        let dir = tmpdir("fill");
        let storage = StorageDb::open(&dir).unwrap();
        let mut rel = Relation::new(Schema::new(&[("id", ColumnType::Int)]));
        rel.push_row(vec![Value::Int(0)]).unwrap();
        let before = storage.ingest("t", &rel, &[]).unwrap();
        assert_eq!(before.heap_pages(), 1);
        // A handful of small rows fits the existing page.
        let after = storage
            .append_rows("t", (1..10i64).map(|i| vec![Value::Int(i)]).collect())
            .unwrap();
        assert_eq!(after.heap_pages(), 1, "no new page for small appends");
        assert_eq!(after.rows, 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
