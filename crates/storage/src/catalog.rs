//! The persistent catalog: tables ingested once survive restarts.
//!
//! A [`StorageDb`] is a directory holding, per table, a page file
//! (`<name>.pages`: heap pages first, then any B+tree index pages) and a
//! human-readable catalog file (`<name>.cat`) recording the schema, heap
//! extent, and index roots. [`StorageDb::ingest`] writes both; on the
//! next run, [`StorageDb::load_database`] rebuilds the in-memory
//! [`Database`] by decoding heap pages through a [`BufferPool`] —
//! skipping CSV parsing entirely — and re-attaches each index as a
//! [`crate::btree::PagedIndex`] reading through the same pool, so
//! index-seek joins stay cache-governed after the warm start.
//!
//! Catalog files are written to a temp name and renamed into place, so a
//! crash mid-ingest leaves either no table or a complete one.

use crate::btree::{self, IndexMeta, PagedIndex};
use crate::buffer::BufferPool;
use crate::codec;
use crate::page::{PageBuilder, MAX_CELL};
use crate::pager::PageFile;
use htqo_engine::{Budget, ColumnType, Database, EvalError, MemIndex, Relation, Schema};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default page-cache budget when `HTQO_PAGE_CACHE` is unset: 64 MiB.
pub const DEFAULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// The persisted indexes of one loaded table: `(column name, index)`
/// pairs, ready to register on a [`Database`].
pub type LoadedIndexes = Vec<(String, Arc<PagedIndex>)>;

/// Resolves the page-cache byte budget from `HTQO_PAGE_CACHE`
/// (suffixes as in [`htqo_engine::exec::parse_bytes`]).
pub fn cache_bytes_from_env() -> u64 {
    std::env::var("HTQO_PAGE_CACHE")
        .ok()
        .as_deref()
        .and_then(htqo_engine::exec::parse_bytes)
        .unwrap_or(DEFAULT_CACHE_BYTES)
}

/// Resolves the storage directory from `HTQO_STORAGE_DIR` (default
/// `.htqo_storage` under the working directory).
pub fn dir_from_env() -> PathBuf {
    std::env::var_os("HTQO_STORAGE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(".htqo_storage"))
}

fn bad_catalog(path: &Path, what: &str) -> EvalError {
    EvalError::SpillIo(format!("{}: bad catalog: {what}", path.display()))
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> EvalError {
    EvalError::SpillIo(format!("{}: {op}: {e}", path.display()))
}

fn ty_name(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Int => "int",
        ColumnType::Float => "float",
        ColumnType::Str => "str",
        ColumnType::Date => "date",
    }
}

fn ty_parse(s: &str) -> Option<ColumnType> {
    match s {
        "int" => Some(ColumnType::Int),
        "float" => Some(ColumnType::Float),
        "str" => Some(ColumnType::Str),
        "date" => Some(ColumnType::Date),
        _ => None,
    }
}

/// Catalog entry for one persisted table.
#[derive(Clone, Debug)]
pub struct TableMeta {
    /// Table name (file stem).
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Heap pages `0..heap_pages` in the page file.
    pub heap_pages: u64,
    /// Column names and types, in order.
    pub columns: Vec<(String, ColumnType)>,
    /// Built secondary indexes: column name and B+tree location.
    pub indexes: Vec<(String, IndexMeta)>,
}

/// A directory of persisted tables.
#[derive(Clone, Debug)]
pub struct StorageDb {
    dir: PathBuf,
}

impl StorageDb {
    /// Opens (creating if needed) the storage directory.
    pub fn open(dir: &Path) -> Result<Self, EvalError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create dir", e))?;
        Ok(StorageDb {
            dir: dir.to_path_buf(),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn pages_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.pages"))
    }

    fn cat_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.cat"))
    }

    /// Names of persisted tables (sorted).
    pub fn tables(&self) -> Result<Vec<String>, EvalError> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, "read dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, "read dir", e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("cat") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// True when `name` has a complete catalog entry.
    pub fn has_table(&self, name: &str) -> bool {
        self.cat_path(name).exists() && self.pages_path(name).exists()
    }

    /// Persists `rel` as `name`, replacing any previous version, and
    /// builds a B+tree index on each column named in `index_cols`
    /// (unknown columns are an error). Returns the catalog entry.
    pub fn ingest(
        &self,
        name: &str,
        rel: &Relation,
        index_cols: &[&str],
    ) -> Result<TableMeta, EvalError> {
        // Resolve index columns before touching the page file, so a bad
        // request cannot clobber an existing table.
        let mut index_pos = Vec::with_capacity(index_cols.len());
        for col in index_cols {
            let pos = rel
                .schema()
                .index_of(col)
                .ok_or_else(|| EvalError::UnknownColumn {
                    relation: name.to_string(),
                    column: col.to_string(),
                })?;
            index_pos.push((*col, pos));
        }
        let mut file = PageFile::create(&self.pages_path(name))?;
        // Heap pages: one cell per row, in row order, so the implicit
        // rowid (enumeration order) matches the in-memory relation and
        // the index postings built from it.
        let mut builder = PageBuilder::new();
        for row in rel.iter_rows() {
            let cell = codec::encode_row(&row);
            if cell.len() > MAX_CELL {
                return Err(EvalError::SpillIo(format!(
                    "table {name}: row of {} bytes exceeds page capacity",
                    cell.len()
                )));
            }
            if !builder.push(&cell) {
                file.append(&builder.finish())?;
                builder = PageBuilder::new();
                assert!(builder.push(&cell));
            }
        }
        if builder.cells() > 0 {
            file.append(&builder.finish())?;
        }
        let heap_pages = file.pages();

        let mut indexes = Vec::new();
        for (col, pos) in index_pos {
            let mem = MemIndex::build(rel, pos);
            let meta = btree::build_index(&mut file, mem.pairs())?;
            indexes.push((col.to_string(), meta));
        }
        file.sync()?;

        let meta = TableMeta {
            name: name.to_string(),
            rows: rel.len(),
            heap_pages,
            columns: rel
                .schema()
                .columns()
                .iter()
                .map(|c| (c.name.clone(), c.ty))
                .collect(),
            indexes,
        };
        self.write_catalog(&meta)?;
        Ok(meta)
    }

    fn write_catalog(&self, meta: &TableMeta) -> Result<(), EvalError> {
        let mut text = String::new();
        text.push_str("htqo-table v1\n");
        text.push_str(&format!("rows {}\n", meta.rows));
        text.push_str(&format!("heap_pages {}\n", meta.heap_pages));
        for (name, ty) in &meta.columns {
            text.push_str(&format!("col {} {name}\n", ty_name(*ty)));
        }
        for (col, idx) in &meta.indexes {
            text.push_str(&format!(
                "index {} {} {} {col}\n",
                idx.root, idx.distinct, idx.entries
            ));
        }
        let path = self.cat_path(&meta.name);
        let tmp = path.with_extension("cat.tmp");
        std::fs::write(&tmp, text).map_err(|e| io_err(&tmp, "write", e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, "rename", e))
    }

    /// Reads the catalog entry for `name`.
    pub fn table_meta(&self, name: &str) -> Result<TableMeta, EvalError> {
        let path = self.cat_path(name);
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, "read", e))?;
        let mut lines = text.lines();
        if lines.next() != Some("htqo-table v1") {
            return Err(bad_catalog(&path, "missing header"));
        }
        let mut meta = TableMeta {
            name: name.to_string(),
            rows: 0,
            heap_pages: 0,
            columns: Vec::new(),
            indexes: Vec::new(),
        };
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("rows") => {
                    meta.rows = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(&path, "rows"))?;
                }
                Some("heap_pages") => {
                    meta.heap_pages = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(&path, "heap_pages"))?;
                }
                Some("col") => {
                    let ty = parts
                        .next()
                        .and_then(ty_parse)
                        .ok_or_else(|| bad_catalog(&path, "col type"))?;
                    let col = parts.next().ok_or_else(|| bad_catalog(&path, "col name"))?;
                    meta.columns.push((col.to_string(), ty));
                }
                Some("index") => {
                    let root = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(&path, "index root"))?;
                    let distinct = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(&path, "index distinct"))?;
                    let entries = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad_catalog(&path, "index entries"))?;
                    let col = parts
                        .next()
                        .ok_or_else(|| bad_catalog(&path, "index column"))?;
                    meta.indexes.push((
                        col.to_string(),
                        IndexMeta {
                            root,
                            distinct,
                            entries,
                        },
                    ));
                }
                Some(other) => return Err(bad_catalog(&path, &format!("unknown key {other}"))),
                None => {}
            }
        }
        Ok(meta)
    }

    /// Loads one table: decodes its heap pages through a fresh
    /// [`BufferPool`] with `cache_bytes` capacity (budget-charged when
    /// `budget` is given) and attaches its indexes to the same pool.
    pub fn load_table(
        &self,
        name: &str,
        cache_bytes: u64,
        budget: Option<Budget>,
    ) -> Result<(Relation, LoadedIndexes), EvalError> {
        let meta = self.table_meta(name)?;
        let file = PageFile::open(&self.pages_path(name))?;
        let pool = Arc::new(BufferPool::new(file, cache_bytes, budget));

        let mut schema = Schema::default();
        for (col, ty) in &meta.columns {
            schema.push(col, *ty);
        }
        let arity = meta.columns.len();
        let mut rel = Relation::new(schema);
        rel.reserve(meta.rows);
        for pid in 0..meta.heap_pages {
            let page = pool.pin(pid)?;
            let n = crate::page::cell_count(&page)?;
            for i in 0..n {
                let cell = crate::page::cell(&page, i)?;
                let row = codec::decode_row(cell, arity)?;
                for (v, (col, ty)) in row.iter().zip(&meta.columns) {
                    if !codec::type_matches(v, *ty) {
                        return Err(EvalError::SpillIo(format!(
                            "table {name}: column {col} holds a value of the wrong type"
                        )));
                    }
                }
                rel.push_many_unchecked(std::iter::once(row));
            }
        }
        if rel.len() != meta.rows {
            return Err(EvalError::SpillIo(format!(
                "table {name}: catalog says {} rows, pages hold {}",
                meta.rows,
                rel.len()
            )));
        }
        let indexes = meta
            .indexes
            .into_iter()
            .map(|(col, m)| (col, Arc::new(PagedIndex::new(Arc::clone(&pool), m))))
            .collect();
        Ok((rel, indexes))
    }

    /// Loads every persisted table into a [`Database`], splitting
    /// `cache_bytes` evenly across the per-table buffer pools and
    /// registering all indexes. This is the warm-restart path.
    pub fn load_database(
        &self,
        cache_bytes: u64,
        budget: Option<Budget>,
    ) -> Result<Database, EvalError> {
        let names = self.tables()?;
        let per_table = if names.is_empty() {
            cache_bytes
        } else {
            (cache_bytes / names.len() as u64).max(crate::page::PAGE_SIZE as u64)
        };
        let mut db = Database::new();
        for name in &names {
            let (rel, indexes) = self.load_table(name, per_table, budget.clone())?;
            db.insert_table(name, rel);
            for (col, idx) in indexes {
                db.register_index(name, &col, idx);
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_engine::{JoinIndex, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("htqo-catalog-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample() -> Relation {
        let mut rel = Relation::new(Schema::new(&[
            ("id", ColumnType::Int),
            ("name", ColumnType::Str),
            ("score", ColumnType::Float),
            ("day", ColumnType::Date),
        ]));
        for i in 0..500i64 {
            rel.push_row(vec![
                Value::Int(i % 50),
                Value::str(&format!("name-{i}")),
                Value::Float(i as f64 / 3.0),
                Value::Date(i as i32),
            ])
            .unwrap();
        }
        rel.push_row(vec![Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
        rel
    }

    #[test]
    fn ingest_then_warm_restart_roundtrips_rows_and_indexes() {
        let dir = tmpdir("roundtrip");
        let rel = sample();
        {
            let db = StorageDb::open(&dir).unwrap();
            db.ingest("t", &rel, &["id"]).unwrap();
        }
        // "Restart": a fresh handle with no shared state.
        let storage = StorageDb::open(&dir).unwrap();
        assert_eq!(storage.tables().unwrap(), vec!["t".to_string()]);
        let db = storage.load_database(1 << 20, None).unwrap();
        let loaded = db.table("t").unwrap();
        assert_eq!(loaded.len(), rel.len());
        assert_eq!(loaded.to_rows(), rel.to_rows());
        // The persisted index agrees with a fresh in-memory one.
        let idx = db.index_on("t", "id").unwrap();
        let mem = MemIndex::build(&rel, 0);
        assert_eq!(idx.distinct_keys(), mem.distinct_keys());
        assert_eq!(idx.entries(), mem.entries());
        for key in [Value::Int(7), Value::Int(49), Value::Null, Value::Int(999)] {
            let k = htqo_engine::index::key_bytes(&key);
            assert_eq!(idx.seek(&k).unwrap(), mem.seek(&k).unwrap(), "{key:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reingest_replaces_and_bad_index_column_errors() {
        let dir = tmpdir("replace");
        let storage = StorageDb::open(&dir).unwrap();
        let rel = sample();
        storage.ingest("t", &rel, &["id"]).unwrap();
        // A bad index column fails before the page file is touched…
        assert!(storage.ingest("t", &rel, &["nope"]).is_err());
        let (still, _) = storage.load_table("t", 1 << 20, None).unwrap();
        assert_eq!(still.len(), rel.len());
        // …and a good re-ingest fully replaces the previous version.
        let meta = storage.ingest("t", &rel, &[]).unwrap();
        assert!(meta.indexes.is_empty());
        let (loaded, indexes) = storage.load_table("t", 1 << 20, None).unwrap();
        assert_eq!(loaded.len(), rel.len());
        assert!(indexes.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_charges_the_page_cache_against_the_budget() {
        let dir = tmpdir("budget");
        let storage = StorageDb::open(&dir).unwrap();
        storage.ingest("t", &sample(), &["id"]).unwrap();
        let mut master = Budget::unlimited().with_mem_limit(1 << 30);
        let observer = master.fork();
        let cache = 2 * crate::page::PAGE_SIZE as u64;
        let db = storage.load_database(cache, Some(master.fork())).unwrap();
        assert!(observer.mem_used() > 0, "resident pages are charged");
        assert!(observer.mem_used() <= cache, "never more than the cap");
        drop(db);
        assert_eq!(observer.mem_used(), 0, "dropping the db frees the cache");
        std::fs::remove_dir_all(&dir).ok();
    }
}
