//! The **Conjunctive Query Isolator** (Section 2 and Figure 5 of the
//! paper): translates a parsed SQL `SELECT` into a [`ConjunctiveQuery`].
//!
//! Attributes linked by equality predicates form equivalence classes; each
//! class becomes one query variable occurring in every atom that owns one
//! of the class's attributes. Attribute-vs-constant predicates become
//! [`Filter`]s pushed to their atom, and do *not* produce variables (the
//! paper drops `o_orderdate` from `CQ(Q₅)` for exactly this reason).
//!
//! ## Aggregates and multiplicity
//!
//! The paper evaluates `CQ(Q)` under set semantics and computes aggregates
//! on its answer. Under plain SQL bag semantics this can under-count
//! duplicates, so the isolator supports three modes
//! ([`AggKeyMode`]): the paper-faithful `None`, the default
//! `AggregateAtoms` (adds the hidden `__rowid` variable of every atom that
//! feeds an aggregate, making sums/counts exact whenever the remaining
//! joins are key-preserving — true for all TPC-H queries used in the
//! paper), and the fully general `AllAtoms`.

use crate::conjunctive::{
    Atom, AtomId, CmpOp, ConjunctiveQuery, Filter, Literal, OutputItem, ScalarExpr, SortDir,
};
use crate::sql::ast::{ColumnRef, OrderKey, Predicate, SelectItem, SelectStmt, SqlExpr};
use crate::union_find::UnionFind;
use std::collections::HashMap;
use std::fmt;

/// The hidden per-row identifier column every relation exposes.
pub const ROWID_COLUMN: &str = "__rowid";

/// Prefix of the hidden rowid variables/labels added by [`AggKeyMode`].
pub const ROWID_VAR_PREFIX: &str = "__rid_";

/// True if an output label denotes a hidden multiplicity-guard column that
/// final projection must drop.
pub fn is_hidden_label(label: &str) -> bool {
    label.starts_with(ROWID_VAR_PREFIX)
}

/// Provides table schemas to the isolator (implemented by the engine's
/// catalog, and by test fixtures).
pub trait SchemaProvider {
    /// Column names of `table`, or `None` if the table does not exist.
    fn columns(&self, table: &str) -> Option<Vec<String>>;
}

/// A simple in-memory [`SchemaProvider`] for tests and stand-alone use.
#[derive(Default, Clone, Debug)]
pub struct MapSchema {
    tables: HashMap<String, Vec<String>>,
}

impl MapSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table with its columns.
    pub fn table(mut self, name: &str, columns: &[&str]) -> Self {
        self.tables.insert(
            name.to_string(),
            columns.iter().map(|c| c.to_string()).collect(),
        );
        self
    }
}

impl SchemaProvider for MapSchema {
    fn columns(&self, table: &str) -> Option<Vec<String>> {
        self.tables.get(table).cloned()
    }
}

/// How to guard aggregate correctness against set-semantics collapse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AggKeyMode {
    /// Paper-faithful: aggregates over the set-semantics answer of `CQ(Q)`.
    None,
    /// Add the hidden rowid variable of every atom referenced inside an
    /// aggregate expression (default; exact when remaining joins are
    /// key-preserving).
    #[default]
    AggregateAtoms,
    /// Add every atom's rowid variable: exact SQL bag semantics, at the
    /// price of a much more constrained decomposition.
    AllAtoms,
}

/// Isolator configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct IsolatorOptions {
    /// Multiplicity guard for aggregates (see [`AggKeyMode`]).
    pub agg_key_mode: AggKeyMode,
}

/// Errors produced while isolating the conjunctive query.
#[derive(Clone, Debug, PartialEq)]
pub enum IsolateError {
    /// FROM references a table missing from the schema.
    UnknownTable(String),
    /// Two FROM entries bind the same name.
    DuplicateBinding(String),
    /// A column reference's qualifier matches no FROM binding.
    UnknownBinding(String),
    /// A column does not exist in the referenced (or any) table.
    UnknownColumn(String),
    /// An unqualified column exists in several FROM tables.
    AmbiguousColumn(String),
    /// A column-to-column predicate with a non-`=` operator.
    NonEquiJoin(String),
    /// A predicate comparing two constants, or other unsupported shape.
    UnsupportedPredicate(String),
    /// An IN-subquery reached the isolator without being flattened first
    /// (see `htqo-optimizer`'s `nested` module).
    UnflattenedSubquery,
    /// A non-aggregate SELECT item that is not a plain column.
    UnsupportedSelectItem(String),
    /// ORDER BY references an unknown output column or position.
    UnknownOrderKey(String),
    /// HAVING references a label missing from the SELECT list.
    UnknownHavingLabel(String),
}

impl fmt::Display for IsolateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsolateError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            IsolateError::DuplicateBinding(b) => write!(f, "duplicate table binding `{b}`"),
            IsolateError::UnknownBinding(b) => write!(f, "unknown table binding `{b}`"),
            IsolateError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            IsolateError::AmbiguousColumn(c) => {
                write!(f, "column `{c}` is ambiguous; qualify it with a table name")
            }
            IsolateError::NonEquiJoin(p) => {
                write!(f, "non-equality join predicate not supported: {p}")
            }
            IsolateError::UnsupportedPredicate(p) => write!(f, "unsupported predicate: {p}"),
            IsolateError::UnflattenedSubquery => {
                write!(f, "IN subquery must be flattened before isolation")
            }
            IsolateError::UnsupportedSelectItem(s) => {
                write!(
                    f,
                    "unsupported SELECT item (expected column or aggregate): {s}"
                )
            }
            IsolateError::UnknownOrderKey(k) => write!(f, "unknown ORDER BY key `{k}`"),
            IsolateError::UnknownHavingLabel(k) => {
                write!(
                    f,
                    "HAVING references `{k}`, which is not a SELECT output label"
                )
            }
        }
    }
}

impl std::error::Error for IsolateError {}

/// A resolved attribute: `(atom index, column name)`.
type Attr = (usize, String);

/// Translates a parsed SELECT into a conjunctive query.
pub fn isolate(
    stmt: &SelectStmt,
    schema: &dyn SchemaProvider,
    options: IsolatorOptions,
) -> Result<ConjunctiveQuery, IsolateError> {
    // 1. Resolve FROM bindings.
    let mut bindings: Vec<(String, String, Vec<String>)> = Vec::new(); // (binding, relation, columns)
    for t in &stmt.from {
        let cols = schema
            .columns(&t.table)
            .ok_or_else(|| IsolateError::UnknownTable(t.table.clone()))?;
        let binding = t.binding().to_string();
        if bindings.iter().any(|(b, _, _)| *b == binding) {
            return Err(IsolateError::DuplicateBinding(binding));
        }
        bindings.push((binding, t.table.clone(), cols));
    }

    let resolver = Resolver {
        bindings: &bindings,
    };

    // 2. Interning of attributes and union-find over them.
    let mut attrs: Vec<Attr> = Vec::new();
    let mut attr_index: HashMap<Attr, usize> = HashMap::new();
    let mut uf = UnionFind::new(0);
    let mut intern = |attr: Attr, uf: &mut UnionFind| -> usize {
        if let Some(&i) = attr_index.get(&attr) {
            return i;
        }
        let i = attrs.len();
        attrs.push(attr.clone());
        attr_index.insert(attr, i);
        let j = uf.push();
        debug_assert_eq!(i, j);
        i
    };

    // 3. Walk WHERE: equalities between columns merge classes; predicates
    //    against constants become filters.
    let mut filters: Vec<Filter> = Vec::new();
    for p in &stmt.predicates {
        match classify(p) {
            PredShape::ColCol(l, r, op) => {
                if op != CmpOp::Eq {
                    return Err(IsolateError::NonEquiJoin(format!("{l} {} {r}", op.sql())));
                }
                let la = resolver.resolve(l)?;
                let ra = resolver.resolve(r)?;
                let li = intern(la, &mut uf);
                let ri = intern(ra, &mut uf);
                uf.union(li, ri);
            }
            PredShape::ColLit(c, op, lit) => {
                let (atom, column) = resolver.resolve(c)?;
                filters.push(Filter {
                    atom: AtomId(atom as u32),
                    column,
                    op,
                    value: lit.clone(),
                });
            }
            PredShape::Subquery => {
                return Err(IsolateError::UnflattenedSubquery);
            }
            PredShape::Other => {
                return Err(IsolateError::UnsupportedPredicate(format!("{p:?}")));
            }
        }
    }

    // 4. Attributes used by SELECT / GROUP BY / aggregate expressions also
    //    need variables (possibly in singleton classes).
    let mut select_attr_of_item: Vec<SelectResolution> = Vec::new();
    for item in &stmt.select {
        match item {
            SelectItem::Expr {
                expr: SqlExpr::Col(c),
                alias,
            } => {
                let attr = resolver.resolve(c)?;
                let i = intern(attr, &mut uf);
                select_attr_of_item.push(SelectResolution::Plain {
                    attr_idx: i,
                    label: alias.clone().unwrap_or_else(|| c.column.clone()),
                });
            }
            SelectItem::Expr { expr, .. } => {
                return Err(IsolateError::UnsupportedSelectItem(format!("{expr:?}")));
            }
            SelectItem::Aggregate { func, expr, alias } => {
                let resolved = match expr {
                    Some(e) => Some(resolve_expr(e, &resolver, &mut intern, &mut uf)?),
                    None => None,
                };
                let label = alias.clone().unwrap_or_else(|| func.to_string());
                select_attr_of_item.push(SelectResolution::Agg {
                    func: *func,
                    expr: resolved,
                    label,
                });
            }
        }
    }
    let mut group_attr: Vec<usize> = Vec::new();
    for c in &stmt.group_by {
        let attr = resolver.resolve(c)?;
        group_attr.push(intern(attr, &mut uf));
    }

    // 5. Name the equivalence classes.
    let mut names = ClassNamer::new();
    let mut var_of_class: HashMap<usize, String> = HashMap::new();
    for i in 0..attrs.len() {
        let root = uf.find(i);
        var_of_class
            .entry(root)
            // Name the class after its first-interned member's column.
            .or_insert_with(|| names.name_for(&attrs[root].1));
    }

    // 6. Build atoms: every attribute with a variable contributes an arg.
    let mut atoms: Vec<Atom> = bindings
        .iter()
        .map(|(binding, relation, _)| Atom {
            relation: relation.clone(),
            alias: binding.clone(),
            args: Vec::new(),
        })
        .collect();
    for (i, (atom_idx, column)) in attrs.iter().enumerate() {
        let root = uf.find(i);
        let var = var_of_class[&root].clone();
        atoms[*atom_idx].args.push((column.clone(), var));
    }

    // 7. Output items.
    let var_of_attr =
        |i: usize, uf: &mut UnionFind| -> String { var_of_class[&uf.find(i)].clone() };
    let mut output: Vec<OutputItem> = Vec::new();
    let mut agg_atoms: Vec<usize> = Vec::new();
    for res in &select_attr_of_item {
        match res {
            SelectResolution::Plain { attr_idx, label } => output.push(OutputItem::Var {
                var: var_of_attr(*attr_idx, &mut uf),
                label: label.clone(),
            }),
            SelectResolution::Agg { func, expr, label } => {
                let scalar = expr
                    .as_ref()
                    .map(|e| resolved_to_scalar(e, &mut uf, &var_of_class, &mut agg_atoms, &attrs));
                output.push(OutputItem::Aggregate {
                    func: *func,
                    expr: scalar,
                    label: label.clone(),
                });
            }
        }
    }
    let group_by: Vec<String> = group_attr
        .iter()
        .map(|&i| var_of_attr(i, &mut uf))
        .collect();

    // 8. Aggregate multiplicity guard: add hidden rowid variables.
    // `COUNT(*)` counts *join rows*, so it needs every atom's rowid; other
    // aggregates only need the rowids of the atoms their expressions read.
    let has_count_star = output
        .iter()
        .any(|o| matches!(o, OutputItem::Aggregate { expr: None, .. }));
    let rowid_targets: Vec<usize> = match options.agg_key_mode {
        AggKeyMode::None => Vec::new(),
        AggKeyMode::AggregateAtoms if has_count_star => (0..atoms.len()).collect(),
        AggKeyMode::AggregateAtoms => {
            let mut t = agg_atoms.clone();
            t.sort_unstable();
            t.dedup();
            t
        }
        AggKeyMode::AllAtoms => (0..atoms.len()).collect(),
    };
    let has_aggs = output
        .iter()
        .any(|o| matches!(o, OutputItem::Aggregate { .. }));
    let mut rowid_vars: Vec<String> = Vec::new();
    if has_aggs {
        for &a in &rowid_targets {
            let var = format!("__rid_{}", atoms[a].alias);
            atoms[a].args.push((ROWID_COLUMN.to_string(), var.clone()));
            rowid_vars.push(var);
        }
    }

    // 9. ORDER BY keys must name output columns.
    let labels: Vec<&str> = output.iter().map(|o| o.label()).collect();
    let mut order_by: Vec<(String, SortDir)> = Vec::new();
    for (key, dir) in &stmt.order_by {
        let label = match key {
            OrderKey::Name(n) => {
                if let Some(l) = labels.iter().find(|l| l.eq_ignore_ascii_case(n)) {
                    (*l).to_string()
                } else {
                    return Err(IsolateError::UnknownOrderKey(n.clone()));
                }
            }
            OrderKey::Position(p) => {
                let idx = p - 1;
                labels
                    .get(idx)
                    .map(|l| l.to_string())
                    .ok_or_else(|| IsolateError::UnknownOrderKey(p.to_string()))?
            }
        };
        order_by.push((label, *dir));
    }

    // HAVING labels must name SELECT outputs.
    let mut having = Vec::with_capacity(stmt.having.len());
    for (label, op, value) in &stmt.having {
        let found = output
            .iter()
            .map(|o| o.label())
            .find(|l| l.eq_ignore_ascii_case(label));
        match found {
            Some(l) => having.push((l.to_string(), *op, value.clone())),
            None => return Err(IsolateError::UnknownHavingLabel(label.clone())),
        }
    }

    let q = ConjunctiveQuery {
        atoms,
        output,
        group_by,
        order_by,
        having,
        limit: stmt.limit,
        filters,
    };
    Ok(attach_rowid_vars(q, rowid_vars))
}

/// Adds hidden rowid variables as pseudo output items labelled
/// `"__rid..."`. Evaluators project them (they are in `out(Q)`), while the
/// aggregation layer skips labels starting with `__rid`.
fn attach_rowid_vars(mut q: ConjunctiveQuery, rowid_vars: Vec<String>) -> ConjunctiveQuery {
    for v in rowid_vars {
        q.output.push(OutputItem::Var {
            var: v.clone(),
            label: v,
        });
    }
    q
}

enum SelectResolution {
    Plain {
        attr_idx: usize,
        label: String,
    },
    Agg {
        func: crate::conjunctive::AggFunc,
        expr: Option<ResolvedExpr>,
        label: String,
    },
}

/// Scalar expression with columns resolved to interned attribute indices.
#[derive(Clone, Debug)]
enum ResolvedExpr {
    Attr(usize),
    Lit(Literal),
    Binary(
        Box<ResolvedExpr>,
        crate::conjunctive::ArithOp,
        Box<ResolvedExpr>,
    ),
}

fn resolve_expr(
    e: &SqlExpr,
    resolver: &Resolver<'_>,
    intern: &mut impl FnMut(Attr, &mut UnionFind) -> usize,
    uf: &mut UnionFind,
) -> Result<ResolvedExpr, IsolateError> {
    Ok(match e {
        SqlExpr::Col(c) => {
            let attr = resolver.resolve(c)?;
            ResolvedExpr::Attr(intern(attr, uf))
        }
        SqlExpr::Lit(l) => ResolvedExpr::Lit(l.clone()),
        SqlExpr::Binary(l, op, r) => ResolvedExpr::Binary(
            Box::new(resolve_expr(l, resolver, intern, uf)?),
            *op,
            Box::new(resolve_expr(r, resolver, intern, uf)?),
        ),
    })
}

fn resolved_to_scalar(
    e: &ResolvedExpr,
    uf: &mut UnionFind,
    var_of_class: &HashMap<usize, String>,
    agg_atoms: &mut Vec<usize>,
    attrs: &[Attr],
) -> ScalarExpr {
    match e {
        ResolvedExpr::Attr(i) => {
            agg_atoms.push(attrs[*i].0);
            ScalarExpr::Var(var_of_class[&uf.find(*i)].clone())
        }
        ResolvedExpr::Lit(l) => ScalarExpr::Lit(l.clone()),
        ResolvedExpr::Binary(l, op, r) => ScalarExpr::Binary(
            Box::new(resolved_to_scalar(l, uf, var_of_class, agg_atoms, attrs)),
            *op,
            Box::new(resolved_to_scalar(r, uf, var_of_class, agg_atoms, attrs)),
        ),
    }
}

/// Shape of a WHERE conjunct.
enum PredShape<'a> {
    ColCol(&'a ColumnRef, &'a ColumnRef, CmpOp),
    ColLit(&'a ColumnRef, CmpOp, &'a Literal),
    Subquery,
    Other,
}

fn classify(p: &Predicate) -> PredShape<'_> {
    let Predicate::Cmp { left, op, right } = p else {
        // IN subqueries must be flattened (optimizer::nested) before the
        // structural analysis sees the statement.
        return PredShape::Subquery;
    };
    match (left, right) {
        (SqlExpr::Col(l), SqlExpr::Col(r)) => PredShape::ColCol(l, r, *op),
        (SqlExpr::Col(c), SqlExpr::Lit(l)) => PredShape::ColLit(c, *op, l),
        (SqlExpr::Lit(l), SqlExpr::Col(c)) => PredShape::ColLit(c, flip(*op), l),
        _ => PredShape::Other,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

struct Resolver<'a> {
    bindings: &'a [(String, String, Vec<String>)],
}

impl Resolver<'_> {
    fn resolve(&self, c: &ColumnRef) -> Result<Attr, IsolateError> {
        match &c.qualifier {
            Some(q) => {
                let (idx, (_, _, cols)) = self
                    .bindings
                    .iter()
                    .enumerate()
                    .find(|(_, (b, _, _))| b.eq_ignore_ascii_case(q))
                    .ok_or_else(|| IsolateError::UnknownBinding(q.clone()))?;
                // The hidden rowid pseudo-column resolves on any table
                // (used by the SQL-view rewriter round-trip).
                if c.column.eq_ignore_ascii_case(ROWID_COLUMN) {
                    return Ok((idx, ROWID_COLUMN.to_string()));
                }
                let col = cols
                    .iter()
                    .find(|col| col.eq_ignore_ascii_case(&c.column))
                    .ok_or_else(|| IsolateError::UnknownColumn(c.to_string()))?;
                Ok((idx, col.clone()))
            }
            None => {
                let mut owner: Option<Attr> = None;
                for (idx, (_, _, cols)) in self.bindings.iter().enumerate() {
                    if let Some(col) = cols.iter().find(|col| col.eq_ignore_ascii_case(&c.column)) {
                        if owner.is_some() {
                            return Err(IsolateError::AmbiguousColumn(c.column.clone()));
                        }
                        owner = Some((idx, col.clone()));
                    }
                }
                owner.ok_or_else(|| IsolateError::UnknownColumn(c.column.clone()))
            }
        }
    }
}

/// Assigns human-readable, unique variable names to equivalence classes.
struct ClassNamer {
    used: HashMap<String, usize>,
}

impl ClassNamer {
    fn new() -> Self {
        ClassNamer {
            used: HashMap::new(),
        }
    }

    fn name_for(&mut self, column: &str) -> String {
        let base = column.to_ascii_uppercase();
        let n = self.used.entry(base.clone()).or_insert(0);
        *n += 1;
        if *n == 1 {
            base
        } else {
            format!("{base}_{n}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_select;

    fn tpch_schema() -> MapSchema {
        MapSchema::new()
            .table("customer", &["c_custkey", "c_name", "c_nationkey"])
            .table("orders", &["o_orderkey", "o_custkey", "o_orderdate"])
            .table(
                "lineitem",
                &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
            )
            .table("supplier", &["s_suppkey", "s_nationkey"])
            .table("nation", &["n_nationkey", "n_name", "n_regionkey"])
            .table("region", &["r_regionkey", "r_name"])
    }

    fn q5() -> ConjunctiveQuery {
        let stmt = parse_select(
            "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
             FROM customer, orders, lineitem, supplier, nation, region
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
               AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
               AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
               AND r_name = 'ASIA'
               AND o_orderdate >= date '1994-01-01'
               AND o_orderdate < date '1994-01-01' + interval '1' year
             GROUP BY n_name ORDER BY revenue DESC",
        )
        .unwrap();
        isolate(&stmt, &tpch_schema(), IsolatorOptions::default()).unwrap()
    }

    #[test]
    fn q5_matches_paper_example_1() {
        let q = q5();
        assert_eq!(q.atoms.len(), 6);
        // Equivalence class {c_nationkey, s_nationkey, n_nationkey} is one
        // variable shared by customer, supplier and nation.
        let cust = &q.atoms[0];
        let supp = &q.atoms[3];
        let nat = &q.atoms[4];
        let v = cust.var_of_column("c_nationkey").unwrap();
        assert_eq!(supp.var_of_column("s_nationkey"), Some(v));
        assert_eq!(nat.var_of_column("n_nationkey"), Some(v));
        // o_orderdate occurs only against constants → no variable, two filters.
        assert!(q.atoms[1].var_of_column("o_orderdate").is_none());
        assert_eq!(
            q.filters
                .iter()
                .filter(|f| f.column == "o_orderdate")
                .count(),
            2
        );
        // r_name = 'ASIA' is a filter on region.
        assert!(q
            .filters
            .iter()
            .any(|f| f.column == "r_name" && f.op == CmpOp::Eq));
        // out(Q) ⊇ {N_NAME, L_EXTENDEDPRICE, L_DISCOUNT}.
        let out = q.out_vars();
        assert!(out.iter().any(|v| v == "N_NAME"));
        assert!(out.iter().any(|v| v == "L_EXTENDEDPRICE"));
        assert!(out.iter().any(|v| v == "L_DISCOUNT"));
        // Default agg-key mode adds lineitem's hidden rowid to out(Q).
        assert!(out.iter().any(|v| v.starts_with("__rid_lineitem")));
        // The hypergraph is cyclic (checked via GYO).
        let ch = q.hypergraph();
        assert!(!htqo_hypergraph::acyclic::is_acyclic(&ch.hypergraph));
    }

    #[test]
    fn paper_pure_mode_adds_no_rowids() {
        let stmt = parse_select(
            "SELECT n_name, sum(l_discount) FROM nation, lineitem, supplier
             WHERE n_nationkey = s_nationkey AND s_suppkey = l_suppkey GROUP BY n_name",
        )
        .unwrap();
        let q = isolate(
            &stmt,
            &tpch_schema(),
            IsolatorOptions {
                agg_key_mode: AggKeyMode::None,
            },
        )
        .unwrap();
        assert!(!q.out_vars().iter().any(|v| v.starts_with("__rid")));
    }

    #[test]
    fn all_atoms_mode_adds_every_rowid() {
        let stmt =
            parse_select("SELECT count(*) FROM customer, orders WHERE c_custkey = o_custkey")
                .unwrap();
        let q = isolate(
            &stmt,
            &tpch_schema(),
            IsolatorOptions {
                agg_key_mode: AggKeyMode::AllAtoms,
            },
        )
        .unwrap();
        assert_eq!(
            q.out_vars()
                .iter()
                .filter(|v| v.starts_with("__rid"))
                .count(),
            2
        );
    }

    #[test]
    fn count_star_guards_every_atom() {
        // COUNT(*) counts join rows, so the default mode must add every
        // atom's rowid (otherwise set semantics collapses the count to
        // one per group).
        let stmt = parse_select(
            "SELECT n_name, count(*) FROM nation, supplier WHERE n_nationkey = s_nationkey GROUP BY n_name",
        )
        .unwrap();
        let q = isolate(&stmt, &tpch_schema(), IsolatorOptions::default()).unwrap();
        assert_eq!(
            q.out_vars()
                .iter()
                .filter(|v| v.starts_with("__rid"))
                .count(),
            2
        );
    }

    #[test]
    fn unqualified_ambiguous_column_is_rejected() {
        let schema = MapSchema::new().table("a", &["x"]).table("b", &["x"]);
        let stmt = parse_select("SELECT x FROM a, b").unwrap();
        let err = isolate(&stmt, &schema, IsolatorOptions::default()).unwrap_err();
        assert_eq!(err, IsolateError::AmbiguousColumn("x".into()));
    }

    #[test]
    fn qualified_columns_disambiguate() {
        let schema = MapSchema::new().table("a", &["x"]).table("b", &["x"]);
        let stmt = parse_select("SELECT a.x FROM a, b WHERE a.x = b.x").unwrap();
        let q = isolate(&stmt, &schema, IsolatorOptions::default()).unwrap();
        // One shared variable between the two atoms.
        assert_eq!(q.atoms[0].args[0].1, q.atoms[1].args[0].1);
    }

    #[test]
    fn self_join_with_aliases() {
        let schema = MapSchema::new().table("r", &["a", "b"]);
        let stmt = parse_select("SELECT r1.a FROM r r1, r r2 WHERE r1.b = r2.a").unwrap();
        let q = isolate(&stmt, &schema, IsolatorOptions::default()).unwrap();
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.atoms[0].alias, "r1");
        assert_eq!(q.atoms[1].alias, "r2");
        assert_eq!(q.atoms[0].var_of_column("b"), q.atoms[1].var_of_column("a"));
    }

    #[test]
    fn duplicate_bindings_rejected() {
        let schema = MapSchema::new().table("r", &["a"]);
        let stmt = parse_select("SELECT a FROM r, r").unwrap();
        assert_eq!(
            isolate(&stmt, &schema, IsolatorOptions::default()).unwrap_err(),
            IsolateError::DuplicateBinding("r".into())
        );
    }

    #[test]
    fn unknown_table_and_column() {
        let schema = MapSchema::new().table("r", &["a"]);
        let stmt = parse_select("SELECT a FROM nope").unwrap();
        assert_eq!(
            isolate(&stmt, &schema, IsolatorOptions::default()).unwrap_err(),
            IsolateError::UnknownTable("nope".into())
        );
        let stmt2 = parse_select("SELECT z FROM r").unwrap();
        assert_eq!(
            isolate(&stmt2, &schema, IsolatorOptions::default()).unwrap_err(),
            IsolateError::UnknownColumn("z".into())
        );
    }

    #[test]
    fn non_equi_join_rejected() {
        let schema = MapSchema::new().table("a", &["x"]).table("b", &["y"]);
        let stmt = parse_select("SELECT x FROM a, b WHERE x < y").unwrap();
        assert!(matches!(
            isolate(&stmt, &schema, IsolatorOptions::default()).unwrap_err(),
            IsolateError::NonEquiJoin(_)
        ));
    }

    #[test]
    fn constant_on_left_flips_operator() {
        let schema = MapSchema::new().table("r", &["a"]);
        let stmt = parse_select("SELECT a FROM r WHERE 5 < a").unwrap();
        let q = isolate(&stmt, &schema, IsolatorOptions::default()).unwrap();
        assert_eq!(q.filters[0].op, CmpOp::Gt);
        assert_eq!(q.filters[0].value, Literal::Int(5));
    }

    #[test]
    fn order_by_position_and_unknown_key() {
        let schema = MapSchema::new().table("r", &["a", "b"]);
        let stmt = parse_select("SELECT a, b FROM r ORDER BY 2 DESC").unwrap();
        let q = isolate(&stmt, &schema, IsolatorOptions::default()).unwrap();
        assert_eq!(q.order_by[0], ("b".to_string(), SortDir::Desc));
        let stmt2 = parse_select("SELECT a FROM r ORDER BY zz").unwrap();
        assert!(matches!(
            isolate(&stmt2, &schema, IsolatorOptions::default()).unwrap_err(),
            IsolateError::UnknownOrderKey(_)
        ));
    }

    #[test]
    fn variable_names_are_unique() {
        // Two unrelated classes whose representative column is `x`.
        let schema = MapSchema::new().table("a", &["x"]).table("b", &["x"]);
        let stmt = parse_select("SELECT a.x, b.x FROM a, b").unwrap();
        let q = isolate(&stmt, &schema, IsolatorOptions::default()).unwrap();
        let v0 = q.atoms[0].args[0].1.clone();
        let v1 = q.atoms[1].args[0].1.clone();
        assert_ne!(v0, v1);
    }

    #[test]
    fn having_labels_resolve_or_error() {
        let schema = MapSchema::new().table("r", &["g", "x"]);
        let stmt =
            parse_select("SELECT g, sum(x) AS total FROM r GROUP BY g HAVING total > 5").unwrap();
        let q = isolate(&stmt, &schema, IsolatorOptions::default()).unwrap();
        assert_eq!(q.having.len(), 1);
        assert_eq!(q.having[0].0, "total");
        let bad = parse_select("SELECT g FROM r GROUP BY g HAVING nope = 1").unwrap();
        assert!(matches!(
            isolate(&bad, &schema, IsolatorOptions::default()).unwrap_err(),
            IsolateError::UnknownHavingLabel(_)
        ));
    }

    #[test]
    fn filter_only_columns_get_no_variables() {
        let schema = MapSchema::new().table("r", &["a", "b"]);
        let stmt = parse_select("SELECT a FROM r WHERE b = 3").unwrap();
        let q = isolate(&stmt, &schema, IsolatorOptions::default()).unwrap();
        assert!(q.atoms[0].var_of_column("b").is_none());
        assert_eq!(q.filters.len(), 1);
    }
}
