//! Proleptic-Gregorian date helpers (days since 1970-01-01).
//!
//! TPC-H predicates use `date 'YYYY-MM-DD'` literals and
//! `+ interval 'n' year/month/day` arithmetic; we fold both into plain day
//! counts at parse time so the engine only ever compares integers.

/// Converts a civil date to days since 1970-01-01.
///
/// Uses Howard Hinnant's `days_from_civil` algorithm; valid over the whole
/// `i32` day range.
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i32 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((month as i64) + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + (day as i64) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146097 + doe - 719468) as i32
}

/// Converts days since 1970-01-01 back to a civil `(year, month, day)`.
pub fn civil_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m, d)
}

/// Parses `YYYY-MM-DD` into days since epoch. Returns `None` on malformed
/// input or out-of-range components.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let year: i32 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some(days_from_civil(year, month, day))
}

/// Formats days since epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Adds `n` calendar units to a date (days since epoch). Month/year
/// arithmetic clamps the day-of-month (e.g. Jan 31 + 1 month = Feb 28/29),
/// matching common SQL behaviour.
pub fn add_interval(days: i32, n: i32, unit: IntervalUnit) -> i32 {
    match unit {
        IntervalUnit::Day => days + n,
        IntervalUnit::Month => {
            let (y, m, d) = civil_from_days(days);
            let total = (y as i64) * 12 + (m as i64 - 1) + n as i64;
            let ny = (total.div_euclid(12)) as i32;
            let nm = (total.rem_euclid(12)) as u32 + 1;
            let nd = d.min(days_in_month(ny, nm));
            days_from_civil(ny, nm, nd)
        }
        IntervalUnit::Year => add_interval(days, n * 12, IntervalUnit::Month),
    }
}

/// Units accepted in `interval 'n' <unit>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntervalUnit {
    /// Calendar days.
    Day,
    /// Calendar months (day-of-month clamped).
    Month,
    /// Calendar years (day-of-month clamped).
    Year,
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month out of range"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn roundtrip_many_days() {
        for days in (-1_000_000..1_000_000).step_by(9973) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days);
        }
    }

    #[test]
    fn known_dates() {
        assert_eq!(parse_date("1994-01-01"), Some(8766));
        assert_eq!(format_date(8766), "1994-01-01");
        assert_eq!(parse_date("1998-12-01"), Some(days_from_civil(1998, 12, 1)));
    }

    #[test]
    fn malformed_dates_rejected() {
        assert_eq!(parse_date("not-a-date"), None);
        assert_eq!(parse_date("1994-13-01"), None);
        assert_eq!(parse_date("1994-01"), None);
        assert_eq!(parse_date("1994-01-01-01"), None);
    }

    #[test]
    fn interval_year_addition() {
        let d = parse_date("1994-01-01").unwrap();
        assert_eq!(
            format_date(add_interval(d, 1, IntervalUnit::Year)),
            "1995-01-01"
        );
    }

    #[test]
    fn interval_month_clamps() {
        let d = parse_date("1996-01-31").unwrap();
        assert_eq!(
            format_date(add_interval(d, 1, IntervalUnit::Month)),
            "1996-02-29"
        );
        let d2 = parse_date("1995-01-31").unwrap();
        assert_eq!(
            format_date(add_interval(d2, 1, IntervalUnit::Month)),
            "1995-02-28"
        );
    }

    #[test]
    fn interval_day_addition() {
        let d = parse_date("1994-12-31").unwrap();
        assert_eq!(
            format_date(add_interval(d, 1, IntervalUnit::Day)),
            "1995-01-01"
        );
    }

    #[test]
    fn negative_intervals() {
        let d = parse_date("1994-03-01").unwrap();
        assert_eq!(
            format_date(add_interval(d, -1, IntervalUnit::Month)),
            "1994-02-01"
        );
        assert_eq!(
            format_date(add_interval(d, -2, IntervalUnit::Year)),
            "1992-03-01"
        );
    }
}
