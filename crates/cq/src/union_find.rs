//! A small union–find (disjoint set) structure used by the Conjunctive
//! Query Isolator to merge attributes linked by equality predicates into
//! equivalence classes (each class becomes one query variable).

/// Union–find over `0..n` with path compression and union by rank.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Adds a fresh singleton, returning its index.
    pub fn push(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i);
        self.rank.push(0);
        i
    }

    /// Representative of `x`'s class.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the classes of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => {
                self.parent[ra] = rb;
                rb
            }
            std::cmp::Ordering::Greater => {
                self.parent[rb] = ra;
                ra
            }
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
                ra
            }
        }
    }

    /// True if `a` and `b` are in the same class.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::new(3);
        assert!(!uf.same(0, 1));
        assert!(uf.same(2, 2));
    }

    #[test]
    fn union_merges_transitively() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn push_adds_singletons() {
        let mut uf = UnionFind::new(1);
        let i = uf.push();
        assert_eq!(i, 1);
        assert!(!uf.same(0, 1));
        uf.union(0, 1);
        assert!(uf.same(0, 1));
    }

    #[test]
    fn find_is_stable_under_compression() {
        let mut uf = UnionFind::new(6);
        for i in 0..5 {
            uf.union(i, i + 1);
        }
        let rep = uf.find(0);
        for i in 0..6 {
            assert_eq!(uf.find(i), rep);
        }
    }
}
