//! SQL front end: lexer, AST and parser for the paper's SQL subset.

pub mod ast;
pub mod lexer;
pub mod parser;
