//! Abstract syntax tree for the SQL subset: single-block conjunctive
//! `SELECT` statements with aggregates, grouping and ordering — the class
//! of queries the paper's optimizer handles (§2, "SQL Queries").

use crate::conjunctive::{AggFunc, ArithOp, CmpOp, Literal, SortDir};

/// A column reference, optionally qualified by a table alias:
/// `c_custkey` or `customer.c_custkey`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table name or alias, when qualified.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// A scalar SQL expression (columns, literals, arithmetic).
#[derive(Clone, Debug, PartialEq)]
pub enum SqlExpr {
    /// Column reference.
    Col(ColumnRef),
    /// Constant literal (date arithmetic already folded).
    Lit(Literal),
    /// Binary arithmetic.
    Binary(Box<SqlExpr>, ArithOp, Box<SqlExpr>),
}

impl SqlExpr {
    /// All column references in the expression, in occurrence order.
    pub fn columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            SqlExpr::Col(c) => out.push(c),
            SqlExpr::Lit(_) => {}
            SqlExpr::Binary(l, _, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
        }
    }
}

/// One item of the SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// A scalar expression, optionally labelled with `AS`.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// Optional output label.
        alias: Option<String>,
    },
    /// An aggregate call, optionally labelled with `AS`.
    /// `expr == None` encodes `COUNT(*)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Aggregated expression (`None` for `COUNT(*)`).
        expr: Option<SqlExpr>,
        /// Optional output label.
        alias: Option<String>,
    },
}

/// A table in the FROM list, optionally aliased.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRef {
    /// Relation name.
    pub table: String,
    /// Optional alias (`FROM orders o` / `FROM orders AS o`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name the rest of the query refers to this table by.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// One conjunct of the WHERE clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// A comparison `left op right`.
    Cmp {
        /// Left operand.
        left: SqlExpr,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: SqlExpr,
    },
    /// An (uncorrelated) membership test `col IN (SELECT …)` — the
    /// "nested queries" extension the paper leaves as future work. The
    /// optimizer flattens these into joins against materialized subquery
    /// results before structural analysis.
    InSubquery {
        /// The tested column.
        col: ColumnRef,
        /// The subquery (must produce a single output column).
        subquery: Box<SelectStmt>,
        /// `NOT IN` when true.
        negated: bool,
    },
}

/// ORDER BY key: a SELECT label/column name or a 1-based output position.
#[derive(Clone, Debug, PartialEq)]
pub enum OrderKey {
    /// Named output column (a SELECT alias or a column name).
    Name(String),
    /// 1-based position in the SELECT list.
    Position(usize),
}

/// A parsed single-block SELECT statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM tables.
    pub from: Vec<TableRef>,
    /// Conjunctive WHERE predicates.
    pub predicates: Vec<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// HAVING conjuncts over SELECT labels: `(label, op, constant)`.
    /// (Restriction: the filtered expression must appear — aliased — in
    /// the SELECT list, e.g. `… sum(x) AS total … HAVING total > 10`.)
    pub having: Vec<(String, CmpOp, Literal)>,
    /// ORDER BY keys.
    pub order_by: Vec<(OrderKey, SortDir)>,
    /// LIMIT row count, if any.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_display() {
        let c = ColumnRef {
            qualifier: Some("t".into()),
            column: "x".into(),
        };
        assert_eq!(c.to_string(), "t.x");
        let u = ColumnRef {
            qualifier: None,
            column: "x".into(),
        };
        assert_eq!(u.to_string(), "x");
    }

    #[test]
    fn expr_columns_in_order() {
        let e = SqlExpr::Binary(
            Box::new(SqlExpr::Col(ColumnRef {
                qualifier: None,
                column: "a".into(),
            })),
            ArithOp::Mul,
            Box::new(SqlExpr::Binary(
                Box::new(SqlExpr::Lit(Literal::Int(1))),
                ArithOp::Sub,
                Box::new(SqlExpr::Col(ColumnRef {
                    qualifier: None,
                    column: "b".into(),
                })),
            )),
        );
        let cols: Vec<String> = e.columns().iter().map(|c| c.column.clone()).collect();
        assert_eq!(cols, vec!["a", "b"]);
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            table: "orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(t.binding(), "o");
        let u = TableRef {
            table: "orders".into(),
            alias: None,
        };
        assert_eq!(u.binding(), "orders");
    }
}
