//! Hand-written SQL lexer for the subset the paper works with: single-block
//! `SELECT ... FROM ... WHERE ... GROUP BY ... ORDER BY` queries.

use std::fmt;

/// A lexical token with its source position (byte offset).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the input (for error messages).
    pub offset: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognised by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Semi => f.write_str(";"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::Ne => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
        }
    }
}

/// A lexing error with position.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`. SQL comments (`-- ...`) are skipped.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: i,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: i,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: i,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: i,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: i,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::Ne,
                    offset: i,
                });
                i += 2;
            }
            '<' => {
                let (kind, step) = match bytes.get(i + 1) {
                    Some(&b'=') => (TokenKind::Le, 2),
                    Some(&b'>') => (TokenKind::Ne, 2),
                    _ => (TokenKind::Lt, 1),
                };
                tokens.push(Token { kind, offset: i });
                i += step;
            }
            '>' => {
                let (kind, step) = match bytes.get(i + 1) {
                    Some(&b'=') => (TokenKind::Ge, 2),
                    _ => (TokenKind::Gt, 1),
                };
                tokens.push(Token { kind, offset: i });
                i += step;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        // '' is an escaped quote.
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        message: format!("invalid float literal `{text}`"),
                        offset: start,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        message: format!("integer literal `{text}` out of range"),
                        offset: start,
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_select() {
        let ks = kinds("SELECT a FROM t;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn operators() {
        let ks = kinds("a = b <> c <= d >= e < f > g != h");
        let ops: Vec<&TokenKind> = ks
            .iter()
            .filter(|k| !matches!(k, TokenKind::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &TokenKind::Eq,
                &TokenKind::Ne,
                &TokenKind::Le,
                &TokenKind::Ge,
                &TokenKind::Lt,
                &TokenKind::Gt,
                &TokenKind::Ne,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42)]);
        assert_eq!(kinds("3.5"), vec![TokenKind::Float(3.5)]);
        // A dot not followed by a digit is a separate token.
        assert_eq!(
            kinds("t.c"),
            vec![
                TokenKind::Ident("t".into()),
                TokenKind::Dot,
                TokenKind::Ident("c".into())
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'abc'"), vec![TokenKind::Str("abc".into())]);
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = lex("'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("a -- comment here\n b");
        assert_eq!(ks.len(), 2);
    }

    #[test]
    fn arithmetic_and_parens() {
        let ks = kinds("sum(x*(1-y))");
        assert!(ks.contains(&TokenKind::Star));
        assert!(ks.contains(&TokenKind::Minus));
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::LParen).count(), 2);
    }

    #[test]
    fn unexpected_character() {
        let err = lex("a ? b").unwrap_err();
        assert!(err.message.contains('?'));
    }

    #[test]
    fn offsets_are_recorded() {
        let toks = lex("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }
}
