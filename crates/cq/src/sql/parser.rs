//! Recursive-descent parser for the SQL subset (see [`crate::sql::ast`]).
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! stmt      := SELECT item (',' item)* FROM table (',' table)*
//!              [WHERE pred (AND pred)*]
//!              [GROUP BY colref (',' colref)*]
//!              [HAVING ident cmp literal (AND ident cmp literal)*]
//!              [LIMIT int]
//!              [ORDER BY okey [ASC|DESC] (',' okey [ASC|DESC])*] [';']
//! item      := agg | expr [AS ident]
//! agg       := (SUM|COUNT|MIN|MAX|AVG) '(' ('*' | expr) ')' [AS ident]
//! expr      := mul (('+'|'-') mul)*
//! mul       := atom (('*'|'/') atom)*
//! atom      := literal | colref | '(' expr ')'
//! literal   := int | float | string | DATE string [('+'|'-') INTERVAL string unit]
//! pred      := expr cmp expr
//! table     := ident [AS? ident]
//! colref    := ident ['.' ident]
//! okey      := int | ident
//! ```
//!
//! Date arithmetic (`date '1994-01-01' + interval '1' year`) is folded into
//! a plain [`Literal::Date`] at parse time.

use super::ast::*;
use super::lexer::{lex, LexError, Token, TokenKind};
use crate::conjunctive::{AggFunc, ArithOp, CmpOp, Literal, SortDir};
use crate::date::{add_interval, parse_date, IntervalUnit};
use std::fmt;

/// A parse error with byte offset (when available).
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input, when known.
    pub offset: Option<usize>,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "parse error at byte {o}: {}", self.message),
            None => write!(f, "parse error: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: Some(e.offset),
        }
    }
}

/// Parses a single SELECT statement.
pub fn parse_select(input: &str) -> Result<SelectStmt, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.stmt()?;
    p.eat_kind(&TokenKind::Semi); // optional trailing semicolon
    if let Some(t) = p.peek() {
        return Err(p.err_at(format!("unexpected trailing token `{}`", t.kind)));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_at(&self, message: String) -> ParseError {
        ParseError {
            message,
            offset: self.peek().map(|t| t.offset),
        }
    }

    /// Consumes the next token if it equals `kind`.
    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Peeks: is the next token the given keyword (case-insensitive)?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { kind: TokenKind::Ident(s), .. }) if s.eq_ignore_ascii_case(kw))
    }

    /// Consumes the given keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Requires the given keyword.
    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_at(format!("expected keyword `{kw}`")))
        }
    }

    /// Requires an identifier that is not a reserved keyword.
    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) if !is_reserved(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err_at("expected identifier".into())),
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            Err(self.err_at(format!("expected `{kind}`")))
        }
    }

    fn stmt(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_keyword("SELECT")?;
        // DISTINCT is accepted and ignored: conjunctive-query answers are
        // sets by definition (Section 2 of the paper), which is exactly
        // SELECT DISTINCT semantics. The view rewriter emits it for
        // portability to real DBMSs.
        self.eat_keyword("DISTINCT");
        let mut select = vec![self.select_item()?];
        while self.eat_kind(&TokenKind::Comma) {
            select.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.eat_kind(&TokenKind::Comma) {
            from.push(self.table_ref()?);
        }
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            predicates.push(self.predicate()?);
            while self.eat_keyword("AND") {
                predicates.push(self.predicate()?);
            }
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.column_ref()?);
            while self.eat_kind(&TokenKind::Comma) {
                group_by.push(self.column_ref()?);
            }
        }
        let mut having = Vec::new();
        if self.eat_keyword("HAVING") {
            loop {
                let label = self.expect_ident()?;
                let op = self.cmp_op()?;
                let value = match self.expr()? {
                    SqlExpr::Lit(l) => l,
                    other => {
                        return Err(self.err_at(format!(
                            "HAVING compares a SELECT label with a constant, found {other:?}"
                        )))
                    }
                };
                having.push((label, op, value));
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let key = self.order_key()?;
                let dir = if self.eat_keyword("DESC") {
                    SortDir::Desc
                } else {
                    self.eat_keyword("ASC");
                    SortDir::Asc
                };
                order_by.push((key, dir));
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token {
                    kind: TokenKind::Int(n),
                    ..
                }) if n >= 0 => Some(n as usize),
                _ => return Err(self.err_at("expected a non-negative integer after LIMIT".into())),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            select,
            from,
            predicates,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if let Some(func) = self.peek_agg_func() {
            self.pos += 1;
            self.expect_kind(&TokenKind::LParen)?;
            let expr = if self.eat_kind(&TokenKind::Star) {
                if func != AggFunc::Count {
                    return Err(self.err_at("only COUNT may take `*`".into()));
                }
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_kind(&TokenKind::RParen)?;
            let alias = self.opt_alias()?;
            return Ok(SelectItem::Aggregate { func, expr, alias });
        }
        let expr = self.expr()?;
        let alias = self.opt_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn peek_agg_func(&self) -> Option<AggFunc> {
        // An aggregate is an agg keyword immediately followed by `(`.
        let Token {
            kind: TokenKind::Ident(s),
            ..
        } = self.peek()?
        else {
            return None;
        };
        if !matches!(
            self.tokens.get(self.pos + 1),
            Some(Token {
                kind: TokenKind::LParen,
                ..
            })
        ) {
            return None;
        }
        match s.to_ascii_uppercase().as_str() {
            "SUM" => Some(AggFunc::Sum),
            "COUNT" => Some(AggFunc::Count),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        }
    }

    fn opt_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_keyword("AS") {
            return Ok(Some(self.expect_ident()?));
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.expect_ident()?;
        let has_bare_alias = matches!(
            self.peek(),
            Some(Token { kind: TokenKind::Ident(s), .. }) if !is_reserved(s)
        );
        let alias = if self.eat_keyword("AS") || has_bare_alias {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let left = self.expr()?;
        // `col [NOT] IN (SELECT …)` — the nested-query extension.
        let negated = if self.at_keyword("NOT") {
            self.pos += 1;
            self.expect_keyword("IN")?;
            true
        } else if self.eat_keyword("IN") {
            false
        } else {
            let op = self.cmp_op()?;
            let right = self.expr()?;
            return Ok(Predicate::Cmp { left, op, right });
        };
        let SqlExpr::Col(col) = left else {
            return Err(self.err_at("IN requires a column on its left".into()));
        };
        self.expect_kind(&TokenKind::LParen)?;
        let subquery = Box::new(self.stmt()?);
        self.expect_kind(&TokenKind::RParen)?;
        Ok(Predicate::InSubquery {
            col,
            subquery,
            negated,
        })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let Some(t) = self.peek() else {
            return Err(self.err_at("expected comparison operator".into()));
        };
        let op = match t.kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => {
                return Err(self.err_at(format!("expected comparison operator, found `{}`", t.kind)))
            }
        };
        self.pos += 1;
        Ok(op)
    }

    fn expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = if self.eat_kind(&TokenKind::Plus) {
                ArithOp::Add
            } else if self.eat_kind(&TokenKind::Minus) {
                ArithOp::Sub
            } else {
                break;
            };
            // `date '...' + interval ...` folding happens in `atom`, so a
            // bare `+ interval` here applies to an arbitrary date expression
            // only when the left side is a literal date.
            if self.at_keyword("INTERVAL") {
                let (n, unit) = self.interval()?;
                let n = if op == ArithOp::Sub { -n } else { n };
                match left {
                    SqlExpr::Lit(Literal::Date(d)) => {
                        left = SqlExpr::Lit(Literal::Date(add_interval(d, n, unit)));
                        continue;
                    }
                    _ => {
                        return Err(
                            self.err_at("interval arithmetic requires a date literal".into())
                        )
                    }
                }
            }
            let right = self.mul_expr()?;
            left = SqlExpr::Binary(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.atom()?;
        loop {
            let op = if self.eat_kind(&TokenKind::Star) {
                ArithOp::Mul
            } else if self.eat_kind(&TokenKind::Slash) {
                ArithOp::Div
            } else {
                break;
            };
            let right = self.atom()?;
            left = SqlExpr::Binary(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<SqlExpr, ParseError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Int(i)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Literal::Int(i)))
            }
            Some(TokenKind::Float(x)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Literal::Float(x)))
            }
            Some(TokenKind::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Literal::Str(s)))
            }
            Some(TokenKind::Minus) => {
                self.pos += 1;
                match self.atom()? {
                    SqlExpr::Lit(Literal::Int(i)) => Ok(SqlExpr::Lit(Literal::Int(-i))),
                    SqlExpr::Lit(Literal::Float(x)) => Ok(SqlExpr::Lit(Literal::Float(-x))),
                    e => Ok(SqlExpr::Binary(
                        Box::new(SqlExpr::Lit(Literal::Int(0))),
                        ArithOp::Sub,
                        Box::new(e),
                    )),
                }
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_kind(&TokenKind::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("DATE") => {
                self.pos += 1;
                let Some(Token {
                    kind: TokenKind::Str(d),
                    ..
                }) = self.next()
                else {
                    return Err(self.err_at("expected string after DATE".into()));
                };
                let days = parse_date(&d)
                    .ok_or_else(|| self.err_at(format!("invalid date literal '{d}'")))?;
                Ok(SqlExpr::Lit(Literal::Date(days)))
            }
            Some(TokenKind::Ident(_)) => {
                let c = self.column_ref()?;
                Ok(SqlExpr::Col(c))
            }
            other => Err(self.err_at(format!("expected expression, found {other:?}"))),
        }
    }

    /// Parses `INTERVAL 'n' (YEAR|MONTH|DAY)` (the INTERVAL keyword is the
    /// current token).
    fn interval(&mut self) -> Result<(i32, IntervalUnit), ParseError> {
        self.expect_keyword("INTERVAL")?;
        let Some(Token {
            kind: TokenKind::Str(n),
            ..
        }) = self.next()
        else {
            return Err(self.err_at("expected quoted number after INTERVAL".into()));
        };
        let n: i32 = n
            .trim()
            .parse()
            .map_err(|_| self.err_at(format!("invalid interval count '{n}'")))?;
        let unit = if self.eat_keyword("YEAR") {
            IntervalUnit::Year
        } else if self.eat_keyword("MONTH") {
            IntervalUnit::Month
        } else if self.eat_keyword("DAY") {
            IntervalUnit::Day
        } else {
            return Err(self.err_at("expected YEAR, MONTH or DAY".into()));
        };
        Ok((n, unit))
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.expect_ident()?;
        if self.eat_kind(&TokenKind::Dot) {
            let column = self.expect_ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
            })
        }
    }

    fn order_key(&mut self) -> Result<OrderKey, ParseError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Int(i)) if i >= 1 => {
                self.pos += 1;
                Ok(OrderKey::Position(i as usize))
            }
            Some(TokenKind::Ident(_)) => Ok(OrderKey::Name(self.expect_ident()?)),
            _ => Err(self.err_at("expected ORDER BY key".into())),
        }
    }
}

fn is_reserved(s: &str) -> bool {
    matches!(
        s.to_ascii_uppercase().as_str(),
        "SELECT"
            | "FROM"
            | "WHERE"
            | "GROUP"
            | "ORDER"
            | "BY"
            | "AS"
            | "AND"
            | "ASC"
            | "DESC"
            | "HAVING"
            | "LIMIT"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let s = parse_select("SELECT a FROM t").unwrap();
        assert_eq!(s.select.len(), 1);
        assert_eq!(s.from.len(), 1);
        assert!(s.predicates.is_empty());
    }

    #[test]
    fn aliases_and_qualifiers() {
        let s = parse_select("SELECT o.x AS out1 FROM orders AS o, lineitem l").unwrap();
        assert_eq!(s.from[0].binding(), "o");
        assert_eq!(s.from[1].binding(), "l");
        match &s.select[0] {
            SelectItem::Expr {
                expr: SqlExpr::Col(c),
                alias,
            } => {
                assert_eq!(c.qualifier.as_deref(), Some("o"));
                assert_eq!(alias.as_deref(), Some("out1"));
            }
            other => panic!("unexpected item: {other:?}"),
        }
    }

    #[test]
    fn where_conjunction() {
        let s = parse_select("SELECT a FROM t, u WHERE t.a = u.b AND t.c >= 5").unwrap();
        assert_eq!(s.predicates.len(), 2);
        assert!(matches!(
            s.predicates[1],
            Predicate::Cmp { op: CmpOp::Ge, .. }
        ));
    }

    #[test]
    fn aggregates() {
        let s = parse_select(
            "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue, count(*) FROM t GROUP BY n_name",
        )
        .unwrap();
        assert_eq!(s.select.len(), 3);
        match &s.select[1] {
            SelectItem::Aggregate {
                func: AggFunc::Sum,
                expr: Some(_),
                alias,
            } => {
                assert_eq!(alias.as_deref(), Some("revenue"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &s.select[2] {
            SelectItem::Aggregate {
                func: AggFunc::Count,
                expr: None,
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn count_star_only_for_count() {
        assert!(parse_select("SELECT sum(*) FROM t").is_err());
    }

    #[test]
    fn date_literals_and_interval_folding() {
        let s = parse_select(
            "SELECT a FROM t WHERE d >= date '1994-01-01' AND d < date '1994-01-01' + interval '1' year",
        )
        .unwrap();
        let Predicate::Cmp {
            right: SqlExpr::Lit(Literal::Date(d0)),
            ..
        } = &s.predicates[0]
        else {
            panic!("expected folded date");
        };
        let Predicate::Cmp {
            right: SqlExpr::Lit(Literal::Date(d1)),
            ..
        } = &s.predicates[1]
        else {
            panic!("expected folded date");
        };
        assert_eq!(*d1 - *d0, 365);
    }

    #[test]
    fn having_clause() {
        let s = parse_select(
            "SELECT a, count(*) AS n FROM t GROUP BY a HAVING n > 3 AND n <= 10 ORDER BY n",
        )
        .unwrap();
        assert_eq!(s.having.len(), 2);
        assert_eq!(s.having[0], ("n".to_string(), CmpOp::Gt, Literal::Int(3)));
        assert_eq!(s.having[1], ("n".to_string(), CmpOp::Le, Literal::Int(10)));
        // Non-constant right side rejected.
        assert!(parse_select("SELECT a FROM t HAVING a > b").is_err());
    }

    #[test]
    fn in_subquery_parses() {
        let s = parse_select("SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE b > 2)").unwrap();
        assert!(matches!(
            &s.predicates[0],
            Predicate::InSubquery { negated: false, .. }
        ));
        let n = parse_select("SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)").unwrap();
        assert!(matches!(
            &n.predicates[0],
            Predicate::InSubquery { negated: true, .. }
        ));
        // IN needs a column on the left.
        assert!(parse_select("SELECT a FROM t WHERE 3 IN (SELECT b FROM u)").is_err());
    }

    #[test]
    fn limit_clause() {
        let s = parse_select("SELECT a FROM t ORDER BY a LIMIT 5").unwrap();
        assert_eq!(s.limit, Some(5));
        assert_eq!(parse_select("SELECT a FROM t").unwrap().limit, None);
        assert!(parse_select("SELECT a FROM t LIMIT x").is_err());
    }

    #[test]
    fn order_by_variants() {
        let s = parse_select("SELECT a, b FROM t ORDER BY a DESC, 2, b ASC").unwrap();
        assert_eq!(s.order_by.len(), 3);
        assert_eq!(s.order_by[0], (OrderKey::Name("a".into()), SortDir::Desc));
        assert_eq!(s.order_by[1], (OrderKey::Position(2), SortDir::Asc));
    }

    #[test]
    fn tpch_q5_parses() {
        let q5 = "
            SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
            FROM customer, orders, lineitem, supplier, nation, region
            WHERE c_custkey = o_custkey
              AND l_orderkey = o_orderkey
              AND l_suppkey = s_suppkey
              AND c_nationkey = s_nationkey
              AND s_nationkey = n_nationkey
              AND n_regionkey = r_regionkey
              AND r_name = 'ASIA'
              AND o_orderdate >= date '1994-01-01'
              AND o_orderdate < date '1994-01-01' + interval '1' year
            GROUP BY n_name
            ORDER BY revenue DESC;
        ";
        let s = parse_select(q5).unwrap();
        assert_eq!(s.from.len(), 6);
        assert_eq!(s.predicates.len(), 9);
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_select("SELECT FROM t").unwrap_err();
        assert!(err.offset.is_some());
        let err2 = parse_select("SELECT a FROM t WHERE").unwrap_err();
        assert!(err2.message.contains("expected"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_select("SELECT a FROM t ; garbage").is_err());
    }

    #[test]
    fn negative_literals() {
        let s = parse_select("SELECT a FROM t WHERE a > -5").unwrap();
        assert!(matches!(
            &s.predicates[0],
            Predicate::Cmp { right, .. } if *right == SqlExpr::Lit(Literal::Int(-5))
        ));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse_select("SELECT a + b * c FROM t").unwrap();
        let SelectItem::Expr {
            expr: SqlExpr::Binary(_, ArithOp::Add, rhs),
            ..
        } = &s.select[0]
        else {
            panic!("expected top-level +");
        };
        assert!(matches!(**rhs, SqlExpr::Binary(_, ArithOp::Mul, _)));
    }

    #[test]
    fn interval_requires_date_literal() {
        assert!(parse_select("SELECT a FROM t WHERE a < b + interval '1' year").is_err());
    }
}
