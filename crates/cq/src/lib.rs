//! Conjunctive queries and the SQL front end of the reproduction of
//! *"Hypertree Decompositions for Query Optimization"* (ICDE 2007).
//!
//! The crate covers Section 2 of the paper plus the *Sql Analyzer* box of
//! its architecture (Figure 5):
//!
//! - [`sql`]: a lexer + recursive-descent parser for single-block
//!   conjunctive `SELECT` statements with aggregates;
//! - [`isolator`]: the *Conjunctive Query Isolator*, turning a parsed
//!   statement into a [`ConjunctiveQuery`] by merging equality-linked
//!   attributes into variables and pushing constant predicates into
//!   per-atom filters;
//! - [`conjunctive`]: the query model itself, including `out(Q)` and the
//!   conversion to the query hypergraph `H(Q)`.
//!
//! # Example
//!
//! ```
//! use htqo_cq::sql::parser::parse_select;
//! use htqo_cq::isolator::{isolate, IsolatorOptions, MapSchema};
//!
//! let schema = MapSchema::new()
//!     .table("r", &["a", "b"])
//!     .table("s", &["b", "c"]);
//! let stmt = parse_select("SELECT r.a FROM r, s WHERE r.b = s.b AND s.c = 3").unwrap();
//! let cq = isolate(&stmt, &schema, IsolatorOptions::default()).unwrap();
//! assert_eq!(cq.atoms.len(), 2);
//! assert!(htqo_hypergraph::acyclic::is_acyclic(&cq.hypergraph().hypergraph));
//! ```

#![warn(missing_docs)]

pub mod conjunctive;
pub mod date;
pub mod isolator;
pub mod sql;
pub mod union_find;

pub use conjunctive::{
    AggFunc, ArithOp, Atom, AtomId, CmpOp, ConjunctiveQuery, CqBuilder, CqHypergraph, Filter,
    Literal, OutputItem, ScalarExpr, SortDir,
};
pub use isolator::{isolate, AggKeyMode, IsolateError, IsolatorOptions, MapSchema, SchemaProvider};
pub use sql::parser::{parse_select, ParseError};
