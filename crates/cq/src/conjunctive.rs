//! Conjunctive queries `ans(u) ← r₁(u₁) ∧ … ∧ rₙ(uₙ)` (Section 2 of the
//! paper), enriched with the residual information a real SQL query carries:
//! constant filters, aggregate expressions, and grouping.

use htqo_hypergraph::{Hypergraph, Var};
use std::collections::HashMap;
use std::fmt;

/// Index of an atom within a [`ConjunctiveQuery`] body.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal constant appearing in a filter.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// 64-bit integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Date as days since 1970-01-01 (parsed from `date 'YYYY-MM-DD'`).
    Date(i32),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "'{s}'"),
            Literal::Date(d) => write!(f, "date({d})"),
        }
    }
}

/// Comparison operators allowed in filters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql())
    }
}

/// A constant restriction on one column of one atom, e.g.
/// `region.r_name = 'ASIA'`. Filters are pushed below joins by every
/// evaluator, so they never affect the query structure.
#[derive(Clone, Debug, PartialEq)]
pub struct Filter {
    /// The atom the restricted column belongs to.
    pub atom: AtomId,
    /// Column name within the atom's relation.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant operand.
    pub value: Literal,
}

/// One body atom `r(u)`: a relation (under an alias) with a binding from a
/// subset of its columns to query variables.
///
/// Only columns that the query actually uses appear in `args` — exactly the
/// arity-reduction described in Section 2 of the paper.
#[derive(Clone, Debug)]
pub struct Atom {
    /// Name of the underlying database relation.
    pub relation: String,
    /// Unique alias within the query (equals `relation` when unaliased).
    pub alias: String,
    /// `(column, variable)` bindings, in column order.
    pub args: Vec<(String, String)>,
}

impl Atom {
    /// The variable bound to `column`, if any.
    pub fn var_of_column(&self, column: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(c, _)| c == column)
            .map(|(_, v)| v.as_str())
    }

    /// The columns bound to variable `var` (usually one).
    pub fn columns_of_var<'a>(&'a self, var: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.args
            .iter()
            .filter(move |(_, v)| v == var)
            .map(|(c, _)| c.as_str())
    }

    /// Distinct variables of the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for (_, v) in &self.args {
            if !seen.contains(&v.as_str()) {
                seen.push(v.as_str());
            }
        }
        seen
    }
}

/// Scalar expression over query variables, used inside aggregates
/// (e.g. `l_extendedprice * (1 - l_discount)`).
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarExpr {
    /// A query variable.
    Var(String),
    /// A literal constant.
    Lit(Literal),
    /// Binary arithmetic.
    Binary(Box<ScalarExpr>, ArithOp, Box<ScalarExpr>),
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

impl ScalarExpr {
    /// Variables referenced by the expression, in first-occurrence order.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            ScalarExpr::Var(v) => {
                if !out.contains(&v.as_str()) {
                    out.push(v);
                }
            }
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Binary(l, _, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Var(v) => f.write_str(v),
            ScalarExpr::Lit(l) => write!(f, "{l}"),
            ScalarExpr::Binary(l, op, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM`
    Sum,
    /// `COUNT` (of non-null expression values; `COUNT(*)` counts rows)
    Count,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        })
    }
}

/// One output column of the query head.
#[derive(Clone, Debug, PartialEq)]
pub enum OutputItem {
    /// A plain variable (grouping column or projected attribute).
    Var {
        /// The query variable.
        var: String,
        /// Output column label.
        label: String,
    },
    /// An aggregate over a scalar expression (`None` expr ⇒ `COUNT(*)`).
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Aggregated expression; `None` means `COUNT(*)`.
        expr: Option<ScalarExpr>,
        /// Output column label.
        label: String,
    },
}

impl OutputItem {
    /// Output column label.
    pub fn label(&self) -> &str {
        match self {
            OutputItem::Var { label, .. } | OutputItem::Aggregate { label, .. } => label,
        }
    }
}

/// Sort direction for `ORDER BY`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// A conjunctive query with the SQL residue needed to finish evaluation
/// (filters, aggregates, grouping, ordering).
///
/// `out(Q)` — [`ConjunctiveQuery::out_vars`] — contains every variable
/// appearing in the SELECT list (including inside aggregate expressions)
/// or in GROUP BY, per Section 2 of the paper.
#[derive(Clone, Debug)]
pub struct ConjunctiveQuery {
    /// Body atoms.
    pub atoms: Vec<Atom>,
    /// Output items in SELECT order.
    pub output: Vec<OutputItem>,
    /// Grouping variables (empty when the query has no GROUP BY).
    pub group_by: Vec<String>,
    /// `ORDER BY` keys: output label + direction.
    pub order_by: Vec<(String, SortDir)>,
    /// HAVING conjuncts: `(output label, op, constant)` applied after
    /// aggregation.
    pub having: Vec<(String, CmpOp, Literal)>,
    /// LIMIT row count applied after ordering, if any.
    pub limit: Option<usize>,
    /// Constant filters (conjunctive).
    pub filters: Vec<Filter>,
}

impl ConjunctiveQuery {
    /// `out(Q)`: all variables occurring in the head (SELECT and GROUP BY,
    /// including variables inside aggregate expressions), in
    /// first-occurrence order.
    pub fn out_vars(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |v: &str| {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        };
        for item in &self.output {
            match item {
                OutputItem::Var { var, .. } => push(var),
                OutputItem::Aggregate { expr, .. } => {
                    if let Some(e) = expr {
                        for v in e.vars() {
                            push(v);
                        }
                    }
                }
            }
        }
        for g in &self.group_by {
            push(g);
        }
        out
    }

    /// All distinct variables of the query, in first-occurrence order.
    pub fn all_vars(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for atom in &self.atoms {
            for v in atom.vars() {
                if !out.iter().any(|x| x == v) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }

    /// True if the query has aggregate outputs.
    pub fn has_aggregates(&self) -> bool {
        self.output
            .iter()
            .any(|o| matches!(o, OutputItem::Aggregate { .. }))
    }

    /// Filters attached to atom `a`.
    pub fn filters_of(&self, a: AtomId) -> impl Iterator<Item = &Filter> {
        self.filters.iter().filter(move |f| f.atom == a)
    }

    /// Atom ids in body order.
    pub fn atom_ids(&self) -> impl Iterator<Item = AtomId> {
        (0..self.atoms.len() as u32).map(AtomId)
    }

    /// The atom with the given id.
    pub fn atom(&self, a: AtomId) -> &Atom {
        &self.atoms[a.index()]
    }

    /// Builds the query hypergraph `H(Q)` and the variable interning map.
    ///
    /// One hyperedge per atom (atoms with identical variable sets stay
    /// distinct edges; this plays the role of the paper's "fresh
    /// distinguishing variable" trick without materializing the variable).
    pub fn hypergraph(&self) -> CqHypergraph {
        let mut b = Hypergraph::builder();
        // Intern variables in deterministic first-occurrence order.
        for v in self.all_vars() {
            b.var(&v);
        }
        for atom in &self.atoms {
            let vars: htqo_hypergraph::VarSet = atom.vars().iter().map(|v| b.var(v)).collect();
            b.edge_of(&atom.alias, vars);
        }
        let h = b.build();
        let var_of_name: HashMap<String, Var> = h
            .var_ids()
            .map(|v| (h.var_name(v).to_string(), v))
            .collect();
        CqHypergraph {
            hypergraph: h,
            var_of_name,
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    /// Renders the rule in the paper's notation:
    /// `ans(X, Y) ← r(X), s(X, Y)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ans({})", self.out_vars().join(", "))?;
        write!(f, " <- ")?;
        let body: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                let vars: Vec<&str> = a.vars();
                format!("{}({})", a.alias, vars.join(", "))
            })
            .collect();
        write!(f, "{}", body.join(" /\\ "))?;
        if !self.filters.is_empty() {
            let fs: Vec<String> = self
                .filters
                .iter()
                .map(|flt| {
                    format!(
                        "{}.{} {} {}",
                        self.atoms[flt.atom.index()].alias,
                        flt.column,
                        flt.op,
                        flt.value
                    )
                })
                .collect();
            write!(f, " [{}]", fs.join(", "))?;
        }
        Ok(())
    }
}

/// The hypergraph of a conjunctive query plus the name → [`Var`] map.
///
/// Edge `i` of the hypergraph corresponds to atom `AtomId(i)`.
#[derive(Clone, Debug)]
pub struct CqHypergraph {
    /// The hypergraph `H(Q)`.
    pub hypergraph: Hypergraph,
    /// Map from variable name to hypergraph variable id.
    pub var_of_name: HashMap<String, Var>,
}

impl CqHypergraph {
    /// The hypergraph variable for a query variable name.
    pub fn var(&self, name: &str) -> Option<Var> {
        self.var_of_name.get(name).copied()
    }

    /// `out(Q)` as a [`htqo_hypergraph::VarSet`].
    pub fn out_var_set(&self, q: &ConjunctiveQuery) -> htqo_hypergraph::VarSet {
        q.out_vars().iter().filter_map(|n| self.var(n)).collect()
    }

    /// The atom id corresponding to hypergraph edge `e`.
    pub fn atom_of_edge(&self, e: htqo_hypergraph::EdgeId) -> AtomId {
        AtomId(e.0)
    }
}

/// Convenience builder for hand-constructing conjunctive queries in tests,
/// examples and the synthetic workload generators.
#[derive(Default)]
pub struct CqBuilder {
    atoms: Vec<Atom>,
    output: Vec<OutputItem>,
    group_by: Vec<String>,
    order_by: Vec<(String, SortDir)>,
    having: Vec<(String, CmpOp, Literal)>,
    limit: Option<usize>,
    filters: Vec<Filter>,
}

impl CqBuilder {
    /// Starts an empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an atom `alias = relation(col₁ → var₁, …)`.
    pub fn atom(mut self, relation: &str, alias: &str, args: &[(&str, &str)]) -> Self {
        self.atoms.push(Atom {
            relation: relation.to_string(),
            alias: alias.to_string(),
            args: args
                .iter()
                .map(|(c, v)| (c.to_string(), v.to_string()))
                .collect(),
        });
        self
    }

    /// Shorthand: atom whose columns are named after its variables.
    pub fn atom_vars(self, relation: &str, vars: &[&str]) -> Self {
        let args: Vec<(&str, &str)> = vars.iter().map(|v| (*v, *v)).collect();
        self.atom(relation, relation, &args)
    }

    /// Adds a plain output variable.
    pub fn out_var(mut self, var: &str) -> Self {
        self.output.push(OutputItem::Var {
            var: var.to_string(),
            label: var.to_string(),
        });
        self
    }

    /// Adds an aggregate output.
    pub fn out_agg(mut self, func: AggFunc, expr: Option<ScalarExpr>, label: &str) -> Self {
        self.output.push(OutputItem::Aggregate {
            func,
            expr,
            label: label.to_string(),
        });
        self
    }

    /// Adds a GROUP BY variable.
    pub fn group(mut self, var: &str) -> Self {
        self.group_by.push(var.to_string());
        self
    }

    /// Adds an ORDER BY key.
    pub fn order(mut self, label: &str, dir: SortDir) -> Self {
        self.order_by.push((label.to_string(), dir));
        self
    }

    /// Adds a HAVING conjunct on an output label.
    pub fn having(mut self, label: &str, op: CmpOp, value: Literal) -> Self {
        self.having.push((label.to_string(), op, value));
        self
    }

    /// Sets a LIMIT.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Adds a constant filter on atom `atom_index`.
    pub fn filter(mut self, atom_index: usize, column: &str, op: CmpOp, value: Literal) -> Self {
        self.filters.push(Filter {
            atom: AtomId(atom_index as u32),
            column: column.to_string(),
            op,
            value,
        });
        self
    }

    /// Finalizes the query.
    ///
    /// # Panics
    /// Panics if atom aliases are not unique or a filter references a
    /// missing atom.
    pub fn build(self) -> ConjunctiveQuery {
        for i in 0..self.atoms.len() {
            for j in (i + 1)..self.atoms.len() {
                assert_ne!(
                    self.atoms[i].alias, self.atoms[j].alias,
                    "duplicate atom alias"
                );
            }
        }
        for f in &self.filters {
            assert!(f.atom.index() < self.atoms.len(), "filter on missing atom");
        }
        ConjunctiveQuery {
            atoms: self.atoms,
            output: self.output,
            group_by: self.group_by,
            order_by: self.order_by,
            having: self.having,
            limit: self.limit,
            filters: self.filters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_cq() -> ConjunctiveQuery {
        CqBuilder::new()
            .atom_vars("r", &["X", "Y"])
            .atom_vars("s", &["Y", "Z"])
            .atom_vars("t", &["Z", "X"])
            .out_var("X")
            .build()
    }

    #[test]
    fn out_vars_from_select_and_group_by() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X", "Y"])
            .out_var("X")
            .out_agg(AggFunc::Sum, Some(ScalarExpr::Var("Y".into())), "total")
            .group("X")
            .build();
        assert_eq!(q.out_vars(), vec!["X".to_string(), "Y".to_string()]);
        assert!(q.has_aggregates());
    }

    #[test]
    fn hypergraph_one_edge_per_atom() {
        let q = triangle_cq();
        let ch = q.hypergraph();
        assert_eq!(ch.hypergraph.num_edges(), 3);
        assert_eq!(ch.hypergraph.num_vars(), 3);
        assert!(ch.var("X").is_some());
        assert!(ch.var("W").is_none());
        let out = ch.out_var_set(&q);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn duplicate_var_sets_stay_distinct_edges() {
        let q = CqBuilder::new()
            .atom("r", "r1", &[("a", "X"), ("b", "Y")])
            .atom("r", "r2", &[("a", "X"), ("b", "Y")])
            .out_var("X")
            .build();
        let ch = q.hypergraph();
        assert_eq!(ch.hypergraph.num_edges(), 2);
    }

    #[test]
    fn display_matches_paper_notation() {
        let q = triangle_cq();
        let s = format!("{q}");
        assert!(s.starts_with("ans(X) <- "), "got: {s}");
        assert!(s.contains("r(X, Y)"));
    }

    #[test]
    fn filters_attach_to_atoms() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X"])
            .out_var("X")
            .filter(0, "X", CmpOp::Ge, Literal::Int(5))
            .build();
        assert_eq!(q.filters_of(AtomId(0)).count(), 1);
        assert_eq!(q.filters_of(AtomId(0)).next().unwrap().op, CmpOp::Ge);
    }

    #[test]
    #[should_panic(expected = "duplicate atom alias")]
    fn duplicate_aliases_rejected() {
        CqBuilder::new()
            .atom_vars("r", &["X"])
            .atom_vars("r", &["Y"])
            .build();
    }

    #[test]
    fn atom_column_variable_mappings() {
        let atom = Atom {
            relation: "orders".into(),
            alias: "o".into(),
            args: vec![
                ("o_orderkey".into(), "OrdKey".into()),
                ("o_custkey".into(), "CustKey".into()),
            ],
        };
        assert_eq!(atom.var_of_column("o_custkey"), Some("CustKey"));
        assert_eq!(atom.var_of_column("nope"), None);
        assert_eq!(
            atom.columns_of_var("OrdKey").collect::<Vec<_>>(),
            vec!["o_orderkey"]
        );
        assert_eq!(atom.vars(), vec!["OrdKey", "CustKey"]);
    }

    #[test]
    fn count_star_has_no_out_vars() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X"])
            .out_agg(AggFunc::Count, None, "n")
            .build();
        assert!(q.out_vars().is_empty());
        assert!(q.has_aggregates());
    }
}
