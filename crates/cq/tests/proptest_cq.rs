//! Property tests for the SQL front end: date arithmetic and
//! parse-display stability.

use htqo_cq::date::{add_interval, civil_from_days, days_from_civil, IntervalUnit};
use htqo_cq::{isolate, parse_select, IsolatorOptions, MapSchema};
use proptest::prelude::*;

proptest! {
    /// Civil-date conversion round-trips over a wide range.
    #[test]
    fn civil_round_trip(days in -2_000_000i32..2_000_000) {
        let (y, m, d) = civil_from_days(days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        prop_assert_eq!(days_from_civil(y, m, d), days);
    }

    /// Adding and subtracting the same month interval returns to a date
    /// no later than the original (clamping may lose end-of-month days,
    /// never gain them).
    #[test]
    fn month_arithmetic_clamps_monotonically(days in -500_000i32..500_000, n in 1i32..48) {
        let forward = add_interval(days, n, IntervalUnit::Month);
        let back = add_interval(forward, -n, IntervalUnit::Month);
        prop_assert!(back <= days);
        prop_assert!(days - back <= 3, "clamping loses at most 3 days");
        // Day intervals are exact.
        let fd = add_interval(days, n, IntervalUnit::Day);
        prop_assert_eq!(fd - days, n);
    }

    /// Year arithmetic is 12 months.
    #[test]
    fn years_are_twelve_months(days in -500_000i32..500_000, n in 1i32..10) {
        prop_assert_eq!(
            add_interval(days, n, IntervalUnit::Year),
            add_interval(days, 12 * n, IntervalUnit::Month)
        );
    }

    /// Any parsed conjunctive SELECT over a known schema isolates into a
    /// CQ whose atom count equals the FROM length and whose display form
    /// is non-empty and stable.
    #[test]
    fn isolate_is_total_on_well_formed_input(
        n_tables in 1usize..4,
        preds in prop::collection::vec((0usize..4, 0usize..4), 0..4)
    ) {
        let mut schema = MapSchema::new();
        let mut from = Vec::new();
        for i in 0..4 {
            schema = schema.table(&format!("t{i}"), &["a", "b"]);
        }
        for i in 0..n_tables {
            from.push(format!("t{i}"));
        }
        let mut sql = format!("SELECT t0.a FROM {}", from.join(", "));
        let mut first = true;
        for (l, r) in &preds {
            let (l, r) = (l % n_tables, r % n_tables);
            sql.push_str(if first { " WHERE " } else { " AND " });
            first = false;
            sql.push_str(&format!("t{l}.b = t{r}.a"));
        }
        let stmt = parse_select(&sql).expect("generated SQL parses");
        let q = isolate(&stmt, &schema, IsolatorOptions::default()).expect("isolates");
        prop_assert_eq!(q.atoms.len(), n_tables);
        let shown = format!("{q}");
        prop_assert!(shown.starts_with("ans("));
        // The hypergraph has one edge per atom and ≤ 2·n distinct vars.
        let ch = q.hypergraph();
        prop_assert_eq!(ch.hypergraph.num_edges(), n_tables);
        prop_assert!(ch.hypergraph.num_vars() <= 2 * n_tables);
    }
}
