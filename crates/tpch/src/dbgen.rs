//! A deterministic `dbgen` replacement: generates a TPC-H database at a
//! given scale factor with the same shape as the official tool (uniform
//! foreign keys, 1992–1998 order dates, 0–10% discounts, v-shaped
//! extended prices), seeded for reproducibility.
//!
//! Scale factor 1 corresponds to ≈1 GB in the official benchmark, which is
//! how the harness maps the paper's "database size (MB)" axis (Figure 8)
//! to scale factors.

use crate::schema::{base_rows, table_schema, NATIONS, REGIONS};
use htqo_cq::date::days_from_civil;
use htqo_engine::relation::Relation;
use htqo_engine::schema::Database;
use htqo_engine::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation options.
#[derive(Clone, Debug)]
pub struct DbgenOptions {
    /// Scale factor (1.0 ≈ 1 GB in official TPC-H).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbgenOptions {
    fn default() -> Self {
        DbgenOptions {
            scale: 0.01,
            seed: 19920701,
        }
    }
}

/// Rows of `table` at scale factor `scale` (region/nation are fixed).
pub fn scaled_rows(table: &str, scale: f64) -> usize {
    match table {
        "region" => 5,
        "nation" => 25,
        other => ((base_rows(other) as f64 * scale).round() as usize).max(1),
    }
}

/// Nominal database size in megabytes for a scale factor (the official
/// benchmark's convention: SF 1 ≈ 1000 MB).
pub fn nominal_megabytes(scale: f64) -> f64 {
    scale * 1000.0
}

/// Generates the full database.
pub fn generate(options: &DbgenOptions) -> Database {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let scale = options.scale;

    // region
    let mut region = Relation::new(table_schema("region"));
    region.push_many_unchecked(REGIONS.iter().enumerate().map(|(i, name)| {
        vec![
            Value::Int(i as i64),
            Value::str(name),
            Value::str("standard region comment"),
        ]
    }));
    db.insert_table("region", region);

    // nation
    let mut nation = Relation::new(table_schema("nation"));
    nation.push_many_unchecked(NATIONS.iter().enumerate().map(|(i, (name, regionkey))| {
        vec![
            Value::Int(i as i64),
            Value::str(name),
            Value::Int(*regionkey),
        ]
    }));
    db.insert_table("nation", nation);

    // supplier
    let n_supplier = scaled_rows("supplier", scale);
    let mut supplier = Relation::new(table_schema("supplier"));
    supplier.reserve(n_supplier);
    supplier.push_many_unchecked((0..n_supplier).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::str(&format!("Supplier#{i:09}")),
            Value::Int(rng.gen_range(0..25)),
            Value::Float(round2(rng.gen_range(-999.99..9999.99))),
        ]
    }));
    db.insert_table("supplier", supplier);

    // customer
    let n_customer = scaled_rows("customer", scale);
    let segments = [
        "AUTOMOBILE",
        "BUILDING",
        "FURNITURE",
        "MACHINERY",
        "HOUSEHOLD",
    ];
    let mut customer = Relation::new(table_schema("customer"));
    customer.reserve(n_customer);
    customer.push_many_unchecked((0..n_customer).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::str(&format!("Customer#{i:09}")),
            Value::Int(rng.gen_range(0..25)),
            Value::str(segments[rng.gen_range(0..segments.len())]),
            Value::Float(round2(rng.gen_range(-999.99..9999.99))),
        ]
    }));
    db.insert_table("customer", customer);

    // part
    let n_part = scaled_rows("part", scale);
    let types = [
        "ECONOMY ANODIZED STEEL",
        "STANDARD POLISHED BRASS",
        "SMALL PLATED COPPER",
        "MEDIUM BRUSHED NICKEL",
        "LARGE BURNISHED TIN",
        "PROMO PLATED STEEL",
    ];
    let mut part = Relation::new(table_schema("part"));
    part.reserve(n_part);
    part.push_many_unchecked((0..n_part).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::str(&format!("part {i}")),
            Value::str(types[rng.gen_range(0..types.len())]),
            Value::str(&format!(
                "Brand#{}{}",
                rng.gen_range(1..6),
                rng.gen_range(1..6)
            )),
            Value::Float(round2(900.0 + (i % 1000) as f64 / 10.0)),
        ]
    }));
    db.insert_table("part", part);

    // partsupp
    let n_partsupp = scaled_rows("partsupp", scale);
    let mut partsupp = Relation::new(table_schema("partsupp"));
    partsupp.reserve(n_partsupp);
    partsupp.push_many_unchecked((0..n_partsupp).map(|_| {
        vec![
            Value::Int(rng.gen_range(0..n_part as i64)),
            Value::Int(rng.gen_range(0..n_supplier as i64)),
            Value::Int(rng.gen_range(1..10_000)),
            Value::Float(round2(rng.gen_range(1.0..1000.0))),
        ]
    }));
    db.insert_table("partsupp", partsupp);

    // orders: dates uniform in [1992-01-01, 1998-08-02].
    let date_lo = days_from_civil(1992, 1, 1);
    let date_hi = days_from_civil(1998, 8, 2);
    let n_orders = scaled_rows("orders", scale);
    let statuses = ["O", "F", "P"];
    let mut orders = Relation::new(table_schema("orders"));
    orders.reserve(n_orders);
    let mut order_dates = Vec::with_capacity(n_orders);
    orders.push_many_unchecked((0..n_orders).map(|i| {
        let date = rng.gen_range(date_lo..=date_hi);
        order_dates.push(date);
        vec![
            Value::Int(i as i64),
            Value::Int(rng.gen_range(0..n_customer as i64)),
            Value::str(statuses[rng.gen_range(0..statuses.len())]),
            Value::Float(round2(rng.gen_range(850.0..555_000.0))),
            Value::Date(date),
            Value::Int(rng.gen_range(0..2)),
        ]
    }));
    db.insert_table("orders", orders);

    // lineitem: each row references a random order; ship date follows the
    // order date by 1–121 days.
    let n_lineitem = scaled_rows("lineitem", scale);
    let flags = ["A", "N", "R"];
    let mut lineitem = Relation::new(table_schema("lineitem"));
    lineitem.reserve(n_lineitem);
    lineitem.push_many_unchecked((0..n_lineitem).map(|_| {
        let okey = rng.gen_range(0..n_orders as i64);
        let qty = rng.gen_range(1..=50i64);
        vec![
            Value::Int(okey),
            Value::Int(rng.gen_range(0..n_part as i64)),
            Value::Int(rng.gen_range(0..n_supplier as i64)),
            Value::Int(rng.gen_range(1..=7)),
            Value::Int(qty),
            Value::Float(round2(qty as f64 * rng.gen_range(900.0..1100.0))),
            Value::Float((rng.gen_range(0..=10) as f64) / 100.0),
            Value::Date(order_dates[okey as usize] + rng.gen_range(1..122)),
            Value::str(flags[rng.gen_range(0..flags.len())]),
        ]
    }));
    db.insert_table("lineitem", lineitem);

    db
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let opts = DbgenOptions {
            scale: 0.001,
            seed: 42,
        };
        let a = generate(&opts);
        let b = generate(&opts);
        for (name, rel) in a.tables() {
            let other = b.table(name).unwrap();
            assert_eq!(rel.len(), other.len(), "{name}");
            assert_eq!(rel.row(0), other.row(0), "{name}");
        }
    }

    #[test]
    fn row_counts_scale() {
        let small = generate(&DbgenOptions {
            scale: 0.001,
            seed: 1,
        });
        assert_eq!(small.table("region").unwrap().len(), 5);
        assert_eq!(small.table("nation").unwrap().len(), 25);
        assert_eq!(small.table("supplier").unwrap().len(), 10);
        assert_eq!(small.table("orders").unwrap().len(), 1500);
        assert_eq!(small.table("lineitem").unwrap().len(), 6000);
        assert!((nominal_megabytes(0.2) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn foreign_keys_are_in_range() {
        let db = generate(&DbgenOptions {
            scale: 0.001,
            seed: 7,
        });
        let n_cust = db.table("customer").unwrap().len() as i64;
        for row in db.table("orders").unwrap().iter_rows() {
            let Value::Int(ck) = row[1] else {
                panic!("custkey type")
            };
            assert!((0..n_cust).contains(&ck));
        }
        let n_orders = db.table("orders").unwrap().len() as i64;
        for row in db.table("lineitem").unwrap().iter_rows().take(100) {
            let Value::Int(ok) = row[0] else {
                panic!("orderkey type")
            };
            assert!((0..n_orders).contains(&ok));
        }
    }

    #[test]
    fn dates_are_in_the_tpch_window() {
        let db = generate(&DbgenOptions {
            scale: 0.001,
            seed: 7,
        });
        let lo = days_from_civil(1992, 1, 1);
        let hi = days_from_civil(1998, 8, 2);
        for row in db.table("orders").unwrap().iter_rows() {
            let Value::Date(d) = row[4] else {
                panic!("date type")
            };
            assert!((lo..=hi).contains(&d));
        }
    }

    #[test]
    fn discounts_bounded() {
        let db = generate(&DbgenOptions {
            scale: 0.001,
            seed: 7,
        });
        for row in db.table("lineitem").unwrap().iter_rows().take(200) {
            let Value::Float(d) = row[6] else {
                panic!("discount type")
            };
            assert!((0.0..=0.10001).contains(&d));
        }
    }
}
