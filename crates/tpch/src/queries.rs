//! The TPC-H queries used in the paper's evaluation (Q5 and Q8), plus Q9
//! and two acyclic extras (Q3, Q10) used by the examples and tests.
//!
//! Q8 is adapted: the official query computes a market-share ratio with a
//! `CASE` expression; we keep its 8-relation cyclic join core and
//! aggregate the volume per supplier nation instead (see DESIGN.md —
//! the structural shape, which is what the paper measures, is unchanged).

/// TPC-H Q1 ("pricing summary report"), adapted to the SQL subset
/// (grouped by `l_returnflag` only — our generator has no
/// `l_linestatus`). A single-atom query: the decomposition degenerates to
/// one vertex, exercising the pipeline's no-join path.
pub fn q1(delta_days: i32) -> String {
    let cutoff = htqo_cq::date::format_date(
        htqo_cq::date::parse_date("1998-12-01").expect("valid") - delta_days,
    );
    format!(
        "SELECT l_returnflag,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= date '{cutoff}'
GROUP BY l_returnflag
ORDER BY l_returnflag"
    )
}

/// TPC-H Q5 ("local supplier volume") with the region/date parameters
/// substituted. This is the paper's running example (Figure 1).
pub fn q5(region: &str, year: i32) -> String {
    format!(
        "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = '{region}'
  AND o_orderdate >= date '{year}-01-01'
  AND o_orderdate < date '{year}-01-01' + interval '1' year
GROUP BY n_name
ORDER BY revenue DESC"
    )
}

/// TPC-H Q8 ("national market share"), adapted to the SQL subset: the
/// 8-relation cyclic join of the official query, aggregating volume per
/// supplier nation (the official CASE-based ratio needs per-group
/// post-processing our subset does not model).
pub fn q8(region: &str, part_type: &str) -> String {
    format!(
        "SELECT n2.n_name AS nation, sum(l_extendedprice * (1 - l_discount)) AS volume
FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region
WHERE p_partkey = l_partkey
  AND s_suppkey = l_suppkey
  AND l_orderkey = o_orderkey
  AND o_custkey = c_custkey
  AND c_nationkey = n1.n_nationkey
  AND n1.n_regionkey = r_regionkey
  AND s_nationkey = n2.n_nationkey
  AND r_name = '{region}'
  AND o_orderdate >= date '1995-01-01'
  AND o_orderdate <= date '1996-12-31'
  AND p_type = '{part_type}'
GROUP BY n2.n_name
ORDER BY volume DESC"
    )
}

/// TPC-H Q9 ("product type profit measure"), adapted to the SQL subset:
/// the `p_name LIKE '%…%'` filter becomes a brand equality and the
/// per-year grouping becomes per-nation. Structurally interesting: the
/// join core is α-acyclic (lineitem covers partsupp's keys) but the
/// profit aggregate spans three atoms, so the q-hypertree width is 3 —
/// the largest output-cover effect among our TPC-H queries.
pub fn q9(brand: &str) -> String {
    format!(
        "SELECT n_name, sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS profit
FROM part, supplier, lineitem, partsupp, orders, nation
WHERE ps_partkey = l_partkey
  AND ps_suppkey = l_suppkey
  AND s_suppkey = l_suppkey
  AND p_partkey = l_partkey
  AND o_orderkey = l_orderkey
  AND s_nationkey = n_nationkey
  AND p_brand = '{brand}'
GROUP BY n_name
ORDER BY profit DESC"
    )
}

/// TPC-H Q3 ("shipping priority") — acyclic, used by the examples.
pub fn q3(segment: &str, date: &str) -> String {
    format!(
        "SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem
WHERE c_mktsegment = '{segment}'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < date '{date}'
  AND l_shipdate > date '{date}'
GROUP BY l_orderkey
ORDER BY revenue DESC"
    )
}

/// TPC-H Q10 ("returned item reporting"), simplified to the SQL subset —
/// acyclic, used by the examples.
pub fn q10(date: &str) -> String {
    format!(
        "SELECT c_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= date '{date}'
  AND o_orderdate < date '{date}' + interval '3' month
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_name
ORDER BY revenue DESC"
    )
}

#[cfg(test)]
mod tests {
    use crate::dbgen::{generate, DbgenOptions};
    use htqo_core::hypertree_width;
    use htqo_cq::{isolate, parse_select, IsolatorOptions};

    fn isolate_on_tpch(sql: &str) -> htqo_cq::ConjunctiveQuery {
        let db = generate(&DbgenOptions {
            scale: 0.0005,
            seed: 5,
        });
        let stmt = parse_select(sql).expect("parses");
        isolate(&stmt, &db, IsolatorOptions::default()).expect("isolates")
    }

    #[test]
    fn q1_single_atom_pipeline() {
        let q = isolate_on_tpch(&super::q1(90));
        assert_eq!(q.atoms.len(), 1);
        assert_eq!(hypertree_width(&q.hypergraph().hypergraph), 1);
        let plan = htqo_core::q_hypertree_decomp(
            &q,
            &htqo_core::QhdOptions::default(),
            &htqo_core::StructuralCost,
        )
        .unwrap();
        assert_eq!(plan.tree.len(), 1);
    }

    #[test]
    fn q5_is_cyclic_width_2() {
        let q = isolate_on_tpch(&super::q5("ASIA", 1994));
        let ch = q.hypergraph();
        assert!(!htqo_hypergraph::acyclic::is_acyclic(&ch.hypergraph));
        assert_eq!(hypertree_width(&ch.hypergraph), 2);
        assert_eq!(q.atoms.len(), 6);
    }

    #[test]
    fn q8_needs_qhd_width_2() {
        // Q8's join core is tree-shaped (hypertree width 1), but its output
        // variables span lineitem, orders and the second nation copy, so
        // Condition 2 of Definition 2 forces q-hypertree width 2 — the
        // width the paper reports for Q8.
        let q = isolate_on_tpch(&super::q8("AMERICA", "ECONOMY ANODIZED STEEL"));
        let ch = q.hypergraph();
        assert!(htqo_hypergraph::acyclic::is_acyclic(&ch.hypergraph));
        assert_eq!(hypertree_width(&ch.hypergraph), 1);
        assert_eq!(q.atoms.len(), 8);
        let plan = htqo_core::q_hypertree_decomp(
            &q,
            &htqo_core::QhdOptions::default(),
            &htqo_core::StructuralCost,
        )
        .unwrap();
        assert_eq!(plan.tree.width(), 2);
    }

    #[test]
    fn q9_aggregate_forces_qhd_width_3() {
        // Q9's hypergraph is α-acyclic: lineitem covers partsupp's join
        // variables, so partsupp is a GYO ear (hw = 1). But the profit
        // aggregate spans lineitem (price/discount/quantity), partsupp
        // (supplycost) and nation (name), so Condition 2 of Definition 2
        // needs a root covering atoms from all three: q-hypertree width 3.
        let q = isolate_on_tpch(&super::q9("Brand#11"));
        let ch = q.hypergraph();
        assert!(htqo_hypergraph::acyclic::is_acyclic(&ch.hypergraph));
        assert_eq!(hypertree_width(&ch.hypergraph), 1);
        assert_eq!(q.atoms.len(), 6);
        assert!(htqo_core::q_hypertree_decomp(
            &q,
            &htqo_core::QhdOptions {
                max_width: 2,
                run_optimize: true,
                threads: 0
            },
            &htqo_core::StructuralCost,
        )
        .is_err());
        let plan = htqo_core::q_hypertree_decomp(
            &q,
            &htqo_core::QhdOptions::default(),
            &htqo_core::StructuralCost,
        )
        .unwrap();
        assert_eq!(plan.tree.width(), 3);
    }

    #[test]
    fn q3_and_q10_are_acyclic() {
        for sql in [
            super::q3("BUILDING", "1995-03-15"),
            super::q10("1993-10-01"),
        ] {
            let q = isolate_on_tpch(&sql);
            let ch = q.hypergraph();
            assert!(htqo_hypergraph::acyclic::is_acyclic(&ch.hypergraph));
        }
    }
}
