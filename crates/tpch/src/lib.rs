//! TPC-H substrate: schema, a deterministic `dbgen` replacement, and the
//! benchmark queries the paper evaluates (Q5 and Q8, both cyclic with
//! hypertree width 2).

#![warn(missing_docs)]

pub mod dbgen;
pub mod queries;
pub mod schema;

pub use dbgen::{generate, nominal_megabytes, scaled_rows, DbgenOptions};
pub use queries::{q1, q10, q3, q5, q8, q9};
pub use schema::{base_rows, table_schema, NATIONS, REGIONS, TABLES};
