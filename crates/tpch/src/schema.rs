//! The TPC-H schema (the eight standard tables, restricted to the columns
//! the benchmark queries in this reproduction touch, plus a few extras so
//! the statistics subsystem has realistic work to do).

use htqo_engine::schema::{ColumnType, Schema};

/// Table names in generation order (respecting foreign-key dependencies).
pub const TABLES: [&str; 8] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

/// Schema of a TPC-H table.
///
/// # Panics
/// Panics on an unknown table name.
pub fn table_schema(name: &str) -> Schema {
    use ColumnType::*;
    match name {
        "region" => Schema::new(&[("r_regionkey", Int), ("r_name", Str), ("r_comment", Str)]),
        "nation" => Schema::new(&[("n_nationkey", Int), ("n_name", Str), ("n_regionkey", Int)]),
        "supplier" => Schema::new(&[
            ("s_suppkey", Int),
            ("s_name", Str),
            ("s_nationkey", Int),
            ("s_acctbal", Float),
        ]),
        "customer" => Schema::new(&[
            ("c_custkey", Int),
            ("c_name", Str),
            ("c_nationkey", Int),
            ("c_mktsegment", Str),
            ("c_acctbal", Float),
        ]),
        "part" => Schema::new(&[
            ("p_partkey", Int),
            ("p_name", Str),
            ("p_type", Str),
            ("p_brand", Str),
            ("p_retailprice", Float),
        ]),
        "partsupp" => Schema::new(&[
            ("ps_partkey", Int),
            ("ps_suppkey", Int),
            ("ps_availqty", Int),
            ("ps_supplycost", Float),
        ]),
        "orders" => Schema::new(&[
            ("o_orderkey", Int),
            ("o_custkey", Int),
            ("o_orderstatus", Str),
            ("o_totalprice", Float),
            ("o_orderdate", Date),
            ("o_shippriority", Int),
        ]),
        "lineitem" => Schema::new(&[
            ("l_orderkey", Int),
            ("l_partkey", Int),
            ("l_suppkey", Int),
            ("l_linenumber", Int),
            ("l_quantity", Int),
            ("l_extendedprice", Float),
            ("l_discount", Float),
            ("l_shipdate", Date),
            ("l_returnflag", Str),
        ]),
        other => panic!("unknown TPC-H table `{other}`"),
    }
}

/// Base row counts at scale factor 1 (per the TPC-H specification; region
/// and nation are fixed-size).
pub fn base_rows(name: &str) -> usize {
    match name {
        "region" => 5,
        "nation" => 25,
        "supplier" => 10_000,
        "customer" => 150_000,
        "part" => 200_000,
        "partsupp" => 800_000,
        "orders" => 1_500_000,
        "lineitem" => 6_000_000, // ≈4 lineitems per order on average
        other => panic!("unknown TPC-H table `{other}`"),
    }
}

/// The five TPC-H region names.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nation names with their region keys.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_have_schemas() {
        for t in TABLES {
            let s = table_schema(t);
            assert!(s.arity() >= 3, "{t}");
            assert!(base_rows(t) > 0);
        }
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn unknown_table_panics() {
        table_schema("nope");
    }

    #[test]
    fn nations_reference_valid_regions() {
        for (_, r) in NATIONS {
            assert!((0..5).contains(&r));
        }
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
    }
}
