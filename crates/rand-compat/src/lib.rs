//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the tiny slice of `rand` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — deterministic and statistically fine for
//! workload synthesis and tests, but **not** the upstream `StdRng`
//! (ChaCha12) stream. Nothing in this repository pins upstream stream
//! values; everything only relies on in-repo determinism.

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps a `u64` to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
