//! The **q-hypertree evaluator** (Section 4 of the paper): evaluates a
//! conjunctive query along a good q-hypertree decomposition with a *single*
//! bottom-up pass.
//!
//! - `P′` — for each vertex `p`, join the relations of the atoms enforced
//!   or bounded at `p` (`assigned(p) ∪ λ(p)`) and project onto `χ(p)`
//!   (restricted to the variables those atoms actually carry — after
//!   `Optimize` some χ variables are only supplied by children, feature
//!   (b) of Definition 2);
//! - `P″` — bottom-up, join each vertex's relation with its children's
//!   results and project onto `χ(p)`, visiting *support children first*
//!   (the ordering caveat at the end of Section 4.1);
//! - `P‴` — project the root onto `out(Q)`.
//!
//! Because the root covers all output variables (Condition 2), no top-down
//! or second bottom-up pass is needed.
//!
//! # Carriers
//!
//! The pipeline is written once, generic over [`Carrier`], and runs on
//! either the columnar [`CRel`] (the default — flat typed columns,
//! dictionary-encoded strings, gather-based output) or the row
//! [`VRelation`] (the seed representation, kept as the oracle path).
//! [`ExecOptions::columnar`] picks the carrier; answers and budget
//! charges are identical either way.
//!
//! # Parallel schedule
//!
//! The per-vertex joins of `P′` are mutually independent, and in `P″` the
//! *subtrees* below distinct children of a vertex are independent; both
//! fan out across worker threads when [`ExecOptions::threads`] allows.
//! The Section 4.1 support-order constraint binds the order in which
//! child results are *joined into the parent*, not the order in which the
//! subtrees are evaluated — so child subtree evaluations run concurrently
//! while the join fold still visits support children first. Budget
//! accounting stays exact under concurrency via [`Budget::fork`], and
//! tuple-budget exhaustion is deterministic for any thread count because
//! the trip condition depends only on the (order-free) sum of charges.

use std::sync::Mutex;

use htqo_core::hypertree::NodeId;
use htqo_core::QhdPlan;
use htqo_cq::{AtomId, ConjunctiveQuery};
use htqo_engine::carrier::Carrier;
use htqo_engine::crel::CRel;
use htqo_engine::error::{Budget, EvalError};
use htqo_engine::exec;
use htqo_engine::schema::Database;
use htqo_engine::vrel::VRelation;

pub use htqo_engine::exec::ExecOptions;

/// Evaluates `q` on `db` along the decomposition in `plan`, returning the
/// answer relation over `out(Q)` (set semantics). Uses the process-wide
/// thread count and carrier default; see [`evaluate_qhd_with`] to pin the
/// schedule.
pub fn evaluate_qhd(
    db: &Database,
    q: &ConjunctiveQuery,
    plan: &QhdPlan,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    evaluate_qhd_with(db, q, plan, budget, &ExecOptions::default())
}

/// [`evaluate_qhd`] with an explicit execution schedule.
pub fn evaluate_qhd_with(
    db: &Database,
    q: &ConjunctiveQuery,
    plan: &QhdPlan,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<VRelation, EvalError> {
    budget.apply_mem_limit(opts.mem_limit);
    if opts.columnar {
        evaluate_qhd_generic::<CRel>(db, q, plan, budget, opts).map(Carrier::into_vrel)
    } else {
        evaluate_qhd_generic::<VRelation>(db, q, plan, budget, opts)
    }
}

/// The `P′` phase as a reusable front: χ(p) per vertex (as names) and the
/// per-vertex joined relations, both indexed by [`NodeId::index`]. Shared
/// by the materialized pipeline below and the factorized cover build
/// ([`crate::factorized`]), so both see byte-identical vertex relations.
pub(crate) fn vertex_relations<C: Carrier>(
    db: &Database,
    q: &ConjunctiveQuery,
    plan: &QhdPlan,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<(Vec<Vec<String>>, Vec<C>), EvalError> {
    let tree = &plan.tree;
    let h = &plan.cq_hypergraph.hypergraph;
    let threads = opts.threads.max(1);

    // χ(p) as variable names, per vertex.
    let mut chi_names: Vec<Vec<String>> = vec![Vec::new(); tree.len()];
    for p in tree.preorder() {
        chi_names[p.index()] = tree
            .node(p)
            .chi
            .iter()
            .map(|v| h.var_name(v).to_string())
            .collect();
    }

    // P′: per-vertex joins — independent, so fan out across workers.
    let vertices: Vec<NodeId> = tree.preorder();
    let mut rels: Vec<Option<C>> = (0..tree.len()).map(|_| None).collect();
    let index_join = opts.index_join;
    if threads > 1 && vertices.len() > 1 {
        let shared = budget.fork();
        let results = exec::parallel_map(vertices.clone(), threads, |p| {
            let mut b = shared.clone();
            vertex_join::<C>(db, q, tree, p, &chi_names[p.index()], &mut b, index_join)
        });
        // Merge point: surface budget exhaustion deterministically first,
        // then a contained worker panic, then any other error in preorder
        // (= deterministic) order.
        budget.check_exceeded()?;
        for (p, r) in vertices.iter().zip(results?) {
            rels[p.index()] = Some(r?);
        }
    } else {
        for &p in &vertices {
            rels[p.index()] = Some(vertex_join::<C>(
                db,
                q,
                tree,
                p,
                &chi_names[p.index()],
                budget,
                index_join,
            )?);
        }
    }
    let rels = rels
        .into_iter()
        .map(|r| r.expect("preorder visits every vertex"))
        .collect();
    Ok((chi_names, rels))
}

/// The carrier-generic pipeline behind [`evaluate_qhd_with`].
pub(crate) fn evaluate_qhd_generic<C: Carrier>(
    db: &Database,
    q: &ConjunctiveQuery,
    plan: &QhdPlan,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<C, EvalError> {
    let tree = &plan.tree;
    let threads = opts.threads.max(1);
    let (chi_names, rels) = vertex_relations::<C>(db, q, plan, budget, opts)?;
    let vertex_rel: Vec<Mutex<Option<C>>> = rels.into_iter().map(|r| Mutex::new(Some(r))).collect();

    // P″: single bottom-up pass, support children joined first.
    let result_root = eval_bottom_up(tree, tree.root(), &chi_names, &vertex_rel, budget, threads)?;

    // P‴: project the root onto out(Q).
    let out = q.out_vars();
    let result = result_root.project(&out, true, budget)?;
    // Final merge point: once the budget has been forked, charges are
    // batched and may not trip inline (see `Budget::charge`); surface
    // exhaustion before declaring success so every schedule agrees.
    budget.check_exceeded()?;
    Ok(result)
}

/// `P′` for one vertex: scan `assigned(p) ∪ λ(p)`, join them, project
/// onto χ(p) (restricted to available variables). With `index_join` set
/// and a catalog carrying secondary indexes, multi-atom vertices may run
/// as index-nested-loop seeks instead ([`seek_vertex_join`]); the result
/// bag is identical either way.
fn vertex_join<C: Carrier>(
    db: &Database,
    q: &ConjunctiveQuery,
    tree: &htqo_core::Hypertree,
    p: NodeId,
    chi: &[String],
    budget: &mut Budget,
    index_join: bool,
) -> Result<C, EvalError> {
    budget.check_time()?;
    htqo_engine::fail_point!("qeval::vertex");
    let n = tree.node(p);
    let atoms = n.assigned.union(&n.lambda);
    let atom_ids: Vec<AtomId> = atoms.iter().map(|e| AtomId(e.0)).collect();
    if index_join && db.has_indexes() && atom_ids.len() > 1 {
        if let Some(joined) = seek_vertex_join::<C>(db, q, &atom_ids, budget)? {
            return joined.project_onto_available(chi, budget);
        }
    }
    let mut scanned: Vec<C> = Vec::with_capacity(atom_ids.len());
    for &a in &atom_ids {
        scanned.push(C::scan_query_atom(db, q, a, budget)?);
    }
    let joined = join_connected_greedy(scanned, budget)?;
    joined.project_onto_available(chi, budget)
}

/// Index-aware variant of the per-vertex join: starts from the atom with
/// the smallest base table and folds the remaining atoms in, preferring
/// connected atoms with small base tables ([`join_connected_greedy`]'s
/// heuristic lifted to base cardinalities, which are known *before*
/// scanning). An atom is joined by index seek when the accumulator is
/// small relative to its base table and a registered index covers a
/// shared variable; otherwise it is scanned and hash-joined as usual.
///
/// Returns `Ok(None)` when no atom of the vertex is seek-eligible — the
/// caller then takes the classic scan-everything path, so catalogs
/// without (relevant) indexes see bit-identical behavior and charges.
/// All decisions depend only on base-table sizes and accumulator row
/// counts, which are carrier- and thread-independent, preserving the
/// carrier-equivalence and determinism invariants.
fn seek_vertex_join<C: Carrier>(
    db: &Database,
    q: &ConjunctiveQuery,
    atom_ids: &[AtomId],
    budget: &mut Budget,
) -> Result<Option<C>, EvalError> {
    let vars_of =
        |a: AtomId| -> Vec<String> { q.atom(a).args.iter().map(|(_, v)| v.clone()).collect() };
    // Cheap gate: some atom must be seekable from the other atoms' vars.
    let eligible = atom_ids.iter().any(|&a| {
        let others: Vec<String> = atom_ids
            .iter()
            .filter(|&&o| o != a)
            .flat_map(|&o| vars_of(o))
            .collect();
        htqo_engine::iseek::seek_eligible(db, q, a, &others)
    });
    if !eligible {
        return Ok(None);
    }
    let mut remaining: Vec<(AtomId, usize)> = Vec::with_capacity(atom_ids.len());
    for &a in atom_ids {
        match db.table(&q.atom(a).relation) {
            Some(rel) => remaining.push((a, rel.len())),
            // Let the scan path surface the unknown-table error.
            None => return Ok(None),
        }
    }
    let start_pos = remaining
        .iter()
        .enumerate()
        .min_by_key(|(_, &(a, len))| (len, a.0))
        .map(|(i, _)| i)
        .expect("vertex has atoms");
    let (start, _) = remaining.remove(start_pos);
    let mut acc = C::scan_query_atom(db, q, start, budget)?;
    while !remaining.is_empty() {
        let connected = remaining
            .iter()
            .enumerate()
            .filter(|(_, &(a, _))| vars_of(a).iter().any(|v| acc.col_index(v).is_some()))
            .min_by_key(|(_, &(a, len))| (len, a.0))
            .map(|(i, _)| i);
        let pos = connected.unwrap_or_else(|| {
            // Forced cross product: smallest remaining base table.
            remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &(a, len))| (len, a.0))
                .map(|(i, _)| i)
                .expect("non-empty")
        });
        let (a, base_len) = remaining.remove(pos);
        // A seek pays one probe per accumulator row; a hash join pays the
        // full scan + build. Prefer the seek only when the accumulator is
        // decisively smaller than the base table.
        let seek_profitable = acc.len().saturating_mul(4) <= base_len;
        let seeked = if seek_profitable {
            C::index_seek_join(db, q, a, &acc, budget)?
        } else {
            None
        };
        acc = match seeked {
            Some(r) => r,
            None => {
                let scanned = C::scan_query_atom(db, q, a, budget)?;
                acc.natural_join(&scanned, budget)?
            }
        };
    }
    Ok(Some(acc))
}

/// Joins a set of relations preferring variable-connected pairs: start
/// from the smallest relation, repeatedly join the smallest relation
/// sharing a variable with the accumulator, and only cross-product when no
/// connected relation remains. This is the "choice of the topological
/// order" freedom the paper grants the evaluator (Section 4) applied
/// within one vertex.
fn join_connected_greedy<C: Carrier>(
    mut inputs: Vec<C>,
    budget: &mut Budget,
) -> Result<C, EvalError> {
    let Some(first_idx) = inputs
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| r.len())
        .map(|(i, _)| i)
    else {
        return Ok(C::neutral());
    };
    let mut acc = inputs.swap_remove(first_idx);
    while !inputs.is_empty() {
        let connected = inputs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.cols().iter().any(|c| acc.col_index(c).is_some()))
            .min_by_key(|(_, r)| r.len())
            .map(|(i, _)| i);
        let idx = connected.unwrap_or_else(|| {
            // Forced cross product: take the smallest remaining input.
            inputs
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.len())
                .map(|(i, _)| i)
                .expect("non-empty")
        });
        let next = inputs.swap_remove(idx);
        acc = acc.natural_join(&next, budget)?;
    }
    Ok(acc)
}

fn eval_bottom_up<C: Carrier>(
    tree: &htqo_core::Hypertree,
    p: NodeId,
    chi_names: &[Vec<String>],
    vertex_rel: &[Mutex<Option<C>>],
    budget: &mut Budget,
    threads: usize,
) -> Result<C, EvalError> {
    let node = tree.node(p);
    // Children order: support children first, then the rest.
    let mut order: Vec<NodeId> = node.support_children.clone();
    for &c in &node.children {
        if !order.contains(&c) {
            order.push(c);
        }
    }

    // The subtrees below distinct children are independent: evaluate them
    // concurrently, then fold the joins sequentially in support-first
    // order below (the ordering constraint binds the joins, not the
    // subtree evaluations).
    htqo_engine::fail_point!("qeval::bottom_up");
    let children: Vec<Result<C, EvalError>> = if threads > 1 && order.len() > 1 {
        let shared = budget.fork();
        let results = exec::parallel_map(order.clone(), threads, |c| {
            let mut b = shared.clone();
            eval_bottom_up(tree, c, chi_names, vertex_rel, &mut b, threads)
        });
        budget.check_exceeded()?;
        results?
    } else {
        let mut results = Vec::with_capacity(order.len());
        for &c in &order {
            let r = eval_bottom_up(tree, c, chi_names, vertex_rel, budget, threads);
            let failed = r.is_err();
            results.push(r);
            if failed {
                break;
            }
        }
        results
    };

    let mut acc = vertex_rel[p.index()]
        .lock()
        .unwrap()
        .take()
        .expect("vertex relation computed");
    for r in children {
        budget.check_time()?;
        let child = r?;
        // Early projection: by the connectedness condition, the only child
        // variables the parent (or any sibling) can ever see are those in
        // χ(p), so the rest are dead weight — drop them (with dedup)
        // before the join instead of after.
        let child = child.project_onto_available(&chi_names[p.index()], budget)?;
        acc = acc.natural_join(&child, budget)?;
        // Project eagerly after each child join to keep intermediates at
        // χ(p) arity (still a *join*, not a semijoin: children may supply
        // χ(p) variables the vertex's own atoms lack).
        acc = acc.project_onto_available(&chi_names[p.index()], budget)?;
    }
    Ok(acc)
}

/// Evaluates `q` end-to-end: q-hypertree evaluation followed by the final
/// aggregation/ordering step (step (4) of the paper's pipeline).
pub fn evaluate_qhd_query(
    db: &Database,
    q: &ConjunctiveQuery,
    plan: &QhdPlan,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    evaluate_qhd_query_with(db, q, plan, budget, &ExecOptions::default())
}

/// [`evaluate_qhd_query`] with an explicit execution schedule. On the
/// columnar carrier the answer stays columnar end to end — the final
/// aggregation front runs column-at-a-time too
/// ([`htqo_engine::aggregate::finalize_c`]). When
/// [`ExecOptions::factorized`] is set and the query/plan qualify, the
/// aggregate is computed from a factorized cover without materializing
/// the join ([`crate::factorized`]).
pub fn evaluate_qhd_query_with(
    db: &Database,
    q: &ConjunctiveQuery,
    plan: &QhdPlan,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<VRelation, EvalError> {
    let mut trace = crate::factorized::FactorizedTrace::default();
    crate::factorized::evaluate_qhd_query_traced(db, q, plan, budget, opts, &mut trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::evaluate_naive;
    use htqo_core::{q_hypertree_decomp, QhdOptions, StructuralCost};
    use htqo_cq::CqBuilder;
    use htqo_engine::relation::Relation;
    use htqo_engine::schema::{ColumnType, Schema};
    use htqo_engine::value::Value;

    fn db_for(names: &[&str], rows_per: i64, domain: i64, seed: i64) -> Database {
        let mut db = Database::new();
        for (k, name) in names.iter().enumerate() {
            let mut r = Relation::new(Schema::new(&[
                ("l", ColumnType::Int),
                ("r", ColumnType::Int),
            ]));
            for t in 0..rows_per {
                let a = (t * 7 + k as i64 * 3 + seed) % domain;
                let b = (t * 11 + k as i64 * 5 + seed * 2) % domain;
                r.push_row(vec![Value::Int(a), Value::Int(b)]).unwrap();
            }
            db.insert_table(name, r);
        }
        db
    }

    fn chain_query(n: usize, out: &[&str]) -> htqo_cq::ConjunctiveQuery {
        // Cyclic chain: p0(X0,X1), ..., p{n-1}(X{n-1},X0).
        let mut b = CqBuilder::new();
        for i in 0..n {
            let l = format!("X{i}");
            let r = format!("X{}", (i + 1) % n);
            b = b.atom(&format!("p{i}"), &format!("p{i}"), &[("l", &l), ("r", &r)]);
        }
        for v in out {
            b = b.out_var(v);
        }
        b.build()
    }

    #[test]
    fn qhd_matches_naive_on_cyclic_chains() {
        for n in 3..=6 {
            let names: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let db = db_for(&name_refs, 30, 6, n as i64);
            let q = chain_query(n, &["X0", "X1"]);
            let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
            let mut b1 = Budget::unlimited();
            let mut b2 = Budget::unlimited();
            let qhd = evaluate_qhd(&db, &q, &plan, &mut b1).unwrap();
            let naive = evaluate_naive(&db, &q, &mut b2).unwrap();
            assert!(qhd.set_eq(&naive), "mismatch at n={n}");
        }
    }

    #[test]
    fn qhd_matches_naive_with_optimize_disabled() {
        let db = db_for(&["p0", "p1", "p2", "p3"], 25, 5, 1);
        let q = chain_query(4, &["X0"]);
        for run_optimize in [true, false] {
            let plan = q_hypertree_decomp(
                &q,
                &QhdOptions {
                    max_width: 3,
                    run_optimize,
                    threads: 0,
                },
                &StructuralCost,
            )
            .unwrap();
            let mut b1 = Budget::unlimited();
            let mut b2 = Budget::unlimited();
            let qhd = evaluate_qhd(&db, &q, &plan, &mut b1).unwrap();
            let naive = evaluate_naive(&db, &q, &mut b2).unwrap();
            assert!(qhd.set_eq(&naive), "optimize={run_optimize}");
        }
    }

    #[test]
    fn boolean_cyclic_query() {
        let db = db_for(&["p0", "p1", "p2"], 20, 4, 2);
        let q = chain_query(3, &[]);
        let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let qhd = evaluate_qhd(&db, &q, &plan, &mut b1).unwrap();
        let naive = evaluate_naive(&db, &q, &mut b2).unwrap();
        assert_eq!(qhd.len(), naive.len());
    }

    #[test]
    fn empty_result_propagates() {
        // Disjoint domains: no join results.
        let mut db = Database::new();
        let mut p0 = Relation::new(Schema::new(&[
            ("l", ColumnType::Int),
            ("r", ColumnType::Int),
        ]));
        p0.push_row(vec![Value::Int(1), Value::Int(2)]).unwrap();
        let mut p1 = Relation::new(Schema::new(&[
            ("l", ColumnType::Int),
            ("r", ColumnType::Int),
        ]));
        p1.push_row(vec![Value::Int(7), Value::Int(8)]).unwrap();
        db.insert_table("p0", p0);
        db.insert_table("p1", p1);
        let q = CqBuilder::new()
            .atom("p0", "p0", &[("l", "A"), ("r", "B")])
            .atom("p1", "p1", &[("l", "B"), ("r", "C")])
            .out_var("A")
            .build();
        let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
        let mut budget = Budget::unlimited();
        let ans = evaluate_qhd(&db, &q, &plan, &mut budget).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn budget_limits_qhd_too() {
        let db = db_for(&["p0", "p1", "p2", "p3"], 50, 3, 3);
        let q = chain_query(4, &["X0"]);
        let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
        let mut budget = Budget::unlimited().with_max_tuples(10);
        assert!(evaluate_qhd(&db, &q, &plan, &mut budget).is_err());
    }

    #[test]
    fn parallel_schedule_matches_sequential() {
        for n in 3..=6 {
            let names: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let db = db_for(&name_refs, 40, 5, n as i64 + 10);
            let q = chain_query(n, &["X0", "X1"]);
            let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
            let mut bs = Budget::unlimited();
            let seq = evaluate_qhd_with(
                &db,
                &q,
                &plan,
                &mut bs,
                &ExecOptions {
                    threads: 1,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            for threads in [2usize, 4, 8] {
                let mut bp = Budget::unlimited();
                let par = evaluate_qhd_with(
                    &db,
                    &q,
                    &plan,
                    &mut bp,
                    &ExecOptions {
                        threads,
                        ..ExecOptions::default()
                    },
                )
                .unwrap();
                assert!(seq.set_eq(&par), "n={n} threads={threads}");
            }
        }
    }

    /// Pinned: the two carriers produce identical answers and identical
    /// budget charges across decomposition shapes and thread counts.
    #[test]
    fn columnar_carrier_matches_row_carrier() {
        for n in 3..=6 {
            let names: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let db = db_for(&name_refs, 35, 5, n as i64 + 20);
            let q = chain_query(n, &["X0", "X1"]);
            let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
            for threads in [1usize, 4] {
                let mut br = Budget::unlimited();
                let mut bc = Budget::unlimited();
                let rows = evaluate_qhd_with(
                    &db,
                    &q,
                    &plan,
                    &mut br,
                    &ExecOptions {
                        threads,
                        columnar: false,
                        ..ExecOptions::default()
                    },
                )
                .unwrap();
                let cols = evaluate_qhd_with(
                    &db,
                    &q,
                    &plan,
                    &mut bc,
                    &ExecOptions {
                        threads,
                        columnar: true,
                        ..ExecOptions::default()
                    },
                )
                .unwrap();
                assert!(rows.set_eq(&cols), "n={n} threads={threads}");
                assert_eq!(br.charged(), bc.charged(), "n={n} threads={threads}");
            }
        }
    }

    /// Pinned: tuple-budget exhaustion is identical for every thread
    /// count — the trip condition depends only on the order-free sum of
    /// charges, surfaced deterministically at merge points.
    #[test]
    fn budget_exhaustion_is_thread_count_invariant() {
        let db = db_for(&["p0", "p1", "p2", "p3"], 50, 3, 3);
        let q = chain_query(4, &["X0"]);
        let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
        for columnar in [false, true] {
            for threads in [1usize, 2, 3, 4, 8, 16] {
                let mut budget = Budget::unlimited().with_max_tuples(10);
                let err = evaluate_qhd_with(
                    &db,
                    &q,
                    &plan,
                    &mut budget,
                    &ExecOptions {
                        threads,
                        columnar,
                        ..ExecOptions::default()
                    },
                )
                .unwrap_err();
                assert_eq!(
                    err,
                    EvalError::TupleBudgetExceeded { limit: 10 },
                    "threads={threads} columnar={columnar}"
                );
            }
        }
    }
}
