//! Factorized evaluation fronts: wire the engine's cover representation
//! ([`htqo_engine::factorized`]) into the q-hypertree and Yannakakis
//! pipelines.
//!
//! Both evaluators share the pattern: reuse the pipeline's own first phase
//! (`P′` vertex joins / atom scans) to obtain per-vertex relations, link
//! them along the decomposition tree into a [`Cover`], and then either
//!
//! * finalize aggregates directly from per-vertex answer counts
//!   ([`evaluate_qhd_query_traced`], [`evaluate_yannakakis_query_traced`])
//!   — never materializing the join — or
//! * hand back a constant-delay answer iterator ([`qhd_answer_rows`],
//!   [`yannakakis_answer_rows`]).
//!
//! Eligibility is checked statically where possible (aggregate shape,
//! stitchability, root coverage — see DESIGN.md §3.11); data-dependent
//! conditions (the answer-determines-link check, float accumulation,
//! denied reservations) surface at runtime as
//! [`CoverError::Ineligible`] and fall back to the materialized pipeline,
//! which can spill. The [`FactorizedTrace`] records which path produced
//! the result, for optimizer telemetry.

use std::collections::HashSet;

use htqo_core::QhdPlan;
use htqo_cq::{AggFunc, ConjunctiveQuery, OutputItem};
use htqo_engine::crel::CRel;
use htqo_engine::error::{Budget, EvalError};
use htqo_engine::exec::ExecOptions;
use htqo_engine::factorized::{
    build_cover, finalize_cover, Cover, CoverError, CoverInput, CoverRows, FactorizedCarrier,
};
use htqo_engine::schema::Database;
use htqo_engine::value::Row;
use htqo_engine::vrel::VRelation;
use htqo_hypergraph::acyclic::gyo;
use htqo_hypergraph::EdgeId;

/// Which path produced a query result, for `QueryOutcome` telemetry.
#[derive(Debug, Clone, Default)]
pub struct FactorizedTrace {
    /// The factorized path produced the result.
    pub factorized: bool,
    /// Why the factorized path was skipped or abandoned (static
    /// ineligibility or a runtime degrade), if it was.
    pub fallback: Option<String>,
    /// Exact answer cardinality — the cover total when factorized, the
    /// materialized answer row count otherwise.
    pub answer_rows: Option<u64>,
}

/// Static aggregate-shape eligibility, shared by both evaluators: the
/// weighted finalize produces groups in root-row first-seen order (not the
/// materialized pipeline's answer-row order), so ORDER BY/LIMIT queries
/// are excluded; AVG folds floats in enumeration order and is never
/// bit-stable under reweighting.
fn shape_check(q: &ConjunctiveQuery) -> Result<(), String> {
    if !q.has_aggregates() {
        return Err("not an aggregate query".into());
    }
    if !q.order_by.is_empty() || q.limit.is_some() {
        return Err("ORDER BY/LIMIT pin the output row order".into());
    }
    for item in &q.output {
        if let OutputItem::Aggregate {
            func: AggFunc::Avg, ..
        } = item
        {
            return Err("AVG accumulates order-sensitively".into());
        }
    }
    Ok(())
}

/// Variables the weighted finalize must find on the root vertex: GROUP BY
/// variables and every variable inside an aggregate expression.
fn aggregate_input_vars(q: &ConjunctiveQuery) -> Vec<&str> {
    let mut vars: Vec<&str> = q.group_by.iter().map(|s| s.as_str()).collect();
    for item in &q.output {
        if let OutputItem::Aggregate { expr: Some(e), .. } = item {
            for v in e.vars() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
    }
    vars
}

/// `avail(v)` per vertex (indexed by `NodeId::index`): the χ variables the
/// vertex's own atoms (`assigned ∪ λ`) actually carry — the columns of its
/// `P′` relation.
fn qhd_avail(plan: &QhdPlan) -> Vec<HashSet<String>> {
    let tree = &plan.tree;
    let h = &plan.cq_hypergraph.hypergraph;
    let mut avail = vec![HashSet::new(); tree.len()];
    for p in tree.preorder() {
        let n = tree.node(p);
        let atoms = n.assigned.union(&n.lambda);
        let mut atom_vars: HashSet<&str> = HashSet::new();
        for e in atoms.iter() {
            for v in h.edge_vars(e).iter() {
                atom_vars.insert(h.var_name(v));
            }
        }
        avail[p.index()] = n
            .chi
            .iter()
            .map(|v| h.var_name(v))
            .filter(|name| atom_vars.contains(*name))
            .map(str::to_string)
            .collect();
    }
    avail
}

/// Structural stitchability of a q-hypertree plan: every variable a vertex
/// shares with its parent's χ must be *available* at the parent (after
/// `Optimize`, some χ variables are supplied only by children — such a
/// plan cannot link parent and child rows by key equality alone).
pub fn qhd_stitchable(plan: &QhdPlan) -> Result<(), String> {
    let tree = &plan.tree;
    let h = &plan.cq_hypergraph.hypergraph;
    let avail = qhd_avail(plan);
    for p in tree.preorder() {
        let chi_p: HashSet<&str> = tree.node(p).chi.iter().map(|v| h.var_name(v)).collect();
        for &c in &tree.node(p).children {
            for name in &avail[c.index()] {
                if chi_p.contains(name.as_str()) && !avail[p.index()].contains(name) {
                    return Err(format!(
                        "variable `{name}` is in a parent's scope but only its children supply it"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Full static eligibility of the factorized *aggregate* path for a
/// q-hypertree plan: aggregate shape, stitchability, and root coverage of
/// every aggregation input. Data-dependent conditions are still checked
/// during the cover build.
pub fn qhd_factorized_check(q: &ConjunctiveQuery, plan: &QhdPlan) -> Result<(), String> {
    shape_check(q)?;
    qhd_stitchable(plan)?;
    let avail = qhd_avail(plan);
    let root = &avail[plan.tree.root().index()];
    for v in aggregate_input_vars(q) {
        if !root.contains(v) {
            return Err(format!(
                "aggregation input `{v}` is not available at the decomposition root"
            ));
        }
    }
    Ok(())
}

/// Builds a cover from the plan's `P′` vertex relations (children linked
/// to parents, scopes = χ).
fn qhd_cover<C: FactorizedCarrier>(
    db: &Database,
    q: &ConjunctiveQuery,
    plan: &QhdPlan,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<Cover<C>, CoverError> {
    let (chi_names, rels) =
        crate::qeval::vertex_relations::<C>(db, q, plan, budget, opts).map_err(CoverError::Eval)?;
    let tree = &plan.tree;
    let mut parents: Vec<Option<usize>> = vec![None; tree.len()];
    for p in tree.preorder() {
        for &c in &tree.node(p).children {
            parents[c.index()] = Some(p.index());
        }
    }
    build_cover(
        CoverInput {
            rels,
            parents,
            scopes: chi_names,
        },
        q,
        budget,
    )
}

fn qhd_factorized_aggregate<C: FactorizedCarrier>(
    db: &Database,
    q: &ConjunctiveQuery,
    plan: &QhdPlan,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<(VRelation, u64), CoverError> {
    let cover = qhd_cover::<C>(db, q, plan, budget, opts)?;
    let rows = cover.total();
    let out = finalize_cover(cover, q, budget)?;
    // Same final merge point as the materialized pipeline: forked charges
    // are batched, so surface exhaustion before declaring success.
    budget.check_exceeded().map_err(CoverError::Eval)?;
    Ok((out, rows))
}

/// [`crate::qeval::evaluate_qhd_query_with`] with path telemetry: tries
/// the factorized aggregate path when [`ExecOptions::factorized`] allows
/// and the query/plan qualify, falling back to the materialized pipeline
/// otherwise (recording why in `trace`). Answers are identical either way
/// up to output row order, which eligibility restricts to queries where
/// that order is unspecified.
pub fn evaluate_qhd_query_traced(
    db: &Database,
    q: &ConjunctiveQuery,
    plan: &QhdPlan,
    budget: &mut Budget,
    opts: &ExecOptions,
    trace: &mut FactorizedTrace,
) -> Result<VRelation, EvalError> {
    *trace = FactorizedTrace::default();
    if opts.factorized && q.has_aggregates() {
        match qhd_factorized_check(q, plan) {
            Ok(()) => {
                let attempt = if opts.columnar {
                    qhd_factorized_aggregate::<CRel>(db, q, plan, budget, opts)
                } else {
                    qhd_factorized_aggregate::<VRelation>(db, q, plan, budget, opts)
                };
                match attempt {
                    Ok((out, rows)) => {
                        trace.factorized = true;
                        trace.answer_rows = Some(rows);
                        return Ok(out);
                    }
                    Err(CoverError::Ineligible(reason)) => trace.fallback = Some(reason),
                    Err(CoverError::Eval(e)) => return Err(e),
                }
            }
            Err(reason) => trace.fallback = Some(reason),
        }
    }
    if opts.columnar {
        let answer = crate::qeval::evaluate_qhd_generic::<CRel>(db, q, plan, budget, opts)?;
        trace.answer_rows = Some(htqo_engine::carrier::Carrier::len(&answer) as u64);
        htqo_engine::aggregate::finalize_c(&answer, q, budget)
    } else {
        let answer = crate::qeval::evaluate_qhd_generic::<VRelation>(db, q, plan, budget, opts)?;
        trace.answer_rows = Some(answer.len() as u64);
        htqo_engine::aggregate::finalize(&answer, q, budget)
    }
}

/// A lazily produced answer stream over `out(Q)`: constant-delay
/// factorized enumeration when the cover build succeeds, a drained
/// materialized answer otherwise. Rows carry `Result` so budget
/// exhaustion and timeouts can surface mid-stream.
pub enum AnswerRows {
    /// Constant-delay enumeration over a row-carrier cover.
    Rows(CoverRows<VRelation>),
    /// Constant-delay enumeration over a columnar cover.
    Cols(CoverRows<CRel>),
    /// Fallback: the fully materialized answer.
    Materialized {
        /// Answer column names, in `out(Q)` order.
        cols: Vec<String>,
        /// The materialized rows.
        rows: std::vec::IntoIter<Row>,
    },
}

impl AnswerRows {
    /// Answer column names, in `out(Q)` order.
    pub fn cols(&self) -> &[String] {
        match self {
            AnswerRows::Rows(r) => r.cols(),
            AnswerRows::Cols(c) => c.cols(),
            AnswerRows::Materialized { cols, .. } => cols,
        }
    }

    /// True if rows are enumerated from a cover rather than a
    /// materialized answer.
    pub fn is_factorized(&self) -> bool {
        !matches!(self, AnswerRows::Materialized { .. })
    }
}

impl Iterator for AnswerRows {
    type Item = Result<Row, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            AnswerRows::Rows(r) => r.next(),
            AnswerRows::Cols(c) => c.next(),
            AnswerRows::Materialized { rows, .. } => rows.next().map(Ok),
        }
    }
}

/// Evaluates `q` along `plan` into an [`AnswerRows`] stream: factorized
/// constant-delay enumeration when [`ExecOptions::factorized`] allows and
/// the plan/data qualify, the materialized answer otherwise. The streamed
/// row multiset equals [`crate::qeval::evaluate_qhd_with`]'s answer (order
/// unspecified in both).
pub fn qhd_answer_rows(
    db: &Database,
    q: &ConjunctiveQuery,
    plan: &QhdPlan,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<AnswerRows, EvalError> {
    budget.apply_mem_limit(opts.mem_limit);
    if opts.factorized && qhd_stitchable(plan).is_ok() {
        let attempt: Result<AnswerRows, CoverError> = if opts.columnar {
            qhd_cover::<CRel>(db, q, plan, budget, opts)
                .map(|c| AnswerRows::Cols(c.into_rows(budget)))
        } else {
            qhd_cover::<VRelation>(db, q, plan, budget, opts)
                .map(|c| AnswerRows::Rows(c.into_rows(budget)))
        };
        match attempt {
            Ok(rows) => return Ok(rows),
            Err(CoverError::Ineligible(_)) => {}
            Err(CoverError::Eval(e)) => return Err(e),
        }
    }
    let ans = crate::qeval::evaluate_qhd_with(db, q, plan, budget, opts)?;
    Ok(AnswerRows::Materialized {
        cols: ans.cols().to_vec(),
        rows: ans.rows().to_vec().into_iter(),
    })
}

/// Static eligibility of the factorized aggregate path for Yannakakis:
/// aggregate shape, acyclicity, and root coverage. A join forest is
/// always stitchable (a vertex's scope *is* its column set), but the
/// GYO forest's rooting is fixed, so aggregation inputs must sit on the
/// single root edge (or be empty over a multi-tree forest, whose synthetic
/// root has no columns) — no re-rooting is attempted.
fn yann_factorized_check(q: &ConjunctiveQuery) -> Result<(), String> {
    shape_check(q)?;
    let ch = q.hypergraph();
    let Some(reduction) = gyo(&ch.hypergraph) else {
        return Err("cyclic query".into());
    };
    let roots = reduction.forest.roots();
    let needed = aggregate_input_vars(q);
    if roots.len() == 1 {
        let root_vars: HashSet<&str> = ch
            .hypergraph
            .edge_vars(roots[0])
            .iter()
            .map(|v| ch.hypergraph.var_name(v))
            .collect();
        for v in needed {
            if !root_vars.contains(v) {
                return Err(format!(
                    "aggregation input `{v}` is not on the join-forest root"
                ));
            }
        }
    } else if !needed.is_empty() {
        return Err("grouped aggregation over a multi-tree join forest".into());
    }
    Ok(())
}

/// Builds a cover from the query's atom scans linked along the GYO join
/// forest (scopes = edge variables; multiple trees stitch under the
/// engine's synthetic neutral root).
fn yann_cover<C: FactorizedCarrier>(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<Cover<C>, CoverError> {
    let ch = q.hypergraph();
    let Some(reduction) = gyo(&ch.hypergraph) else {
        return Err(CoverError::Ineligible("cyclic query".into()));
    };
    let forest = reduction.forest;
    let rels = crate::yannakakis::scan_atoms::<C>(db, q, budget, opts).map_err(CoverError::Eval)?;
    let n = rels.len();
    let parents: Vec<Option<usize>> = (0..n)
        .map(|i| forest.parent(EdgeId(i as u32)).map(|p| p.index()))
        .collect();
    let scopes: Vec<Vec<String>> = (0..n)
        .map(|i| {
            ch.hypergraph
                .edge_vars(EdgeId(i as u32))
                .iter()
                .map(|v| ch.hypergraph.var_name(v).to_string())
                .collect()
        })
        .collect();
    build_cover(
        CoverInput {
            rels,
            parents,
            scopes,
        },
        q,
        budget,
    )
}

fn yann_factorized_aggregate<C: FactorizedCarrier>(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<(VRelation, u64), CoverError> {
    let cover = yann_cover::<C>(db, q, budget, opts)?;
    let rows = cover.total();
    let out = finalize_cover(cover, q, budget)?;
    budget.check_exceeded().map_err(CoverError::Eval)?;
    Ok((out, rows))
}

/// Evaluates an acyclic query end-to-end (Yannakakis + final aggregation)
/// with the process-wide defaults; see
/// [`evaluate_yannakakis_query_with`].
pub fn evaluate_yannakakis_query(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    evaluate_yannakakis_query_with(db, q, budget, &ExecOptions::default())
}

/// Evaluates an acyclic query end-to-end: the factorized aggregate path
/// when eligible, the three-pass pipeline plus
/// [`htqo_engine::aggregate::finalize`] otherwise.
pub fn evaluate_yannakakis_query_with(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<VRelation, EvalError> {
    let mut trace = FactorizedTrace::default();
    evaluate_yannakakis_query_traced(db, q, budget, opts, &mut trace)
}

/// [`evaluate_yannakakis_query_with`] with path telemetry.
pub fn evaluate_yannakakis_query_traced(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
    opts: &ExecOptions,
    trace: &mut FactorizedTrace,
) -> Result<VRelation, EvalError> {
    *trace = FactorizedTrace::default();
    budget.apply_mem_limit(opts.mem_limit);
    if opts.factorized && q.has_aggregates() {
        match yann_factorized_check(q) {
            Ok(()) => {
                let attempt = if opts.columnar {
                    yann_factorized_aggregate::<CRel>(db, q, budget, opts)
                } else {
                    yann_factorized_aggregate::<VRelation>(db, q, budget, opts)
                };
                match attempt {
                    Ok((out, rows)) => {
                        trace.factorized = true;
                        trace.answer_rows = Some(rows);
                        return Ok(out);
                    }
                    Err(CoverError::Ineligible(reason)) => trace.fallback = Some(reason),
                    Err(CoverError::Eval(e)) => return Err(e),
                }
            }
            Err(reason) => trace.fallback = Some(reason),
        }
    }
    let ans = crate::yannakakis::evaluate_yannakakis_with(db, q, budget, opts)?;
    trace.answer_rows = Some(ans.len() as u64);
    htqo_engine::aggregate::finalize(&ans, q, budget)
}

/// [`qhd_answer_rows`] for the Yannakakis pipeline: constant-delay
/// enumeration over a join-forest cover when eligible, the materialized
/// three-pass answer otherwise.
pub fn yannakakis_answer_rows(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<AnswerRows, EvalError> {
    budget.apply_mem_limit(opts.mem_limit);
    if opts.factorized {
        let attempt: Result<AnswerRows, CoverError> = if opts.columnar {
            yann_cover::<CRel>(db, q, budget, opts).map(|c| AnswerRows::Cols(c.into_rows(budget)))
        } else {
            yann_cover::<VRelation>(db, q, budget, opts)
                .map(|c| AnswerRows::Rows(c.into_rows(budget)))
        };
        match attempt {
            Ok(rows) => return Ok(rows),
            Err(CoverError::Ineligible(_)) => {}
            Err(CoverError::Eval(e)) => return Err(e),
        }
    }
    let ans = crate::yannakakis::evaluate_yannakakis_with(db, q, budget, opts)?;
    Ok(AnswerRows::Materialized {
        cols: ans.cols().to_vec(),
        rows: ans.rows().to_vec().into_iter(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_core::{q_hypertree_decomp, QhdOptions, StructuralCost};
    use htqo_cq::CqBuilder;
    use htqo_engine::relation::Relation;
    use htqo_engine::schema::{ColumnType, Schema};
    use htqo_engine::value::Value;

    /// An acyclic star: hub(A,B) with chains off A and B, every relation
    /// carrying a rowid-style distinct column so COUNT sees bag
    /// multiplicities.
    fn star_db(rows: i64, domain: i64) -> Database {
        let mut db = Database::new();
        for (k, name) in ["hub", "ra", "rb"].iter().enumerate() {
            let mut r = Relation::new(Schema::new(&[
                ("l", ColumnType::Int),
                ("r", ColumnType::Int),
                ("id", ColumnType::Int),
            ]));
            for t in 0..rows {
                let a = (t * 7 + k as i64 * 3 + 1) % domain;
                let b = (t * 11 + k as i64 * 5 + 2) % domain;
                r.push_row(vec![Value::Int(a), Value::Int(b), Value::Int(t)])
                    .unwrap();
            }
            db.insert_table(name, r);
        }
        db
    }

    fn star_count_query() -> ConjunctiveQuery {
        CqBuilder::new()
            .atom("hub", "hub", &[("l", "A"), ("r", "B"), ("id", "__rid_h")])
            .atom("ra", "ra", &[("l", "A"), ("r", "C"), ("id", "__rid_a")])
            .atom("rb", "rb", &[("l", "B"), ("r", "D"), ("id", "__rid_b")])
            .out_var("A")
            .out_agg(AggFunc::Count, None, "n")
            .out_var("__rid_h")
            .out_var("__rid_a")
            .out_var("__rid_b")
            .group("A")
            .build()
    }

    fn sorted_rows(v: &VRelation) -> Vec<Row> {
        let mut rows = v.rows().to_vec();
        rows.sort();
        rows
    }

    #[test]
    fn qhd_factorized_count_matches_materialized() {
        let db = star_db(40, 6);
        let q = star_count_query();
        let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
        for columnar in [false, true] {
            let mut trace = FactorizedTrace::default();
            let mut b1 = Budget::unlimited();
            let fact = evaluate_qhd_query_traced(
                &db,
                &q,
                &plan,
                &mut b1,
                &ExecOptions {
                    columnar,
                    factorized: true,
                    ..ExecOptions::default()
                },
                &mut trace,
            )
            .unwrap();
            assert!(
                trace.factorized,
                "columnar={columnar} fell back: {:?}",
                trace.fallback
            );
            let mut b2 = Budget::unlimited();
            let mat = crate::qeval::evaluate_qhd_query_with(
                &db,
                &q,
                &plan,
                &mut b2,
                &ExecOptions {
                    columnar,
                    factorized: false,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(sorted_rows(&fact), sorted_rows(&mat), "columnar={columnar}");
            assert_eq!(fact.cols(), mat.cols());
            // The factorized path retains only the P′ relations and the
            // small aggregate output; the materialized pipeline holds the
            // full join on top of the same P′ phase.
            assert!(
                b1.mem_used() <= b2.mem_used(),
                "columnar={columnar}: {} > {}",
                b1.mem_used(),
                b2.mem_used()
            );
        }
    }

    #[test]
    fn qhd_enumerator_matches_materialized_answer() {
        let db = star_db(40, 6);
        let q = star_count_query();
        let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
        for columnar in [false, true] {
            let mut b1 = Budget::unlimited();
            let it = qhd_answer_rows(
                &db,
                &q,
                &plan,
                &mut b1,
                &ExecOptions {
                    columnar,
                    factorized: true,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert!(it.is_factorized(), "columnar={columnar}");
            let cols = it.cols().to_vec();
            let mut rows: Vec<Row> = it.collect::<Result<_, _>>().unwrap();
            rows.sort();
            let mut b2 = Budget::unlimited();
            let ans = crate::qeval::evaluate_qhd(&db, &q, &plan, &mut b2).unwrap();
            assert_eq!(cols, ans.cols());
            assert_eq!(rows, sorted_rows(&ans), "columnar={columnar}");
        }
    }

    #[test]
    fn yannakakis_factorized_count_matches_materialized() {
        let db = star_db(35, 5);
        let q = star_count_query();
        for columnar in [false, true] {
            let mut trace = FactorizedTrace::default();
            let mut b1 = Budget::unlimited();
            let fact = evaluate_yannakakis_query_traced(
                &db,
                &q,
                &mut b1,
                &ExecOptions {
                    columnar,
                    factorized: true,
                    ..ExecOptions::default()
                },
                &mut trace,
            )
            .unwrap();
            let mut b2 = Budget::unlimited();
            let ans = crate::yannakakis::evaluate_yannakakis(&db, &q, &mut b2).unwrap();
            let mat = htqo_engine::aggregate::finalize(&ans, &q, &mut b2).unwrap();
            assert_eq!(sorted_rows(&fact), sorted_rows(&mat), "columnar={columnar}");
            if trace.factorized {
                assert_eq!(trace.answer_rows, Some(ans.len() as u64));
            }
        }
    }

    #[test]
    fn ordered_aggregate_falls_back() {
        let db = star_db(20, 4);
        let mut q = star_count_query();
        q.order_by.push(("n".into(), htqo_cq::SortDir::Asc));
        let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
        let mut trace = FactorizedTrace::default();
        let mut b = Budget::unlimited();
        let out = evaluate_qhd_query_traced(
            &db,
            &q,
            &plan,
            &mut b,
            &ExecOptions {
                factorized: true,
                ..ExecOptions::default()
            },
            &mut trace,
        )
        .unwrap();
        assert!(!trace.factorized);
        assert!(trace.fallback.is_some());
        // Fallback still honors the ORDER BY.
        let ns: Vec<_> = out
            .rows()
            .iter()
            .map(|r| r[out.col_index("n").unwrap()].clone())
            .collect();
        let mut sorted = ns.clone();
        sorted.sort();
        assert_eq!(ns, sorted);
    }
}
