//! Query evaluation algorithms for the ICDE 2007 reproduction.
//!
//! - [`naive`]: full left-deep join pipelines (the execution model of the
//!   quantitative baselines, and the correctness oracle);
//! - [`yannakakis`]: the classic three-pass algorithm for acyclic queries
//!   (Section 3.2 of the paper);
//! - [`qeval`]: the q-hypertree evaluator — per-vertex joins, one
//!   bottom-up pass with support-child ordering, final projection
//!   (Section 4);
//! - [`factorized`]: cover-based factorized result fronts for both
//!   structural evaluators — aggregate pushdown and constant-delay answer
//!   enumeration without materializing the join.

#![warn(missing_docs)]

pub mod factorized;
pub mod naive;
pub mod qeval;
pub mod yannakakis;

pub use factorized::{
    evaluate_qhd_query_traced, evaluate_yannakakis_query, evaluate_yannakakis_query_traced,
    evaluate_yannakakis_query_with, qhd_answer_rows, yannakakis_answer_rows, AnswerRows,
    FactorizedTrace,
};
pub use naive::{evaluate_join_order, evaluate_naive};
pub use qeval::{
    evaluate_qhd, evaluate_qhd_query, evaluate_qhd_query_with, evaluate_qhd_with, ExecOptions,
};
pub use yannakakis::{evaluate_yannakakis, evaluate_yannakakis_with};
