//! Reference evaluation: join all atoms (optionally in a caller-supplied
//! left-deep order) and project onto `out(Q)`.
//!
//! This is both the correctness oracle for the decomposition-based
//! evaluators and the execution engine of the quantitative baseline
//! optimizers (which differ only in how they choose the join order).
//! Crucially it performs **full joins without semijoin reduction**, like
//! the execution pipelines of the systems the paper compares against; its
//! intermediate results are what blow up on cyclic/long queries.

use htqo_cq::{AtomId, ConjunctiveQuery};
use htqo_engine::error::{Budget, EvalError};
use htqo_engine::ops::{natural_join, project};
use htqo_engine::scan::scan_query_atom;
use htqo_engine::schema::Database;
use htqo_engine::vrel::VRelation;

/// Evaluates `q` by scanning every atom and joining left-deep in `order`
/// (defaults to body order), returning the answer over `out(Q)` under set
/// semantics.
pub fn evaluate_join_order(
    db: &Database,
    q: &ConjunctiveQuery,
    order: Option<&[AtomId]>,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let default_order: Vec<AtomId> = q.atom_ids().collect();
    let order = order.unwrap_or(&default_order);
    if order.len() != q.atoms.len() {
        return Err(EvalError::Internal(format!(
            "join order covers {} of {} atoms",
            order.len(),
            q.atoms.len()
        )));
    }
    let mut seen = vec![false; q.atoms.len()];
    for a in order {
        if seen[a.index()] {
            return Err(EvalError::Internal(format!(
                "atom {a:?} repeated in join order"
            )));
        }
        seen[a.index()] = true;
    }

    let mut acc: Option<VRelation> = None;
    for &a in order {
        budget.check_time()?;
        let scanned = scan_query_atom(db, q, a, budget)?;
        acc = Some(match acc {
            None => scanned,
            Some(prev) => natural_join(&prev, &scanned, budget)?,
        });
    }
    let joined = acc.unwrap_or_else(VRelation::neutral);
    let out = q.out_vars();
    project(&joined, &out, true, budget)
}

/// Evaluates `q` in body order (the plain reference oracle).
pub fn evaluate_naive(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    evaluate_join_order(db, q, None, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_cq::CqBuilder;
    use htqo_engine::relation::Relation;
    use htqo_engine::schema::{ColumnType, Schema};
    use htqo_engine::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        let mut r = Relation::new(Schema::new(&[
            ("a", ColumnType::Int),
            ("b", ColumnType::Int),
        ]));
        r.extend_rows(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ])
        .unwrap();
        db.insert_table("r", r);
        let mut s = Relation::new(Schema::new(&[
            ("b", ColumnType::Int),
            ("c", ColumnType::Int),
        ]));
        s.extend_rows(vec![
            vec![Value::Int(10), Value::Int(100)],
            vec![Value::Int(10), Value::Int(101)],
            vec![Value::Int(99), Value::Int(999)],
        ])
        .unwrap();
        db.insert_table("s", s);
        db
    }

    fn q() -> ConjunctiveQuery {
        CqBuilder::new()
            .atom("r", "r", &[("a", "A"), ("b", "B")])
            .atom("s", "s", &[("b", "B"), ("c", "C")])
            .out_var("A")
            .out_var("C")
            .build()
    }

    #[test]
    fn joins_and_projects() {
        let mut budget = Budget::unlimited();
        let ans = evaluate_naive(&db(), &q(), &mut budget).unwrap();
        assert_eq!(ans.len(), 2);
        assert_eq!(ans.cols(), &["A".to_string(), "C".to_string()]);
    }

    #[test]
    fn order_does_not_change_answer() {
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let a1 = evaluate_join_order(&db(), &q(), Some(&[AtomId(0), AtomId(1)]), &mut b1).unwrap();
        let a2 = evaluate_join_order(&db(), &q(), Some(&[AtomId(1), AtomId(0)]), &mut b2).unwrap();
        assert!(a1.set_eq(&a2));
    }

    #[test]
    fn invalid_orders_rejected() {
        let mut budget = Budget::unlimited();
        assert!(evaluate_join_order(&db(), &q(), Some(&[AtomId(0)]), &mut budget).is_err());
        assert!(
            evaluate_join_order(&db(), &q(), Some(&[AtomId(0), AtomId(0)]), &mut budget).is_err()
        );
    }

    #[test]
    fn boolean_query_yields_neutralish_answer() {
        let qb = CqBuilder::new().atom("r", "r", &[("a", "A")]).build();
        let mut budget = Budget::unlimited();
        let ans = evaluate_naive(&db(), &qb, &mut budget).unwrap();
        assert_eq!(ans.cols().len(), 0);
        assert_eq!(ans.len(), 1); // non-empty ⇒ "true"
    }

    #[test]
    fn budget_propagates() {
        let mut budget = Budget::unlimited().with_max_tuples(3);
        assert!(evaluate_naive(&db(), &q(), &mut budget).is_err());
    }
}
