//! Yannakakis's algorithm for acyclic conjunctive queries (Section 3.2 of
//! the paper): (i) bottom-up semijoin reduction, (ii) top-down semijoin
//! reduction, (iii) bottom-up joins projecting onto the current vertex's
//! variables plus the output variables contributed by its subtree.
//!
//! Runs in time polynomial in the combined size of input and output.

use htqo_cq::ConjunctiveQuery;
use htqo_engine::carrier::Carrier;
use htqo_engine::crel::CRel;
use htqo_engine::error::{Budget, EvalError};
use htqo_engine::exec::{self, ExecOptions};
use htqo_engine::schema::Database;
use htqo_engine::vrel::VRelation;
use htqo_hypergraph::acyclic::gyo;
use htqo_hypergraph::{EdgeId, JoinForest};

/// Evaluates an **acyclic** conjunctive query with the three-pass
/// Yannakakis algorithm, returning the answer over `out(Q)`. Uses the
/// process-wide thread count and carrier default; see
/// [`evaluate_yannakakis_with`] to pin the schedule.
///
/// Returns `EvalError::Internal` if the query hypergraph is cyclic.
pub fn evaluate_yannakakis(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    evaluate_yannakakis_with(db, q, budget, &ExecOptions::default())
}

/// [`evaluate_yannakakis`] with an explicit execution schedule.
pub fn evaluate_yannakakis_with(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<VRelation, EvalError> {
    budget.apply_mem_limit(opts.mem_limit);
    if opts.columnar {
        yannakakis_generic::<CRel>(db, q, budget, opts).map(Carrier::into_vrel)
    } else {
        yannakakis_generic::<VRelation>(db, q, budget, opts)
    }
}

/// Scans every atom of `q` (edge `i` ↔ atom `i`) — independent work, so it
/// fans out across the execution-layer worker pool. Shared by the
/// three-pass pipeline below and the factorized cover build
/// ([`crate::factorized`]).
pub(crate) fn scan_atoms<C: Carrier>(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<Vec<C>, EvalError> {
    let atom_ids: Vec<_> = q.atom_ids().collect();
    let threads = opts.threads.max(1);
    let mut rels: Vec<C> = Vec::with_capacity(q.atoms.len());
    if threads > 1 && atom_ids.len() > 1 {
        let shared = budget.fork();
        let scans = exec::parallel_map(atom_ids, threads, |a| {
            let mut b = shared.clone();
            C::scan_query_atom(db, q, a, &mut b)
        });
        budget.check_exceeded()?;
        for r in scans? {
            rels.push(r?);
        }
    } else {
        for a in atom_ids {
            rels.push(C::scan_query_atom(db, q, a, budget)?);
        }
    }
    Ok(rels)
}

/// The carrier-generic three-pass pipeline behind
/// [`evaluate_yannakakis_with`].
fn yannakakis_generic<C: Carrier>(
    db: &Database,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
    opts: &ExecOptions,
) -> Result<C, EvalError> {
    let ch = q.hypergraph();
    let Some(reduction) = gyo(&ch.hypergraph) else {
        return Err(EvalError::Internal(
            "Yannakakis requires an acyclic query".into(),
        ));
    };
    let forest: JoinForest = reduction.forest;
    let mut rels = scan_atoms::<C>(db, q, budget, opts)?;

    // Bottom-up then top-down semijoin passes per tree.
    let roots = forest.roots();
    let post = postorder(&forest, &roots);
    // (i) bottom-up: parent ⋉ child.
    for &n in &post {
        if let Some(p) = forest.parent(n) {
            rels[p.index()] = rels[p.index()].semijoin(&rels[n.index()], budget)?;
        }
    }
    // (ii) top-down: child ⋉ parent.
    for &n in post.iter().rev() {
        if let Some(p) = forest.parent(n) {
            rels[n.index()] = rels[n.index()].semijoin(&rels[p.index()], budget)?;
        }
    }

    // (iii) bottom-up joins, projecting onto vertex vars ∪ (out ∩ subtree).
    let out = q.out_vars();
    let mut acc: Vec<Option<C>> = rels.into_iter().map(Some).collect();
    for &n in &post {
        let mut t = acc[n.index()].take().expect("present");
        for c in forest.children(n) {
            let child = acc[c.index()].take().expect("children already folded");
            t = t.natural_join(&child, budget)?;
        }
        // Keep this vertex's variables plus any output variables gathered
        // from the subtree.
        let keep: Vec<String> = t
            .cols()
            .iter()
            .filter(|v| {
                out.contains(v)
                    || ch
                        .hypergraph
                        .edge_vars(n)
                        .iter()
                        .any(|hv| ch.hypergraph.var_name(hv) == v.as_str())
            })
            .cloned()
            .collect();
        t = t.project(&keep, true, budget)?;
        acc[n.index()] = Some(t);
    }

    // Combine the (independent) trees and project onto out(Q).
    let mut answer = C::neutral();
    for r in roots {
        let t = acc[r.index()].take().expect("root folded");
        answer = answer.natural_join(&t, budget)?;
    }
    let answer = answer.project(&out, true, budget)?;
    // Final merge point: forked-budget charges are batched and may not
    // trip inline (see `Budget::charge`); check before declaring success.
    budget.check_exceeded()?;
    Ok(answer)
}

/// Post-order of all trees in the forest.
fn postorder(forest: &JoinForest, roots: &[EdgeId]) -> Vec<EdgeId> {
    let mut order = Vec::with_capacity(forest.len());
    fn rec(forest: &JoinForest, n: EdgeId, out: &mut Vec<EdgeId>) {
        for c in forest.children(n) {
            rec(forest, c, out);
        }
        out.push(n);
    }
    for &r in roots {
        rec(forest, r, &mut order);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::evaluate_naive;
    use htqo_cq::CqBuilder;
    use htqo_engine::relation::Relation;
    use htqo_engine::schema::{ColumnType, Schema};
    use htqo_engine::value::Value;

    fn chain_db(n_rel: usize, tuples: i64) -> Database {
        // p1(x0,x1), p2(x1,x2), ... each with `tuples` rows over a small
        // domain so joins actually connect.
        let mut db = Database::new();
        for i in 0..n_rel {
            let mut r = Relation::new(Schema::new(&[
                ("l", ColumnType::Int),
                ("r", ColumnType::Int),
            ]));
            for t in 0..tuples {
                r.push_row(vec![Value::Int(t % 5), Value::Int((t + i as i64) % 5)])
                    .unwrap();
            }
            db.insert_table(&format!("p{i}"), r);
        }
        db
    }

    fn line_query(n: usize) -> ConjunctiveQuery {
        let mut b = CqBuilder::new();
        for i in 0..n {
            let l = format!("X{i}");
            let r = format!("X{}", i + 1);
            b = b.atom(&format!("p{i}"), &format!("p{i}"), &[("l", &l), ("r", &r)]);
        }
        b.out_var("X0").out_var(&format!("X{n}")).build()
    }

    #[test]
    fn matches_naive_on_lines() {
        for n in 1..=4 {
            let db = chain_db(n, 12);
            let q = line_query(n);
            let mut b1 = Budget::unlimited();
            let mut b2 = Budget::unlimited();
            let y = evaluate_yannakakis(&db, &q, &mut b1).unwrap();
            let naive = evaluate_naive(&db, &q, &mut b2).unwrap();
            assert!(y.set_eq(&naive), "mismatch at n={n}");
        }
    }

    #[test]
    fn semijoin_reduction_materializes_less() {
        // On a selective line query, Yannakakis should charge (weakly)
        // fewer tuples than the naive full join.
        let db = chain_db(5, 40);
        let q = line_query(5);
        let mut by = Budget::unlimited();
        let mut bn = Budget::unlimited();
        let _ = evaluate_yannakakis(&db, &q, &mut by).unwrap();
        let _ = evaluate_naive(&db, &q, &mut bn).unwrap();
        assert!(
            by.charged() <= bn.charged() * 2,
            "yannakakis should not do much more work"
        );
    }

    /// Pinned: the columnar and row carriers agree — answers and budget
    /// charges — across chain lengths.
    #[test]
    fn carriers_agree_on_yannakakis() {
        for n in 1..=4 {
            let db = chain_db(n, 15);
            let q = line_query(n);
            let mut br = Budget::unlimited();
            let mut bc = Budget::unlimited();
            let rows = evaluate_yannakakis_with(
                &db,
                &q,
                &mut br,
                &ExecOptions {
                    threads: 1,
                    columnar: false,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            let cols = evaluate_yannakakis_with(
                &db,
                &q,
                &mut bc,
                &ExecOptions {
                    threads: 1,
                    columnar: true,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert!(rows.set_eq(&cols), "n={n}");
            assert_eq!(br.charged(), bc.charged(), "n={n}");
        }
    }

    #[test]
    fn rejects_cyclic_queries() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X", "Y"])
            .atom_vars("s", &["Y", "Z"])
            .atom_vars("t", &["Z", "X"])
            .out_var("X")
            .build();
        let mut db = Database::new();
        for n in ["r", "s", "t"] {
            db.insert_table(
                n,
                Relation::new(Schema::new(&[
                    ("X", ColumnType::Int),
                    ("Y", ColumnType::Int),
                ])),
            );
        }
        // Atom columns are named after variables in atom_vars; patch the
        // schema accordingly for s and t.
        let mut budget = Budget::unlimited();
        let err = evaluate_yannakakis(&db, &q, &mut budget).unwrap_err();
        assert!(matches!(err, EvalError::Internal(_)));
    }

    #[test]
    fn boolean_acyclic_query() {
        let db = chain_db(2, 6);
        let q = {
            let mut b = CqBuilder::new();
            b = b.atom("p0", "p0", &[("l", "X0"), ("r", "X1")]);
            b = b.atom("p1", "p1", &[("l", "X1"), ("r", "X2")]);
            b.build()
        };
        let mut budget = Budget::unlimited();
        let ans = evaluate_yannakakis(&db, &q, &mut budget).unwrap();
        assert_eq!(ans.cols().len(), 0);
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn disconnected_queries_cross_join_outputs() {
        let db = chain_db(2, 6);
        let q = CqBuilder::new()
            .atom("p0", "p0", &[("l", "A"), ("r", "B")])
            .atom("p1", "p1", &[("l", "C"), ("r", "D")])
            .out_var("A")
            .out_var("C")
            .build();
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let y = evaluate_yannakakis(&db, &q, &mut b1).unwrap();
        let n = evaluate_naive(&db, &q, &mut b2).unwrap();
        assert!(y.set_eq(&n));
    }
}
