//! The multi-session **query service**: a concurrent front door over the
//! hybrid optimizer and the execution pool.
//!
//! A [`QueryService`] owns one immutable [`Database`], one (shared,
//! `Send + Sync`) [`HybridOptimizer`] — whose shape-canonical plan cache
//! is what makes repeated and renamed-isomorphic templates cheap across
//! sessions — and the service-wide resource pools. Each client opens a
//! [`Session`], prepares statements, and executes queries; every
//! execution passes **admission control** before it touches the engine:
//!
//! 1. a bounded in-flight query count (typed [`ServiceError::Overloaded`]
//!    rejection instead of queueing),
//! 2. a byte reservation against the shared memory pool — each session
//!    holds a [`Budget::fork`] of the service ledger, so reservations and
//!    releases are exact across threads ([`ServiceError::MemoryDenied`]),
//! 3. a service-lifetime tuple quota drained by what completed queries
//!    actually materialized ([`ServiceError::TupleQuotaExhausted`]).
//!
//! Admitted queries run under their own [`Budget`] (per-query memory
//! slice, tuple cap, timeout) carrying a [`CancelToken`] registered with
//! the service: [`QueryService::shutdown`] cancels every in-flight query
//! cooperatively and turns new admissions into
//! [`ServiceError::ShuttingDown`]. Permits and reservations are released
//! by RAII, so they drain even when a query panics inside the engine
//! (the optimizer contains the panic) or fails mid-ladder.

#![warn(missing_docs)]

use htqo_cq::sql::ast::SelectStmt;
use htqo_cq::{isolate, parse_select};
use htqo_engine::error::{Budget, CancelToken};
use htqo_engine::schema::Database;
use htqo_optimizer::nested::flatten_subqueries;
use htqo_optimizer::{HybridOptimizer, PlanCacheStats, QueryOutcome, SqlError};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Resource limits and concurrency policy of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Maximum queries executing at once across all sessions; the
    /// `max_in_flight + 1`-th admission is rejected with
    /// [`ServiceError::Overloaded`] rather than queued.
    pub max_in_flight: usize,
    /// Shared byte pool. Every admitted query reserves its memory slice
    /// here and returns it on completion; when the pool cannot cover
    /// another slice the admission is rejected with
    /// [`ServiceError::MemoryDenied`]. `None` = no byte admission.
    pub mem_pool: Option<u64>,
    /// Per-query memory slice (also the query budget's `mem_limit`).
    /// Defaults to `mem_pool / max_in_flight` when a pool is configured,
    /// otherwise unlimited.
    pub query_mem: Option<u64>,
    /// Service-lifetime tuple quota: once completed queries have
    /// materialized this many tuples combined, further admissions are
    /// rejected with [`ServiceError::TupleQuotaExhausted`]. `None` = no
    /// quota.
    pub tuple_pool: Option<u64>,
    /// Per-query tuple cap (the query budget's `max_tuples`).
    pub query_tuples: Option<u64>,
    /// Per-query wall-clock limit.
    pub query_timeout: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_in_flight: 16,
            mem_pool: None,
            query_mem: None,
            tuple_pool: None,
            query_tuples: None,
            query_timeout: None,
        }
    }
}

/// Handle to a prepared statement within one [`Session`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StatementId(u64);

impl fmt::Display for StatementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stmt#{}", self.0)
    }
}

/// Typed rejection/failure surface of the service. Admission rejections
/// ([`ServiceError::is_rejection`]) mean the query never ran and consumed
/// nothing; execution-level failures surface *inside* a successful
/// [`QueryOutcome`] (its `result` field), not here.
#[derive(Debug)]
pub enum ServiceError {
    /// The bounded in-flight count was full.
    Overloaded {
        /// The configured [`ServiceConfig::max_in_flight`].
        limit: usize,
    },
    /// The shared byte pool could not cover this query's memory slice.
    MemoryDenied {
        /// Bytes the admission tried to reserve.
        requested: u64,
        /// The configured pool size.
        pool: u64,
    },
    /// The service-lifetime tuple quota is exhausted.
    TupleQuotaExhausted {
        /// Tuples charged so far.
        used: u64,
        /// The configured [`ServiceConfig::tuple_pool`].
        quota: u64,
    },
    /// [`QueryService::shutdown`] was called; no new work is admitted.
    ShuttingDown,
    /// The [`StatementId`] is unknown to this session (never prepared, or
    /// already closed).
    UnknownStatement(StatementId),
    /// The statement failed before planning (parse / subquery flattening
    /// / SQL-to-CQ translation).
    Sql(SqlError),
}

impl ServiceError {
    /// True for admission rejections: the query never ran, and retrying
    /// later (or against a drained service) may succeed.
    pub fn is_rejection(&self) -> bool {
        matches!(
            self,
            ServiceError::Overloaded { .. }
                | ServiceError::MemoryDenied { .. }
                | ServiceError::TupleQuotaExhausted { .. }
                | ServiceError::ShuttingDown
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { limit } => {
                write!(f, "service overloaded: {limit} queries already in flight")
            }
            ServiceError::MemoryDenied { requested, pool } => write!(
                f,
                "admission denied: cannot reserve {requested} bytes from a {pool}-byte pool"
            ),
            ServiceError::TupleQuotaExhausted { used, quota } => {
                write!(f, "tuple quota exhausted: {used} of {quota} used")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::UnknownStatement(id) => write!(f, "unknown prepared statement {id}"),
            ServiceError::Sql(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A point-in-time snapshot of service health and traffic.
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    /// Queries currently executing.
    pub in_flight: usize,
    /// Admissions granted since the service started.
    pub admitted: u64,
    /// Rejections because the in-flight bound was full.
    pub rejected_overload: u64,
    /// Rejections because the byte pool could not cover a slice.
    pub rejected_memory: u64,
    /// Rejections because the tuple quota was exhausted.
    pub rejected_quota: u64,
    /// Admitted queries whose outcome carried a result.
    pub completed_ok: u64,
    /// Admitted queries whose outcome carried an error (including
    /// cancellation and contained panics).
    pub completed_err: u64,
    /// Bytes currently reserved in the shared pool: slices of in-flight
    /// queries, plus resident buffer-pool pages on a
    /// [`QueryService::open_paged`] service. On an in-memory service this
    /// returns to 0 when idle; on a paged one the floor is the resident
    /// page set.
    pub pool_bytes_reserved: u64,
    /// Tuples charged against the service-lifetime quota so far.
    pub pool_tuples_charged: u64,
    /// Plan-cache traffic of the shared optimizer.
    pub plan_cache: PlanCacheStats,
    /// What the crash-recovery pass found when this service opened its
    /// paged storage ([`QueryService::open_paged`]): `None` on an
    /// in-memory service, `Some` (possibly all-zero for a clean start)
    /// on a paged one.
    pub recovery: Option<htqo_storage::RecoveryReport>,
}

struct ServiceInner {
    db: Database,
    optimizer: HybridOptimizer,
    config: ServiceConfig,
    /// Bytes each admission reserves (and each query budget's
    /// `mem_limit`); 0 = unlimited per-query memory, no byte admission.
    slice: u64,
    /// Master handle of the shared ledger. Sessions fork it, so byte
    /// reservations/releases and tuple charges from any thread land on
    /// the same atomic pools — accounting stays exact service-wide.
    pool: Mutex<Budget>,
    in_flight: AtomicUsize,
    shutting_down: AtomicBool,
    next_query: AtomicU64,
    /// Cancel tokens of in-flight queries, keyed by admission id;
    /// [`QueryService::shutdown`] fires them all.
    live: Mutex<HashMap<u64, CancelToken>>,
    admitted: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_memory: AtomicU64,
    rejected_quota: AtomicU64,
    completed_ok: AtomicU64,
    completed_err: AtomicU64,
    /// Recovery report from `open_paged` (None for in-memory services).
    recovery: Option<htqo_storage::RecoveryReport>,
}

/// Recover the guard even if a panicking thread poisoned the mutex; the
/// protected state (a ledger handle, the token registry) stays coherent
/// because every mutation is a single call.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The multi-session query front door. Cheap to clone (shared handle);
/// `Send + Sync`, as are the [`Session`]s it opens.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

#[allow(dead_code)]
fn assert_service_is_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<QueryService>();
    assert::<Session>();
}

impl QueryService {
    /// Builds a service over `db` with the given optimizer and limits.
    pub fn new(db: Database, optimizer: HybridOptimizer, config: ServiceConfig) -> Self {
        let master = Self::master_budget(&config);
        Self::assemble(db, optimizer, config, master, None)
    }

    /// Opens a service over a paged [`htqo_storage::StorageDb`]: a warm
    /// restart. Tables and their B-tree join indexes come back from disk
    /// without re-parsing any source files; resident buffer-pool pages
    /// are charged against the service's shared memory pool (when
    /// [`ServiceConfig::mem_pool`] is set), so a large page cache
    /// genuinely crowds out query admissions. `make_optimizer` builds the
    /// optimizer once the database is loaded (e.g. to `analyze` it); the
    /// service then hands it the index catalog so per-vertex costing can
    /// price index-seek joins.
    pub fn open_paged<F>(
        storage: &htqo_storage::StorageDb,
        cache_bytes: u64,
        config: ServiceConfig,
        make_optimizer: F,
    ) -> Result<Self, htqo_engine::error::EvalError>
    where
        F: FnOnce(&Database) -> HybridOptimizer,
    {
        let mut master = Self::master_budget(&config);
        let cache_ledger = master.fork();
        // Crash recovery runs before any page is read: replay the
        // committed WAL tail, tolerate a torn one, GC orphans.
        let recovery = storage.recover()?;
        let db = storage.load_database(cache_bytes, Some(cache_ledger))?;
        let optimizer = make_optimizer(&db).with_index_catalog(db.indexed_columns());
        Ok(Self::assemble(
            db,
            optimizer,
            config,
            master,
            Some(recovery),
        ))
    }

    /// The service-wide master budget: memory-limited to the configured
    /// pool, with counters promoted to shared atomics up front so every
    /// session fork joins the same pools.
    fn master_budget(config: &ServiceConfig) -> Budget {
        let mut master = Budget::unlimited();
        if let Some(pool) = config.mem_pool {
            master = master.with_mem_limit(pool);
        }
        let _ = master.fork();
        master
    }

    fn assemble(
        db: Database,
        optimizer: HybridOptimizer,
        config: ServiceConfig,
        master: Budget,
        recovery: Option<htqo_storage::RecoveryReport>,
    ) -> Self {
        let slice = config
            .query_mem
            .or_else(|| {
                config
                    .mem_pool
                    .map(|p| (p / config.max_in_flight.max(1) as u64).max(1))
            })
            .unwrap_or(0);
        QueryService {
            inner: Arc::new(ServiceInner {
                db,
                optimizer,
                config,
                slice,
                pool: Mutex::new(master),
                in_flight: AtomicUsize::new(0),
                shutting_down: AtomicBool::new(false),
                next_query: AtomicU64::new(0),
                live: Mutex::new(HashMap::new()),
                admitted: AtomicU64::new(0),
                rejected_overload: AtomicU64::new(0),
                rejected_memory: AtomicU64::new(0),
                rejected_quota: AtomicU64::new(0),
                completed_ok: AtomicU64::new(0),
                completed_err: AtomicU64::new(0),
                recovery,
            }),
        }
    }

    /// Service with default limits.
    pub fn with_defaults(db: Database, optimizer: HybridOptimizer) -> Self {
        QueryService::new(db, optimizer, ServiceConfig::default())
    }

    /// Opens a session: its ledger handle is a [`Budget::fork`] of the
    /// service pools, so its admissions charge the shared counters.
    pub fn session(&self) -> Session {
        let ledger = lock(&self.inner.pool).fork();
        Session {
            service: Arc::clone(&self.inner),
            ledger: Mutex::new(ledger),
            statements: Mutex::new(HashMap::new()),
            next_stmt: AtomicU64::new(0),
        }
    }

    /// Cooperatively cancels every in-flight query and rejects all
    /// subsequent admissions (and preparations) with
    /// [`ServiceError::ShuttingDown`]. Idempotent; returns the number of
    /// queries that were signalled.
    pub fn shutdown(&self) -> usize {
        self.inner.shutting_down.store(true, Ordering::Release);
        let live = lock(&self.inner.live);
        for token in live.values() {
            token.cancel();
        }
        live.len()
    }

    /// True once [`QueryService::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::Acquire)
    }

    /// The database this service answers queries over.
    pub fn database(&self) -> &Database {
        &self.inner.db
    }

    /// The shared optimizer (e.g. for [`HybridOptimizer::plan_cache_stats`]).
    pub fn optimizer(&self) -> &HybridOptimizer {
        &self.inner.optimizer
    }

    /// Current traffic and pool snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        let inner = &*self.inner;
        let (bytes, tuples) = {
            let pool = lock(&inner.pool);
            (pool.mem_used(), pool.charged())
        };
        ServiceMetrics {
            in_flight: inner.in_flight.load(Ordering::Acquire),
            admitted: inner.admitted.load(Ordering::Relaxed),
            rejected_overload: inner.rejected_overload.load(Ordering::Relaxed),
            rejected_memory: inner.rejected_memory.load(Ordering::Relaxed),
            rejected_quota: inner.rejected_quota.load(Ordering::Relaxed),
            completed_ok: inner.completed_ok.load(Ordering::Relaxed),
            completed_err: inner.completed_err.load(Ordering::Relaxed),
            pool_bytes_reserved: bytes,
            pool_tuples_charged: tuples,
            plan_cache: inner.optimizer.plan_cache_stats(),
            recovery: inner.recovery.clone(),
        }
    }
}

/// One client's connection: prepared statements plus a forked ledger
/// handle onto the service pools. Sessions are `Send + Sync`; a session
/// shared across threads multiplexes them onto the service's bounded
/// execution capacity.
pub struct Session {
    service: Arc<ServiceInner>,
    ledger: Mutex<Budget>,
    statements: Mutex<HashMap<StatementId, SelectStmt>>,
    next_stmt: AtomicU64,
}

/// RAII admission permit: dropping it (on any path, including unwind)
/// returns the byte slice to the pool, decrements the in-flight count and
/// deregisters the cancel token — permits always drain.
struct Permit<'a> {
    session: &'a Session,
    query_id: u64,
    slice: u64,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let svc = &*self.session.service;
        lock(&svc.live).remove(&self.query_id);
        if self.slice > 0 {
            lock(&self.session.ledger).uncharge_bytes(self.slice);
        }
        svc.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Session {
    /// Parses `sql` and stores the statement for repeated execution.
    /// The plan itself is cached in the optimizer's shape-canonical plan
    /// cache on first execution (and may already be warm from an
    /// isomorphic template prepared by *any* session).
    pub fn prepare(&self, sql: &str) -> Result<StatementId, ServiceError> {
        if self.service.shutting_down.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let stmt = parse_select(sql).map_err(|e| ServiceError::Sql(SqlError::Parse(e)))?;
        let id = StatementId(self.next_stmt.fetch_add(1, Ordering::Relaxed));
        lock(&self.statements).insert(id, stmt);
        Ok(id)
    }

    /// Drops a prepared statement; returns whether it existed.
    pub fn close(&self, id: StatementId) -> bool {
        lock(&self.statements).remove(&id).is_some()
    }

    /// Number of statements currently prepared in this session.
    pub fn prepared_count(&self) -> usize {
        lock(&self.statements).len()
    }

    /// Executes a previously prepared statement.
    pub fn execute_prepared(&self, id: StatementId) -> Result<QueryOutcome, ServiceError> {
        self.execute_prepared_with_token(id, CancelToken::new())
    }

    /// Like [`Session::execute_prepared`], with a caller-held token: the
    /// caller can [`CancelToken::cancel`] from another thread and the
    /// engine aborts cooperatively at its next budget poll.
    pub fn execute_prepared_with_token(
        &self,
        id: StatementId,
        token: CancelToken,
    ) -> Result<QueryOutcome, ServiceError> {
        let stmt = lock(&self.statements)
            .get(&id)
            .cloned()
            .ok_or(ServiceError::UnknownStatement(id))?;
        let permit = self.admit(token.clone())?;
        let out = self.run_stmt(&stmt, &token);
        drop(permit);
        out
    }

    /// Parses and executes `sql` in one call.
    pub fn execute_sql(&self, sql: &str) -> Result<QueryOutcome, ServiceError> {
        self.execute_sql_with_token(sql, CancelToken::new())
    }

    /// Like [`Session::execute_sql`], with a caller-held cancel token.
    pub fn execute_sql_with_token(
        &self,
        sql: &str,
        token: CancelToken,
    ) -> Result<QueryOutcome, ServiceError> {
        // Parse before admission: a syntax error should not consume a
        // permit or a pool slice.
        let stmt = parse_select(sql).map_err(|e| ServiceError::Sql(SqlError::Parse(e)))?;
        let permit = self.admit(token.clone())?;
        let out = self.run_stmt(&stmt, &token);
        drop(permit);
        out
    }

    /// Admission control: bounded in-flight count, then a byte-slice
    /// reservation against the shared pool, then the tuple quota. Each
    /// step rolls back the previous ones on rejection.
    fn admit(&self, token: CancelToken) -> Result<Permit<'_>, ServiceError> {
        let svc = &*self.service;
        if svc.shutting_down.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let limit = svc.config.max_in_flight;
        if svc
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < limit).then_some(n + 1)
            })
            .is_err()
        {
            svc.rejected_overload.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Overloaded { limit });
        }
        let slice = svc.slice;
        if slice > 0 && !lock(&self.ledger).try_reserve_bytes(slice) {
            svc.in_flight.fetch_sub(1, Ordering::AcqRel);
            svc.rejected_memory.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::MemoryDenied {
                requested: slice,
                pool: svc.config.mem_pool.unwrap_or(0),
            });
        }
        if let Some(quota) = svc.config.tuple_pool {
            let used = lock(&self.ledger).charged();
            if used >= quota {
                if slice > 0 {
                    lock(&self.ledger).uncharge_bytes(slice);
                }
                svc.in_flight.fetch_sub(1, Ordering::AcqRel);
                svc.rejected_quota.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::TupleQuotaExhausted { used, quota });
            }
        }
        let query_id = svc.next_query.fetch_add(1, Ordering::Relaxed);
        lock(&svc.live).insert(query_id, token);
        let permit = Permit {
            session: self,
            query_id,
            slice,
        };
        // Close the race with a concurrent shutdown(): if the flag was
        // set after the entry check but before the token registration,
        // the shutdown sweep may have missed this token — reject (the
        // permit's Drop rolls everything back).
        if svc.shutting_down.load(Ordering::Acquire) {
            drop(permit);
            return Err(ServiceError::ShuttingDown);
        }
        svc.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(permit)
    }

    /// The per-query budget: memory slice, tuple cap, timeout and the
    /// registered cancel token. The engine's workers fork it further, so
    /// accounting stays exact across the execution pool.
    fn query_budget(&self, token: &CancelToken) -> Budget {
        let svc = &*self.service;
        let mut b = Budget::unlimited().with_cancel_token(token.clone());
        if svc.slice > 0 {
            b = b.with_mem_limit(svc.slice);
        }
        if let Some(n) = svc.config.query_tuples {
            b = b.with_max_tuples(n);
        }
        if let Some(t) = svc.config.query_timeout {
            b = b.with_timeout(t);
        }
        b
    }

    /// Flattens, translates and executes an (already admitted) statement,
    /// then settles its tuple usage against the service quota.
    fn run_stmt(
        &self,
        stmt: &SelectStmt,
        token: &CancelToken,
    ) -> Result<QueryOutcome, ServiceError> {
        let svc = &*self.service;
        let mut budget = self.query_budget(token);
        let (db, stmt) = flatten_subqueries(&svc.db, stmt, &mut budget)
            .map_err(|e| ServiceError::Sql(SqlError::Nested(e)))?;
        let q = isolate(&stmt, &db, svc.optimizer.isolator)
            .map_err(|e| ServiceError::Sql(SqlError::Isolate(e)))?;
        let outcome = svc.optimizer.execute_cq(&db, &q, budget);
        if svc.config.tuple_pool.is_some() && outcome.tuples > 0 {
            // Drain the shared quota through a throwaway fork: its Drop
            // flushes the batched charge, so sessions see each other's
            // usage exactly at the next admission.
            let mut drain = lock(&self.ledger).fork();
            let _ = drain.charge(outcome.tuples);
        }
        match &outcome.result {
            Ok(_) => svc.completed_ok.fetch_add(1, Ordering::Relaxed),
            Err(_) => svc.completed_err.fetch_add(1, Ordering::Relaxed),
        };
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_core::QhdOptions;
    use htqo_engine::error::EvalError;
    use htqo_eval::evaluate_naive;
    use htqo_optimizer::PlanCacheStatus;
    use htqo_workloads::{workload_db, WorkloadSpec};

    fn service(config: ServiceConfig) -> QueryService {
        let db = workload_db(&WorkloadSpec::new(3, 60, 6, 7));
        let stats = htqo_stats::analyze(&db);
        let optimizer = HybridOptimizer::with_stats(QhdOptions::default(), stats);
        QueryService::new(db, optimizer, config)
    }

    const CHAIN: &str = "SELECT p0.l FROM p0, p1, p2 \
                         WHERE p0.r = p1.l AND p1.r = p2.l AND p2.r = p0.l";

    #[test]
    fn answers_match_the_naive_oracle() {
        let svc = service(ServiceConfig::default());
        let session = svc.session();
        let outcome = session.execute_sql(CHAIN).unwrap();
        let answer = outcome.result.unwrap();

        let stmt = parse_select(CHAIN).unwrap();
        let q = isolate(&stmt, svc.database(), htqo_cq::IsolatorOptions::default()).unwrap();
        let oracle = evaluate_naive(svc.database(), &q, &mut Budget::unlimited())
            .and_then(|ans| htqo_engine::aggregate::finalize(&ans, &q, &mut Budget::unlimited()))
            .unwrap();
        assert!(answer.set_eq(&oracle));
        let m = svc.metrics();
        assert_eq!(m.admitted, 1);
        assert_eq!(m.completed_ok, 1);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn prepared_statements_reuse_the_plan_cache() {
        let svc = service(ServiceConfig::default());
        let session = svc.session();
        let id = session.prepare(CHAIN).unwrap();
        let first = session.execute_prepared(id).unwrap();
        assert_eq!(first.plan_cache, PlanCacheStatus::Miss);
        let second = session.execute_prepared(id).unwrap();
        assert_eq!(second.plan_cache, PlanCacheStatus::Hit);
        assert!(second.result.unwrap().set_eq(&first.result.unwrap()));

        // A *different* session of the same service shares the cache.
        let other = svc.session();
        let id2 = other.prepare(CHAIN).unwrap();
        assert_eq!(
            other.execute_prepared(id2).unwrap().plan_cache,
            PlanCacheStatus::Hit
        );

        assert!(session.close(id));
        assert!(matches!(
            session.execute_prepared(id),
            Err(ServiceError::UnknownStatement(_))
        ));
        assert_eq!(session.prepared_count(), 0);
    }

    /// Warm restart through the service: ingest the workload into a paged
    /// [`htqo_storage::StorageDb`], reopen it with [`QueryService::open_paged`],
    /// and check (a) answers match the in-memory service bit for bit,
    /// (b) the loaded indexes are in the catalog, and (c) resident
    /// buffer-pool pages are charged against the shared admission pool.
    #[test]
    fn open_paged_service_restores_tables_and_charges_the_pool() {
        let dir = std::env::temp_dir().join(format!("htqo-svc-paged-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mem_db = workload_db(&WorkloadSpec::new(3, 60, 6, 7));
        let storage = htqo_storage::StorageDb::open(&dir).unwrap();
        for (name, rel) in mem_db.tables() {
            storage.ingest(name, rel, &["l"]).unwrap();
        }

        let svc = QueryService::open_paged(
            &storage,
            4 * 1024 * 1024,
            ServiceConfig {
                mem_pool: Some(64 * 1024 * 1024),
                ..ServiceConfig::default()
            },
            |db| HybridOptimizer::with_stats(QhdOptions::default(), htqo_stats::analyze(db)),
        )
        .unwrap();
        assert!(svc.database().has_indexes(), "indexes survive the restart");
        assert!(
            svc.metrics().pool_bytes_reserved > 0,
            "resident pages charge the shared pool"
        );

        let paged = svc.session().execute_sql(CHAIN).unwrap().result.unwrap();
        let mem_svc = service(ServiceConfig::default());
        let oracle = mem_svc
            .session()
            .execute_sql(CHAIN)
            .unwrap()
            .result
            .unwrap();
        assert!(paged.set_eq(&oracle));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_capacity_rejects_with_overloaded() {
        let svc = service(ServiceConfig {
            max_in_flight: 0,
            ..ServiceConfig::default()
        });
        let session = svc.session();
        let err = session.execute_sql(CHAIN).unwrap_err();
        assert!(matches!(err, ServiceError::Overloaded { limit: 0 }));
        assert!(err.is_rejection());
        assert_eq!(svc.metrics().rejected_overload, 1);
    }

    #[test]
    fn memory_pool_admission_denies_and_returns_slices() {
        // Pool covers exactly one slice: a second concurrent admission
        // would be denied; sequential queries each get the slice back.
        let svc = service(ServiceConfig {
            max_in_flight: 4,
            mem_pool: Some(1 << 20),
            query_mem: Some(1 << 20),
            ..ServiceConfig::default()
        });
        let session = svc.session();
        for _ in 0..3 {
            let outcome = session.execute_sql(CHAIN).unwrap();
            assert!(outcome.result.is_ok());
        }
        let m = svc.metrics();
        assert_eq!(m.pool_bytes_reserved, 0, "slices returned when idle");
        assert_eq!(m.rejected_memory, 0);

        // A slice larger than the pool is denied outright.
        let tight = service(ServiceConfig {
            mem_pool: Some(1024),
            query_mem: Some(4096),
            ..ServiceConfig::default()
        });
        let s = tight.session();
        assert!(matches!(
            s.execute_sql(CHAIN),
            Err(ServiceError::MemoryDenied {
                requested: 4096,
                pool: 1024
            })
        ));
        assert_eq!(tight.metrics().rejected_memory, 1);
        assert_eq!(tight.metrics().in_flight, 0, "permit rolled back");
    }

    #[test]
    fn tuple_quota_drains_exactly_and_then_rejects() {
        let svc = service(ServiceConfig {
            tuple_pool: Some(1),
            ..ServiceConfig::default()
        });
        // Two sessions: the first query's usage must be visible to the
        // second session's admission (exact cross-fork accounting).
        let a = svc.session();
        let b = svc.session();
        let first = a.execute_sql(CHAIN).unwrap();
        assert!(first.tuples > 0);
        assert_eq!(svc.metrics().pool_tuples_charged, first.tuples);
        let err = b.execute_sql(CHAIN).unwrap_err();
        assert!(
            matches!(err, ServiceError::TupleQuotaExhausted { used, quota: 1 } if used == first.tuples)
        );
        assert_eq!(svc.metrics().rejected_quota, 1);
    }

    #[test]
    fn shutdown_rejects_new_work_and_cancels_tokens() {
        let svc = service(ServiceConfig::default());
        let session = svc.session();
        let id = session.prepare(CHAIN).unwrap();
        assert!(!svc.is_shutting_down());
        assert_eq!(svc.shutdown(), 0);
        assert!(svc.is_shutting_down());
        assert!(matches!(
            session.execute_prepared(id),
            Err(ServiceError::ShuttingDown)
        ));
        assert!(matches!(
            session.prepare(CHAIN),
            Err(ServiceError::ShuttingDown)
        ));
        assert!(matches!(
            session.execute_sql(CHAIN),
            Err(ServiceError::ShuttingDown)
        ));
        assert_eq!(svc.metrics().in_flight, 0);
    }

    #[test]
    fn pre_cancelled_token_aborts_cooperatively() {
        // Enough rows that the engine polls the token mid-join.
        let db = workload_db(&WorkloadSpec::new(3, 800, 4, 11));
        let stats = htqo_stats::analyze(&db);
        let optimizer = HybridOptimizer::with_stats(QhdOptions::default(), stats);
        let svc = QueryService::new(db, optimizer, ServiceConfig::default());
        let session = svc.session();
        let token = CancelToken::new();
        token.cancel();
        let outcome = session
            .execute_sql_with_token(CHAIN, token)
            .expect("admission succeeds; cancellation surfaces in the outcome");
        assert!(matches!(outcome.result, Err(EvalError::Cancelled)));
        let m = svc.metrics();
        assert_eq!(m.completed_err, 1);
        assert_eq!(m.in_flight, 0, "permit drained after cancellation");
        assert_eq!(m.pool_bytes_reserved, 0);
    }

    #[test]
    fn parse_errors_consume_no_admission() {
        let svc = service(ServiceConfig {
            tuple_pool: Some(1_000_000),
            mem_pool: Some(1 << 20),
            ..ServiceConfig::default()
        });
        let session = svc.session();
        assert!(matches!(
            session.execute_sql("SELEKT nope"),
            Err(ServiceError::Sql(SqlError::Parse(_)))
        ));
        let m = svc.metrics();
        assert_eq!(m.admitted, 0);
        assert_eq!(m.pool_bytes_reserved, 0);
        assert_eq!(m.pool_tuples_charged, 0);
    }
}
