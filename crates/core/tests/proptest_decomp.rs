//! Property tests for the decomposition algorithms: every tree returned
//! by det-k-decomp / cost-k-decomp satisfies the definitions; hypertree
//! width behaves sanely; Optimize preserves the q-HD conditions.

use htqo_core::{
    cost_k_decomp, det_k_decomp, exists_decomposition, hypertree_width, optimize, validate,
    SearchOptions, StructuralCost,
};
use htqo_hypergraph::{Hypergraph, VarSet};
use proptest::prelude::*;

fn arb_hypergraph(max_vars: usize, max_edges: usize) -> impl Strategy<Value = Hypergraph> {
    prop::collection::vec(
        prop::collection::btree_set(0..max_vars, 1..=3.min(max_vars)),
        1..=max_edges,
    )
    .prop_map(|edge_sets| {
        let mut b = Hypergraph::builder();
        for (i, vars) in edge_sets.iter().enumerate() {
            let names: Vec<String> = vars.iter().map(|v| format!("V{v}")).collect();
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            b.edge(&format!("e{i}"), &refs);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// det-k at the hypertree width always yields a structurally valid
    /// tree: coverage, connectedness, assignment, width bound.
    #[test]
    fn detk_trees_are_valid(h in arb_hypergraph(7, 7)) {
        let w = hypertree_width(&h);
        prop_assert!(w >= 1 && w <= h.num_edges());
        let t = det_k_decomp(&h, w).expect("width w works by definition");
        prop_assert!(t.width() <= w);
        validate::check_edge_coverage(&h, &t).unwrap();
        validate::check_connectedness(&h, &t).unwrap();
        validate::check_assignment(&h, &t).unwrap();
        // Pre-Optimize NF trees also satisfy χ ⊆ var(λ) and the special
        // descendant condition (they are true hypertree decompositions).
        validate::check_hd(&h, &t).unwrap();
    }

    /// Width is monotone: if width-k works, width-(k+1) works.
    #[test]
    fn width_is_monotone(h in arb_hypergraph(6, 6)) {
        let w = hypertree_width(&h);
        prop_assert!(exists_decomposition(&h, w));
        prop_assert!(exists_decomposition(&h, w + 1));
        if w > 1 {
            prop_assert!(!exists_decomposition(&h, w - 1));
        }
    }

    /// Cost-based search returns valid trees and never beats the width
    /// bound it was given.
    #[test]
    fn costk_trees_are_valid(h in arb_hypergraph(7, 7)) {
        let w = hypertree_width(&h);
        let t = cost_k_decomp(&h, &SearchOptions::width(w + 1), &StructuralCost)
            .expect("width+1 exists");
        prop_assert!(t.width() <= w + 1);
        validate::check_edge_coverage(&h, &t).unwrap();
        validate::check_connectedness(&h, &t).unwrap();
        validate::check_assignment(&h, &t).unwrap();
        // The structural cost lexicographically minimizes width, so the
        // returned tree should be width-optimal.
        prop_assert_eq!(t.width(), w);
    }

    /// Root-cover constraints: when the search succeeds, the root really
    /// covers the requested variables; Optimize keeps all invariants.
    #[test]
    fn root_cover_and_optimize(h in arb_hypergraph(6, 6), out_bits in prop::collection::vec(any::<bool>(), 6)) {
        let out: VarSet = h
            .var_ids()
            .filter(|v| out_bits.get(v.index()).copied().unwrap_or(false))
            .collect();
        let opts = SearchOptions::width_with_root_cover(3, out.clone());
        if let Some(mut t) = cost_k_decomp(&h, &opts, &StructuralCost) {
            prop_assert!(out.is_subset(&t.node(t.root()).chi));
            let stats = optimize(&h, &mut t);
            // Optimize keeps every q-HD condition.
            validate::check_qhd(&h, &t, &out).unwrap();
            // It never removes enforcing atoms.
            validate::check_assignment(&h, &t).unwrap();
            let _ = stats;
        }
    }

    /// The width of an acyclic hypergraph is 1 (GYO agreement).
    #[test]
    fn acyclic_iff_width_1(h in arb_hypergraph(7, 7)) {
        let acyclic = htqo_hypergraph::acyclic::is_acyclic(&h);
        prop_assert_eq!(acyclic, hypertree_width(&h) == 1);
    }
}
