//! Equivalence property tests for the branch-and-bound search engine.
//!
//! The engineered `cost-k-decomp` (interned memo keys, pruned separator
//! enumeration, admissible bound cuts, optional parallel subproblem
//! solving) must return **exactly** the seed exhaustive search's optimal
//! cost — not approximately: every pruning rule is argued exact, and these
//! tests hold the implementation to that argument on random hypergraphs,
//! with and without a root-cover constraint, sequentially and with four
//! worker threads.

use htqo_core::search::baseline;
use htqo_core::{cost_k_decomp_instrumented, validate, DecompCost, SearchOptions, StructuralCost};
use htqo_hypergraph::{EdgeSet, Hypergraph, VarSet};
use proptest::prelude::*;

fn arb_hypergraph(max_vars: usize, max_edges: usize) -> impl Strategy<Value = Hypergraph> {
    prop::collection::vec(
        prop::collection::btree_set(0..max_vars, 1..=3.min(max_vars)),
        1..=max_edges,
    )
    .prop_map(|edge_sets| {
        let mut b = Hypergraph::builder();
        for (i, vars) in edge_sets.iter().enumerate() {
            let names: Vec<String> = vars.iter().map(|v| format!("V{v}")).collect();
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            b.edge(&format!("e{i}"), &refs);
        }
        b.build()
    })
}

/// A deliberately lumpy cost model with the *default* (zero)
/// `min_vertex_cost`: exercises the bound-cut code path where the
/// component term vanishes and only incumbent comparisons prune.
struct LumpyCost;

impl DecompCost for LumpyCost {
    fn vertex_cost(
        &self,
        _h: &Hypergraph,
        lambda: &EdgeSet,
        assigned: &EdgeSet,
        chi: &VarSet,
    ) -> f64 {
        // Non-monotone in |λ| on purpose; still strictly positive.
        7.0 * lambda.len() as f64 + 1.5 * chi.len() as f64 - (assigned.len() as f64).min(3.0) + 4.0
    }
}

fn check_equivalence(
    h: &Hypergraph,
    k: usize,
    root_cover: Option<VarSet>,
    cost: &dyn DecompCost,
) -> Result<(), TestCaseError> {
    let opts = match &root_cover {
        Some(out) => SearchOptions::width_with_root_cover(k, out.clone()),
        None => SearchOptions::width(k),
    };
    let seed = baseline::cost_k_decomp_instrumented(h, &opts, cost);
    let seq = cost_k_decomp_instrumented(h, &opts.clone().with_threads(1), cost);
    let par = cost_k_decomp_instrumented(h, &opts.with_threads(4), cost);

    match (&seed, &seq, &par) {
        (None, None, None) => {}
        (Some((c0, _, _)), Some((c1, t1, _)), Some((c2, t2, _))) => {
            // Exact equality: all three searches price identical trees by
            // summing vertex costs in the same deterministic order, so no
            // epsilon is needed.
            prop_assert_eq!(c0, c1, "seed vs B&B sequential (k={})", k);
            prop_assert_eq!(c1, c2, "B&B sequential vs parallel (k={})", k);
            for t in [t1, t2] {
                prop_assert!(t.width() <= k);
                validate::check_edge_coverage(h, t).unwrap();
                validate::check_connectedness(h, t).unwrap();
                validate::check_assignment(h, t).unwrap();
                if let Some(out) = &root_cover {
                    prop_assert!(out.is_subset(&t.node(t.root()).chi));
                }
            }
        }
        _ => {
            return Err(TestCaseError::fail(format!(
                "feasibility disagreement at k={k}: seed={} seq={} par={}",
                seed.is_some(),
                seq.is_some(),
                par.is_some()
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// B&B (sequential and 4-thread) matches the seed exhaustive search's
    /// optimal cost for k ∈ {2, 3, 4} under the structural cost model.
    #[test]
    fn bnb_matches_seed_structural(h in arb_hypergraph(6, 6)) {
        for k in 2..=4 {
            check_equivalence(&h, k, None, &StructuralCost)?;
        }
    }

    /// Same equivalence with a root-cover constraint (the q-HD Condition 2
    /// path), including infeasible instances where all three searches must
    /// agree on Failure.
    #[test]
    fn bnb_matches_seed_with_root_cover(
        h in arb_hypergraph(6, 6),
        out_bits in prop::collection::vec(any::<bool>(), 6),
    ) {
        let out: VarSet = h
            .var_ids()
            .filter(|v| out_bits.get(v.index()).copied().unwrap_or(false))
            .collect();
        for k in 2..=4 {
            check_equivalence(&h, k, Some(out.clone()), &StructuralCost)?;
        }
    }

    /// A custom cost model that keeps the default zero `min_vertex_cost`:
    /// the admissible-bound component term is disabled and correctness
    /// must not depend on it.
    #[test]
    fn bnb_matches_seed_custom_cost(h in arb_hypergraph(6, 5)) {
        for k in 2..=3 {
            check_equivalence(&h, k, None, &LumpyCost)?;
        }
    }

    /// Pruning only removes work, never solutions: whenever the seed finds
    /// a decomposition, the B&B search examines at most as many separators.
    #[test]
    fn bnb_never_examines_more_separators(h in arb_hypergraph(6, 6)) {
        let opts = SearchOptions::width(3);
        let seed = baseline::cost_k_decomp_instrumented(&h, &opts, &StructuralCost);
        let bnb = cost_k_decomp_instrumented(&h, &opts.with_threads(1), &StructuralCost);
        if let (Some((_, _, s0)), Some((_, _, s1))) = (seed, bnb) {
            prop_assert!(s1.separators_tried <= s0.separators_tried,
                "B&B tried {} separators, seed {}", s1.separators_tried, s0.separators_tried);
            // The root is solved unmemoized; keys are interned only once
            // recursion reaches child subproblems.
            if s1.subproblems > 0 {
                prop_assert!(s1.interned_keys > 0);
            }
        }
    }
}
