//! **Procedure Optimize** (Figure 4 of the paper): prune λ atoms whose
//! bounding effect is subsumed by a child vertex.
//!
//! At a vertex `p`, an atom `a ∈ λ(p)` only matters through the variables
//! `var(a) ∩ χ(p)` it bounds. If a child `q` carries an atom `b` with
//! `var(a) ∩ χ(p) ⊆ var(b) ∩ χ(q)`, then joining `a` at `p` is redundant —
//! the child's relation already bounds those variables — so `a` is removed
//! from `λ(p)` and `q` is recorded as a *support child*: the bottom-up
//! evaluation must join `q` with `p` before the other siblings (otherwise
//! intermediate results may blow up — the caveat at the end of Section 4.1).
//!
//! Atoms *assigned* to `p` (i.e. enforced there for Condition 1 coverage)
//! are never removed; this is what keeps the resulting plan equivalent to
//! the query. In the paper's Figure 3 example the removed occurrences are
//! exactly the non-enforcing ones.

use crate::hypertree::{Hypertree, NodeId};
use htqo_hypergraph::Hypergraph;

/// Statistics about one `optimize` run (drives Figure 10 of the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// λ atoms removed across all vertices.
    pub removed_atoms: usize,
    /// Vertices whose λ became empty (they evaluate as the neutral
    /// relation and are filled entirely by their children).
    pub emptied_vertices: usize,
}

/// Runs Procedure Optimize on `t` in place (top-down from the root),
/// returning pruning statistics.
pub fn optimize(h: &Hypergraph, t: &mut Hypertree) -> OptimizeStats {
    let mut stats = OptimizeStats::default();
    let order = t.preorder();
    for p in order {
        optimize_vertex(h, t, p, &mut stats);
    }
    stats
}

fn optimize_vertex(h: &Hypergraph, t: &mut Hypertree, p: NodeId, stats: &mut OptimizeStats) {
    let node = t.node(p);
    let chi_p = node.chi.clone();
    let children = node.children.clone();
    let candidates: Vec<_> = node.lambda.difference(&node.assigned).iter().collect();

    let mut removed = Vec::new();
    let mut supports = Vec::new();
    for a in candidates {
        let bound_vars = h.edge_vars(a).intersection(&chi_p);
        // Find a child q and an atom b ∈ λ(q) ∪ assigned(q) subsuming the
        // bound. An empty bound is subsumed by any child (or by nobody —
        // then the atom binds nothing at p and is removable outright).
        if bound_vars.is_empty() {
            removed.push(a);
            continue;
        }
        let support = children.iter().copied().find(|&q| {
            let qn = t.node(q);
            let chi_q = &qn.chi;
            qn.lambda
                .union(&qn.assigned)
                .iter()
                .any(|b| bound_vars.is_subset(&h.edge_vars(b).intersection(chi_q)))
        });
        if let Some(q) = support {
            removed.push(a);
            if !supports.contains(&q) {
                supports.push(q);
            }
        }
    }

    if !removed.is_empty() {
        let node = t.node_mut(p);
        for a in removed.iter() {
            node.lambda.remove(*a);
        }
        stats.removed_atoms += removed.len();
        if node.lambda.is_empty() && node.assigned.is_empty() {
            stats.emptied_vertices += 1;
        }
        for q in supports {
            if !node.support_children.contains(&q) {
                node.support_children.push(q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypertree::HypertreeBuilder;
    use htqo_hypergraph::{EdgeId, EdgeSet, VarSet};

    fn es(ids: &[u32]) -> EdgeSet {
        ids.iter().map(|&i| EdgeId(i)).collect()
    }

    /// Hypergraph: a(A,B), b(B,C).
    fn two_edges() -> Hypergraph {
        let mut hb = Hypergraph::builder();
        hb.edge("a", &["A", "B"]);
        hb.edge("b", &["B", "C"]);
        hb.build()
    }

    fn vs(h: &Hypergraph, names: &[&str]) -> VarSet {
        names.iter().map(|n| h.var_by_name(n).unwrap()).collect()
    }

    #[test]
    fn bounding_atom_supported_by_child_is_removed() {
        let h = two_edges();
        // Root: χ={B}, λ={a} (a is a pure bounding occurrence; it is
        // assigned/enforced nowhere here), child: χ={B,C}, λ={b}, plus a
        // second child enforcing a itself.
        let mut b = HypertreeBuilder::new();
        let child_b = b.add(vs(&h, &["B", "C"]), es(&[1]), es(&[1]), vec![]);
        let child_a = b.add(vs(&h, &["A", "B"]), es(&[0]), es(&[0]), vec![]);
        let root = b.add(vs(&h, &["B"]), es(&[0]), es(&[]), vec![child_b, child_a]);
        let mut t = b.build(root);
        let stats = optimize(&h, &mut t);
        assert_eq!(stats.removed_atoms, 1);
        assert!(t.node(t.root()).lambda.is_empty());
        assert_eq!(stats.emptied_vertices, 1);
        // The child supplying the bound must be recorded.
        assert_eq!(t.node(t.root()).support_children.len(), 1);
    }

    #[test]
    fn assigned_atoms_are_never_removed() {
        let h = two_edges();
        // Root enforces a (assigned), child has b covering B too.
        let mut b = HypertreeBuilder::new();
        let child = b.add(vs(&h, &["B", "C"]), es(&[1]), es(&[1]), vec![]);
        let root = b.add(vs(&h, &["A", "B"]), es(&[0]), es(&[0]), vec![child]);
        let mut t = b.build(root);
        let stats = optimize(&h, &mut t);
        assert_eq!(stats.removed_atoms, 0);
        assert!(t.node(t.root()).lambda.contains(EdgeId(0)));
        assert!(t.node(t.root()).support_children.is_empty());
    }

    #[test]
    fn unsupported_bound_is_kept() {
        // Hypergraph: a(A,B), b(C,D) — child cannot bound B.
        let mut hb = Hypergraph::builder();
        hb.edge("a", &["A", "B"]);
        hb.edge("b", &["C", "D"]);
        let h = hb.build();
        let mut b = HypertreeBuilder::new();
        let child = b.add(vs(&h, &["C", "D"]), es(&[1]), es(&[1]), vec![]);
        let enforcer = b.add(vs(&h, &["A", "B"]), es(&[0]), es(&[0]), vec![]);
        let root = b.add(vs(&h, &["B"]), es(&[0]), es(&[]), vec![child, enforcer]);
        let mut t = b.build(root);
        // The enforcer child *does* carry atom a with var(a) ∩ χ = {B}
        // (its χ is {A,B}), so the bound is in fact supported by it.
        let stats = optimize(&h, &mut t);
        assert_eq!(stats.removed_atoms, 1);
        assert_eq!(
            t.node(t.root()).support_children,
            vec![crate::hypertree::NodeId(1)]
        );
    }

    #[test]
    fn atom_binding_nothing_is_dropped() {
        // λ atom disjoint from χ(p) contributes no bound at all.
        let h = two_edges();
        let mut b = HypertreeBuilder::new();
        let child = b.add(vs(&h, &["A", "B"]), es(&[0]), es(&[0]), vec![]);
        let child2 = b.add(vs(&h, &["B", "C"]), es(&[1]), es(&[1]), vec![]);
        let root = b.add(vs(&h, &["C"]), es(&[0]), es(&[]), vec![child, child2]);
        let mut t = b.build(root);
        // var(a) ∩ χ(root) = {} → removable without support.
        // (This tree violates connectedness for B, but Optimize is local.)
        let stats = optimize(&h, &mut t);
        assert_eq!(stats.removed_atoms, 1);
        assert!(t.node(t.root()).support_children.is_empty());
    }
}
