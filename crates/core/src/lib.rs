//! Query-oriented hypertree decompositions — the primary contribution of
//! *"Hypertree Decompositions for Query Optimization"* (Ghionna, Granata,
//! Greco, Scarcello — ICDE 2007).
//!
//! - [`hypertree`]: the `⟨T, χ, λ⟩` structure, extended with enforcement
//!   assignments and support-child ordering constraints;
//! - [`validate`]: independent checkers for Definition 1 (hypertree
//!   decompositions), generalized HDs, and Definition 2 (q-hypertree
//!   decompositions);
//! - [`search`]: det-k-decomp (normal-form width-≤k search, hypertree
//!   width) and cost-k-decomp (minimum-cost DP over components, the
//!   weighted decompositions of PODS'04 that the paper's optimizer uses);
//! - [`optimize`]: Procedure Optimize (Figure 4), pruning λ atoms bounded
//!   by children;
//! - [`qhd`]: Algorithm q-HypertreeDecomp, tying it together.
//!
//! # Example
//!
//! ```
//! use htqo_cq::CqBuilder;
//! use htqo_core::{q_hypertree_decomp, QhdOptions, StructuralCost};
//!
//! // A cyclic "chain" query with one output variable.
//! let q = CqBuilder::new()
//!     .atom_vars("p1", &["A", "B"])
//!     .atom_vars("p2", &["B", "C"])
//!     .atom_vars("p3", &["C", "D"])
//!     .atom_vars("p4", &["D", "A"])
//!     .out_var("A")
//!     .build();
//! let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
//! assert!(plan.tree.width() <= 2);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod dot;
pub mod hypertree;
pub mod optimize;
pub mod qhd;
pub mod reuse;
pub mod search;
pub mod treedecomp;
pub mod validate;

pub use cost::{DecompCost, StructuralCost};
pub use dot::hypertree_to_dot;
pub use hypertree::{Hypertree, HypertreeBuilder, Node, NodeId};
pub use optimize::{optimize, OptimizeStats};
pub use qhd::{
    q_hypertree_decomp, q_hypertree_decomp_raw, QhdFailure, QhdOptions, QhdPlan, RawQhd,
};
pub use reuse::{recost_lambda, remap_tree, tree_cost, RecostOutcome};
pub use search::{
    cost_k_decomp, cost_k_decomp_instrumented, cost_k_decomp_with_cost, det_k_decomp,
    exists_decomposition, hypertree_width, SearchOptions, SearchStats,
};
pub use treedecomp::{to_hypertree, tree_decomposition, EliminationHeuristic, TreeDecomposition};
