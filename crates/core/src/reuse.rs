//! Decomposition reuse across isomorphic queries.
//!
//! A hypertree decomposition depends only on the query's hypergraph
//! *shape* and output marking — not on relation names, variable names, or
//! the contents of the catalog. The optimizer exploits this by caching
//! pre-`Optimize` decompositions keyed by canonical hypergraph form
//! (see `htqo_hypergraph::canon`) and *transporting* a cached tree onto
//! any isomorphic query via the canonical index permutations:
//!
//! 1. [`remap_tree`] relabels every `χ`/`λ`/`assigned` set through the
//!    variable and edge permutations (tree structure is untouched);
//! 2. [`tree_cost`] re-prices the transported tree under the new query's
//!    cost model — if the price matches the cached one, statistics are
//!    unchanged and the tree is served bit-identically;
//! 3. otherwise [`recost_lambda`] re-optimizes each vertex's λ (cover)
//!    choice against current statistics, keeping the cached cover unless
//!    a *strictly* cheaper valid alternative exists. Only λ moves: χ,
//!    the enforcement assignment and the tree shape are fixed, so every
//!    q-HD validity condition that mentions them is preserved by
//!    construction, and the per-edge filters below preserve the two that
//!    mention λ (`χ(p) ⊆ var(λ(p))` and the Special Descendant
//!    Condition).
//!
//! This is the "skip cost-k-decomp, re-cost λ against current stats" hit
//! path: linear-ish work instead of the exponential search.

use crate::cost::DecompCost;
use crate::hypertree::{Hypertree, Node, NodeId};
use htqo_hypergraph::{EdgeId, EdgeSet, Hypergraph, Var, VarSet};

/// Relabels a hypertree through index permutations: `var_map[v]` is the
/// image of variable `v`, `edge_map[e]` the image of edge `e`. Node
/// indices, children and support order are preserved.
///
/// # Panics
/// Panics if a set member is out of range of its permutation.
pub fn remap_tree(t: &Hypertree, var_map: &[u32], edge_map: &[u32]) -> Hypertree {
    let nodes: Vec<Node> = (0..t.len())
        .map(|i| {
            let n = t.node(NodeId(i as u32));
            Node {
                chi: remap_vars(&n.chi, var_map),
                lambda: remap_edges(&n.lambda, edge_map),
                assigned: remap_edges(&n.assigned, edge_map),
                children: n.children.clone(),
                support_children: n.support_children.clone(),
            }
        })
        .collect();
    Hypertree::new(nodes, t.root())
}

fn remap_vars(vs: &VarSet, map: &[u32]) -> VarSet {
    let mut out = VarSet::new();
    for v in vs.iter() {
        out.insert(Var(map[v.index()]));
    }
    out
}

fn remap_edges(es: &EdgeSet, map: &[u32]) -> EdgeSet {
    let mut out = EdgeSet::new();
    for e in es.iter() {
        out.insert(EdgeId(map[e.index()]));
    }
    out
}

/// Total decomposition cost as the sum of per-vertex costs, accumulated
/// in preorder. Deterministic: identical trees and cost models produce a
/// bit-identical sum, which is how the cache detects "statistics
/// unchanged" without keeping the old statistics around.
pub fn tree_cost(h: &Hypergraph, t: &Hypertree, cost: &dyn DecompCost) -> f64 {
    t.preorder()
        .into_iter()
        .map(|p| {
            let n = t.node(p);
            cost.vertex_cost(h, &n.lambda, &n.assigned, &n.chi)
        })
        .sum()
}

/// What [`recost_lambda`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecostOutcome {
    /// Total tree cost after re-costing (sum of per-vertex costs).
    pub total_cost: f64,
    /// Vertices whose λ was replaced by a strictly cheaper cover.
    pub swapped: usize,
}

/// Cover-enumeration work cap per vertex (DFS nodes). Query-sized
/// hypergraphs stay far below this; on blowout the vertex keeps its
/// cached cover, which is always valid.
const COVER_BUDGET: u32 = 20_000;

/// Re-optimizes the λ (cover) choice of every vertex of a transported
/// pre-`Optimize` decomposition against `cost`, in place.
///
/// For each vertex `p` the candidate covers are the irredundant sets of
/// at most `max_width` edges that (a) cover `χ(p)`, and (b) edge-wise
/// satisfy the Special Descendant Condition
/// `var(e) ∩ χ(T_p) ⊆ χ(p)` — so any swap leaves the decomposition a
/// valid width-≤k hypertree decomposition with the same χ labeling. The
/// cached cover is kept unless an alternative is *strictly* cheaper,
/// which makes re-costing the identity when statistics are unchanged.
pub fn recost_lambda(
    h: &Hypergraph,
    t: &mut Hypertree,
    max_width: usize,
    cost: &dyn DecompCost,
) -> RecostOutcome {
    let mut outcome = RecostOutcome::default();
    for p in t.preorder() {
        let (chi, assigned, current) = {
            let n = t.node(p);
            (n.chi.clone(), n.assigned.clone(), n.lambda.clone())
        };
        let subtree_chi = t.chi_of_subtree(p);
        // Candidates: edges touching χ whose vars seen below p stay
        // inside χ(p) (the per-edge Special Descendant filter).
        let mut candidates: Vec<EdgeId> = h
            .edge_ids()
            .filter(|&e| {
                let ev = h.edge_vars(e);
                ev.intersects(&chi) && ev.intersection(&subtree_chi).is_subset(&chi)
            })
            .collect();
        // Deterministic order: best χ coverage first, edge id breaks ties.
        candidates.sort_by_key(|&e| (usize::MAX - h.edge_vars(e).intersection(&chi).len(), e.0));
        let current_cost = cost.vertex_cost(h, &current, &assigned, &chi);
        let mut best = (current_cost, None);
        let mut work = 0u32;
        let mut chosen: Vec<EdgeId> = Vec::with_capacity(max_width);
        search_covers(
            h,
            &chi,
            &assigned,
            &candidates,
            max_width,
            cost,
            &mut chosen,
            &VarSet::new(),
            &mut best,
            &mut work,
        );
        if let (c, Some(lambda)) = best {
            debug_assert!(c < current_cost);
            t.node_mut(p).lambda = lambda;
            outcome.swapped += 1;
            outcome.total_cost += c;
        } else {
            outcome.total_cost += current_cost;
        }
    }
    outcome
}

/// DFS over irredundant covers of `chi`, branching on edges that contain
/// the first uncovered variable. Updates `best` on strict improvement.
#[allow(clippy::too_many_arguments)]
fn search_covers(
    h: &Hypergraph,
    chi: &VarSet,
    assigned: &EdgeSet,
    candidates: &[EdgeId],
    max_width: usize,
    cost: &dyn DecompCost,
    chosen: &mut Vec<EdgeId>,
    covered: &VarSet,
    best: &mut (f64, Option<EdgeSet>),
    work: &mut u32,
) {
    *work += 1;
    if *work > COVER_BUDGET {
        return;
    }
    let uncovered = chi.difference(covered);
    let Some(target) = uncovered.iter().next() else {
        // A complete cover: price it.
        let mut lambda = EdgeSet::new();
        for &e in chosen.iter() {
            lambda.insert(e);
        }
        let c = cost.vertex_cost(h, &lambda, assigned, chi);
        if c < best.0 {
            *best = (c, Some(lambda));
        }
        return;
    };
    if chosen.len() == max_width {
        return;
    }
    for &e in candidates {
        if chosen.contains(&e) || !h.edge_vars(e).contains(target) {
            continue;
        }
        chosen.push(e);
        let next = covered.union(h.edge_vars(e));
        search_covers(
            h, chi, assigned, candidates, max_width, cost, chosen, &next, best, work,
        );
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StructuralCost;
    use crate::qhd::{q_hypertree_decomp_raw, QhdOptions};
    use crate::validate;
    use htqo_cq::CqBuilder;
    use htqo_hypergraph::canonical_form;

    fn cyclic_chain(n: usize, var: impl Fn(usize) -> String) -> htqo_cq::ConjunctiveQuery {
        let mut b = CqBuilder::new();
        for i in 0..n {
            let l = var(i);
            let r = var((i + 1) % n);
            b = b.atom(&format!("p{i}"), &format!("p{i}"), &[("l", &l), ("r", &r)]);
        }
        b.out_var(&var(0)).build()
    }

    /// A cached raw tree transported onto a renamed isomorphic query is a
    /// valid decomposition of the new query, and re-costing under the
    /// same cost model changes nothing.
    #[test]
    fn transported_tree_is_valid_and_recost_is_identity() {
        let opts = QhdOptions::default();
        let q1 = cyclic_chain(5, |i| format!("X{i}"));
        let q2 = cyclic_chain(5, |i| format!("Banana{}", (i * 7) % 26));
        let raw1 = q_hypertree_decomp_raw(&q1, &opts, &StructuralCost).unwrap();
        let ch2 = q2.hypergraph();
        let out2 = ch2.out_var_set(&q2);
        let c1 = canonical_form(&raw1.cq_hypergraph.hypergraph, &raw1.out_vars).unwrap();
        let c2 = canonical_form(&ch2.hypergraph, &out2).unwrap();
        assert_eq!(c1.encoding, c2.encoding, "isomorphic shapes");
        // Transport q1's tree into canonical space, then into q2's space.
        let canon_tree = remap_tree(&raw1.tree, &c1.var_to_canon, &c1.edge_to_canon);
        let mut tree2 = remap_tree(&canon_tree, &c2.canon_to_var(), &c2.canon_to_edge());
        assert!(validate::check_hd(&ch2.hypergraph, &tree2).is_ok());
        assert!(validate::check_qhd(&ch2.hypergraph, &tree2, &out2).is_ok());
        let before = format!("{tree2:?}");
        let cost_before = tree_cost(&ch2.hypergraph, &tree2, &StructuralCost);
        assert_eq!(
            cost_before,
            tree_cost(&raw1.cq_hypergraph.hypergraph, &raw1.tree, &StructuralCost),
            "structural cost is shape-invariant"
        );
        let out = recost_lambda(&ch2.hypergraph, &mut tree2, opts.max_width, &StructuralCost);
        assert_eq!(out.swapped, 0, "same cost model: cached covers stay");
        assert_eq!(before, format!("{tree2:?}"), "bit-identical tree");
    }

    /// A cost model that hates a specific edge forces a swap, and the
    /// swapped tree is still a valid decomposition.
    #[test]
    fn recost_swaps_to_strictly_cheaper_cover() {
        struct Biased;
        impl crate::cost::DecompCost for Biased {
            fn vertex_cost(
                &self,
                _h: &Hypergraph,
                lambda: &EdgeSet,
                _assigned: &EdgeSet,
                _chi: &VarSet,
            ) -> f64 {
                // Edge 0 is radioactive; otherwise prefer wide covers less.
                let penalty = if lambda.contains(EdgeId(0)) {
                    1000.0
                } else {
                    0.0
                };
                penalty + lambda.len() as f64
            }
            fn min_vertex_cost(&self, _h: &Hypergraph) -> f64 {
                1.0
            }
        }
        // Duplicate coverage: e0 and e3 cover the same pair, so any vertex
        // whose λ uses e0 has a cheaper alternative under `Biased`.
        let q = CqBuilder::new()
            .atom_vars("r", &["A", "B"])
            .atom_vars("s", &["B", "C"])
            .atom_vars("t", &["C", "A"])
            .atom_vars("r2", &["A", "B"])
            .out_var("A")
            .build();
        let opts = QhdOptions::default();
        let raw = q_hypertree_decomp_raw(&q, &opts, &StructuralCost).unwrap();
        let h = &raw.cq_hypergraph.hypergraph;
        let mut tree = raw.tree.clone();
        let uses_e0 = tree
            .preorder()
            .iter()
            .any(|&p| tree.node(p).lambda.contains(EdgeId(0)));
        let out = recost_lambda(h, &mut tree, opts.max_width, &Biased);
        if uses_e0 {
            assert!(out.swapped > 0, "radioactive edge must be swapped out");
        }
        assert!(validate::check_hd(h, &tree).is_ok());
        assert!(validate::check_qhd(h, &tree, &raw.out_vars).is_ok());
        let still_e0 = tree
            .preorder()
            .iter()
            .any(|&p| tree.node(p).lambda.contains(EdgeId(0)));
        assert!(!still_e0, "no vertex should keep the radioactive edge");
    }
}
