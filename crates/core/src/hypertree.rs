//! Hypertrees: rooted trees whose vertices carry a variable label `χ(p)`
//! and a hyperedge label `λ(p)` (Section 3.1 of the paper).
//!
//! Beyond the paper's `⟨T, χ, λ⟩`, each vertex also records the set of
//! query edges *assigned* to it for enforcement: every hyperedge of the
//! query is covered (`h ⊆ χ(p)`) by at least one vertex, and the evaluator
//! joins the edge's relation exactly at its assigned vertex. This keeps
//! evaluation correct even when an edge never appears in any λ label
//! (possible in normal-form decompositions) and after `Optimize` prunes λ
//! atoms.

use htqo_hypergraph::{EdgeSet, Hypergraph, VarSet};
use std::fmt;

/// Index of a vertex in a [`Hypertree`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One decomposition vertex.
#[derive(Clone, Debug)]
pub struct Node {
    /// The variable label `χ(p)`.
    pub chi: VarSet,
    /// The hyperedge label `λ(p)`.
    pub lambda: EdgeSet,
    /// Query edges enforced at this vertex (each is `⊆ χ(p)`).
    pub assigned: EdgeSet,
    /// Children, in deterministic order.
    pub children: Vec<NodeId>,
    /// Children that must be joined *before* the other siblings during
    /// bottom-up evaluation, because `Optimize` removed a λ atom of this
    /// vertex relying on them (end of Section 4.1 in the paper).
    pub support_children: Vec<NodeId>,
}

/// A rooted hypertree `⟨T, χ, λ⟩` (plus enforcement assignment).
#[derive(Clone, Debug)]
pub struct Hypertree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Hypertree {
    /// Builds a hypertree from its nodes and root.
    ///
    /// # Panics
    /// Panics if `root` or any child index is out of bounds, or if the
    /// child lists do not form a tree rooted at `root`.
    pub fn new(nodes: Vec<Node>, root: NodeId) -> Self {
        assert!(root.index() < nodes.len(), "root out of bounds");
        // Verify tree shape: every node reachable exactly once from root.
        let mut seen = vec![false; nodes.len()];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(n) = stack.pop() {
            assert!(!seen[n.index()], "node {} reached twice", n.0);
            seen[n.index()] = true;
            count += 1;
            for &c in &nodes[n.index()].children {
                assert!(c.index() < nodes.len(), "child out of bounds");
                stack.push(c);
            }
        }
        assert_eq!(count, nodes.len(), "unreachable nodes in hypertree");
        Hypertree { nodes, root }
    }

    /// The root vertex.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree has a single vertex (it can never be empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Vertex accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable vertex accessor (used by `Optimize`).
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// All vertex ids (preorder from the root).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            order.push(n);
            // Reverse so children come out in natural order.
            for &c in self.nodes[n.index()].children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Vertices in bottom-up (post-) order: children before parents.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = self.preorder();
        order.reverse();
        order
    }

    /// The width: `max_p |λ(p)|` (Section 3.1).
    pub fn width(&self) -> usize {
        self.nodes.iter().map(|n| n.lambda.len()).max().unwrap_or(0)
    }

    /// The number of relations joined during the preliminary step `P′`:
    /// `Σ_p |λ(p) ∪ assigned(p)|` minus one per non-trivial vertex. This is
    /// the quantity Figure 10 of the paper varies via `Optimize`.
    pub fn join_work(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.lambda.union(&n.assigned).len().saturating_sub(1))
            .sum()
    }

    /// Union of `χ(p)` over the subtree rooted at `p` (`χ(T_p)` in the
    /// paper's Special Descendant Condition).
    pub fn chi_of_subtree(&self, p: NodeId) -> VarSet {
        let mut vs = VarSet::new();
        let mut stack = vec![p];
        while let Some(n) = stack.pop() {
            vs.union_with(&self.nodes[n.index()].chi);
            stack.extend(self.nodes[n.index()].children.iter().copied());
        }
        vs
    }

    /// Pretty-prints the tree with names from `h` (like Figure 2/3 of the
    /// paper).
    pub fn display(&self, h: &Hypergraph) -> String {
        let mut out = String::new();
        self.display_rec(h, self.root, 0, &mut out);
        out
    }

    fn display_rec(&self, h: &Hypergraph, p: NodeId, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let n = &self.nodes[p.index()];
        let lambda: Vec<&str> = n.lambda.iter().map(|e| h.edge_name(e)).collect();
        let assigned: Vec<&str> = n
            .assigned
            .difference(&n.lambda)
            .iter()
            .map(|e| h.edge_name(e))
            .collect();
        let _ = write!(
            out,
            "{}χ={} λ={{{}}}",
            "  ".repeat(depth),
            h.display_vars(&n.chi),
            lambda.join(", "),
        );
        if !assigned.is_empty() {
            let _ = write!(out, " ⋉{{{}}}", assigned.join(", "));
        }
        out.push('\n');
        for &c in &n.children {
            self.display_rec(h, c, depth + 1, out);
        }
    }
}

impl fmt::Display for Hypertree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hypertree ({} vertices, width {})",
            self.len(),
            self.width()
        )
    }
}

/// Incremental builder used by the decomposition algorithms.
#[derive(Default)]
pub struct HypertreeBuilder {
    nodes: Vec<Node>,
}

impl HypertreeBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex; children must already exist.
    pub fn add(
        &mut self,
        chi: VarSet,
        lambda: EdgeSet,
        assigned: EdgeSet,
        children: Vec<NodeId>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            chi,
            lambda,
            assigned,
            children,
            support_children: Vec::new(),
        });
        id
    }

    /// Finalizes the tree with `root` as root.
    pub fn build(self, root: NodeId) -> Hypertree {
        Hypertree::new(self.nodes, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_hypergraph::{EdgeId, Var};

    fn vs(ids: &[u32]) -> VarSet {
        ids.iter().map(|&i| Var(i)).collect()
    }

    fn es(ids: &[u32]) -> EdgeSet {
        ids.iter().map(|&i| EdgeId(i)).collect()
    }

    fn two_level() -> Hypertree {
        let mut b = HypertreeBuilder::new();
        let leaf1 = b.add(vs(&[1, 2]), es(&[1]), es(&[1]), vec![]);
        let leaf2 = b.add(vs(&[2, 3]), es(&[2]), es(&[2]), vec![]);
        let root = b.add(
            vs(&[0, 1, 2, 3]),
            es(&[0, 3]),
            es(&[0, 3]),
            vec![leaf1, leaf2],
        );
        b.build(root)
    }

    #[test]
    fn width_and_orders() {
        let t = two_level();
        assert_eq!(t.width(), 2);
        assert_eq!(t.len(), 3);
        let pre = t.preorder();
        assert_eq!(pre[0], t.root());
        let post = t.postorder();
        assert_eq!(post[2], t.root());
        // Children precede parents in postorder.
        let pos = |id: NodeId| post.iter().position(|&x| x == id).unwrap();
        for &c in &t.node(t.root()).children {
            assert!(pos(c) < pos(t.root()));
        }
    }

    #[test]
    fn chi_of_subtree_accumulates() {
        let t = two_level();
        assert_eq!(t.chi_of_subtree(t.root()).len(), 4);
        let leaf = t.node(t.root()).children[0];
        assert_eq!(t.chi_of_subtree(leaf), vs(&[1, 2]));
    }

    #[test]
    fn join_work_counts_joins() {
        let t = two_level();
        // Root joins 2 atoms (1 join); each leaf joins 1 atom (0 joins).
        assert_eq!(t.join_work(), 1);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn disconnected_nodes_rejected() {
        let mut b = HypertreeBuilder::new();
        let _orphan = b.add(vs(&[0]), es(&[0]), es(&[]), vec![]);
        let root = b.add(vs(&[1]), es(&[1]), es(&[]), vec![]);
        b.build(root);
    }

    #[test]
    fn display_contains_labels() {
        let mut hb = htqo_hypergraph::Hypergraph::builder();
        hb.edge("a", &["X", "Y"]);
        hb.edge("b", &["Y", "Z"]);
        let h = hb.build();
        let mut b = HypertreeBuilder::new();
        let leaf = b.add(vs(&[1, 2]), es(&[1]), es(&[1]), vec![]);
        let root = b.add(vs(&[0, 1]), es(&[0]), es(&[0]), vec![leaf]);
        let t = b.build(root);
        let s = t.display(&h);
        assert!(s.contains("λ={a}"), "got {s}");
        assert!(s.contains("λ={b}"));
    }
}
