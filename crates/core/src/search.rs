//! Normal-form hypertree decomposition search.
//!
//! This module implements both engines the paper builds on:
//!
//! - **det-k-decomp** ([`exists_decomposition`], [`hypertree_width`]): a
//!   backtracking search for *any* normal-form hypertree decomposition of
//!   width ≤ k (Gottlob–Leone–Scarcello);
//! - **cost-k-decomp** ([`cost_k_decomp`]): exact branch-and-bound dynamic
//!   programming over `(component, connector)` subproblems minimizing the
//!   sum of vertex costs supplied by a [`DecompCost`] model (the PODS'04
//!   weighted decompositions the paper's optimizer uses).
//!
//! Both work on the same subproblem space. A subproblem is an edge
//! component `C` with connector variables `conn`; a candidate separator is
//! a set `S` of at most `k` hyperedges such that `conn ⊆ var(S)` and
//! `S ∩ C ≠ ∅` (the progress condition that also yields the normal form).
//! The vertex labels are then `λ = S` and `χ = var(S) ∩ (conn ∪ var(C))`,
//! the edges of `C` fully covered by `χ` are *assigned* to the vertex, and
//! the recursion continues on the `[χ]`-components of `C`.
//!
//! The root subproblem can additionally be constrained to cover a set of
//! output variables (`χ(root) ⊇ out(Q)`), which is exactly Condition 2 of
//! q-hypertree decompositions (Definition 2 of the paper).
//!
//! # Engineering of the search (this module's raison d'être)
//!
//! The seed implementation (kept verbatim in [`baseline`] as the reference
//! oracle for the acceptance harness and the equivalence property tests)
//! memoized on cloned `(EdgeSet, VarSet)` pairs and enumerated every
//! ≤k-subset of the candidate edges. This implementation keeps the same
//! subproblem space and provably the same results, but:
//!
//! - **interns subproblem keys**: component and connector bitsets are
//!   hash-consed into `u32` ids, so the memo is a flat
//!   `FxHashMap<(u32, u32), _>` probed without cloning a single bitset;
//! - **prunes the separator enumeration**: candidate edges are ordered by
//!   scope coverage, whole enumeration branches are cut when the remaining
//!   candidates cannot cover the connector (or reach the component), and
//!   λ-equivalent separators (same `var(S)`) are deduplicated in
//!   first-success mode;
//! - **bounds**: a partial solution is abandoned as soon as its
//!   accumulated cost plus an admissible per-component lower bound
//!   ([`DecompCost::min_vertex_cost`]) reaches the incumbent;
//! - **parallelizes**: independent `[χ]`-component subproblems are solved
//!   concurrently on the execution layer's worker-permit pool
//!   ([`htqo_engine::exec`]) behind [`SearchOptions::threads`], sharing
//!   the memo through striped locks. The optimum is
//!   thread-count-invariant: every subproblem is solved to optimality
//!   with only subproblem-local incumbents, so scheduling order can only
//!   change *which* equal-cost tree is found first, never the cost.

use crate::cost::DecompCost;
use crate::hypertree::{Hypertree, HypertreeBuilder, NodeId};
use htqo_engine::exec;
use htqo_hypergraph::fxhash::{fx_hash_one, FxHashMap, FxHashSet};
use htqo_hypergraph::{components, EdgeId, EdgeSet, Hypergraph, VarSet};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Search configuration.
#[derive(Clone, Debug)]
pub struct SearchOptions {
    /// Maximum width `k` (the paper notes `k = 4` suffices in practice).
    pub max_width: usize,
    /// When set, the root's χ must cover these variables (Condition 2 of
    /// Definition 2 — used for q-hypertree decompositions).
    pub root_cover: Option<VarSet>,
    /// Worker threads for independent component subproblems: `0` uses the
    /// execution layer's configured count ([`exec::num_threads`]), `1`
    /// forces the sequential search, `n > 1` caps the parallel width. The
    /// returned optimum is identical for every setting.
    pub threads: usize,
}

impl SearchOptions {
    /// Plain width-k search.
    pub fn width(k: usize) -> Self {
        SearchOptions {
            max_width: k,
            root_cover: None,
            threads: 0,
        }
    }

    /// Width-k search whose root must cover `out`.
    pub fn width_with_root_cover(k: usize, out: VarSet) -> Self {
        SearchOptions {
            max_width: k,
            root_cover: Some(out),
            threads: 0,
        }
    }

    /// Pins the subproblem-search thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Instrumentation counters for one decomposition search, exposed for the
/// ablation harness and the paper's "decomposition is cheap" claims.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct `(component, connector)` subproblems solved.
    pub subproblems: usize,
    /// Candidate separators examined across all subproblems (separators
    /// whose enumeration branch was pruned are never examined and do not
    /// count).
    pub separators_tried: usize,
    /// Memo-table hits (work saved by the DP).
    pub memo_hits: usize,
    /// Enumeration branches cut because the remaining candidate edges
    /// cannot cover the connector / root-cover deficit or reach the
    /// component (the subset pre-check on bitset words).
    pub cover_rejects: usize,
    /// Separators skipped because a λ-equivalent one (identical `var(S)`)
    /// was already tried for the same subproblem (first-success mode).
    pub lambda_dedup: usize,
    /// Partial solutions abandoned because accumulated cost plus the
    /// admissible per-component lower bound reached the incumbent.
    pub bound_cuts: usize,
    /// Distinct component/connector bitsets interned for memo keys.
    pub interned_keys: usize,
}

/// A shared, immutable plan node produced by the DP (converted into a
/// [`Hypertree`] at the end; sharing matters because the memo table reuses
/// subtrees across parents, and [`Arc`] lets worker threads share them).
struct PlanNode {
    lambda: EdgeSet,
    chi: VarSet,
    assigned: EdgeSet,
    children: Vec<Arc<PlanNode>>,
}

type MemoEntry = Option<(f64, Arc<PlanNode>)>;

/// Hash-consing interner: each distinct set gets a dense `u32` id. Striped
/// so worker threads intern concurrently; the id space is shared through
/// one atomic counter. Lookups hash the set once and never clone it — the
/// clone happens only the first time a set is seen.
struct Interner<S> {
    shards: Vec<Mutex<FxHashMap<S, u32>>>,
    next: AtomicU32,
}

impl<S: std::hash::Hash + Eq + Clone> Interner<S> {
    fn new(shards: usize) -> Self {
        Interner {
            shards: (0..shards)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            next: AtomicU32::new(0),
        }
    }

    fn intern(&self, set: &S) -> u32 {
        let shard = fx_hash_one(set) as usize & (self.shards.len() - 1);
        let mut map = self.shards[shard].lock().unwrap();
        if let Some(&id) = map.get(set) {
            return id;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        map.insert(set.clone(), id);
        id
    }

    fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize
    }
}

/// Shared search counters (workers increment, [`SearchStats`] snapshots).
#[derive(Default)]
struct AtomicStats {
    subproblems: AtomicUsize,
    separators_tried: AtomicUsize,
    memo_hits: AtomicUsize,
    cover_rejects: AtomicUsize,
    lambda_dedup: AtomicUsize,
    bound_cuts: AtomicUsize,
}

/// Per-subproblem enumeration state: the incumbent, locally batched
/// counters (flushed to the shared atomics once per subproblem), and the
/// λ-dedup table.
struct EnumCtx {
    best: MemoEntry,
    separators_tried: usize,
    cover_rejects: usize,
    lambda_dedup: usize,
    bound_cuts: usize,
    /// `var(S) ∩ scope` values already tried (first-success mode only).
    seen_covers: Option<FxHashSet<VarSet>>,
}

/// One candidate separator edge, with its precomputed scope coverage.
struct Cand {
    id: EdgeId,
    /// `var(e) ∩ scope` — everything the edge can contribute to χ.
    cover: VarSet,
    in_comp: bool,
}

#[cfg(debug_assertions)]
thread_local! {
    /// Subproblem keys currently being solved by this thread's recursion
    /// (the in-progress re-entry guard: the progress condition makes true
    /// cycles impossible, and this assertion enforces it in debug builds).
    static IN_PROGRESS: std::cell::RefCell<Vec<(u32, u32)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

struct Searcher<'a> {
    h: &'a Hypergraph,
    k: usize,
    cost: &'a dyn DecompCost,
    /// In first-success mode the search stops refining once any solution is
    /// found for a subproblem.
    first_success: bool,
    threads: usize,
    /// Admissible lower bound charged per undecomposed component.
    comp_lb: f64,
    comp_ids: Interner<EdgeSet>,
    conn_ids: Interner<VarSet>,
    memo: Vec<Mutex<FxHashMap<(u32, u32), MemoEntry>>>,
    stats: AtomicStats,
}

impl<'a> Searcher<'a> {
    fn new(
        h: &'a Hypergraph,
        k: usize,
        cost: &'a dyn DecompCost,
        first_success: bool,
        threads: usize,
    ) -> Self {
        // Power-of-two stripe counts keep shard selection a mask.
        let stripes = if threads <= 1 { 1 } else { 16 };
        Searcher {
            h,
            k,
            cost,
            first_success,
            threads,
            comp_lb: cost.min_vertex_cost(h),
            comp_ids: Interner::new(stripes),
            conn_ids: Interner::new(stripes),
            memo: (0..stripes)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            stats: AtomicStats::default(),
        }
    }

    fn snapshot(&self) -> SearchStats {
        SearchStats {
            subproblems: self.stats.subproblems.load(Ordering::Relaxed),
            separators_tried: self.stats.separators_tried.load(Ordering::Relaxed),
            memo_hits: self.stats.memo_hits.load(Ordering::Relaxed),
            cover_rejects: self.stats.cover_rejects.load(Ordering::Relaxed),
            lambda_dedup: self.stats.lambda_dedup.load(Ordering::Relaxed),
            bound_cuts: self.stats.bound_cuts.load(Ordering::Relaxed),
            interned_keys: self.comp_ids.len() + self.conn_ids.len(),
        }
    }

    fn memo_shard(&self, key: (u32, u32)) -> &Mutex<FxHashMap<(u32, u32), MemoEntry>> {
        &self.memo[fx_hash_one(&key) as usize & (self.memo.len() - 1)]
    }

    /// Solves a memoized subproblem: the optimal decomposition of the
    /// component `comp` whose root covers the connector `conn`.
    fn solve(&self, comp: &EdgeSet, conn: &VarSet) -> MemoEntry {
        let key = (self.comp_ids.intern(comp), self.conn_ids.intern(conn));
        if let Some(cached) = self.memo_shard(key).lock().unwrap().get(&key) {
            self.stats.memo_hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.stats.subproblems.fetch_add(1, Ordering::Relaxed);
        // In-progress re-entry guard: a subproblem re-entered by its own
        // recursion would mean a separator failed the progress condition
        // (every separator assigns at least one component edge, so child
        // components strictly shrink — true cycles are impossible).
        #[cfg(debug_assertions)]
        IN_PROGRESS.with(|stack| {
            let stack = stack.borrow();
            debug_assert!(
                !stack.contains(&key),
                "re-entered in-progress subproblem {key:?}: progress condition violated"
            );
        });
        #[cfg(debug_assertions)]
        IN_PROGRESS.with(|stack| stack.borrow_mut().push(key));
        let result = self.solve_uncached(comp, conn, None);
        #[cfg(debug_assertions)]
        IN_PROGRESS.with(|stack| {
            let popped = stack.borrow_mut().pop();
            debug_assert_eq!(popped, Some(key));
        });
        // Two workers may race on the same subproblem; both compute the
        // same optimum, so either insert wins harmlessly.
        self.memo_shard(key)
            .lock()
            .unwrap()
            .insert(key, result.clone());
        result
    }

    /// Enumerates candidate separators for a subproblem and returns the
    /// best (or first) solution.
    fn solve_uncached(
        &self,
        comp: &EdgeSet,
        conn: &VarSet,
        root_cover: Option<&VarSet>,
    ) -> MemoEntry {
        let comp_vars = self.h.vars_of_edges(comp);
        let scope = conn.union(&comp_vars);

        // Candidate separator edges: anything touching the subproblem,
        // ordered by decreasing scope coverage (ties by id for
        // determinism). High-coverage edges first means good incumbents
        // are found early, which powers the bound cuts below.
        let mut candidates: Vec<Cand> = self
            .h
            .edge_ids()
            .filter_map(|e| {
                let cover = self.h.edge_vars(e).intersection(&scope);
                (!cover.is_empty()).then(|| Cand {
                    id: e,
                    cover,
                    in_comp: comp.contains(e),
                })
            })
            .collect();
        candidates.sort_by(|a, b| b.cover.len().cmp(&a.cover.len()).then(a.id.cmp(&b.id)));

        // Suffix tables for the branch pre-checks: what coverage (and
        // component contact) is still reachable from candidate `i` on.
        let n = candidates.len();
        let mut suffix_cover = vec![VarSet::new(); n + 1];
        let mut suffix_in_comp = vec![false; n + 1];
        for i in (0..n).rev() {
            suffix_cover[i] = suffix_cover[i + 1].union(&candidates[i].cover);
            suffix_in_comp[i] = suffix_in_comp[i + 1] || candidates[i].in_comp;
        }

        let mut ctx = EnumCtx {
            best: None,
            separators_tried: 0,
            cover_rejects: 0,
            lambda_dedup: 0,
            bound_cuts: 0,
            seen_covers: self.first_success.then(FxHashSet::default),
        };
        let mut sep = Vec::with_capacity(self.k);
        // Per-depth χ scratch buffers: `scratch[d]` holds `var(sep) ∩
        // scope` for the current depth-d prefix, so extending a separator
        // never allocates (the buffers are reused across the whole
        // enumeration).
        let mut scratch = vec![VarSet::new(); self.k + 1];
        self.enumerate(
            &candidates,
            &suffix_cover,
            &suffix_in_comp,
            0,
            &mut sep,
            &mut scratch,
            false,
            comp,
            conn,
            root_cover,
            &mut ctx,
        );
        self.stats
            .separators_tried
            .fetch_add(ctx.separators_tried, Ordering::Relaxed);
        self.stats
            .cover_rejects
            .fetch_add(ctx.cover_rejects, Ordering::Relaxed);
        self.stats
            .lambda_dedup
            .fetch_add(ctx.lambda_dedup, Ordering::Relaxed);
        self.stats
            .bound_cuts
            .fetch_add(ctx.bound_cuts, Ordering::Relaxed);
        ctx.best
    }

    /// Recursive subset enumeration (sizes 1..=k) with branch pruning.
    /// `scratch[sep.len()]` is `var(sep) ∩ scope`, maintained
    /// incrementally — it is exactly the χ this separator would produce.
    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        &self,
        candidates: &[Cand],
        suffix_cover: &[VarSet],
        suffix_in_comp: &[bool],
        start: usize,
        sep: &mut Vec<EdgeId>,
        scratch: &mut [VarSet],
        has_comp_edge: bool,
        comp: &EdgeSet,
        conn: &VarSet,
        root_cover: Option<&VarSet>,
        ctx: &mut EnumCtx,
    ) {
        if self.first_success && ctx.best.is_some() {
            return;
        }
        let depth = sep.len();
        if !sep.is_empty()
            && has_comp_edge
            && conn.is_subset(&scratch[depth])
            && root_cover.is_none_or(|req| req.is_subset(&scratch[depth]))
        {
            // λ-equivalence dedup: two separators with the same var(S)
            // produce the same χ, the same components and the same child
            // subproblems. In first-success mode one verdict settles all
            // of them; in cost mode their vertex costs differ, so every
            // one must be priced.
            let duplicate = match &mut ctx.seen_covers {
                Some(seen) => !seen.insert(scratch[depth].clone()),
                None => false,
            };
            if duplicate {
                ctx.lambda_dedup += 1;
            } else {
                ctx.separators_tried += 1;
                self.try_separator(sep, &scratch[depth], comp, ctx);
            }
        }
        if depth == self.k {
            return;
        }
        // Branch feasibility pre-checks (word-level subset tests, no
        // allocation): prune the whole extension subtree when the
        // remaining candidates cannot supply the missing connector/root
        // coverage or the progress edge.
        if !conn.is_subset_of_union(&scratch[depth], &suffix_cover[start])
            || root_cover
                .is_some_and(|req| !req.is_subset_of_union(&scratch[depth], &suffix_cover[start]))
            || (!has_comp_edge && !suffix_in_comp[start])
        {
            ctx.cover_rejects += 1;
            return;
        }
        for i in start..candidates.len() {
            if self.first_success && ctx.best.is_some() {
                return;
            }
            let cand = &candidates[i];
            sep.push(cand.id);
            // scratch[depth+1] = scratch[depth] ∪ cover(cand), reusing the
            // buffer's allocation.
            let (lo, hi) = scratch.split_at_mut(depth + 1);
            hi[0].clear();
            hi[0].union_with(&lo[depth]);
            hi[0].union_with(&cand.cover);
            self.enumerate(
                candidates,
                suffix_cover,
                suffix_in_comp,
                i + 1,
                sep,
                scratch,
                has_comp_edge || cand.in_comp,
                comp,
                conn,
                root_cover,
                ctx,
            );
            sep.pop();
        }
    }

    /// Prices one full candidate separator: recurses on the
    /// `[χ]`-components and updates the incumbent. The separator has
    /// already passed the progress, connector-cover and root-cover checks.
    fn try_separator(&self, sep: &[EdgeId], chi: &VarSet, comp: &EdgeSet, ctx: &mut EnumCtx) {
        let sep_set: EdgeSet = sep.iter().copied().collect();
        // Edges of the component fully covered here are enforced here.
        let assigned: EdgeSet = comp
            .iter()
            .filter(|&e| self.h.edge_vars(e).is_subset(chi))
            .collect();

        let mut total = self.cost.vertex_cost(self.h, &sep_set, &assigned, chi);
        // First bound cut on the vertex cost alone, before paying for the
        // component split.
        if let Some((bound, _)) = &ctx.best {
            if total >= *bound {
                ctx.bound_cuts += 1;
                return;
            }
        }
        let subcomps = components(self.h, comp, chi);
        // Refined cut: even if every remaining component decomposed at the
        // admissible minimum, this branch cannot beat the incumbent.
        if self.comp_lb > 0.0 && !subcomps.is_empty() {
            if let Some((bound, _)) = &ctx.best {
                if total + subcomps.len() as f64 * self.comp_lb >= *bound {
                    ctx.bound_cuts += 1;
                    return;
                }
            }
        }

        let parallel = self.threads > 1 && subcomps.len() > 1;
        let mut children = Vec::with_capacity(subcomps.len());
        if parallel {
            // Solve independent components concurrently on the worker
            // pool. Each subproblem is solved to optimality regardless of
            // siblings, so the combined result equals the sequential one.
            let jobs: Vec<(EdgeSet, VarSet)> = subcomps
                .into_iter()
                .map(|sc| {
                    let child_conn = self.h.vars_of_edges(&sc).intersection(chi);
                    (sc, child_conn)
                })
                .collect();
            let solved = exec::parallel_map(jobs, self.threads, |(sc, child_conn)| {
                self.solve(&sc, &child_conn)
            })
            // Planning-layer closures never touch the engine kernels, so a
            // panic here is a real bug in the search itself: re-raise it on
            // the caller (permits and the shared memo are already
            // consistent — parallel_map returned them before erroring).
            .unwrap_or_else(|e| panic!("{e}"));
            for entry in solved {
                match entry {
                    Some((c, plan)) => {
                        total += c;
                        children.push(plan);
                    }
                    None => return, // this separator cannot decompose the rest
                }
            }
            if let Some((bound, _)) = &ctx.best {
                if total >= *bound {
                    ctx.bound_cuts += 1;
                    return;
                }
            }
        } else {
            let remaining = subcomps.len();
            for (solved, sc) in subcomps.iter().enumerate() {
                let child_conn = self.h.vars_of_edges(sc).intersection(chi);
                match self.solve(sc, &child_conn) {
                    Some((c, plan)) => {
                        total += c;
                        // Children still unsolved each cost ≥ comp_lb.
                        let rest = (remaining - solved - 1) as f64 * self.comp_lb;
                        if let Some((bound, _)) = &ctx.best {
                            if total + rest >= *bound {
                                ctx.bound_cuts += 1;
                                return;
                            }
                        }
                        children.push(plan);
                    }
                    None => return, // this separator cannot decompose the rest
                }
            }
        }

        let better = match &ctx.best {
            None => true,
            Some((bound, _)) => total < *bound,
        };
        if better {
            ctx.best = Some((
                total,
                Arc::new(PlanNode {
                    lambda: sep_set,
                    chi: chi.clone(),
                    assigned,
                    children,
                }),
            ));
        }
    }
}

/// Materializes a plan into a [`Hypertree`].
fn build_tree(plan: &PlanNode) -> Hypertree {
    fn rec(plan: &PlanNode, b: &mut HypertreeBuilder) -> NodeId {
        let children: Vec<NodeId> = plan.children.iter().map(|c| rec(c, b)).collect();
        b.add(
            plan.chi.clone(),
            plan.lambda.clone(),
            plan.assigned.clone(),
            children,
        )
    }
    let mut b = HypertreeBuilder::new();
    let root = rec(plan, &mut b);
    b.build(root)
}

/// Runs the search. Returns the minimum-cost normal-form decomposition of
/// width ≤ `opts.max_width` satisfying the root constraint, or `None` if no
/// such decomposition exists (the paper's "Failure").
pub fn cost_k_decomp(
    h: &Hypergraph,
    opts: &SearchOptions,
    cost: &dyn DecompCost,
) -> Option<Hypertree> {
    search(h, opts, cost, false).map(|(_, t, _)| t)
}

/// Like [`cost_k_decomp`] but also returns the total estimated cost.
pub fn cost_k_decomp_with_cost(
    h: &Hypergraph,
    opts: &SearchOptions,
    cost: &dyn DecompCost,
) -> Option<(f64, Hypertree)> {
    search(h, opts, cost, false).map(|(c, t, _)| (c, t))
}

/// Like [`cost_k_decomp_with_cost`] but also returns search
/// instrumentation.
pub fn cost_k_decomp_instrumented(
    h: &Hypergraph,
    opts: &SearchOptions,
    cost: &dyn DecompCost,
) -> Option<(f64, Hypertree, SearchStats)> {
    search(h, opts, cost, false)
}

/// det-k-decomp: is there a width-≤k normal-form hypertree decomposition?
pub fn exists_decomposition(h: &Hypergraph, k: usize) -> bool {
    search(
        h,
        &SearchOptions::width(k),
        &crate::cost::StructuralCost,
        true,
    )
    .is_some()
}

/// First-success decomposition (det-k-decomp): any NF decomposition of
/// width ≤ `k`, or `None`.
pub fn det_k_decomp(h: &Hypergraph, k: usize) -> Option<Hypertree> {
    search(
        h,
        &SearchOptions::width(k),
        &crate::cost::StructuralCost,
        true,
    )
    .map(|(_, t, _)| t)
}

/// The hypertree width of `h`: smallest `k` admitting a decomposition.
/// (Acyclic hypergraphs have width 1.)
pub fn hypertree_width(h: &Hypergraph) -> usize {
    for k in 1..=h.num_edges().max(1) {
        if exists_decomposition(h, k) {
            return k;
        }
    }
    unreachable!("width ≤ number of edges always admits a decomposition")
}

fn search(
    h: &Hypergraph,
    opts: &SearchOptions,
    cost: &dyn DecompCost,
    first_success: bool,
) -> Option<(f64, Hypertree, SearchStats)> {
    if h.num_edges() == 0 {
        // Degenerate: a single empty vertex.
        let mut b = HypertreeBuilder::new();
        let root = b.add(VarSet::new(), EdgeSet::new(), EdgeSet::new(), vec![]);
        return Some((0.0, b.build(root), SearchStats::default()));
    }
    let threads = if opts.threads == 0 {
        exec::num_threads()
    } else {
        opts.threads
    };
    let s = Searcher::new(h, opts.max_width.max(1), cost, first_success, threads);
    let all = h.all_edges();
    let (total, plan) = s.solve_uncached(&all, &VarSet::new(), opts.root_cover.as_ref())?;
    let tree = build_tree(&plan);
    debug_assert!(crate::validate::check_edge_coverage(h, &tree).is_ok());
    debug_assert!(crate::validate::check_connectedness(h, &tree).is_ok());
    debug_assert!(crate::validate::check_assignment(h, &tree).is_ok());
    Some((total, tree, s.snapshot()))
}

/// The seed search implementation, frozen as the reference oracle.
///
/// This is the pre-branch-and-bound engine the repository seeded with: a
/// `std::collections::HashMap` memo keyed by cloned `(EdgeSet, VarSet)`
/// pairs and an exhaustive, unpruned enumeration of all ≤k-edge
/// separators. It exists so the acceptance harness
/// (`crates/bench/src/bin/decomp.rs`) and the equivalence property tests
/// can compare the engineered search against a known-exact baseline —
/// production callers should use [`cost_k_decomp`] and friends.
pub mod baseline {
    use super::{build_tree_seed, SearchOptions, SearchStats};
    use crate::cost::DecompCost;
    use crate::hypertree::{Hypertree, HypertreeBuilder};
    use htqo_hypergraph::{components, EdgeId, EdgeSet, Hypergraph, VarSet};
    use std::collections::HashMap;
    use std::rc::Rc;

    pub(super) struct PlanNode {
        pub(super) lambda: EdgeSet,
        pub(super) chi: VarSet,
        pub(super) assigned: EdgeSet,
        pub(super) children: Vec<Rc<PlanNode>>,
    }

    type Memo = HashMap<(EdgeSet, VarSet), Option<(f64, Rc<PlanNode>)>>;

    struct Searcher<'a> {
        h: &'a Hypergraph,
        k: usize,
        cost: &'a dyn DecompCost,
        memo: Memo,
        first_success: bool,
        stats: SearchStats,
    }

    impl<'a> Searcher<'a> {
        fn solve(&mut self, comp: &EdgeSet, conn: &VarSet) -> Option<(f64, Rc<PlanNode>)> {
            let key = (comp.clone(), conn.clone());
            if let Some(cached) = self.memo.get(&key) {
                self.stats.memo_hits += 1;
                return cached.clone();
            }
            self.stats.subproblems += 1;
            let result = self.solve_uncached(comp, conn, None);
            self.memo.insert(key, result.clone());
            result
        }

        fn solve_uncached(
            &mut self,
            comp: &EdgeSet,
            conn: &VarSet,
            root_cover: Option<&VarSet>,
        ) -> Option<(f64, Rc<PlanNode>)> {
            let comp_vars = self.h.vars_of_edges(comp);
            let scope = conn.union(&comp_vars);
            let candidates: Vec<EdgeId> = self
                .h
                .edge_ids()
                .filter(|&e| self.h.edge_vars(e).intersects(&scope))
                .collect();
            let mut best = None;
            let mut sep = Vec::with_capacity(self.k);
            self.enumerate(
                &candidates,
                0,
                &mut sep,
                comp,
                conn,
                &scope,
                root_cover,
                &mut best,
            );
            best
        }

        #[allow(clippy::too_many_arguments)]
        fn enumerate(
            &mut self,
            candidates: &[EdgeId],
            start: usize,
            sep: &mut Vec<EdgeId>,
            comp: &EdgeSet,
            conn: &VarSet,
            scope: &VarSet,
            root_cover: Option<&VarSet>,
            best: &mut Option<(f64, Rc<PlanNode>)>,
        ) {
            if self.first_success && best.is_some() {
                return;
            }
            if !sep.is_empty() {
                self.try_separator(sep, comp, conn, scope, root_cover, best);
            }
            if sep.len() == self.k {
                return;
            }
            for i in start..candidates.len() {
                sep.push(candidates[i]);
                self.enumerate(candidates, i + 1, sep, comp, conn, scope, root_cover, best);
                sep.pop();
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn try_separator(
            &mut self,
            sep: &[EdgeId],
            comp: &EdgeSet,
            conn: &VarSet,
            scope: &VarSet,
            root_cover: Option<&VarSet>,
            best: &mut Option<(f64, Rc<PlanNode>)>,
        ) {
            self.stats.separators_tried += 1;
            let sep_set: EdgeSet = sep.iter().copied().collect();
            if sep_set.is_disjoint(comp) {
                return;
            }
            let sep_vars = self.h.vars_of_edges(&sep_set);
            if !conn.is_subset(&sep_vars) {
                return;
            }
            let chi = sep_vars.intersection(scope);
            if let Some(required) = root_cover {
                if !required.is_subset(&chi) {
                    return;
                }
            }
            let assigned: EdgeSet = comp
                .iter()
                .filter(|&e| self.h.edge_vars(e).is_subset(&chi))
                .collect();

            let mut total = self.cost.vertex_cost(self.h, &sep_set, &assigned, &chi);
            if let Some((bound, _)) = best {
                if total >= *bound {
                    return;
                }
            }

            let subcomps = components(self.h, comp, &chi);
            let mut children = Vec::with_capacity(subcomps.len());
            for sc in &subcomps {
                let child_conn = self.h.vars_of_edges(sc).intersection(&chi);
                match self.solve(sc, &child_conn) {
                    Some((c, plan)) => {
                        total += c;
                        if let Some((bound, _)) = best {
                            if total >= *bound {
                                return;
                            }
                        }
                        children.push(plan);
                    }
                    None => return,
                }
            }

            let better = match best {
                None => true,
                Some((bound, _)) => total < *bound,
            };
            if better {
                *best = Some((
                    total,
                    Rc::new(PlanNode {
                        lambda: sep_set,
                        chi,
                        assigned,
                        children,
                    }),
                ));
            }
        }
    }

    /// The seed `cost_k_decomp`, with cost and instrumentation. Exact, but
    /// unpruned and sequential — the oracle the engineered search is
    /// verified against.
    pub fn cost_k_decomp_instrumented(
        h: &Hypergraph,
        opts: &SearchOptions,
        cost: &dyn DecompCost,
    ) -> Option<(f64, Hypertree, SearchStats)> {
        if h.num_edges() == 0 {
            let mut b = HypertreeBuilder::new();
            let root = b.add(VarSet::new(), EdgeSet::new(), EdgeSet::new(), vec![]);
            return Some((0.0, b.build(root), SearchStats::default()));
        }
        let mut s = Searcher {
            h,
            k: opts.max_width.max(1),
            cost,
            memo: HashMap::new(),
            first_success: false,
            stats: SearchStats::default(),
        };
        let all = h.all_edges();
        let (total, plan) = s.solve_uncached(&all, &VarSet::new(), opts.root_cover.as_ref())?;
        Some((total, build_tree_seed(&plan), s.stats))
    }
}

/// Materializes a baseline plan into a [`Hypertree`].
fn build_tree_seed(plan: &baseline::PlanNode) -> Hypertree {
    fn rec(plan: &baseline::PlanNode, b: &mut HypertreeBuilder) -> NodeId {
        let children: Vec<NodeId> = plan.children.iter().map(|c| rec(c, b)).collect();
        b.add(
            plan.chi.clone(),
            plan.lambda.clone(),
            plan.assigned.clone(),
            children,
        )
    }
    let mut b = HypertreeBuilder::new();
    let root = rec(plan, &mut b);
    b.build(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StructuralCost;
    use crate::validate;

    fn build(edges: &[(&str, &[&str])]) -> Hypergraph {
        let mut b = Hypergraph::builder();
        for (name, vars) in edges {
            b.edge(name, vars);
        }
        b.build()
    }

    #[test]
    fn acyclic_line_has_width_1() {
        let h = build(&[
            ("p1", &["A", "B"]),
            ("p2", &["B", "C"]),
            ("p3", &["C", "D"]),
        ]);
        assert_eq!(hypertree_width(&h), 1);
        let t = det_k_decomp(&h, 1).unwrap();
        assert_eq!(t.width(), 1);
        assert!(validate::check_hd(&h, &t).is_ok());
    }

    #[test]
    fn triangle_has_width_2() {
        let h = build(&[("r", &["X", "Y"]), ("s", &["Y", "Z"]), ("t", &["Z", "X"])]);
        assert!(!exists_decomposition(&h, 1));
        assert_eq!(hypertree_width(&h), 2);
        let t = det_k_decomp(&h, 2).unwrap();
        assert!(validate::check_generalized_hd(&h, &t).is_ok() || t.width() <= 2);
        assert!(validate::check_edge_coverage(&h, &t).is_ok());
        assert!(validate::check_connectedness(&h, &t).is_ok());
        assert!(validate::check_assignment(&h, &t).is_ok());
    }

    #[test]
    fn chain_cycle_has_width_2() {
        // The paper's chain queries (cyclic line): width 2 for n ≥ 3.
        let h = build(&[
            ("p1", &["A", "B"]),
            ("p2", &["B", "C"]),
            ("p3", &["C", "D"]),
            ("p4", &["D", "E"]),
            ("p5", &["E", "A"]),
        ]);
        assert_eq!(hypertree_width(&h), 2);
    }

    #[test]
    fn tpch_q5_hypergraph_has_width_2() {
        // Figure 1 / Example 1 of the paper: Q5 is cyclic with hw = 2.
        let h = build(&[
            ("customer", &["CustKey", "NationKey"]),
            ("orders", &["OrdKey", "CustKey"]),
            ("lineitem", &["SuppKey", "OrdKey", "EP", "D"]),
            ("supplier", &["SuppKey", "NationKey"]),
            ("nation", &["Name", "NationKey", "RegionKey"]),
            ("region", &["RegionKey"]),
        ]);
        assert_eq!(hypertree_width(&h), 2);
    }

    #[test]
    fn root_cover_constraint_is_honoured() {
        let h = build(&[("a", &["X", "Y"]), ("b", &["Y", "Z"]), ("c", &["Z", "W"])]);
        // Require X and W at the root: impossible with k = 1 (the paper's
        // Example 4 effect: the output cover may force a larger width).
        let out: VarSet = ["X", "W"]
            .iter()
            .map(|n| h.var_by_name(n).unwrap())
            .collect();
        let opts1 = SearchOptions::width_with_root_cover(1, out.clone());
        assert!(cost_k_decomp(&h, &opts1, &StructuralCost).is_none());
        let opts2 = SearchOptions::width_with_root_cover(2, out.clone());
        let t = cost_k_decomp(&h, &opts2, &StructuralCost).unwrap();
        assert!(validate::check_qhd(&h, &t, &out).is_ok());
        assert!(out.is_subset(&t.node(t.root()).chi));
    }

    #[test]
    fn disconnected_hypergraph_decomposes() {
        let h = build(&[("a", &["X", "Y"]), ("b", &["P", "Q"])]);
        let t = det_k_decomp(&h, 1).unwrap();
        assert!(validate::check_edge_coverage(&h, &t).is_ok());
        assert!(validate::check_assignment(&h, &t).is_ok());
    }

    #[test]
    fn structural_cost_prefers_fewer_vertices() {
        // A single edge covering everything should beat two vertices.
        let h = build(&[
            ("big", &["X", "Y", "Z"]),
            ("r", &["X", "Y"]),
            ("s", &["Y", "Z"]),
        ]);
        let t = cost_k_decomp(&h, &SearchOptions::width(2), &StructuralCost).unwrap();
        // big covers r and s: one vertex suffices.
        assert_eq!(t.len(), 1);
        assert_eq!(t.node(t.root()).assigned.len(), 3);
    }

    #[test]
    fn empty_hypergraph_degenerate() {
        let h = Hypergraph::builder().build();
        let t = det_k_decomp(&h, 1).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.width(), 0);
    }

    #[test]
    fn width_search_matches_existence() {
        let h = build(&[
            ("r", &["X", "Y"]),
            ("s", &["Y", "Z"]),
            ("t", &["Z", "X"]),
            ("u", &["X", "W"]),
        ]);
        let w = hypertree_width(&h);
        assert!(exists_decomposition(&h, w));
        assert!(!exists_decomposition(&h, w - 1));
    }

    #[test]
    fn cost_decomposition_has_min_width_when_structural() {
        // Structural cost never pays for wider vertices unless needed.
        let h = build(&[
            ("p1", &["A", "B"]),
            ("p2", &["B", "C"]),
            ("p3", &["C", "A"]),
        ]);
        let t = cost_k_decomp(&h, &SearchOptions::width(3), &StructuralCost).unwrap();
        assert!(t.width() <= 2);
    }

    #[test]
    fn pruning_counters_fire_and_costs_match_baseline() {
        // 6-edge cyclic chain: pruning must both fire and stay exact.
        let h = build(&[
            ("p1", &["A", "B"]),
            ("p2", &["B", "C"]),
            ("p3", &["C", "D"]),
            ("p4", &["D", "E"]),
            ("p5", &["E", "F"]),
            ("p6", &["F", "A"]),
        ]);
        for k in 2..=4 {
            let opts = SearchOptions::width(k);
            let (seed_cost, _, seed_stats) =
                baseline::cost_k_decomp_instrumented(&h, &opts, &StructuralCost).unwrap();
            let (bnb_cost, tree, stats) =
                cost_k_decomp_instrumented(&h, &opts, &StructuralCost).unwrap();
            assert_eq!(seed_cost, bnb_cost, "k={k}");
            assert!(validate::check_edge_coverage(&h, &tree).is_ok());
            assert!(
                stats.separators_tried < seed_stats.separators_tried,
                "k={k}: {} !< {}",
                stats.separators_tried,
                seed_stats.separators_tried
            );
            assert!(stats.bound_cuts + stats.cover_rejects > 0, "k={k}");
            assert!(stats.interned_keys > 0);
        }
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let h = build(&[
            ("p1", &["A", "B"]),
            ("p2", &["B", "C"]),
            ("p3", &["C", "D"]),
            ("p4", &["D", "E"]),
            ("p5", &["E", "A"]),
            ("hub", &["A", "C", "E"]),
        ]);
        for k in 2..=3 {
            let seq = cost_k_decomp_with_cost(
                &h,
                &SearchOptions::width(k).with_threads(1),
                &StructuralCost,
            );
            let par = cost_k_decomp_with_cost(
                &h,
                &SearchOptions::width(k).with_threads(4),
                &StructuralCost,
            );
            match (seq, par) {
                (Some((cs, ts)), Some((cp, tp))) => {
                    assert_eq!(cs, cp, "k={k}");
                    assert_eq!(ts.width(), tp.width());
                }
                (None, None) => {}
                other => panic!(
                    "k={k}: sequential/parallel disagree: {:?}",
                    other.0.is_some()
                ),
            }
        }
    }

    #[test]
    fn memoized_diamond_reentry_is_a_memo_hit_not_a_cycle() {
        // A "cyclic-looking" subproblem graph: the two width-1 separators
        // {a} and {b} leave the same tail component {c, d}, so the tail
        // subproblem is reached twice. The second visit must be served by
        // the memo (and must not trip the in-progress re-entry guard).
        let h = build(&[
            ("a", &["X", "Y"]),
            ("b", &["X", "Y"]),
            ("c", &["Y", "Z"]),
            ("d", &["Z", "W"]),
        ]);
        let (_, tree, stats) =
            cost_k_decomp_instrumented(&h, &SearchOptions::width(2), &StructuralCost).unwrap();
        assert!(validate::check_edge_coverage(&h, &tree).is_ok());
        assert!(stats.memo_hits > 0, "diamond must hit the memo: {stats:?}");
    }
}
