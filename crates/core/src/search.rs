//! Normal-form hypertree decomposition search.
//!
//! This module implements both engines the paper builds on:
//!
//! - **det-k-decomp** ([`exists_decomposition`], [`hypertree_width`]): a
//!   backtracking search for *any* normal-form hypertree decomposition of
//!   width ≤ k (Gottlob–Leone–Scarcello);
//! - **cost-k-decomp** ([`cost_k_decomp`]): exact dynamic programming over
//!   `(component, connector)` subproblems minimizing the sum of vertex
//!   costs supplied by a [`DecompCost`] model (the PODS'04 weighted
//!   decompositions the paper's optimizer uses).
//!
//! Both work on the same subproblem space. A subproblem is an edge
//! component `C` with connector variables `conn`; a candidate separator is
//! a set `S` of at most `k` hyperedges such that `conn ⊆ var(S)` and
//! `S ∩ C ≠ ∅` (the progress condition that also yields the normal form).
//! The vertex labels are then `λ = S` and `χ = var(S) ∩ (conn ∪ var(C))`,
//! the edges of `C` fully covered by `χ` are *assigned* to the vertex, and
//! the recursion continues on the `[χ]`-components of `C`.
//!
//! The root subproblem can additionally be constrained to cover a set of
//! output variables (`χ(root) ⊇ out(Q)`), which is exactly Condition 2 of
//! q-hypertree decompositions (Definition 2 of the paper).

use crate::cost::DecompCost;
use crate::hypertree::{Hypertree, HypertreeBuilder, NodeId};
use htqo_hypergraph::{components, EdgeId, EdgeSet, Hypergraph, VarSet};
use std::collections::HashMap;
use std::rc::Rc;

/// Search configuration.
#[derive(Clone, Debug)]
pub struct SearchOptions {
    /// Maximum width `k` (the paper notes `k = 4` suffices in practice).
    pub max_width: usize,
    /// When set, the root's χ must cover these variables (Condition 2 of
    /// Definition 2 — used for q-hypertree decompositions).
    pub root_cover: Option<VarSet>,
}

impl SearchOptions {
    /// Plain width-k search.
    pub fn width(k: usize) -> Self {
        SearchOptions { max_width: k, root_cover: None }
    }

    /// Width-k search whose root must cover `out`.
    pub fn width_with_root_cover(k: usize, out: VarSet) -> Self {
        SearchOptions { max_width: k, root_cover: Some(out) }
    }
}

/// Instrumentation counters for one decomposition search, exposed for the
/// ablation harness and the paper's "decomposition is cheap" claims.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct `(component, connector)` subproblems solved.
    pub subproblems: usize,
    /// Candidate separators examined across all subproblems.
    pub separators_tried: usize,
    /// Memo-table hits (work saved by the DP).
    pub memo_hits: usize,
}

/// A shared, immutable plan node produced by the DP (converted into a
/// [`Hypertree`] at the end; sharing matters because the memo table reuses
/// subtrees across parents).
struct PlanNode {
    lambda: EdgeSet,
    chi: VarSet,
    assigned: EdgeSet,
    children: Vec<Rc<PlanNode>>,
}

type Memo = HashMap<(EdgeSet, VarSet), Option<(f64, Rc<PlanNode>)>>;

struct Searcher<'a, C: DecompCost> {
    h: &'a Hypergraph,
    k: usize,
    cost: C,
    memo: Memo,
    /// In first-success mode the search stops refining once any solution is
    /// found for a subproblem.
    first_success: bool,
    stats: SearchStats,
}

impl<'a, C: DecompCost> Searcher<'a, C> {
    fn new(h: &'a Hypergraph, k: usize, cost: C, first_success: bool) -> Self {
        Searcher { h, k, cost, memo: HashMap::new(), first_success, stats: SearchStats::default() }
    }

    /// Enumerates candidate separators for a subproblem and returns the
    /// best (or first) solution.
    fn solve(&mut self, comp: &EdgeSet, conn: &VarSet) -> Option<(f64, Rc<PlanNode>)> {
        let key = (comp.clone(), conn.clone());
        if let Some(cached) = self.memo.get(&key) {
            self.stats.memo_hits += 1;
            return cached.clone();
        }
        self.stats.subproblems += 1;
        // Mark in-progress to guard against accidental re-entry (the
        // progress condition makes true cycles impossible).
        let result = self.solve_uncached(comp, conn, None);
        self.memo.insert(key, result.clone());
        result
    }

    fn solve_uncached(
        &mut self,
        comp: &EdgeSet,
        conn: &VarSet,
        root_cover: Option<&VarSet>,
    ) -> Option<(f64, Rc<PlanNode>)> {
        let comp_vars = self.h.vars_of_edges(comp);
        let scope = conn.union(&comp_vars);
        // Candidate separator edges: anything touching the subproblem.
        let candidates: Vec<EdgeId> = self
            .h
            .edge_ids()
            .filter(|&e| self.h.edge_vars(e).intersects(&scope))
            .collect();

        let mut best: Option<(f64, Rc<PlanNode>)> = None;
        let mut sep = Vec::with_capacity(self.k);
        self.enumerate(
            &candidates,
            0,
            &mut sep,
            comp,
            conn,
            &scope,
            root_cover,
            &mut best,
        );
        best
    }

    /// Recursive subset enumeration (sizes 1..=k).
    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        &mut self,
        candidates: &[EdgeId],
        start: usize,
        sep: &mut Vec<EdgeId>,
        comp: &EdgeSet,
        conn: &VarSet,
        scope: &VarSet,
        root_cover: Option<&VarSet>,
        best: &mut Option<(f64, Rc<PlanNode>)>,
    ) {
        if self.first_success && best.is_some() {
            return;
        }
        if !sep.is_empty() {
            self.try_separator(sep, comp, conn, scope, root_cover, best);
        }
        if sep.len() == self.k {
            return;
        }
        for i in start..candidates.len() {
            sep.push(candidates[i]);
            self.enumerate(candidates, i + 1, sep, comp, conn, scope, root_cover, best);
            sep.pop();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_separator(
        &mut self,
        sep: &[EdgeId],
        comp: &EdgeSet,
        conn: &VarSet,
        scope: &VarSet,
        root_cover: Option<&VarSet>,
        best: &mut Option<(f64, Rc<PlanNode>)>,
    ) {
        self.stats.separators_tried += 1;
        let sep_set: EdgeSet = sep.iter().copied().collect();
        // Progress: at least one separator edge inside the component (this
        // edge becomes covered, so child components strictly shrink).
        if sep_set.is_disjoint(comp) {
            return;
        }
        let sep_vars = self.h.vars_of_edges(&sep_set);
        // The connector must be fully covered for connectedness.
        if !conn.is_subset(&sep_vars) {
            return;
        }
        let chi = sep_vars.intersection(scope);
        if let Some(required) = root_cover {
            if !required.is_subset(&chi) {
                return;
            }
        }
        // Edges of the component fully covered here are enforced here.
        let assigned: EdgeSet = comp
            .iter()
            .filter(|&e| self.h.edge_vars(e).is_subset(&chi))
            .collect();

        let mut total = self
            .cost
            .vertex_cost(self.h, &sep_set, &assigned, &chi);
        if let Some((bound, _)) = best {
            if total >= *bound {
                return; // children can only add cost
            }
        }

        let subcomps = components(self.h, comp, &chi);
        let mut children = Vec::with_capacity(subcomps.len());
        for sc in &subcomps {
            let child_conn = self.h.vars_of_edges(sc).intersection(&chi);
            match self.solve(sc, &child_conn) {
                Some((c, plan)) => {
                    total += c;
                    if let Some((bound, _)) = best {
                        if total >= *bound {
                            return;
                        }
                    }
                    children.push(plan);
                }
                None => return, // this separator cannot decompose the rest
            }
        }

        let better = match best {
            None => true,
            Some((bound, _)) => total < *bound,
        };
        if better {
            *best = Some((
                total,
                Rc::new(PlanNode {
                    lambda: sep_set,
                    chi,
                    assigned,
                    children,
                }),
            ));
        }
    }
}

/// Materializes a plan into a [`Hypertree`].
fn build_tree(plan: &PlanNode) -> Hypertree {
    fn rec(plan: &PlanNode, b: &mut HypertreeBuilder) -> NodeId {
        let children: Vec<NodeId> = plan.children.iter().map(|c| rec(c, b)).collect();
        b.add(plan.chi.clone(), plan.lambda.clone(), plan.assigned.clone(), children)
    }
    let mut b = HypertreeBuilder::new();
    let root = rec(plan, &mut b);
    b.build(root)
}

/// Runs the search. Returns the minimum-cost normal-form decomposition of
/// width ≤ `opts.max_width` satisfying the root constraint, or `None` if no
/// such decomposition exists (the paper's "Failure").
pub fn cost_k_decomp(
    h: &Hypergraph,
    opts: &SearchOptions,
    cost: &dyn DecompCost,
) -> Option<Hypertree> {
    search(h, opts, cost, false).map(|(_, t, _)| t)
}

/// Like [`cost_k_decomp`] but also returns the total estimated cost.
pub fn cost_k_decomp_with_cost(
    h: &Hypergraph,
    opts: &SearchOptions,
    cost: &dyn DecompCost,
) -> Option<(f64, Hypertree)> {
    search(h, opts, cost, false).map(|(c, t, _)| (c, t))
}

/// Like [`cost_k_decomp_with_cost`] but also returns search
/// instrumentation.
pub fn cost_k_decomp_instrumented(
    h: &Hypergraph,
    opts: &SearchOptions,
    cost: &dyn DecompCost,
) -> Option<(f64, Hypertree, SearchStats)> {
    search(h, opts, cost, false)
}

/// det-k-decomp: is there a width-≤k normal-form hypertree decomposition?
pub fn exists_decomposition(h: &Hypergraph, k: usize) -> bool {
    search(
        h,
        &SearchOptions::width(k),
        &crate::cost::StructuralCost,
        true,
    )
    .is_some()
}

/// First-success decomposition (det-k-decomp): any NF decomposition of
/// width ≤ `k`, or `None`.
pub fn det_k_decomp(h: &Hypergraph, k: usize) -> Option<Hypertree> {
    search(
        h,
        &SearchOptions::width(k),
        &crate::cost::StructuralCost,
        true,
    )
    .map(|(_, t, _)| t)
}

/// The hypertree width of `h`: smallest `k` admitting a decomposition.
/// (Acyclic hypergraphs have width 1.)
pub fn hypertree_width(h: &Hypergraph) -> usize {
    for k in 1..=h.num_edges().max(1) {
        if exists_decomposition(h, k) {
            return k;
        }
    }
    unreachable!("width ≤ number of edges always admits a decomposition")
}

fn search(
    h: &Hypergraph,
    opts: &SearchOptions,
    cost: &dyn DecompCost,
    first_success: bool,
) -> Option<(f64, Hypertree, SearchStats)> {
    if h.num_edges() == 0 {
        // Degenerate: a single empty vertex.
        let mut b = HypertreeBuilder::new();
        let root = b.add(VarSet::new(), EdgeSet::new(), EdgeSet::new(), vec![]);
        return Some((0.0, b.build(root), SearchStats::default()));
    }
    let mut s = Searcher::new(h, opts.max_width.max(1), cost, first_success);
    let all = h.all_edges();
    let (total, plan) = s.solve_uncached(&all, &VarSet::new(), opts.root_cover.as_ref())?;
    let tree = build_tree(&plan);
    debug_assert!(crate::validate::check_edge_coverage(h, &tree).is_ok());
    debug_assert!(crate::validate::check_connectedness(h, &tree).is_ok());
    debug_assert!(crate::validate::check_assignment(h, &tree).is_ok());
    Some((total, tree, s.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StructuralCost;
    use crate::validate;

    fn build(edges: &[(&str, &[&str])]) -> Hypergraph {
        let mut b = Hypergraph::builder();
        for (name, vars) in edges {
            b.edge(name, vars);
        }
        b.build()
    }

    #[test]
    fn acyclic_line_has_width_1() {
        let h = build(&[
            ("p1", &["A", "B"]),
            ("p2", &["B", "C"]),
            ("p3", &["C", "D"]),
        ]);
        assert_eq!(hypertree_width(&h), 1);
        let t = det_k_decomp(&h, 1).unwrap();
        assert_eq!(t.width(), 1);
        assert!(validate::check_hd(&h, &t).is_ok());
    }

    #[test]
    fn triangle_has_width_2() {
        let h = build(&[("r", &["X", "Y"]), ("s", &["Y", "Z"]), ("t", &["Z", "X"])]);
        assert!(!exists_decomposition(&h, 1));
        assert_eq!(hypertree_width(&h), 2);
        let t = det_k_decomp(&h, 2).unwrap();
        assert!(validate::check_generalized_hd(&h, &t).is_ok() || t.width() <= 2);
        assert!(validate::check_edge_coverage(&h, &t).is_ok());
        assert!(validate::check_connectedness(&h, &t).is_ok());
        assert!(validate::check_assignment(&h, &t).is_ok());
    }

    #[test]
    fn chain_cycle_has_width_2() {
        // The paper's chain queries (cyclic line): width 2 for n ≥ 3.
        let h = build(&[
            ("p1", &["A", "B"]),
            ("p2", &["B", "C"]),
            ("p3", &["C", "D"]),
            ("p4", &["D", "E"]),
            ("p5", &["E", "A"]),
        ]);
        assert_eq!(hypertree_width(&h), 2);
    }

    #[test]
    fn tpch_q5_hypergraph_has_width_2() {
        // Figure 1 / Example 1 of the paper: Q5 is cyclic with hw = 2.
        let h = build(&[
            ("customer", &["CustKey", "NationKey"]),
            ("orders", &["OrdKey", "CustKey"]),
            ("lineitem", &["SuppKey", "OrdKey", "EP", "D"]),
            ("supplier", &["SuppKey", "NationKey"]),
            ("nation", &["Name", "NationKey", "RegionKey"]),
            ("region", &["RegionKey"]),
        ]);
        assert_eq!(hypertree_width(&h), 2);
    }

    #[test]
    fn root_cover_constraint_is_honoured() {
        let h = build(&[
            ("a", &["X", "Y"]),
            ("b", &["Y", "Z"]),
            ("c", &["Z", "W"]),
        ]);
        // Require X and W at the root: impossible with k = 1 (the paper's
        // Example 4 effect: the output cover may force a larger width).
        let out: VarSet = ["X", "W"]
            .iter()
            .map(|n| h.var_by_name(n).unwrap())
            .collect();
        let opts1 = SearchOptions::width_with_root_cover(1, out.clone());
        assert!(cost_k_decomp(&h, &opts1, &StructuralCost).is_none());
        let opts2 = SearchOptions::width_with_root_cover(2, out.clone());
        let t = cost_k_decomp(&h, &opts2, &StructuralCost).unwrap();
        assert!(validate::check_qhd(&h, &t, &out).is_ok());
        assert!(out.is_subset(&t.node(t.root()).chi));
    }

    #[test]
    fn disconnected_hypergraph_decomposes() {
        let h = build(&[("a", &["X", "Y"]), ("b", &["P", "Q"])]);
        let t = det_k_decomp(&h, 1).unwrap();
        assert!(validate::check_edge_coverage(&h, &t).is_ok());
        assert!(validate::check_assignment(&h, &t).is_ok());
    }

    #[test]
    fn structural_cost_prefers_fewer_vertices() {
        // A single edge covering everything should beat two vertices.
        let h = build(&[("big", &["X", "Y", "Z"]), ("r", &["X", "Y"]), ("s", &["Y", "Z"])]);
        let t = cost_k_decomp(&h, &SearchOptions::width(2), &StructuralCost).unwrap();
        // big covers r and s: one vertex suffices.
        assert_eq!(t.len(), 1);
        assert_eq!(t.node(t.root()).assigned.len(), 3);
    }

    #[test]
    fn empty_hypergraph_degenerate() {
        let h = Hypergraph::builder().build();
        let t = det_k_decomp(&h, 1).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.width(), 0);
    }

    #[test]
    fn width_search_matches_existence() {
        let h = build(&[
            ("r", &["X", "Y"]),
            ("s", &["Y", "Z"]),
            ("t", &["Z", "X"]),
            ("u", &["X", "W"]),
        ]);
        let w = hypertree_width(&h);
        assert!(exists_decomposition(&h, w));
        assert!(!exists_decomposition(&h, w - 1));
    }

    #[test]
    fn cost_decomposition_has_min_width_when_structural() {
        // Structural cost never pays for wider vertices unless needed.
        let h = build(&[
            ("p1", &["A", "B"]),
            ("p2", &["B", "C"]),
            ("p3", &["C", "A"]),
        ]);
        let t = cost_k_decomp(&h, &SearchOptions::width(3), &StructuralCost).unwrap();
        assert!(t.width() <= 2);
    }
}
