//! Cost abstraction for weighted (cost-based) decomposition search.
//!
//! The paper's `cost-k-decomp` evaluates candidate decompositions with a
//! cost model over database statistics (following the PODS'04 weighted
//! hypertree decompositions). The decomposition crate stays independent of
//! the statistics subsystem through this trait; `htqo-stats` provides the
//! quantitative implementation, and [`StructuralCost`] is the purely
//! structural fallback the paper uses when no statistics are available.

use htqo_hypergraph::{EdgeSet, Hypergraph, VarSet};

/// Cost model for one decomposition vertex.
///
/// The total cost of a decomposition is the **sum of its vertex costs** —
/// a tree-aggregation-monotone function, which is what makes the dynamic
/// program over `(component, connector)` subproblems exact.
///
/// Implementations must be [`Sync`]: the branch-and-bound search evaluates
/// independent component subproblems on worker threads, each of which
/// calls [`DecompCost::vertex_cost`] through a shared reference.
pub trait DecompCost: Sync {
    /// Estimated cost of materializing vertex `p`: joining the relations of
    /// `λ(p) ∪ assigned(p)` and projecting onto `χ(p)`.
    fn vertex_cost(
        &self,
        h: &Hypergraph,
        lambda: &EdgeSet,
        assigned: &EdgeSet,
        chi: &VarSet,
    ) -> f64;

    /// An *admissible* lower bound on [`DecompCost::vertex_cost`] over
    /// every possible vertex of `h`: no vertex the search can build may
    /// cost less. The branch-and-bound search charges this bound once per
    /// still-undecomposed component when deciding whether a partial
    /// solution can still beat the incumbent, so an over-estimate here
    /// would prune optimal solutions. The default (`0.0`) is always
    /// admissible and merely disables the component term of the bound.
    fn min_vertex_cost(&self, _h: &Hypergraph) -> f64 {
        0.0
    }
}

/// Purely structural cost — the "no statistics available" mode of the
/// paper's optimizer.
///
/// A vertex costs `100^|λ|` plus one unit per join among its *enforcing*
/// atoms (the assigned ones) plus a small half-unit per *bounding* atom
/// (λ atoms enforced elsewhere). Because a query hypergraph never has more
/// than a few dozen edges, a single vertex of width `w+1` always outweighs
/// every possible number of width-`w` vertices, so minimizing the *sum*
/// lexicographically minimizes the decomposition width first, then the
/// number of wide vertices, then the join work.
///
/// Bounding atoms are cheap on purpose: Procedure Optimize (Figure 4 of
/// the paper) prunes them whenever a child bounds the same variables, so
/// the decompositions the paper's pipeline actually evaluates carry them
/// for connectedness without paying their joins. This mirrors the minimal
/// normal-form trees of the paper's Figure 3 (`HD₁`), whose redundant
/// atoms Optimize then removes (`HD₁′`).
#[derive(Clone, Copy, Debug, Default)]
pub struct StructuralCost;

impl DecompCost for StructuralCost {
    /// Every vertex has `|λ| ≥ 1`, so it costs at least `100¹` (the other
    /// terms are non-negative).
    fn min_vertex_cost(&self, _h: &Hypergraph) -> f64 {
        100.0
    }

    fn vertex_cost(
        &self,
        h: &Hypergraph,
        lambda: &EdgeSet,
        assigned: &EdgeSet,
        _chi: &VarSet,
    ) -> f64 {
        let enforcing = assigned.len();
        let bounding = lambda.difference(assigned).len();
        // Joining enforcing atoms that share no variables forces a cross
        // product in the evaluator's step P′ — without sizes we can still
        // see (and heavily penalize) that structural hazard.
        let crosses = forced_cross_products(h, assigned);
        100f64.powi(lambda.len() as i32)
            + enforcing.saturating_sub(1) as f64
            + 0.5 * bounding as f64
            + 25.0 * crosses as f64
    }
}

/// Number of cross products a connectivity-greedy join order over `atoms`
/// cannot avoid (i.e. the number of variable-connected components minus
/// one).
fn forced_cross_products(h: &Hypergraph, atoms: &EdgeSet) -> usize {
    let mut remaining: Vec<_> = atoms.iter().collect();
    if remaining.len() <= 1 {
        return 0;
    }
    let mut components = 0usize;
    while let Some(first) = remaining.pop() {
        components += 1;
        let mut vars = h.edge_vars(first).clone();
        loop {
            let before = remaining.len();
            remaining.retain(|&e| {
                if h.edge_vars(e).intersects(&vars) {
                    vars.union_with(h.edge_vars(e));
                    false
                } else {
                    true
                }
            });
            if remaining.len() == before {
                break;
            }
        }
    }
    components - 1
}

impl<T: DecompCost + ?Sized> DecompCost for &T {
    fn vertex_cost(
        &self,
        h: &Hypergraph,
        lambda: &EdgeSet,
        assigned: &EdgeSet,
        chi: &VarSet,
    ) -> f64 {
        (**self).vertex_cost(h, lambda, assigned, chi)
    }

    fn min_vertex_cost(&self, h: &Hypergraph) -> f64 {
        (**self).min_vertex_cost(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_hypergraph::EdgeId;

    #[test]
    fn structural_cost_counts_joins() {
        let mut b = Hypergraph::builder();
        b.edge("a", &["X"]);
        b.edge("b", &["X", "Y"]);
        let h = b.build();
        let lambda: EdgeSet = [EdgeId(0), EdgeId(1)].into_iter().collect();
        let assigned: EdgeSet = [EdgeId(0)].into_iter().collect();
        let c = StructuralCost.vertex_cost(&h, &lambda, &assigned, &h.all_vars());
        // Width 2 → 100², one enforcing atom (no join), one bounding atom.
        assert_eq!(c, 10_000.5);
        let single: EdgeSet = [EdgeId(0)].into_iter().collect();
        assert_eq!(
            StructuralCost.vertex_cost(&h, &single, &single, &h.all_vars()),
            100.0
        );
        // One width-3 vertex outweighs many width-2 vertices.
        let wide: EdgeSet = [EdgeId(0), EdgeId(1)].into_iter().collect();
        let w2 = StructuralCost.vertex_cost(&h, &wide, &wide, &h.all_vars());
        assert!(30.0 * w2 < 100f64.powi(3));
    }
}
