//! Independent validation of decomposition conditions, used by tests and
//! debug assertions: Definition 1 (hypertree decompositions), its
//! generalized variant, and Definition 2 (q-hypertree decompositions).

use crate::hypertree::{Hypertree, NodeId};
use htqo_hypergraph::{Hypergraph, VarSet};

/// A violated decomposition condition, with a human-readable explanation.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which condition failed (paper numbering).
    pub condition: &'static str,
    /// Explanation.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.condition, self.detail)
    }
}

/// Condition 1 of both definitions: every hyperedge is covered by some
/// vertex's χ label.
pub fn check_edge_coverage(h: &Hypergraph, t: &Hypertree) -> Result<(), Violation> {
    'edges: for e in h.edge_ids() {
        for p in t.preorder() {
            if h.edge_vars(e).is_subset(&t.node(p).chi) {
                continue 'edges;
            }
        }
        return Err(Violation {
            condition: "coverage (Def.1/2 cond.1)",
            detail: format!("edge `{}` covered by no vertex", h.edge_name(e)),
        });
    }
    Ok(())
}

/// Connectedness condition: for each variable `Y`, the vertices with
/// `Y ∈ χ(p)` induce a connected subtree.
pub fn check_connectedness(h: &Hypergraph, t: &Hypertree) -> Result<(), Violation> {
    for v in h.var_ids() {
        // A vertex set is subtree-connected iff at most one holder has a
        // non-holder (or no) parent.
        let mut top_count = 0usize;
        let mut parent: Vec<Option<NodeId>> = vec![None; t.len()];
        for p in t.preorder() {
            for &c in &t.node(p).children {
                parent[c.index()] = Some(p);
            }
        }
        for p in t.preorder() {
            if !t.node(p).chi.contains(v) {
                continue;
            }
            let has_holder_parent =
                matches!(parent[p.index()], Some(q) if t.node(q).chi.contains(v));
            if !has_holder_parent {
                top_count += 1;
            }
        }
        if top_count > 1 {
            return Err(Violation {
                condition: "connectedness (Def.1 cond.2 / Def.2 cond.3)",
                detail: format!("variable `{}` induces a disconnected set", h.var_name(v)),
            });
        }
    }
    Ok(())
}

/// Condition 3 of Definition 1: `χ(p) ⊆ var(λ(p))` (dropped by q-hypertree
/// decompositions).
pub fn check_chi_in_lambda(h: &Hypergraph, t: &Hypertree) -> Result<(), Violation> {
    for p in t.preorder() {
        let n = t.node(p);
        let lambda_vars = h.vars_of_edges(&n.lambda);
        if !n.chi.is_subset(&lambda_vars) {
            return Err(Violation {
                condition: "χ ⊆ var(λ) (Def.1 cond.3)",
                detail: format!(
                    "vertex {p:?}: χ={} ⊄ var(λ)={}",
                    h.display_vars(&n.chi),
                    h.display_vars(&lambda_vars)
                ),
            });
        }
    }
    Ok(())
}

/// Condition 4 of Definition 1 (Special Descendant Condition):
/// `var(λ(p)) ∩ χ(T_p) ⊆ χ(p)`.
pub fn check_special_descendant(h: &Hypergraph, t: &Hypertree) -> Result<(), Violation> {
    for p in t.preorder() {
        let n = t.node(p);
        let lambda_vars = h.vars_of_edges(&n.lambda);
        let subtree_chi = t.chi_of_subtree(p);
        if !lambda_vars.intersection(&subtree_chi).is_subset(&n.chi) {
            return Err(Violation {
                condition: "special descendant (Def.1 cond.4)",
                detail: format!("vertex {p:?}"),
            });
        }
    }
    Ok(())
}

/// Checks the enforcement assignment: every hyperedge is assigned to
/// exactly one vertex, and that vertex covers it.
pub fn check_assignment(h: &Hypergraph, t: &Hypertree) -> Result<(), Violation> {
    let mut seen = vec![0usize; h.num_edges()];
    for p in t.preorder() {
        let n = t.node(p);
        for e in n.assigned.iter() {
            seen[e.index()] += 1;
            if !h.edge_vars(e).is_subset(&n.chi) {
                return Err(Violation {
                    condition: "assignment",
                    detail: format!(
                        "edge `{}` assigned to vertex {p:?} but not covered by its χ",
                        h.edge_name(e)
                    ),
                });
            }
        }
    }
    for e in h.edge_ids() {
        if seen[e.index()] != 1 {
            return Err(Violation {
                condition: "assignment",
                detail: format!(
                    "edge `{}` assigned {} times (expected 1)",
                    h.edge_name(e),
                    seen[e.index()]
                ),
            });
        }
    }
    Ok(())
}

/// Validates a *generalized* hypertree decomposition (conditions 1–3 of
/// Definition 1, without the special-descendant condition).
pub fn check_generalized_hd(h: &Hypergraph, t: &Hypertree) -> Result<(), Violation> {
    check_edge_coverage(h, t)?;
    check_connectedness(h, t)?;
    check_chi_in_lambda(h, t)
}

/// Validates a full hypertree decomposition (Definition 1).
pub fn check_hd(h: &Hypergraph, t: &Hypertree) -> Result<(), Violation> {
    check_generalized_hd(h, t)?;
    check_special_descendant(h, t)
}

/// Validates a q-hypertree decomposition (Definition 2) for output
/// variables `out`: coverage, *some vertex covers `out`* (we additionally
/// require it to be the root, as the evaluator roots the tree there), and
/// connectedness. Also checks the enforcement assignment, which our
/// evaluator relies on.
pub fn check_qhd(h: &Hypergraph, t: &Hypertree, out: &VarSet) -> Result<(), Violation> {
    check_edge_coverage(h, t)?;
    check_connectedness(h, t)?;
    check_assignment(h, t)?;
    if !out.is_subset(&t.node(t.root()).chi) {
        return Err(Violation {
            condition: "output cover (Def.2 cond.2)",
            detail: format!(
                "out(Q)={} ⊄ χ(root)={}",
                h.display_vars(out),
                h.display_vars(&t.node(t.root()).chi)
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypertree::HypertreeBuilder;
    use htqo_hypergraph::{EdgeId, EdgeSet, Hypergraph, Var};

    /// Hypergraph: a(X,Y), b(Y,Z), c(Z,W) — a line.
    fn line() -> Hypergraph {
        let mut b = Hypergraph::builder();
        b.edge("a", &["X", "Y"]);
        b.edge("b", &["Y", "Z"]);
        b.edge("c", &["Z", "W"]);
        b.build()
    }

    fn vs(h: &Hypergraph, names: &[&str]) -> VarSet {
        names.iter().map(|n| h.var_by_name(n).unwrap()).collect()
    }

    fn es(ids: &[u32]) -> EdgeSet {
        ids.iter().map(|&i| EdgeId(i)).collect()
    }

    /// The natural width-1 decomposition of the line (join tree shaped).
    fn line_tree(h: &Hypergraph) -> Hypertree {
        let mut b = HypertreeBuilder::new();
        let leaf_c = b.add(vs(h, &["Z", "W"]), es(&[2]), es(&[2]), vec![]);
        let mid_b = b.add(vs(h, &["Y", "Z"]), es(&[1]), es(&[1]), vec![leaf_c]);
        let root_a = b.add(vs(h, &["X", "Y"]), es(&[0]), es(&[0]), vec![mid_b]);
        b.build(root_a)
    }

    #[test]
    fn valid_line_decomposition_passes_all_checks() {
        let h = line();
        let t = line_tree(&h);
        assert!(check_hd(&h, &t).is_ok());
        assert!(check_generalized_hd(&h, &t).is_ok());
        assert!(check_assignment(&h, &t).is_ok());
        let out = vs(&h, &["X"]);
        assert!(check_qhd(&h, &t, &out).is_ok());
    }

    #[test]
    fn coverage_violation_detected() {
        let h = line();
        // Drop the c-leaf: edge c uncovered.
        let mut b = HypertreeBuilder::new();
        let mid_b = b.add(vs(&h, &["Y", "Z"]), es(&[1]), es(&[1]), vec![]);
        let root_a = b.add(vs(&h, &["X", "Y"]), es(&[0]), es(&[0]), vec![mid_b]);
        let t = b.build(root_a);
        let err = check_edge_coverage(&h, &t).unwrap_err();
        assert!(err.detail.contains('c'));
    }

    #[test]
    fn connectedness_violation_detected() {
        let h = line();
        // Order the vertices a - c - b: variable Z occurs at c's parent? No:
        // chain root=a(X,Y) -> c(Z,W) -> b(Y,Z). Y occurs at root and at the
        // grandchild but not in the middle → disconnected.
        let mut b = HypertreeBuilder::new();
        let leaf_b = b.add(vs(&h, &["Y", "Z"]), es(&[1]), es(&[1]), vec![]);
        let mid_c = b.add(vs(&h, &["Z", "W"]), es(&[2]), es(&[2]), vec![leaf_b]);
        let root_a = b.add(vs(&h, &["X", "Y"]), es(&[0]), es(&[0]), vec![mid_c]);
        let t = b.build(root_a);
        assert!(check_connectedness(&h, &t).is_err());
    }

    #[test]
    fn chi_in_lambda_violation_detected() {
        let h = line();
        // χ mentions W but λ = {a} does not cover it.
        let mut b = HypertreeBuilder::new();
        let leaf_c = b.add(vs(&h, &["Z", "W"]), es(&[2]), es(&[2]), vec![]);
        let mid_b = b.add(vs(&h, &["Y", "Z"]), es(&[1]), es(&[1]), vec![leaf_c]);
        let root = b.add(vs(&h, &["X", "Y", "W"]), es(&[0]), es(&[0]), vec![mid_b]);
        let t = b.build(root);
        assert!(check_chi_in_lambda(&h, &t).is_err());
        // ... but it is still a fine q-hypertree decomposition with W as an
        // output variable covered by a child's atoms (feature (b)).
        // Connectedness for W: root and leaf hold W but the middle doesn't →
        // actually violated here, so check that too.
        assert!(check_connectedness(&h, &t).is_err());
    }

    #[test]
    fn special_descendant_violation_detected() {
        let h = line();
        // Root λ contains c (vars Z,W); W appears in a descendant's χ but
        // not in the root's χ.
        let mut b = HypertreeBuilder::new();
        let leaf_c = b.add(vs(&h, &["Z", "W"]), es(&[2]), es(&[2]), vec![]);
        let mid_b = b.add(vs(&h, &["Y", "Z"]), es(&[1]), es(&[1]), vec![leaf_c]);
        let root = b.add(vs(&h, &["X", "Y"]), es(&[0, 2]), es(&[0]), vec![mid_b]);
        let t = b.build(root);
        assert!(check_special_descendant(&h, &t).is_err());
        // Generalized HDs don't care.
        assert!(check_generalized_hd(&h, &t).is_ok());
    }

    #[test]
    fn qhd_requires_root_output_cover() {
        let h = line();
        let t = line_tree(&h);
        let out = vs(&h, &["W"]); // W lives at the leaf, not the root
        let err = check_qhd(&h, &t, &out).unwrap_err();
        assert!(err.condition.contains("output cover"));
    }

    #[test]
    fn double_assignment_detected() {
        let h = line();
        let mut b = HypertreeBuilder::new();
        let leaf_c = b.add(vs(&h, &["Z", "W"]), es(&[2]), es(&[2]), vec![]);
        let mid_b = b.add(vs(&h, &["Y", "Z"]), es(&[1]), es(&[1, 2]), vec![leaf_c]);
        let root_a = b.add(vs(&h, &["X", "Y"]), es(&[0]), es(&[0]), vec![mid_b]);
        let t = b.build(root_a);
        let err = check_assignment(&h, &t).unwrap_err();
        // c assigned twice — but also mid's χ doesn't cover c; either
        // violation is acceptable here, both mention assignment.
        assert_eq!(err.condition, "assignment");
        let _ = Var(0);
    }
}
