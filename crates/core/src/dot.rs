//! Graphviz rendering of hypertree decompositions — produces figures in
//! the style of the paper's Figures 2 and 3.

use crate::hypertree::Hypertree;
use htqo_hypergraph::Hypergraph;
use std::fmt::Write as _;

/// Renders a decomposition as a DOT digraph. Each vertex shows its χ and
/// λ labels (plus extra enforced atoms); support-child arcs are bold.
pub fn hypertree_to_dot(h: &Hypergraph, t: &Hypertree) -> String {
    let mut out = String::from("digraph hypertree {\n  node [shape=box];\n");
    for p in t.preorder() {
        let n = t.node(p);
        let lambda: Vec<&str> = n.lambda.iter().map(|e| h.edge_name(e)).collect();
        let extra: Vec<&str> = n
            .assigned
            .difference(&n.lambda)
            .iter()
            .map(|e| h.edge_name(e))
            .collect();
        let mut label = format!(
            "χ: {}\\nλ: {{{}}}",
            escape(&h.display_vars(&n.chi)),
            escape(&lambda.join(", "))
        );
        if !extra.is_empty() {
            let _ = write!(label, "\\n⋉: {{{}}}", escape(&extra.join(", ")));
        }
        let _ = writeln!(out, "  n{} [label=\"{label}\"];", p.0);
    }
    for p in t.preorder() {
        let n = t.node(p);
        for &c in &n.children {
            let style = if n.support_children.contains(&c) {
                " [style=bold, label=\"support\"]"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{} -> n{}{};", p.0, c.0, style);
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StructuralCost;
    use crate::qhd::{q_hypertree_decomp, QhdOptions};
    use htqo_cq::CqBuilder;

    #[test]
    fn dot_output_shows_labels_and_arcs() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X", "Y"])
            .atom_vars("s", &["Y", "Z"])
            .atom_vars("t", &["Z", "X"])
            .out_var("X")
            .build();
        let plan = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
        let dot = hypertree_to_dot(&plan.cq_hypergraph.hypergraph, &plan.tree);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("χ:"));
        assert!(dot.contains("λ:"));
        assert_eq!(dot.matches("->").count(), plan.tree.len() - 1);
    }
}
