//! **Algorithm q-HypertreeDecomp** (Figure 4 of the paper): computes a
//! *good* q-hypertree decomposition of a conjunctive query.
//!
//! 1. Compute a minimal (cost-based) normal-form hypertree decomposition of
//!    `H(Q)` of width ≤ k whose root χ covers `out(Q)` (Conditions 1–3 of
//!    Definition 2). If none exists, return Failure.
//! 2. Run [`optimize`] to prune λ atoms bounded by children (feature (b)
//!    of q-hypertree decompositions), recording the support-child ordering
//!    constraints for the evaluator.

use crate::cost::DecompCost;
use crate::hypertree::Hypertree;
use crate::optimize::{optimize, OptimizeStats};
use crate::search::{cost_k_decomp_instrumented, SearchOptions, SearchStats};
use crate::validate;
use htqo_cq::{ConjunctiveQuery, CqHypergraph};
use htqo_hypergraph::VarSet;
use std::fmt;

/// Failure: no width-≤k decomposition whose root covers `out(Q)` exists
/// (the "Failure" branch of the paper's algorithm, exactly characterized by
/// Theorem 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QhdFailure {
    /// The width bound that was attempted.
    pub max_width: usize,
}

impl fmt::Display for QhdFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no q-hypertree decomposition of width ≤ {} covers the output variables",
            self.max_width
        )
    }
}

impl std::error::Error for QhdFailure {}

/// A good q-hypertree decomposition of a query, ready for evaluation.
#[derive(Clone, Debug)]
pub struct QhdPlan {
    /// The decomposition tree (rooted at the output-covering vertex),
    /// after `Optimize`.
    pub tree: Hypertree,
    /// The query hypergraph and variable interning used to build it.
    pub cq_hypergraph: CqHypergraph,
    /// `out(Q)` as a variable set of the hypergraph.
    pub out_vars: VarSet,
    /// Estimated cost of the chosen decomposition (before `Optimize`).
    pub estimated_cost: f64,
    /// What `Optimize` pruned.
    pub optimize_stats: OptimizeStats,
    /// Instrumentation of the cost-k-decomp search.
    pub search_stats: SearchStats,
}

/// Options for [`q_hypertree_decomp`].
#[derive(Clone, Debug)]
pub struct QhdOptions {
    /// Width bound `k` (the paper: "typically k = 4 is enough").
    pub max_width: usize,
    /// Whether to run Procedure Optimize (Figure 10 of the paper ablates
    /// this).
    pub run_optimize: bool,
    /// Worker threads for the decomposition search (see
    /// [`SearchOptions::threads`]): `0` follows the execution layer's
    /// configured thread count, `1` forces the sequential search.
    pub threads: usize,
}

impl Default for QhdOptions {
    fn default() -> Self {
        QhdOptions {
            max_width: 4,
            run_optimize: true,
            threads: 0,
        }
    }
}

/// A decomposition fresh out of the `cost-k-decomp` search, *before*
/// Procedure `Optimize` runs.
///
/// The pre-`Optimize` tree is the form worth caching across isomorphic
/// queries: it still satisfies `χ(p) ⊆ var(λ(p))` at every vertex, so its
/// λ (cover) choices can be re-costed against a different statistics
/// snapshot (see [`crate::reuse`]) before [`RawQhd::finish`] specializes
/// it for evaluation. `Optimize` prunes λ atoms bounded by children,
/// which destroys exactly the invariant re-costing needs.
#[derive(Clone, Debug)]
pub struct RawQhd {
    /// The decomposition tree before `Optimize`.
    pub tree: Hypertree,
    /// The query hypergraph and variable interning used to build it.
    pub cq_hypergraph: CqHypergraph,
    /// `out(Q)` as a variable set of the hypergraph.
    pub out_vars: VarSet,
    /// Estimated cost of the chosen decomposition.
    pub estimated_cost: f64,
    /// Instrumentation of the cost-k-decomp search.
    pub search_stats: SearchStats,
}

impl RawQhd {
    /// Runs Procedure `Optimize` (when enabled) and produces the
    /// evaluation-ready plan. The second stage of the paper's Algorithm
    /// q-HypertreeDecomp.
    pub fn finish(self, options: &QhdOptions) -> QhdPlan {
        let RawQhd {
            mut tree,
            cq_hypergraph,
            out_vars,
            estimated_cost,
            search_stats,
        } = self;
        let optimize_stats = if options.run_optimize {
            optimize(&cq_hypergraph.hypergraph, &mut tree)
        } else {
            OptimizeStats::default()
        };
        debug_assert!(validate::check_qhd(&cq_hypergraph.hypergraph, &tree, &out_vars).is_ok());
        QhdPlan {
            tree,
            cq_hypergraph,
            out_vars,
            estimated_cost,
            optimize_stats,
            search_stats,
        }
    }
}

/// The search stage of [`q_hypertree_decomp`]: a minimal cost-based
/// normal-form decomposition whose root covers `out(Q)`, before
/// `Optimize`. Exposed separately so the optimizer's plan cache can store
/// the reusable pre-`Optimize` form.
pub fn q_hypertree_decomp_raw(
    q: &ConjunctiveQuery,
    options: &QhdOptions,
    cost: &dyn DecompCost,
) -> Result<RawQhd, QhdFailure> {
    let ch = q.hypergraph();
    let out_vars = ch.out_var_set(q);
    let opts = SearchOptions::width_with_root_cover(options.max_width, out_vars.clone())
        .with_threads(options.threads);
    let Some((estimated_cost, tree, search_stats)) =
        cost_k_decomp_instrumented(&ch.hypergraph, &opts, cost)
    else {
        return Err(QhdFailure {
            max_width: options.max_width,
        });
    };
    Ok(RawQhd {
        tree,
        cq_hypergraph: ch,
        out_vars,
        estimated_cost,
        search_stats,
    })
}

/// Computes a good q-hypertree decomposition of `q`, or Failure.
///
/// `cost` supplies the vertex cost model: [`crate::cost::StructuralCost`]
/// for the purely structural mode, or the statistics-driven model from
/// `htqo-stats` for the hybrid optimizer.
pub fn q_hypertree_decomp(
    q: &ConjunctiveQuery,
    options: &QhdOptions,
    cost: &dyn DecompCost,
) -> Result<QhdPlan, QhdFailure> {
    q_hypertree_decomp_raw(q, options, cost).map(|raw| raw.finish(options))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StructuralCost;
    use htqo_cq::CqBuilder;

    /// The paper's Example 4 query Q1 (modulo the GROUP BY columns):
    /// an acyclic chain of joins with outputs at the two far ends.
    fn q1() -> ConjunctiveQuery {
        CqBuilder::new()
            .atom_vars("a", &["A", "B"])
            .atom_vars("b", &["B", "C"])
            .atom_vars("d", &["C", "T"])
            .atom_vars("e", &["T", "R"])
            .atom_vars("f", &["R", "Y"])
            .atom_vars("c", &["Y", "X"])
            .atom_vars("g", &["X", "S"])
            .atom_vars("i", &["S", "Z"])
            .atom_vars("h", &["Z", "ZZ"])
            .out_var("A")
            .out_var("S")
            .out_var("X")
            .build()
    }

    #[test]
    fn acyclic_query_with_far_outputs_needs_width_2() {
        // Example 4: hw(H(Q1)) = 1, but Condition 2 forces width 2.
        let q = q1();
        let ch = q.hypergraph();
        assert_eq!(crate::search::hypertree_width(&ch.hypergraph), 1);
        let fail = q_hypertree_decomp(
            &q,
            &QhdOptions {
                max_width: 1,
                run_optimize: true,
                threads: 0,
            },
            &StructuralCost,
        );
        assert!(fail.is_err());
        let plan = q_hypertree_decomp(
            &q,
            &QhdOptions {
                max_width: 2,
                run_optimize: true,
                threads: 0,
            },
            &StructuralCost,
        )
        .unwrap();
        assert_eq!(plan.tree.width(), 2);
        // The root covers all output variables.
        assert!(plan
            .out_vars
            .is_subset(&plan.tree.node(plan.tree.root()).chi));
    }

    #[test]
    fn optimize_can_be_disabled() {
        let q = q1();
        let with = q_hypertree_decomp(&q, &QhdOptions::default(), &StructuralCost).unwrap();
        let without = q_hypertree_decomp(
            &q,
            &QhdOptions {
                max_width: 4,
                run_optimize: false,
                threads: 0,
            },
            &StructuralCost,
        )
        .unwrap();
        assert_eq!(without.optimize_stats.removed_atoms, 0);
        // Optimize never increases join work.
        assert!(with.tree.join_work() <= without.tree.join_work());
    }

    #[test]
    fn failure_is_reported_for_impossible_bounds() {
        // Triangle with all three variables in the output: every vertex χ
        // in a width-1 decomposition has ≤ 2 variables.
        let q = CqBuilder::new()
            .atom_vars("r", &["X", "Y"])
            .atom_vars("s", &["Y", "Z"])
            .atom_vars("t", &["Z", "X"])
            .out_var("X")
            .out_var("Y")
            .out_var("Z")
            .build();
        let err = q_hypertree_decomp(
            &q,
            &QhdOptions {
                max_width: 1,
                run_optimize: true,
                threads: 0,
            },
            &StructuralCost,
        )
        .unwrap_err();
        assert_eq!(err.max_width, 1);
        assert!(err.to_string().contains("width"));
        // Width 2 suffices: two atoms cover all three variables.
        assert!(q_hypertree_decomp(
            &q,
            &QhdOptions {
                max_width: 2,
                run_optimize: true,
                threads: 0
            },
            &StructuralCost,
        )
        .is_ok());
    }

    #[test]
    fn boolean_query_has_no_root_constraint() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X", "Y"])
            .atom_vars("s", &["Y", "Z"])
            .build(); // no output variables
        let plan = q_hypertree_decomp(
            &q,
            &QhdOptions {
                max_width: 1,
                run_optimize: true,
                threads: 0,
            },
            &StructuralCost,
        )
        .unwrap();
        assert!(plan.out_vars.is_empty());
        assert_eq!(plan.tree.width(), 1);
    }
}
