//! Tree decompositions of the primal graph — the `[9, 7, 1]` family of
//! structural methods the paper's introduction compares against.
//!
//! Tree decompositions bound query complexity by the number of *variables*
//! per bag (treewidth), not the number of *atoms* (hypertree width). A
//! single wide atom therefore costs `arity - 1` treewidth but hypertree
//! width 1 — the gap that motivated hypertree decompositions. This module
//! implements:
//!
//! - greedy elimination orderings (min-degree and min-fill) producing
//!   valid tree decompositions with a width upper bound;
//! - validation of the tree-decomposition conditions;
//! - conversion into a *generalized hypertree decomposition* by covering
//!   each bag greedily with atoms (a classic `O(log n)`-approximation of
//!   set cover per bag), letting the same q-hypertree evaluator run plans
//!   derived from tree decompositions for comparison.

use crate::hypertree::{Hypertree, HypertreeBuilder, NodeId};
use htqo_hypergraph::{EdgeSet, Hypergraph, PrimalGraph, Var, VarSet};

/// One bag of a tree decomposition.
#[derive(Clone, Debug)]
pub struct Bag {
    /// Variables of the bag.
    pub vars: VarSet,
    /// Children in the rooted decomposition.
    pub children: Vec<usize>,
}

/// A rooted tree decomposition of the primal graph.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// Bags; index 0 is the root.
    pub bags: Vec<Bag>,
}

/// Elimination-ordering heuristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EliminationHeuristic {
    /// Eliminate a vertex of minimum current degree.
    MinDegree,
    /// Eliminate a vertex adding the fewest fill edges.
    MinFill,
}

impl TreeDecomposition {
    /// Width: `max |bag| - 1`.
    pub fn width(&self) -> usize {
        self.bags.iter().map(|b| b.vars.len()).max().unwrap_or(1) - 1
    }

    /// Validates the three tree-decomposition conditions against `h`:
    /// every variable in some bag, every primal edge inside some bag, and
    /// per-variable connectedness.
    pub fn is_valid_for(&self, h: &Hypergraph) -> bool {
        // 1. Vertex coverage.
        for v in h.var_ids() {
            if !self.bags.iter().any(|b| b.vars.contains(v)) {
                return false;
            }
        }
        // 2. (Hyper)edge coverage: every atom's variables share a bag —
        //    this is the hypergraph form; it implies primal-edge coverage.
        for e in h.edge_ids() {
            if !self.bags.iter().any(|b| h.edge_vars(e).is_subset(&b.vars)) {
                return false;
            }
        }
        // 3. Connectedness per variable (same check as for hypertrees).
        let mut parent = vec![usize::MAX; self.bags.len()];
        for (i, b) in self.bags.iter().enumerate() {
            for &c in &b.children {
                parent[c] = i;
            }
        }
        for v in h.var_ids() {
            let mut tops = 0;
            for (i, b) in self.bags.iter().enumerate() {
                if !b.vars.contains(v) {
                    continue;
                }
                let p = parent[i];
                if p == usize::MAX || !self.bags[p].vars.contains(v) {
                    tops += 1;
                }
            }
            if tops > 1 {
                return false;
            }
        }
        true
    }
}

/// Builds a tree decomposition of `h`'s primal graph by greedy vertex
/// elimination. The resulting width upper-bounds the treewidth.
pub fn tree_decomposition(h: &Hypergraph, heuristic: EliminationHeuristic) -> TreeDecomposition {
    let n = h.num_vars();
    if n == 0 {
        return TreeDecomposition {
            bags: vec![Bag {
                vars: VarSet::new(),
                children: vec![],
            }],
        };
    }
    // Working adjacency (grows with fill edges).
    let g = PrimalGraph::of(h);
    let mut adj: Vec<VarSet> = (0..n)
        .map(|v| g.neighbours(Var(v as u32)).clone())
        .collect();
    let mut eliminated = vec![false; n];
    // For each eliminated vertex: its bag = {v} ∪ current neighbours.
    let mut elim_bags: Vec<(Var, VarSet)> = Vec::with_capacity(n);

    for _round in 0..n {
        // Pick the next vertex.
        let pick = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| match heuristic {
                EliminationHeuristic::MinDegree => adj[v].len(),
                EliminationHeuristic::MinFill => fill_in(&adj, v),
            })
            .expect("some vertex remains");

        let mut bag = adj[pick].clone();
        bag.insert(Var(pick as u32));
        // Connect the neighbours into a clique (fill edges).
        let neighbours: Vec<usize> = adj[pick].iter().map(|u| u.index()).collect();
        for (i, &a) in neighbours.iter().enumerate() {
            for &b in &neighbours[i + 1..] {
                adj[a].insert(Var(b as u32));
                adj[b].insert(Var(a as u32));
            }
        }
        for &u in &neighbours {
            adj[u].remove(Var(pick as u32));
        }
        eliminated[pick] = true;
        elim_bags.push((Var(pick as u32), bag));
    }

    // Assemble the decomposition tree: bag i's parent is the bag of the
    // earliest-eliminated vertex among its other members (standard
    // elimination-tree construction). Later-eliminated bags are ancestors,
    // so we build from the last elimination backwards.
    let order_of: Vec<usize> = {
        let mut pos = vec![0usize; n];
        for (i, (v, _)) in elim_bags.iter().enumerate() {
            pos[v.index()] = i;
        }
        pos
    };
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots: Vec<usize> = Vec::new();
    for (i, (v, bag)) in elim_bags.iter().enumerate() {
        // Parent = bag of the *next* eliminated vertex within this bag.
        let parent = bag
            .iter()
            .filter(|u| *u != *v)
            .map(|u| order_of[u.index()])
            .filter(|&j| j > i)
            .min();
        match parent {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    // Root everything under the last bag (connecting disconnected
    // components below an arbitrary root keeps conditions intact because
    // their variable sets are disjoint).
    let root = *roots.last().expect("at least one root");
    for &r in &roots {
        if r != root {
            children[root].push(r);
        }
    }

    // Re-index with root at 0.
    let mut index_map = vec![usize::MAX; n];
    let mut bags: Vec<Bag> = Vec::with_capacity(n);
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        index_map[i] = bags.len();
        bags.push(Bag {
            vars: elim_bags[i].1.clone(),
            children: Vec::new(),
        });
        for &c in &children[i] {
            stack.push(c);
        }
    }
    // Fill children with new indices.
    for (old, &new_i) in index_map.iter().enumerate() {
        if new_i == usize::MAX {
            continue;
        }
        let kids: Vec<usize> = children[old].iter().map(|&c| index_map[c]).collect();
        bags[new_i].children = kids;
    }

    let td = TreeDecomposition { bags };
    debug_assert!(td.is_valid_for(h));
    td
}

/// Number of fill edges eliminating `v` would add.
fn fill_in(adj: &[VarSet], v: usize) -> usize {
    let neighbours: Vec<usize> = adj[v].iter().map(|u| u.index()).collect();
    let mut fill = 0;
    for (i, &a) in neighbours.iter().enumerate() {
        for &b in &neighbours[i + 1..] {
            if !adj[a].contains(Var(b as u32)) {
                fill += 1;
            }
        }
    }
    fill
}

/// Converts a tree decomposition into a generalized hypertree
/// decomposition: each bag's λ greedily covers its variables with atoms
/// (set-cover heuristic). Every atom is additionally *assigned* to one bag
/// containing it, so the q-hypertree evaluator can run the result.
pub fn to_hypertree(h: &Hypergraph, td: &TreeDecomposition) -> Hypertree {
    let mut builder = HypertreeBuilder::new();
    let mut assigned_done = EdgeSet::new();

    // Build bottom-up (children before parents) via recursion.
    fn build(
        h: &Hypergraph,
        td: &TreeDecomposition,
        i: usize,
        b: &mut HypertreeBuilder,
        assigned_done: &mut EdgeSet,
    ) -> NodeId {
        let bag = &td.bags[i];
        let kids: Vec<NodeId> = bag
            .children
            .iter()
            .map(|&c| build(h, td, c, b, assigned_done))
            .collect();
        // Greedy cover of the bag by atoms.
        let mut lambda = EdgeSet::new();
        let mut uncovered = bag.vars.clone();
        while !uncovered.is_empty() {
            let best = h
                .edge_ids()
                .max_by_key(|&e| h.edge_vars(e).intersection(&uncovered).len())
                .expect("non-empty hypergraph");
            if h.edge_vars(best).intersection(&uncovered).is_empty() {
                break; // variables not in any edge (cannot happen for query graphs)
            }
            lambda.insert(best);
            uncovered.difference_with(h.edge_vars(best));
        }
        // Enforce every not-yet-assigned atom covered by this bag.
        let assigned: EdgeSet = h
            .edge_ids()
            .filter(|&e| !assigned_done.contains(e) && h.edge_vars(e).is_subset(&bag.vars))
            .collect();
        assigned_done.union_with(&assigned);
        b.add(bag.vars.clone(), lambda, assigned, kids)
    }

    let root = build(h, td, 0, &mut builder, &mut assigned_done);
    builder.build(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    fn build(edges: &[(&str, &[&str])]) -> Hypergraph {
        let mut b = Hypergraph::builder();
        for (name, vars) in edges {
            b.edge(name, vars);
        }
        b.build()
    }

    #[test]
    fn path_has_treewidth_1() {
        let h = build(&[("a", &["X", "Y"]), ("b", &["Y", "Z"]), ("c", &["Z", "W"])]);
        for heur in [
            EliminationHeuristic::MinDegree,
            EliminationHeuristic::MinFill,
        ] {
            let td = tree_decomposition(&h, heur);
            assert!(td.is_valid_for(&h));
            assert_eq!(td.width(), 1, "{heur:?}");
        }
    }

    #[test]
    fn cycle_has_treewidth_2() {
        let h = build(&[
            ("a", &["A", "B"]),
            ("b", &["B", "C"]),
            ("c", &["C", "D"]),
            ("d", &["D", "A"]),
        ]);
        let td = tree_decomposition(&h, EliminationHeuristic::MinFill);
        assert!(td.is_valid_for(&h));
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn wide_atom_shows_the_treewidth_gap() {
        // One 5-ary atom: treewidth 4 but hypertree width 1 — the paper's
        // motivation for hypertree decompositions.
        let h = build(&[("big", &["A", "B", "C", "D", "E"])]);
        let td = tree_decomposition(&h, EliminationHeuristic::MinFill);
        assert!(td.is_valid_for(&h));
        assert_eq!(td.width(), 4);
        assert_eq!(crate::search::hypertree_width(&h), 1);
        // The derived hypertree covers the bag with the single atom.
        let t = to_hypertree(&h, &td);
        assert_eq!(t.width(), 1);
        validate::check_assignment(&h, &t).unwrap();
    }

    #[test]
    fn derived_hypertree_is_a_valid_ghd() {
        let h = build(&[
            ("a", &["X", "Y"]),
            ("b", &["Y", "Z"]),
            ("c", &["Z", "X"]),
            ("d", &["Z", "W"]),
        ]);
        let td = tree_decomposition(&h, EliminationHeuristic::MinDegree);
        assert!(td.is_valid_for(&h));
        let t = to_hypertree(&h, &td);
        validate::check_edge_coverage(&h, &t).unwrap();
        validate::check_connectedness(&h, &t).unwrap();
        validate::check_assignment(&h, &t).unwrap();
        validate::check_chi_in_lambda(&h, &t).unwrap();
    }

    #[test]
    fn disconnected_graphs_handled() {
        let h = build(&[("a", &["X", "Y"]), ("b", &["P", "Q"])]);
        let td = tree_decomposition(&h, EliminationHeuristic::MinFill);
        assert!(td.is_valid_for(&h));
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn empty_hypergraph_degenerate() {
        let h = Hypergraph::builder().build();
        let td = tree_decomposition(&h, EliminationHeuristic::MinFill);
        assert_eq!(td.bags.len(), 1);
    }

    #[test]
    fn chain_treewidth_matches_hypertree_bound() {
        // For chains (cyclic lines) treewidth is 2 and hw is 2: the two
        // methods agree on graph-shaped queries.
        for n in [4usize, 6, 8] {
            let mut b = Hypergraph::builder();
            for i in 0..n {
                let l = format!("X{i}");
                let r = format!("X{}", (i + 1) % n);
                b.edge(&format!("p{i}"), &[l.as_str(), r.as_str()]);
            }
            let h = b.build();
            let td = tree_decomposition(&h, EliminationHeuristic::MinFill);
            assert!(td.is_valid_for(&h));
            assert_eq!(td.width(), 2, "n={n}");
        }
    }
}
