//! Scalar expression evaluation and SQL comparison semantics.

use crate::error::EvalError;
use crate::value::{Row, Value};
use htqo_cq::{ArithOp, CmpOp, ScalarExpr};

/// Evaluates a scalar expression against a row of an intermediate relation
/// (columns are variable names). NULL propagates through arithmetic.
pub fn eval_scalar(e: &ScalarExpr, cols: &[String], row: &Row) -> Result<Value, EvalError> {
    match e {
        ScalarExpr::Var(v) => {
            let i = cols
                .iter()
                .position(|c| c == v)
                .ok_or_else(|| EvalError::UnknownVariable(v.clone()))?;
            Ok(row[i].clone())
        }
        ScalarExpr::Lit(l) => Ok(l.into()),
        ScalarExpr::Binary(l, op, r) => {
            let lv = eval_scalar(l, cols, row)?;
            let rv = eval_scalar(r, cols, row)?;
            arith(&lv, *op, &rv)
        }
    }
}

/// Applies a binary arithmetic operator with SQL-ish coercions:
/// `Int op Int → Int` (except division, which is always `Float`), any
/// float operand promotes to `Float`, NULL propagates.
pub fn arith(l: &Value, op: ArithOp, r: &Value) -> Result<Value, EvalError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r, op) {
        (Value::Int(a), Value::Int(b), ArithOp::Add) => Ok(Value::Int(a.wrapping_add(*b))),
        (Value::Int(a), Value::Int(b), ArithOp::Sub) => Ok(Value::Int(a.wrapping_sub(*b))),
        (Value::Int(a), Value::Int(b), ArithOp::Mul) => Ok(Value::Int(a.wrapping_mul(*b))),
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EvalError::Internal(format!(
                        "arithmetic on non-numeric values ({} {op} {})",
                        l.type_name(),
                        r.type_name()
                    )))
                }
            };
            Ok(Value::Float(match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => a / b,
            }))
        }
    }
}

/// SQL comparison: NULL operands and incomparable types fail the predicate.
pub fn apply_cmp(op: CmpOp, left: &Value, right: &Value) -> bool {
    cmp_matches(op, left.sql_cmp(right))
}

/// True if an SQL comparison outcome satisfies `op` (`None` — NULL or
/// incomparable types — never does). Shared by the row predicate path
/// ([`apply_cmp`]) and the columnar scan's typed-cell comparisons.
pub fn cmp_matches(op: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    match ord {
        None => false,
        Some(ord) => match op {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_cq::Literal;

    fn cols() -> Vec<String> {
        vec!["x".into(), "y".into()]
    }

    fn row(x: f64, y: f64) -> Row {
        vec![Value::Float(x), Value::Float(y)].into_boxed_slice()
    }

    #[test]
    fn revenue_expression() {
        // x * (1 - y), the TPC-H Q5 revenue expression.
        let e = ScalarExpr::Binary(
            Box::new(ScalarExpr::Var("x".into())),
            ArithOp::Mul,
            Box::new(ScalarExpr::Binary(
                Box::new(ScalarExpr::Lit(Literal::Int(1))),
                ArithOp::Sub,
                Box::new(ScalarExpr::Var("y".into())),
            )),
        );
        let v = eval_scalar(&e, &cols(), &row(100.0, 0.1)).unwrap();
        assert_eq!(v, Value::Float(90.0));
    }

    #[test]
    fn int_arithmetic_stays_int_except_div() {
        assert_eq!(
            arith(&Value::Int(7), ArithOp::Mul, &Value::Int(3)).unwrap(),
            Value::Int(21)
        );
        assert_eq!(
            arith(&Value::Int(7), ArithOp::Div, &Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn null_propagates() {
        assert_eq!(
            arith(&Value::Null, ArithOp::Add, &Value::Int(1)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn non_numeric_arithmetic_errors() {
        assert!(arith(&Value::str("a"), ArithOp::Add, &Value::Int(1)).is_err());
    }

    #[test]
    fn unknown_variable_errors() {
        let e = ScalarExpr::Var("zz".into());
        assert!(matches!(
            eval_scalar(&e, &cols(), &row(0.0, 0.0)),
            Err(EvalError::UnknownVariable(_))
        ));
    }

    #[test]
    fn comparisons() {
        assert!(apply_cmp(CmpOp::Lt, &Value::Int(1), &Value::Int(2)));
        assert!(apply_cmp(CmpOp::Ge, &Value::Int(2), &Value::Int(2)));
        assert!(apply_cmp(CmpOp::Ne, &Value::str("a"), &Value::str("b")));
        // NULL never satisfies a predicate.
        assert!(!apply_cmp(CmpOp::Eq, &Value::Null, &Value::Null));
        // Incomparable types never satisfy a predicate.
        assert!(!apply_cmp(CmpOp::Eq, &Value::Int(1), &Value::str("1")));
        // Dates compare as dates.
        assert!(apply_cmp(CmpOp::Lt, &Value::Date(1), &Value::Date(2)));
    }
}
