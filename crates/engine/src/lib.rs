//! In-memory relational engine: the evaluation substrate of the
//! reproduction of *"Hypertree Decompositions for Query Optimization"*
//! (ICDE 2007).
//!
//! The paper runs its experiments on PostgreSQL and a commercial DBMS;
//! this crate is the stand-in storage/execution layer both our structural
//! optimizer and the quantitative baselines run on, so that every compared
//! method pays the same per-tuple costs:
//!
//! - [`value::Value`] / [`relation::Relation`] / [`schema::Database`]:
//!   typed storage with a deterministic catalog;
//! - [`vrel::VRelation`]: intermediate relations named by query variables;
//! - [`ops`]: hash join, semijoin, projection, selection, sorting — all
//!   charging a [`error::Budget`] so baseline blow-ups become reproducible
//!   `DNF` data points instead of runaway processes;
//! - [`scan`]: atom scans with selection push-down and the hidden
//!   `__rowid` multiplicity guard;
//! - [`aggregate`]: GROUP BY / aggregate finalization (step (4) of the
//!   paper's evaluation pipeline);
//! - [`factorized`]: cover-based factorized results over a decomposition
//!   tree — aggregate pushdown and constant-delay answer enumeration
//!   without materializing the join;
//! - [`exec`] / [`hash`]: the parallel execution substrate — a scoped
//!   worker pool with a global thread budget, and the in-place Fx join-key
//!   hashing the kernels are built on.

#![warn(missing_docs)]

pub mod aggregate;
pub mod carrier;
mod chain;
pub mod column;
pub mod cops;
pub mod crel;
pub mod csv;
pub mod dict;
pub mod error;
pub mod exec;
pub mod expr;
pub mod factorized;
pub mod failpoint;
pub mod hash;
pub mod index;
pub mod iseek;
pub mod ops;
pub mod relation;
pub mod scan;
pub mod schema;
pub mod spill;
pub mod value;
pub mod vrel;

pub use aggregate::{finalize, finalize_c};
pub use carrier::Carrier;
pub use crel::CRel;
pub use csv::{read_csv, read_csv_budgeted, write_csv, CsvError};
pub use error::{Budget, CancelToken, EvalError, JoinStats, SpillMode, SpillStats};
pub use exec::ExecOptions;
pub use factorized::{
    build_cover, finalize_cover, Cover, CoverError, CoverInput, CoverRows, FactorizedCarrier,
};
pub use index::{JoinIndex, MemIndex};
pub use relation::{Relation, RelationError};
pub use schema::{Column, ColumnType, Database, Schema};
pub use value::{Row, Value};
pub use vrel::VRelation;
