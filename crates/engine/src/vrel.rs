//! Intermediate relations over *query variables*.
//!
//! Every evaluator in this project (Yannakakis, the q-hypertree evaluator,
//! and the baseline join pipelines) manipulates relations whose columns are
//! named by conjunctive-query variables; natural joins then simply match on
//! shared names. This mirrors the paper's formalization, where decomposition
//! vertices are labelled by variable sets `χ(p)`.

use crate::value::{Row, Value};
use std::collections::HashSet;
use std::fmt;

/// A relation whose columns are query variables. Rows are deduplicated only
/// when an operator explicitly asks for it (set-semantics projections).
#[derive(Clone, Debug, PartialEq)]
pub struct VRelation {
    cols: Vec<String>,
    rows: Vec<Row>,
}

impl VRelation {
    /// Creates an empty relation over the given variables.
    ///
    /// # Panics
    /// Panics on duplicate variable names.
    pub fn empty(cols: Vec<String>) -> Self {
        let mut seen = HashSet::new();
        for c in &cols {
            assert!(seen.insert(c.clone()), "duplicate variable `{c}`");
        }
        VRelation {
            cols,
            rows: Vec::new(),
        }
    }

    /// The *neutral* relation: zero columns, one (empty) row — the identity
    /// of natural join. Used for decomposition vertices with an empty λ
    /// label (feature (b) of q-hypertree decompositions).
    pub fn neutral() -> Self {
        VRelation {
            cols: Vec::new(),
            rows: vec![Vec::new().into_boxed_slice()],
        }
    }

    /// Creates a relation from rows (each row checked for arity).
    pub fn from_rows(cols: Vec<String>, rows: Vec<Row>) -> Self {
        let mut r = VRelation::empty(cols);
        for row in &rows {
            assert_eq!(row.len(), r.cols.len(), "row arity mismatch");
        }
        r.rows = rows;
        r
    }

    /// Variable names in column order.
    pub fn cols(&self) -> &[String] {
        &self.cols
    }

    /// Rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Position of variable `v`.
    pub fn col_index(&self, v: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == v)
    }

    /// Appends a row (arity must match).
    pub fn push(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.cols.len());
        self.rows.push(row);
    }

    /// Reserves room for `n` more rows.
    pub fn reserve(&mut self, n: usize) {
        self.rows.reserve(n);
    }

    /// Sorted copy of the rows (for order-insensitive comparisons in tests
    /// and for deterministic output).
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }

    /// True if `self` and `other` contain the same set of rows over the
    /// same columns, ignoring row order *and column order*.
    pub fn set_eq(&self, other: &VRelation) -> bool {
        if self.cols.len() != other.cols.len() {
            return false;
        }
        // Map other's column order onto ours.
        let mut perm = Vec::with_capacity(self.cols.len());
        for c in &self.cols {
            match other.col_index(c) {
                Some(i) => perm.push(i),
                None => return false,
            }
        }
        let mine: HashSet<Row> = self.rows.iter().cloned().collect();
        let theirs: HashSet<Row> = other
            .rows
            .iter()
            .map(|r| {
                perm.iter()
                    .map(|&i| r[i].clone())
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            })
            .collect();
        mine == theirs
    }

    /// Removes duplicate rows in place (order not preserved).
    pub fn dedup(&mut self) {
        let mut seen: HashSet<Row> = HashSet::with_capacity(self.rows.len());
        self.rows.retain(|r| seen.insert(r.clone()));
    }

    /// Value of variable `v` in row `i` (test helper).
    pub fn value(&self, i: usize, v: &str) -> Option<&Value> {
        let c = self.col_index(v)?;
        self.rows.get(i).map(|r| &r[c])
    }
}

impl fmt::Display for VRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] ({} rows)", self.cols.join(", "), self.rows.len())?;
        for row in self.rows.iter().take(20) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  … {} more", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(cols: &[&str], rows: &[&[i64]]) -> VRelation {
        VRelation::from_rows(
            cols.iter().map(|c| c.to_string()).collect(),
            rows.iter()
                .map(|r| {
                    r.iter()
                        .map(|&i| Value::Int(i))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                })
                .collect(),
        )
    }

    #[test]
    fn neutral_relation() {
        let n = VRelation::neutral();
        assert_eq!(n.cols().len(), 0);
        assert_eq!(n.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_columns_panic() {
        VRelation::empty(vec!["x".into(), "x".into()]);
    }

    #[test]
    fn set_eq_ignores_row_and_column_order() {
        let a = rel(&["x", "y"], &[&[1, 2], &[3, 4]]);
        let b = rel(&["y", "x"], &[&[4, 3], &[2, 1]]);
        assert!(a.set_eq(&b));
        let c = rel(&["x", "y"], &[&[1, 2]]);
        assert!(!a.set_eq(&c));
        let d = rel(&["x", "z"], &[&[1, 2], &[3, 4]]);
        assert!(!a.set_eq(&d));
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut a = rel(&["x"], &[&[1], &[1], &[2]]);
        a.dedup();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn value_accessor() {
        let a = rel(&["x", "y"], &[&[7, 8]]);
        assert_eq!(a.value(0, "y"), Some(&Value::Int(8)));
        assert_eq!(a.value(0, "z"), None);
        assert_eq!(a.value(5, "x"), None);
    }

    #[test]
    fn display_truncates() {
        let rows: Vec<&[i64]> = vec![&[1]; 25];
        let a = rel(&["x"], &rows);
        let s = a.to_string();
        assert!(s.contains("25 rows"));
        assert!(s.contains("more"));
    }
}
