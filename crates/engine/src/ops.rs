//! Physical operators over [`VRelation`]s: natural (hash) join, semijoin,
//! projection, and selection. Every operator charges freshly materialized
//! tuples to a [`Budget`], which is how the harness reproduces the paper's
//! "did not terminate" baseline data points deterministically.
//!
//! # The join kernel
//!
//! Joins key their hash tables by a 64-bit in-place hash of the shared
//! columns ([`crate::hash::hash_key`]) and verify candidate matches
//! against the actual values — no per-row boxed-key allocation (the seed
//! kernel, kept as [`natural_join_seed`], allocated one `Box<[Value]>`
//! per build *and* probe row). Above [`PARALLEL_ROW_THRESHOLD`] total
//! rows the kernel hash-partitions both sides and runs build+probe per
//! partition on the [`crate::exec`] worker pool; below it a sequential
//! pass avoids any threading overhead, so the paper's small queries are
//! not regressed. The partitioned path's output row order is independent
//! of worker count: the partition count is fixed, probe order is
//! preserved within a partition, and partitions are concatenated in
//! index order. (All consumers are set-semantic, so the sequential and
//! partitioned paths are interchangeable; their bags are identical.)

use crate::chain::ChainTable;
use crate::error::{Budget, EvalError, SpillMode, SpillStats};
use crate::exec;
use crate::hash::{hash_key, keys_eq, partition_of, FxHashMap};
use crate::spill::{
    spill_partition, SpillDir, SpillFile, SpillReader, SpillWriter, MAX_SPILL_LEVEL, SPILL_FANOUT,
};
use crate::value::{row_heap_bytes, Row, Value};
use crate::vrel::VRelation;
use std::collections::HashMap;
use std::sync::Arc;

/// Combined row count (both join sides) above which the hash join
/// partitions the inputs and uses the worker pool. Below it the
/// sequential kernel wins: partitioning two relations that fit in cache
/// costs more than it saves.
pub const PARALLEL_ROW_THRESHOLD: usize = 8192;

/// Key of a seed-kernel hash bucket: the values of the shared columns.
type Key = Box<[Value]>;

fn key_of(row: &Row, idx: &[usize]) -> Key {
    idx.iter().map(|&i| row[i].clone()).collect()
}

/// Column positions of the shared variables in `a` and `b`, plus the
/// positions in `b` of its non-shared columns.
fn join_layout(a: &VRelation, b: &VRelation) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut a_shared = Vec::new();
    let mut b_shared = Vec::new();
    for (i, c) in a.cols().iter().enumerate() {
        if let Some(j) = b.col_index(c) {
            a_shared.push(i);
            b_shared.push(j);
        }
    }
    let b_rest: Vec<usize> = (0..b.cols().len())
        .filter(|j| !b_shared.contains(j))
        .collect();
    (a_shared, b_shared, b_rest)
}

/// Natural join of `a` and `b` on their shared variables. With no shared
/// variables this degenerates to a cross product (still budget-charged).
///
/// The hash table is built on the smaller input; large inputs are
/// hash-partitioned and joined in parallel (see the module docs).
pub fn natural_join(
    a: &VRelation,
    b: &VRelation,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    crate::fail_point!("ops::join");
    budget.join_stats().add_hash_build();
    // Build on the smaller side: swap so `build` is smallest.
    let (build, probe, swapped) = if a.len() <= b.len() {
        (a, b, false)
    } else {
        (b, a, true)
    };
    let (build_shared, probe_shared, probe_rest) = join_layout(build, probe);

    let mut out_cols: Vec<String> = build.cols().to_vec();
    out_cols.extend(probe_rest.iter().map(|&j| probe.cols()[j].clone()));

    let rows = if join_build_reservation(budget, &build_shared, build.len(), probe.len())? {
        grace_join_spill(
            build.len(),
            |i| build.rows()[i].clone(),
            |i| hash_key(&build.rows()[i], &build_shared),
            probe.len(),
            |i| probe.rows()[i].clone(),
            |i| hash_key(&probe.rows()[i], &probe_shared),
            &build_shared,
            &probe_shared,
            &probe_rest,
            build.cols().len(),
            budget,
        )?
    } else {
        let threads = exec::num_threads();
        let result = if !build_shared.is_empty()
            && threads > 1
            && build.len() + probe.len() >= PARALLEL_ROW_THRESHOLD
        {
            join_rows_partitioned(
                build,
                probe,
                &build_shared,
                &probe_shared,
                &probe_rest,
                threads,
                budget,
            )
        } else {
            join_rows_sequential(
                build,
                probe,
                &build_shared,
                &probe_shared,
                &probe_rest,
                budget,
            )
        };
        // The build table (and hash scratch) is gone either way.
        budget.uncharge_bytes(join_build_bytes(build.len(), probe.len()));
        result?
    };
    let out = VRelation::from_rows(out_cols, rows);

    // The output column order depends only on (build, probe); make it
    // deterministic w.r.t. the caller's argument order by rotating when we
    // swapped. Variable-named columns make order semantically irrelevant,
    // but deterministic output keeps tests and EXPLAIN stable.
    if swapped {
        let desired: Vec<String> = {
            let mut cols: Vec<String> = a.cols().to_vec();
            cols.extend(b.cols().iter().filter(|c| !a.cols().contains(c)).cloned());
            cols
        };
        return Ok(reorder(&out, &desired));
    }
    Ok(out)
}

/// Emits the joined row `build_row ++ probe_rest(probe_row)`.
#[inline]
fn emit_joined(brow: &Row, prow: &Row, probe_rest: &[usize], width: usize) -> Row {
    let mut row: Vec<Value> = Vec::with_capacity(width);
    row.extend(brow.iter().cloned());
    row.extend(probe_rest.iter().map(|&j| prow[j].clone()));
    row.into_boxed_slice()
}

/// Bytes the in-memory join path will hold transiently: the chained hash
/// table over the build side plus the per-side hash arrays the
/// partitioned kernel materializes. Reserved up front, released when the
/// kernel returns.
pub(crate) fn join_build_bytes(build_n: usize, probe_n: usize) -> u64 {
    ChainTable::byte_estimate(build_n) + 8 * (build_n + probe_n) as u64
}

/// The memory governor's spill decision for a hash-join build: reserves
/// the in-memory build structures and returns `false` (stay in memory),
/// or returns `true` when the kernel must take the grace-spill path —
/// either because the reservation was denied under [`SpillMode::Auto`]
/// or because spill is forced. A denial with no spill alternative (no
/// shared key to partition on, spill off) is a clean
/// [`EvalError::MemoryExceeded`]; nothing is charged in that case.
pub(crate) fn join_build_reservation(
    budget: &mut Budget,
    shared_key: &[usize],
    build_n: usize,
    probe_n: usize,
) -> Result<bool, EvalError> {
    // A cross product (no shared key) or an empty side cannot be
    // partitioned by key; those always take the in-memory path.
    let spill_capable = !shared_key.is_empty() && build_n > 0 && probe_n > 0;
    let want = join_build_bytes(build_n, probe_n);
    if budget.spill_mode() == SpillMode::Force && spill_capable {
        return Ok(true);
    }
    if budget.try_reserve_bytes(want) {
        return Ok(false);
    }
    if budget.spill_mode() == SpillMode::Auto && spill_capable {
        return Ok(true);
    }
    Err(EvalError::MemoryExceeded {
        requested: want,
        reserved: budget.mem_used(),
        pool: budget.mem_limit().unwrap_or(0),
    })
}

/// Single-threaded hash join kernel: hashes keys in place, one table for
/// the whole build side.
fn join_rows_sequential(
    build: &VRelation,
    probe: &VRelation,
    build_shared: &[usize],
    probe_shared: &[usize],
    probe_rest: &[usize],
    budget: &mut Budget,
) -> Result<Vec<Row>, EvalError> {
    let width = build.cols().len() + probe_rest.len();
    let row_bytes = row_heap_bytes(width);
    let table = ChainTable::build(build.len(), |i| hash_key(&build.rows()[i], build_shared));
    let mut out: Vec<Row> = Vec::new();
    for prow in probe.rows() {
        table.for_each(hash_key(prow, probe_shared), |bi| {
            let brow = &build.rows()[bi];
            if keys_eq(brow, build_shared, prow, probe_shared) {
                budget.charge(1)?;
                budget.charge_bytes(row_bytes)?;
                out.push(emit_joined(brow, prow, probe_rest, width));
            }
            Ok(())
        })?;
    }
    Ok(out)
}

/// Partitioned parallel kernel: hash both sides, split by the high hash
/// bits, build+probe each partition on the worker pool, concatenate in
/// partition order (deterministic output for any thread count).
fn join_rows_partitioned(
    build: &VRelation,
    probe: &VRelation,
    build_shared: &[usize],
    probe_shared: &[usize],
    probe_rest: &[usize],
    threads: usize,
    budget: &mut Budget,
) -> Result<Vec<Row>, EvalError> {
    let width = build.cols().len() + probe_rest.len();
    let bits = partition_bits(threads);
    let nparts = 1usize << bits;

    let build_hashes = hashes_of(build.rows(), build_shared, threads)?;
    let probe_hashes = hashes_of(probe.rows(), probe_shared, threads)?;

    let bucket = |hashes: &[u64]| -> Vec<Vec<u32>> {
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); nparts];
        for (i, &h) in hashes.iter().enumerate() {
            parts[partition_of(h, bits)].push(i as u32);
        }
        parts
    };
    let build_parts = bucket(&build_hashes);
    let probe_parts = bucket(&probe_hashes);

    let shared = budget.fork();
    let tasks: Vec<usize> = (0..nparts).collect();
    let row_bytes = row_heap_bytes(width);
    let results = exec::parallel_map(tasks, threads, |p| {
        crate::fail_point!("ops::join::partition");
        let mut bud = shared.clone();
        let bp = &build_parts[p];
        let table = ChainTable::build(bp.len(), |k| build_hashes[bp[k] as usize]);
        let mut out: Vec<Row> = Vec::new();
        for &pi in &probe_parts[p] {
            let prow = &probe.rows()[pi as usize];
            table.for_each(probe_hashes[pi as usize], |k| {
                let brow = &build.rows()[bp[k] as usize];
                if keys_eq(brow, build_shared, prow, probe_shared) {
                    bud.charge(1)?;
                    bud.charge_bytes(row_bytes)?;
                    out.push(emit_joined(brow, prow, probe_rest, width));
                }
                Ok(())
            })?;
        }
        Ok(out)
    });
    merge_partition_results(results, budget)
}

/// Partition bits for the parallel kernel. Fixed (64 partitions, plenty
/// of slack for the ≤16-worker pool even under skew) so the partitioned
/// path's output order does not depend on the thread count.
fn partition_bits(_threads: usize) -> u32 {
    6
}

/// Hashes the key columns of every row, in parallel chunks. Errors only
/// when a worker of the parallel schedule panicked (contained by
/// [`exec::parallel_map`]).
fn hashes_of(rows: &[Row], idx: &[usize], threads: usize) -> Result<Vec<u64>, EvalError> {
    if rows.len() < PARALLEL_ROW_THRESHOLD || threads <= 1 {
        return Ok(rows.iter().map(|r| hash_key(r, idx)).collect());
    }
    let chunks = exec::chunk_ranges(rows.len(), threads * 4);
    Ok(exec::parallel_map(chunks, threads, |(lo, hi)| {
        rows[lo..hi]
            .iter()
            .map(|r| hash_key(r, idx))
            .collect::<Vec<u64>>()
    })?
    .into_iter()
    .flatten()
    .collect())
}

/// Folds per-partition results: budget exhaustion is surfaced first (its
/// occurrence depends only on the combined charge total, so it is
/// deterministic for any thread count), then a contained worker panic,
/// then the first per-partition error in partition order, then the
/// concatenated rows.
fn merge_partition_results(
    results: Result<Vec<Result<Vec<Row>, EvalError>>, EvalError>,
    budget: &mut Budget,
) -> Result<Vec<Row>, EvalError> {
    budget.check_exceeded()?;
    let results = results?;
    let mut parts = Vec::with_capacity(results.len());
    for r in results {
        parts.push(r?);
    }
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    Ok(out)
}

/// Grace-style spill join, taken when the in-memory build reservation is
/// denied (or spill is forced). Both sides are hash-partitioned to
/// checksummed temp files by their shared-key hash, then each partition
/// pair is joined in memory — recursing with a re-salted partition
/// function when a partition's build side still does not fit. Rows reach
/// this function through closures so the columnar kernel can stream rows
/// straight out of its columns without materializing a row-carrier copy
/// of the whole relation.
///
/// Output order: partitions in index order, probe order preserved within
/// a partition — deterministic, but different from the in-memory kernels
/// (all consumers are set-semantic). `Err` paths reclaim the temp
/// directory via the [`SpillDir`] drop guard.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grace_join_spill(
    build_n: usize,
    build_row: impl FnMut(usize) -> Row,
    build_hash: impl Fn(usize) -> u64,
    probe_n: usize,
    probe_row: impl FnMut(usize) -> Row,
    probe_hash: impl Fn(usize) -> u64,
    build_key: &[usize],
    probe_key: &[usize],
    probe_rest: &[usize],
    build_width: usize,
    budget: &mut Budget,
) -> Result<Vec<Row>, EvalError> {
    let stats = budget.spill_stats();
    let mut dir = SpillDir::create(budget.spill_dir())?;
    let bparts = partition_side(&dir, "b", build_n, build_row, build_hash, 0, &stats)?;
    let pparts = partition_side(&dir, "p", probe_n, probe_row, probe_hash, 0, &stats)?;
    let width = build_width + probe_rest.len();
    let mut out: Vec<Row> = Vec::new();
    for p in 0..SPILL_FANOUT {
        join_spilled_partition(
            &dir, &bparts[p], &pparts[p], 0, build_key, probe_key, probe_rest, width, budget,
            &mut out,
        )?;
    }
    dir.cleanup()?;
    Ok(out)
}

/// Writes every row of one join side into [`SPILL_FANOUT`] partition
/// files at `level`, each frame prefixed with the row's key hash (as an
/// `Int` value) so downstream passes never rehash.
pub(crate) fn partition_side(
    dir: &SpillDir,
    tag: &str,
    n: usize,
    mut row: impl FnMut(usize) -> Row,
    hash: impl Fn(usize) -> u64,
    level: u32,
    stats: &Arc<SpillStats>,
) -> Result<Vec<SpillFile>, EvalError> {
    let mut writers: Vec<SpillWriter> = (0..SPILL_FANOUT)
        .map(|_| SpillWriter::create(dir.next_file(tag)))
        .collect::<Result<_, _>>()?;
    let mut frame: Vec<Value> = Vec::new();
    for i in 0..n {
        let h = hash(i);
        frame.clear();
        frame.push(Value::Int(h as i64));
        frame.extend(row(i).into_vec());
        writers[spill_partition(h, level)].write_row(&frame)?;
    }
    let files: Vec<SpillFile> = writers
        .into_iter()
        .map(|w| w.finish())
        .collect::<Result<_, _>>()?;
    stats.add_partitions(SPILL_FANOUT as u64);
    stats.add_bytes(files.iter().map(|f| f.bytes).sum());
    Ok(files)
}

/// Re-partitions an existing spill file at a deeper (re-salted) level;
/// the consumed file is removed to keep peak disk usage at roughly one
/// copy per side per level.
pub(crate) fn repartition_file(
    dir: &SpillDir,
    tag: &str,
    file: &SpillFile,
    level: u32,
    stats: &Arc<SpillStats>,
) -> Result<Vec<SpillFile>, EvalError> {
    let mut writers: Vec<SpillWriter> = (0..SPILL_FANOUT)
        .map(|_| SpillWriter::create(dir.next_file(tag)))
        .collect::<Result<_, _>>()?;
    let mut reader = SpillReader::open(&file.path)?;
    while let Some(frame) = reader.read_row()? {
        let h = frame_hash(&frame)?;
        writers[spill_partition(h, level)].write_row(&frame)?;
    }
    drop(reader);
    let _ = std::fs::remove_file(&file.path);
    let files: Vec<SpillFile> = writers
        .into_iter()
        .map(|w| w.finish())
        .collect::<Result<_, _>>()?;
    stats.add_partitions(SPILL_FANOUT as u64);
    stats.add_bytes(files.iter().map(|f| f.bytes).sum());
    Ok(files)
}

/// Key hash stored as the first value of every spilled join frame.
fn frame_hash(frame: &Row) -> Result<u64, EvalError> {
    match frame.first() {
        Some(Value::Int(h)) => Ok(*h as u64),
        _ => Err(EvalError::SpillIo(
            "spill frame missing its hash prefix".into(),
        )),
    }
}

/// Splits a spilled frame into `(key hash, original row)`.
pub(crate) fn split_frame(frame: Row) -> Result<(u64, Row), EvalError> {
    let mut v = frame.into_vec();
    if v.is_empty() {
        return Err(EvalError::SpillIo("empty spill frame".into()));
    }
    let h = match v.remove(0) {
        Value::Int(h) => h as u64,
        _ => {
            return Err(EvalError::SpillIo(
                "spill frame missing its hash prefix".into(),
            ))
        }
    };
    Ok((h, v.into_boxed_slice()))
}

/// Joins one spilled partition pair: loads the build side (reserving its
/// bytes), streams the probe side, recursing one level deeper when the
/// reservation is denied. At [`MAX_SPILL_LEVEL`] the reservation becomes
/// mandatory and a denial surfaces as a clean `MemoryExceeded` (one
/// pathological key can defeat any amount of partitioning).
#[allow(clippy::too_many_arguments)]
fn join_spilled_partition(
    dir: &SpillDir,
    build: &SpillFile,
    probe: &SpillFile,
    level: u32,
    build_key: &[usize],
    probe_key: &[usize],
    probe_rest: &[usize],
    width: usize,
    budget: &mut Budget,
    out: &mut Vec<Row>,
) -> Result<(), EvalError> {
    if build.rows == 0 || probe.rows == 0 {
        return Ok(());
    }
    // In-memory footprint of this partition's build side: its hash table
    // plus the decoded rows (the on-disk frame size is a fair proxy).
    let est = ChainTable::byte_estimate(build.rows as usize) + build.bytes;
    if !budget.try_reserve_bytes(est) {
        if level < MAX_SPILL_LEVEL {
            let stats = budget.spill_stats();
            let bsub = repartition_file(dir, "b", build, level + 1, &stats)?;
            let psub = repartition_file(dir, "p", probe, level + 1, &stats)?;
            for q in 0..SPILL_FANOUT {
                join_spilled_partition(
                    dir,
                    &bsub[q],
                    &psub[q],
                    level + 1,
                    build_key,
                    probe_key,
                    probe_rest,
                    width,
                    budget,
                    out,
                )?;
            }
            return Ok(());
        }
        budget.reserve_bytes(est)?;
    }
    let result = join_loaded_partition(
        build, probe, build_key, probe_key, probe_rest, width, budget, out,
    );
    budget.uncharge_bytes(est);
    result
}

/// The in-memory tail of [`join_spilled_partition`], separated so its
/// caller can release the build reservation on every exit path.
#[allow(clippy::too_many_arguments)]
fn join_loaded_partition(
    build: &SpillFile,
    probe: &SpillFile,
    build_key: &[usize],
    probe_key: &[usize],
    probe_rest: &[usize],
    width: usize,
    budget: &mut Budget,
    out: &mut Vec<Row>,
) -> Result<(), EvalError> {
    let mut brows: Vec<(u64, Row)> = Vec::with_capacity(build.rows as usize);
    let mut reader = SpillReader::open(&build.path)?;
    while let Some(frame) = reader.read_row()? {
        brows.push(split_frame(frame)?);
    }
    let table = ChainTable::build(brows.len(), |i| brows[i].0);
    let row_bytes = row_heap_bytes(width);
    let mut preader = SpillReader::open(&probe.path)?;
    while let Some(frame) = preader.read_row()? {
        let (h, prow) = split_frame(frame)?;
        table.for_each(h, |bi| {
            let brow = &brows[bi].1;
            if keys_eq(brow, build_key, &prow, probe_key) {
                budget.charge(1)?;
                budget.charge_bytes(row_bytes)?;
                out.push(emit_joined(brow, &prow, probe_rest, width));
            }
            Ok(())
        })?;
    }
    Ok(())
}

/// Reorders columns of `r` to `desired` (must be a permutation).
fn reorder(r: &VRelation, desired: &[String]) -> VRelation {
    let perm: Vec<usize> = desired
        .iter()
        .map(|c| r.col_index(c).expect("reorder: missing column"))
        .collect();
    let rows: Vec<Row> = r
        .rows()
        .iter()
        .map(|row| perm.iter().map(|&i| row[i].clone()).collect())
        .collect();
    VRelation::from_rows(desired.to_vec(), rows)
}

/// The seed (pre-overhaul) hash-join kernel: single-threaded, one boxed
/// key allocated per build *and* probe row. Kept as the baseline for the
/// kernel microbenchmarks and the allocation-regression test; planners
/// and evaluators never call it.
pub fn natural_join_seed(
    a: &VRelation,
    b: &VRelation,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let (build, probe, swapped) = if a.len() <= b.len() {
        (a, b, false)
    } else {
        (b, a, true)
    };
    let (build_shared, probe_shared, probe_rest) = join_layout(build, probe);

    let mut out_cols: Vec<String> = build.cols().to_vec();
    out_cols.extend(probe_rest.iter().map(|&j| probe.cols()[j].clone()));
    let mut out = VRelation::empty(out_cols);

    let mut table: HashMap<Key, Vec<usize>> = HashMap::with_capacity(build.len());
    for (i, row) in build.rows().iter().enumerate() {
        table.entry(key_of(row, &build_shared)).or_default().push(i);
    }
    // Probe side: the map is keyed by `Box<[Value]>`, which borrows as
    // `&[Value]`, so one reused scratch buffer serves every lookup — the
    // seed's per-probe-row boxed key is gone (the build side above keeps
    // its historical one-box-per-row behaviour as the baseline).
    let mut scratch: Vec<Value> = Vec::with_capacity(probe_shared.len());
    for prow in probe.rows() {
        scratch.clear();
        scratch.extend(probe_shared.iter().map(|&i| prow[i].clone()));
        let Some(matches) = table.get(scratch.as_slice()) else {
            continue;
        };
        budget.charge(matches.len() as u64)?;
        out.reserve(matches.len());
        for &bi in matches {
            let brow = &build.rows()[bi];
            let mut row: Vec<Value> = Vec::with_capacity(out.cols().len());
            row.extend(brow.iter().cloned());
            row.extend(probe_rest.iter().map(|&j| prow[j].clone()));
            out.push(row.into_boxed_slice());
        }
    }
    if swapped {
        let desired: Vec<String> = {
            let mut cols: Vec<String> = a.cols().to_vec();
            cols.extend(b.cols().iter().filter(|c| !a.cols().contains(c)).cloned());
            cols
        };
        return Ok(reorder(&out, &desired));
    }
    Ok(out)
}

/// Reference nested-loop natural join: quadratic, allocation-happy, and
/// obviously correct. Used as the oracle in property tests against the
/// hash join; never called by the planners.
pub fn nested_loop_join(
    a: &VRelation,
    b: &VRelation,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let (a_shared, b_shared, b_rest) = join_layout(a, b);
    let mut out_cols: Vec<String> = a.cols().to_vec();
    out_cols.extend(b_rest.iter().map(|&j| b.cols()[j].clone()));
    let mut out = VRelation::empty(out_cols);
    for ra in a.rows() {
        for rb in b.rows() {
            if a_shared
                .iter()
                .zip(&b_shared)
                .all(|(&i, &j)| ra[i] == rb[j])
            {
                budget.charge(1)?;
                let mut row: Vec<Value> = ra.to_vec();
                row.extend(b_rest.iter().map(|&j| rb[j].clone()));
                out.push(row.into_boxed_slice());
            }
        }
    }
    Ok(out)
}

/// Semijoin `a ⋉ b`: rows of `a` with at least one match in `b` on the
/// shared variables. With no shared variables, returns `a` unchanged if
/// `b` is non-empty, else the empty relation.
///
/// Uses the same hash-in-place scheme as [`natural_join`]; the probe side
/// goes parallel above [`PARALLEL_ROW_THRESHOLD`].
pub fn semijoin(a: &VRelation, b: &VRelation, budget: &mut Budget) -> Result<VRelation, EvalError> {
    crate::fail_point!("ops::semijoin");
    let (a_shared, b_shared, _) = join_layout(a, b);
    if a_shared.is_empty() {
        return if b.is_empty() {
            Ok(VRelation::empty(a.cols().to_vec()))
        } else {
            budget.charge(a.len() as u64)?;
            budget.charge_bytes(a.len() as u64 * row_heap_bytes(a.cols().len()))?;
            Ok(a.clone())
        };
    }

    // Build: hash → chain of b-row indices (kept to verify collisions).
    // The semijoin build side is the reducer — typically the small side —
    // so a denied reservation is a hard error rather than a spill.
    let table_bytes = ChainTable::byte_estimate(b.len());
    budget.reserve_bytes(table_bytes)?;
    let table = ChainTable::build(b.len(), |i| hash_key(&b.rows()[i], &b_shared));
    let matches = |row: &Row| {
        table.any(hash_key(row, &a_shared), |bi| {
            keys_eq(row, &a_shared, &b.rows()[bi], &b_shared)
        })
    };

    let row_bytes = row_heap_bytes(a.cols().len());
    let threads = exec::num_threads();
    let rows_result: Result<Vec<Row>, EvalError> =
        if threads > 1 && a.len() + b.len() >= PARALLEL_ROW_THRESHOLD {
            let shared = budget.fork();
            let chunks = exec::chunk_ranges(a.len(), threads * 4);
            let results = exec::parallel_map(chunks, threads, |(lo, hi)| {
                let mut bud = shared.clone();
                let mut out = Vec::new();
                for row in &a.rows()[lo..hi] {
                    if matches(row) {
                        bud.charge(1)?;
                        bud.charge_bytes(row_bytes)?;
                        out.push(row.clone());
                    }
                }
                Ok(out)
            });
            merge_partition_results(results, budget)
        } else {
            let mut run = || {
                let mut out = Vec::new();
                for row in a.rows() {
                    if matches(row) {
                        budget.charge(1)?;
                        budget.charge_bytes(row_bytes)?;
                        out.push(row.clone());
                    }
                }
                Ok(out)
            };
            run()
        };
    budget.uncharge_bytes(table_bytes);
    Ok(VRelation::from_rows(a.cols().to_vec(), rows_result?))
}

/// Projects `a` onto `vars` (which must all exist). `distinct` switches on
/// set semantics.
pub fn project(
    a: &VRelation,
    vars: &[String],
    distinct: bool,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    crate::fail_point!("ops::project");
    let idx: Vec<usize> = vars
        .iter()
        .map(|v| {
            a.col_index(v)
                .ok_or_else(|| EvalError::UnknownVariable(v.clone()))
        })
        .collect::<Result<_, _>>()?;
    let mut out = VRelation::empty(vars.to_vec());
    let row_bytes = row_heap_bytes(idx.len());
    if distinct {
        // Dedup via an in-place hash of the projected columns: candidate
        // duplicates are verified against rows already emitted, so no
        // second copy of each row is ever allocated. The dedup map itself
        // is reserved up front and charged as one block.
        let all: Vec<usize> = (0..idx.len()).collect();
        let map_bytes =
            (a.len() * std::mem::size_of::<(u64, Vec<u32>)>()) as u64 + 4 * a.len() as u64;
        budget.reserve_bytes(map_bytes)?;
        let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        seen.reserve(a.len());
        let mut run = || {
            for row in a.rows() {
                let h = hash_key(row, &idx);
                let bucket = seen.entry(h).or_default();
                let dup = bucket
                    .iter()
                    .any(|&oi| keys_eq(row, &idx, &out.rows()[oi as usize], &all));
                if !dup {
                    budget.charge(1)?;
                    budget.charge_bytes(row_bytes)?;
                    bucket.push(out.len() as u32);
                    out.push(idx.iter().map(|&i| row[i].clone()).collect());
                }
            }
            Ok(())
        };
        let result: Result<(), EvalError> = run();
        budget.uncharge_bytes(map_bytes);
        result?;
    } else {
        budget.charge(a.len() as u64)?;
        budget.charge_bytes(a.len() as u64 * row_bytes)?;
        out.reserve(a.len());
        for row in a.rows() {
            out.push(idx.iter().map(|&i| row[i].clone()).collect());
        }
    }
    Ok(out)
}

/// Projects onto the intersection of `a`'s columns and `vars`, with
/// distinct rows. This is the "project onto χ(p)" step of decomposition
/// evaluation, where χ(p) may mention variables `a` does not carry yet.
///
/// When the projection keeps every column it is the identity: joins of
/// duplicate-free inputs are duplicate-free, so the (expensive) dedup pass
/// is skipped entirely.
pub fn project_onto_available(
    a: &VRelation,
    vars: &[String],
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let avail: Vec<String> = vars
        .iter()
        .filter(|v| a.col_index(v).is_some())
        .cloned()
        .collect();
    if avail.len() == a.cols().len() {
        return Ok(a.clone());
    }
    project(a, &avail, true, budget)
}

/// Keeps rows satisfying `pred`.
pub fn select_rows(
    a: &VRelation,
    mut pred: impl FnMut(&Row) -> Result<bool, EvalError>,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let mut out = VRelation::empty(a.cols().to_vec());
    let row_bytes = row_heap_bytes(a.cols().len());
    for row in a.rows() {
        if pred(row)? {
            budget.charge(1)?;
            budget.charge_bytes(row_bytes)?;
            out.push(row.clone());
        }
    }
    Ok(out)
}

/// Sorts rows by the given `(column, descending)` keys, using SQL
/// comparison semantics with a total-order fallback.
pub fn sort_by(a: &VRelation, keys: &[(String, bool)]) -> Result<VRelation, EvalError> {
    let idx: Vec<(usize, bool)> = keys
        .iter()
        .map(|(v, desc)| {
            a.col_index(v)
                .map(|i| (i, *desc))
                .ok_or_else(|| EvalError::UnknownVariable(v.clone()))
        })
        .collect::<Result<_, _>>()?;
    let mut rows = a.rows().to_vec();
    rows.sort_by(|x, y| {
        for &(i, desc) in &idx {
            let ord = x[i].cmp(&y[i]);
            if ord != std::cmp::Ordering::Equal {
                return if desc { ord.reverse() } else { ord };
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(VRelation::from_rows(a.cols().to_vec(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(cols: &[&str], rows: &[&[i64]]) -> VRelation {
        VRelation::from_rows(
            cols.iter().map(|c| c.to_string()).collect(),
            rows.iter()
                .map(|r| r.iter().map(|&i| Value::Int(i)).collect())
                .collect(),
        )
    }

    #[test]
    fn join_on_shared_column() {
        let a = rel(&["x", "y"], &[&[1, 10], &[2, 20]]);
        let b = rel(&["y", "z"], &[&[10, 100], &[10, 101], &[30, 300]]);
        let mut budget = Budget::unlimited();
        let j = natural_join(&a, &b, &mut budget).unwrap();
        let expect = rel(&["x", "y", "z"], &[&[1, 10, 100], &[1, 10, 101]]);
        assert!(j.set_eq(&expect));
        assert_eq!(budget.charged(), 2);
    }

    #[test]
    fn join_is_symmetric_up_to_column_order() {
        let a = rel(&["x", "y"], &[&[1, 10], &[2, 20], &[3, 20]]);
        let b = rel(&["y"], &[&[20]]);
        let mut budget = Budget::unlimited();
        let ab = natural_join(&a, &b, &mut budget).unwrap();
        let ba = natural_join(&b, &a, &mut budget).unwrap();
        assert!(ab.set_eq(&ba));
        assert_eq!(ab.cols(), &["x".to_string(), "y".to_string()]);
        assert_eq!(ba.cols(), &["y".to_string(), "x".to_string()]);
    }

    #[test]
    fn join_without_shared_columns_is_cross_product() {
        let a = rel(&["x"], &[&[1], &[2]]);
        let b = rel(&["y"], &[&[7], &[8], &[9]]);
        let mut budget = Budget::unlimited();
        let j = natural_join(&a, &b, &mut budget).unwrap();
        assert_eq!(j.len(), 6);
        assert_eq!(budget.charged(), 6);
    }

    #[test]
    fn join_with_neutral_is_identity() {
        let a = rel(&["x"], &[&[1], &[2]]);
        let mut budget = Budget::unlimited();
        let j = natural_join(&a, &VRelation::neutral(), &mut budget).unwrap();
        assert!(j.set_eq(&a));
        let j2 = natural_join(&VRelation::neutral(), &a, &mut budget).unwrap();
        assert!(j2.set_eq(&a));
    }

    #[test]
    fn join_respects_budget() {
        let a = rel(&["x"], &[&[1], &[2], &[3]]);
        let b = rel(&["y"], &[&[1], &[2], &[3]]);
        let mut budget = Budget::unlimited().with_max_tuples(5);
        let err = natural_join(&a, &b, &mut budget).unwrap_err();
        assert!(err.is_resource_limit());
    }

    #[test]
    fn semijoin_filters() {
        let a = rel(&["x", "y"], &[&[1, 10], &[2, 20], &[3, 30]]);
        let b = rel(&["y", "z"], &[&[10, 0], &[30, 0]]);
        let mut budget = Budget::unlimited();
        let s = semijoin(&a, &b, &mut budget).unwrap();
        assert!(s.set_eq(&rel(&["x", "y"], &[&[1, 10], &[3, 30]])));
    }

    #[test]
    fn semijoin_no_shared_columns() {
        let a = rel(&["x"], &[&[1], &[2]]);
        let empty = VRelation::empty(vec!["y".into()]);
        let some = rel(&["y"], &[&[9]]);
        let mut budget = Budget::unlimited();
        assert!(semijoin(&a, &empty, &mut budget).unwrap().is_empty());
        assert!(semijoin(&a, &some, &mut budget).unwrap().set_eq(&a));
    }

    #[test]
    fn project_distinct_and_bag() {
        let a = rel(&["x", "y"], &[&[1, 10], &[1, 20], &[2, 10]]);
        let mut budget = Budget::unlimited();
        let p = project(&a, &["x".to_string()], true, &mut budget).unwrap();
        assert_eq!(p.len(), 2);
        let p2 = project(&a, &["x".to_string()], false, &mut budget).unwrap();
        assert_eq!(p2.len(), 3);
        assert!(matches!(
            project(&a, &["zz".to_string()], true, &mut budget),
            Err(EvalError::UnknownVariable(_))
        ));
    }

    #[test]
    fn project_onto_available_ignores_missing() {
        let a = rel(&["x", "y"], &[&[1, 10]]);
        let mut budget = Budget::unlimited();
        let p =
            project_onto_available(&a, &["x".to_string(), "w".to_string()], &mut budget).unwrap();
        assert_eq!(p.cols(), &["x".to_string()]);
    }

    #[test]
    fn select_rows_predicate() {
        let a = rel(&["x"], &[&[1], &[2], &[3]]);
        let mut budget = Budget::unlimited();
        let s = select_rows(&a, |r| Ok(r[0] >= Value::Int(2)), &mut budget).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn sort_by_keys() {
        let a = rel(&["x", "y"], &[&[1, 3], &[2, 1], &[1, 1]]);
        let sorted = sort_by(&a, &[("x".to_string(), false), ("y".to_string(), true)]).unwrap();
        let rows: Vec<Vec<i64>> = sorted
            .rows()
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        Value::Int(i) => *i,
                        _ => panic!(),
                    })
                    .collect()
            })
            .collect();
        assert_eq!(rows, vec![vec![1, 3], vec![1, 1], vec![2, 1]]);
        assert!(sort_by(&a, &[("zz".to_string(), false)]).is_err());
    }

    #[test]
    fn self_join_duplicate_semantics() {
        // Joining a relation with itself on all columns yields the same rows.
        let a = rel(&["x"], &[&[1], &[1], &[2]]);
        let mut budget = Budget::unlimited();
        let j = natural_join(&a, &a, &mut budget).unwrap();
        // Bag semantics: 1 appears twice on each side → 4 combinations.
        assert_eq!(j.len(), 5);
    }
}
