//! Table schemas and the database catalog.

use crate::index::JoinIndex;
use crate::relation::Relation;
use htqo_cq::isolator::SchemaProvider;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Column data types (checked on insert).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// String.
    Str,
    /// Date (days since epoch).
    Date,
}

/// A named, typed column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// An ordered list of columns with name lookup.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn new(cols: &[(&str, ColumnType)]) -> Self {
        let mut s = Schema {
            columns: Vec::with_capacity(cols.len()),
        };
        for (name, ty) in cols {
            s.push(name, *ty);
        }
        s
    }

    /// Appends a column.
    ///
    /// # Panics
    /// Panics if the name already exists.
    pub fn push(&mut self, name: &str, ty: ColumnType) {
        assert!(self.index_of(name).is_none(), "duplicate column `{name}`");
        self.columns.push(Column {
            name: name.to_string(),
            ty,
        });
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Position of `name`, if present (case-insensitive, like SQL).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{} {:?}", c.name, c.ty))
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

/// An in-memory database: named relations plus their schemas.
///
/// Uses a `BTreeMap` so iteration (and therefore every planner that walks
/// the catalog) is deterministic. Relations are reference-counted, so
/// cloning a `Database` is cheap — the SQL-view executor and the
/// subquery flattener work on throwaway overlays of the base catalog.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Arc<Relation>>,
    /// Secondary join indexes: table → lowercased column → index. Kept
    /// beside the tables (not inside `Relation`) so a catalog overlay can
    /// share base relations while dropping or adding indexes freely.
    indexes: BTreeMap<String, BTreeMap<String, Arc<dyn JoinIndex>>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a table. Replacing a table drops its indexes —
    /// they describe rowids of the old data.
    pub fn insert_table(&mut self, name: &str, rel: Relation) {
        self.indexes.remove(name);
        self.tables.insert(name.to_string(), Arc::new(rel));
    }

    /// Registers a secondary index over `table.column`.
    ///
    /// The index must map [`crate::index::encode_key`]-encoded cell values
    /// of that column to ascending rowids of the *current* stored
    /// relation; the seek-join kernels trust it for the equality check on
    /// the indexed column (residual predicates are still re-applied).
    pub fn register_index(&mut self, table: &str, column: &str, index: Arc<dyn JoinIndex>) {
        self.indexes
            .entry(table.to_string())
            .or_default()
            .insert(column.to_ascii_lowercase(), index);
    }

    /// The index on `table.column`, if one is registered (column lookup is
    /// case-insensitive, like schema lookups).
    pub fn index_on(&self, table: &str, column: &str) -> Option<&Arc<dyn JoinIndex>> {
        self.indexes.get(table)?.get(&column.to_ascii_lowercase())
    }

    /// True if any secondary index is registered. The evaluator uses this
    /// as a cheap gate: with no indexes, vertex joins take the classic
    /// scan-and-hash path untouched.
    pub fn has_indexes(&self) -> bool {
        !self.indexes.is_empty()
    }

    /// All `(table, column)` pairs carrying an index, in deterministic
    /// (name) order — the cost model's view of index availability.
    pub fn indexed_columns(&self) -> Vec<(String, String)> {
        self.indexes
            .iter()
            .flat_map(|(t, cols)| cols.keys().map(move |c| (t.clone(), c.clone())))
            .collect()
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&Relation> {
        self.tables.get(name).map(|r| r.as_ref())
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn tables(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.tables.iter().map(|(n, r)| (n.as_str(), r.as_ref()))
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the database has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of tuples across all tables.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|r| r.len()).sum()
    }
}

impl SchemaProvider for Database {
    fn columns(&self, table: &str) -> Option<Vec<String>> {
        self.tables.get(table).map(|r| r.schema().names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::value::Value;

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let s = Schema::new(&[("A", ColumnType::Int), ("b", ColumnType::Str)]);
        assert_eq!(s.index_of("a"), Some(0));
        assert_eq!(s.index_of("B"), Some(1));
        assert_eq!(s.index_of("c"), None);
        assert_eq!(s.arity(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        Schema::new(&[("a", ColumnType::Int), ("a", ColumnType::Int)]);
    }

    #[test]
    fn database_catalog() {
        let mut db = Database::new();
        let mut r = Relation::new(Schema::new(&[("x", ColumnType::Int)]));
        r.push_row(vec![Value::Int(1)]).unwrap();
        db.insert_table("r", r);
        assert_eq!(db.len(), 1);
        assert_eq!(db.total_tuples(), 1);
        assert!(db.table("r").is_some());
        assert!(db.table("s").is_none());
    }

    #[test]
    fn index_registry_roundtrip() {
        let mut db = Database::new();
        let mut r = Relation::new(Schema::new(&[("k", ColumnType::Int)]));
        r.push_row(vec![Value::Int(7)]).unwrap();
        db.insert_table("r", r);
        assert!(!db.has_indexes());
        let idx = crate::index::MemIndex::build(db.table("r").unwrap(), 0);
        db.register_index("r", "K", Arc::new(idx));
        assert!(db.has_indexes());
        assert!(db.index_on("r", "k").is_some());
        assert!(db.index_on("r", "z").is_none());
        assert_eq!(db.indexed_columns(), vec![("r".into(), "k".into())]);
        // Replacing the table drops the now-stale index.
        db.insert_table("r", Relation::new(Schema::new(&[("k", ColumnType::Int)])));
        assert!(!db.has_indexes());
    }

    #[test]
    fn schema_provider_impl() {
        let mut db = Database::new();
        db.insert_table(
            "t",
            Relation::new(Schema::new(&[
                ("a", ColumnType::Int),
                ("b", ColumnType::Str),
            ])),
        );
        assert_eq!(
            htqo_cq::isolator::SchemaProvider::columns(&db, "t"),
            Some(vec!["a".to_string(), "b".to_string()])
        );
        assert_eq!(htqo_cq::isolator::SchemaProvider::columns(&db, "zz"), None);
    }
}
