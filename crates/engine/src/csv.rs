//! CSV import/export for base relations — the engine's data in/out path
//! (used by the CLI's `\import`/`\export` and handy for loading external
//! datasets into the reproduction).
//!
//! Format: RFC-4180-style quoting; the first line is a header of
//! `name:type` pairs with `type ∈ {int, float, str, date}`; dates are
//! `YYYY-MM-DD`; empty unquoted fields are NULL.

use crate::dict;
use crate::error::{Budget, EvalError};
use crate::relation::Relation;
use crate::schema::{ColumnType, Schema};
use crate::value::{row_heap_bytes, Value};
use htqo_cq::date::{format_date, parse_date};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// CSV errors with line (and, where known, column) positions.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem (header, quoting, arity, cell parse) at a
    /// 1-based line.
    Format {
        /// 1-based line number.
        line: usize,
        /// 1-based field position within the line, when the problem is
        /// attributable to one field (cell parse errors, bad header
        /// fields, quoting errors). `None` for whole-line problems such
        /// as an arity mismatch.
        column: Option<usize>,
        /// Explanation.
        message: String,
    },
    /// The import exceeded its memory budget (see
    /// [`read_csv_budgeted`]); carries the underlying
    /// [`EvalError::MemoryExceeded`].
    Budget(EvalError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Format {
                line,
                column: Some(column),
                message,
            } => write!(f, "line {line}, column {column}: {message}"),
            CsvError::Format {
                line,
                column: None,
                message,
            } => write!(f, "line {line}: {message}"),
            CsvError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes `rel` as CSV (typed header + one line per row).
pub fn write_csv(rel: &Relation, w: &mut impl Write) -> Result<(), CsvError> {
    let header: Vec<String> = rel
        .schema()
        .columns()
        .iter()
        .map(|c| format!("{}:{}", c.name, type_tag(c.ty)))
        .collect();
    writeln!(w, "{}", header.join(","))?;
    for row in rel.iter_rows() {
        let cells: Vec<String> = row.iter().map(render_cell).collect();
        writeln!(w, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Reads a relation from CSV produced by [`write_csv`] (or hand-authored
/// with the same header convention). Unbudgeted: loads of any size
/// succeed (subject to the machine's actual memory).
pub fn read_csv(r: impl Read) -> Result<Relation, CsvError> {
    read_csv_budgeted(r, &mut Budget::unlimited())
}

/// Reads a relation from CSV, charging `budget` for each materialized
/// row and for string-dictionary growth caused by the import. A denied
/// charge surfaces as [`CsvError::Budget`] wrapping
/// [`EvalError::MemoryExceeded`].
pub fn read_csv_budgeted(r: impl Read, budget: &mut Budget) -> Result<Relation, CsvError> {
    let dict_before = dict::resident_bytes();
    let mut reader = BufReader::new(r);
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(CsvError::Format {
            line: 1,
            column: None,
            message: "empty input".into(),
        });
    }
    let mut schema = Schema::default();
    for (ci, field) in split_line(header.trim_end_matches(['\r', '\n']), 1)?
        .iter()
        .enumerate()
    {
        let (name, ty) = field.text.rsplit_once(':').ok_or(CsvError::Format {
            line: 1,
            column: Some(ci + 1),
            message: format!("header field `{}` is not name:type", field.text),
        })?;
        let ty = match ty {
            "int" => ColumnType::Int,
            "float" => ColumnType::Float,
            "str" => ColumnType::Str,
            "date" => ColumnType::Date,
            other => {
                return Err(CsvError::Format {
                    line: 1,
                    column: Some(ci + 1),
                    message: format!("unknown type `{other}`"),
                })
            }
        };
        schema.push(name, ty);
    }
    let arity = schema.arity();
    let types: Vec<ColumnType> = schema.columns().iter().map(|c| c.ty).collect();
    let mut rel = Relation::new(schema);

    let row_bytes = row_heap_bytes(arity);
    // One reused line buffer for the whole file (`lines()` would allocate
    // a fresh `String` per row).
    let mut buf = String::new();
    let mut lineno = 1;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        lineno += 1;
        // Strip the terminator exactly as `lines()` does: one `\n`, plus
        // one `\r` before it if present.
        let line = buf.strip_suffix('\n').unwrap_or(&buf);
        let line = line.strip_suffix('\r').unwrap_or(line);
        if line.is_empty() {
            continue;
        }
        let fields = split_line(line, lineno)?;
        if fields.len() != arity {
            return Err(CsvError::Format {
                line: lineno,
                column: None,
                message: format!("expected {arity} fields, got {}", fields.len()),
            });
        }
        let mut row = Vec::with_capacity(arity);
        for (ci, (field, ty)) in fields.iter().zip(&types).enumerate() {
            row.push(parse_cell(field, *ty).map_err(|message| CsvError::Format {
                line: lineno,
                column: Some(ci + 1),
                message,
            })?);
        }
        budget.charge_bytes(row_bytes).map_err(CsvError::Budget)?;
        rel.push_row(row).map_err(|e| CsvError::Format {
            line: lineno,
            column: None,
            message: e.to_string(),
        })?;
    }
    // Strings interned during this load are resident for the process
    // lifetime; charge the dictionary's growth to the importing query.
    budget
        .charge_bytes(dict::resident_bytes().saturating_sub(dict_before))
        .map_err(CsvError::Budget)?;
    Ok(rel)
}

fn type_tag(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Int => "int",
        ColumnType::Float => "float",
        ColumnType::Str => "str",
        ColumnType::Date => "date",
    }
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => format!("{x:?}"),
        Value::Date(d) => format_date(*d),
        Value::Str(s) => {
            if s.contains([',', '"', '\n']) || s.is_empty() {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
    }
}

/// A parsed field: raw text plus whether it was quoted (a quoted empty
/// field is an empty string; an unquoted empty field is NULL).
struct Field {
    text: String,
    quoted: bool,
}

impl std::ops::Deref for Field {
    type Target = str;
    fn deref(&self) -> &str {
        &self.text
    }
}

fn parse_cell(field: &Field, ty: ColumnType) -> Result<Value, String> {
    if field.text.is_empty() && !field.quoted {
        return Ok(Value::Null);
    }
    Ok(match ty {
        ColumnType::Int => Value::Int(
            field
                .text
                .parse()
                .map_err(|_| format!("bad int `{}`", field.text))?,
        ),
        ColumnType::Float => Value::Float(
            field
                .text
                .parse()
                .map_err(|_| format!("bad float `{}`", field.text))?,
        ),
        ColumnType::Date => Value::Date(
            parse_date(&field.text).ok_or_else(|| format!("bad date `{}`", field.text))?,
        ),
        ColumnType::Str => Value::str(&field.text),
    })
}

/// RFC-4180 field splitting with `""` escapes.
fn split_line(line: &str, lineno: usize) -> Result<Vec<Field>, CsvError> {
    let mut fields = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        let mut text = String::new();
        let mut quoted = false;
        if chars.peek() == Some(&'"') {
            quoted = true;
            chars.next();
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            text.push('"');
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    Some(c) => text.push(c),
                    None => {
                        return Err(CsvError::Format {
                            line: lineno,
                            column: Some(fields.len() + 1),
                            message: "unterminated quoted field".into(),
                        })
                    }
                }
            }
            match chars.next() {
                Some(',') => {
                    fields.push(Field { text, quoted });
                    continue;
                }
                None => {
                    fields.push(Field { text, quoted });
                    break;
                }
                Some(c) => {
                    return Err(CsvError::Format {
                        line: lineno,
                        column: Some(fields.len() + 1),
                        message: format!("unexpected `{c}` after closing quote"),
                    })
                }
            }
        }
        // Unquoted field.
        loop {
            match chars.next() {
                Some(',') => {
                    fields.push(Field { text, quoted });
                    break;
                }
                Some(c) => text.push(c),
                None => {
                    fields.push(Field { text, quoted });
                    return Ok(fields);
                }
            }
        }
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> Relation {
        let mut rel = Relation::new(Schema::new(&[
            ("id", ColumnType::Int),
            ("name", ColumnType::Str),
            ("price", ColumnType::Float),
            ("day", ColumnType::Date),
        ]));
        rel.extend_rows(vec![
            vec![
                Value::Int(1),
                Value::str("plain"),
                Value::Float(1.5),
                Value::Date(0),
            ],
            vec![
                Value::Int(2),
                Value::str("with, comma and \"quotes\""),
                Value::Float(-2.25),
                Value::Date(8766),
            ],
            vec![Value::Null, Value::str(""), Value::Null, Value::Null],
        ])
        .unwrap();
        rel
    }

    #[test]
    fn round_trip_preserves_everything() {
        let rel = sample();
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back.schema(), rel.schema());
        assert_eq!(back.to_rows(), rel.to_rows());
    }

    #[test]
    fn header_declares_types() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("id:int,name:str,price:float,day:date\n"));
        assert!(text.contains("1994-01-01"));
    }

    #[test]
    fn quoted_empty_is_string_unquoted_is_null() {
        let rel = read_csv("a:str,b:str\n\"\",\n".as_bytes()).unwrap();
        assert_eq!(rel.row(0)[0], Value::str(""));
        assert_eq!(rel.row(0)[1], Value::Null);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = read_csv("a:int\nxyz\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Format { line: 2, .. }), "{err}");
        let err = read_csv("a:int\n1,2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 1 fields"));
        let err = read_csv("a:wat\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown type"));
        let err = read_csv("a:str\n\"open\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn errors_carry_column_positions() {
        // The bad cell is the second field of line 2.
        let err = read_csv("a:int,b:int\n1,xyz\n".as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                CsvError::Format {
                    line: 2,
                    column: Some(2),
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("line 2, column 2"));
        // Bad header type in the second header field.
        let err = read_csv("a:int,b:wat\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::Format {
                line: 1,
                column: Some(2),
                ..
            }
        ));
        // Unterminated quote in the third field.
        let err = read_csv("a:str,b:str,c:str\nx,y,\"open\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::Format {
                line: 2,
                column: Some(3),
                ..
            }
        ));
        // Arity mismatches are whole-line problems: no column.
        let err = read_csv("a:int\n1,2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Format { column: None, .. }));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let rel = read_csv("a:int\n1\n\n2\n".as_bytes()).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn budgeted_import_charges_rows_and_dictionary_growth() {
        // A tiny limit trips on the dictionary growth of a fresh string.
        let mut tight = Budget::unlimited().with_mem_limit(64);
        let err = read_csv_budgeted(
            "a:str\ncsv-budget-test-unique-string\n".as_bytes(),
            &mut tight,
        )
        .unwrap_err();
        assert!(
            matches!(err, CsvError::Budget(EvalError::MemoryExceeded { .. })),
            "{err}"
        );
        // A roomy limit succeeds and records the bytes.
        let mut roomy = Budget::unlimited().with_mem_limit(1 << 20);
        let rel = read_csv_budgeted("a:int\n1\n2\n".as_bytes(), &mut roomy).unwrap();
        assert_eq!(rel.len(), 2);
        assert!(roomy.mem_used() > 0);
    }
}
