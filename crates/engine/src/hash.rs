//! Fast, allocation-free hashing for join keys.
//!
//! The join kernels key their tables by a 64-bit hash of the shared
//! columns, computed **in place** over the row — no per-row `Box<[Value]>`
//! key materialization (the seed implementation allocated one boxed key
//! per build *and* probe row). Collisions are resolved by verifying the
//! actual column values, so the hash only has to be fast, not perfect.
//!
//! [`FxHasher`] is the well-known multiply-xor hash used by rustc
//! (`rustc-hash`); the implementation lives in [`htqo_hypergraph::fxhash`]
//! (the bottom of the crate stack) so the decomposition search can intern
//! bitsets through the same hasher, and is re-exported here for the join
//! kernels.

use crate::value::Row;
use std::hash::{Hash, Hasher};

pub use htqo_hypergraph::fxhash::{fx_hash_one, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};

/// Hashes the key columns `idx` of `row` in place (no allocation).
///
/// Consistent with `Value`'s `Hash`/`Eq`: NaNs are normalized and `-0.0`
/// hashes like `0.0`, so any two rows with `Eq`-equal key columns hash
/// equal.
#[inline]
pub fn hash_key(row: &Row, idx: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &i in idx {
        row[i].hash(&mut h);
    }
    // Finalize: spread entropy into the high bits (used for partitioning).
    let x = h.finish();
    let x = (x ^ (x >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^ (x >> 32)
}

/// True if the key columns of `a` (at `a_idx`) equal those of `b` (at
/// `b_idx`), positionally.
#[inline]
pub fn keys_eq(a: &Row, a_idx: &[usize], b: &Row, b_idx: &[usize]) -> bool {
    debug_assert_eq!(a_idx.len(), b_idx.len());
    a_idx.iter().zip(b_idx).all(|(&i, &j)| a[i] == b[j])
}

/// Partition of a 64-bit hash into one of `2^bits` buckets (high bits, so
/// the low bits stay useful inside per-partition hash tables).
#[inline]
pub fn partition_of(hash: u64, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        (hash >> (64 - bits)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::sync::Arc;

    fn row(vals: &[Value]) -> Row {
        vals.to_vec().into_boxed_slice()
    }

    #[test]
    fn equal_keys_hash_equal() {
        let a = row(&[Value::Int(1), Value::Float(0.0), Value::str("abc")]);
        let b = row(&[Value::str("abc"), Value::Float(-0.0), Value::Int(1)]);
        // a[(0,1,2)] vs b[(2,1,0)] are the same key.
        assert_eq!(hash_key(&a, &[0, 1, 2]), hash_key(&b, &[2, 1, 0]));
        assert!(keys_eq(&a, &[0, 1, 2], &b, &[2, 1, 0]));
        assert_eq!(
            hash_key(&row(&[Value::Float(f64::NAN)]), &[0]),
            hash_key(&row(&[Value::Float(f64::NAN)]), &[0]),
        );
    }

    #[test]
    fn different_keys_usually_differ() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000i64 {
            seen.insert(hash_key(&row(&[Value::Int(i)]), &[0]));
        }
        // A 64-bit hash over 10k distinct ints should be collision-free.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn str_hash_is_content_based() {
        let a = row(&[Value::Str(Arc::from("hello"))]);
        let b = row(&[Value::Str(Arc::from("hello"))]);
        assert_eq!(hash_key(&a, &[0]), hash_key(&b, &[0]));
    }

    #[test]
    fn partitions_are_in_range_and_balanced() {
        let bits = 4;
        let mut counts = vec![0usize; 1 << bits];
        for i in 0..16_000i64 {
            let p = partition_of(hash_key(&row(&[Value::Int(i)]), &[0]), bits);
            counts[p] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 500),
            "skewed partitions: {counts:?}"
        );
        assert_eq!(partition_of(u64::MAX, 0), 0);
    }

    #[test]
    fn empty_key_is_constant() {
        let a = row(&[Value::Int(1)]);
        let b = row(&[Value::Int(2)]);
        assert_eq!(hash_key(&a, &[]), hash_key(&b, &[]));
        assert!(keys_eq(&a, &[], &b, &[]));
    }
}
