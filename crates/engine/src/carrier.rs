//! The **carrier** abstraction: the handful of physical operations the
//! evaluators (q-hypertree, Yannakakis, bushy join trees) need from an
//! intermediate relation, implemented by both the row-at-a-time
//! [`VRelation`] (the seed representation, kept as the oracle path) and
//! the columnar [`CRel`] (the default). Evaluators are written once,
//! generic over `C: Carrier`, and dispatched by
//! [`crate::exec::ExecOptions::columnar`].
//!
//! Both implementations make **identical budget charges** for the same
//! logical work (the columnar kernels mirror the row kernels' charging
//! points one-for-one), so budget-exhaustion behavior and the figures'
//! tuple counts are carrier-independent.

use crate::crel::CRel;
use crate::error::{Budget, EvalError};
use crate::schema::Database;
use crate::vrel::VRelation;
use crate::{cops, iseek, ops, scan};
use htqo_cq::{AtomId, ConjunctiveQuery};

/// Operations an evaluator needs from an intermediate relation.
///
/// `Send` lets carriers cross the execution layer's worker threads.
pub trait Carrier: Sized + Send {
    /// Scans atom `a` of `q` (with the atom's own filters) from `db`.
    fn scan_query_atom(
        db: &Database,
        q: &ConjunctiveQuery,
        a: AtomId,
        budget: &mut Budget,
    ) -> Result<Self, EvalError>;

    /// Natural join on shared variable names.
    fn natural_join(&self, other: &Self, budget: &mut Budget) -> Result<Self, EvalError>;

    /// Joins atom `a` of `q` into `self` by index seeks over a registered
    /// secondary index ([`crate::iseek`]), without scanning the atom.
    /// Returns `Ok(None)` when no index covers a shared variable — the
    /// caller falls back to [`Carrier::scan_query_atom`] +
    /// [`Carrier::natural_join`]. When it applies, the output is
    /// bag-identical to that fallback (same column order, same rows).
    fn index_seek_join(
        db: &Database,
        q: &ConjunctiveQuery,
        a: AtomId,
        acc: &Self,
        budget: &mut Budget,
    ) -> Result<Option<Self>, EvalError>;

    /// Semijoin `self ⋉ other`.
    fn semijoin(&self, other: &Self, budget: &mut Budget) -> Result<Self, EvalError>;

    /// Projection onto `vars` (all must exist), optionally distinct.
    fn project(
        &self,
        vars: &[String],
        distinct: bool,
        budget: &mut Budget,
    ) -> Result<Self, EvalError>;

    /// Distinct projection onto the intersection of `vars` and the
    /// available columns.
    fn project_onto_available(
        &self,
        vars: &[String],
        budget: &mut Budget,
    ) -> Result<Self, EvalError>;

    /// The join identity: zero columns, one empty row.
    fn neutral() -> Self;

    /// Number of rows.
    fn len(&self) -> usize;

    /// True if there are no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column (variable) names.
    fn cols(&self) -> &[String];

    /// Position of variable `v`, if present.
    fn col_index(&self, v: &str) -> Option<usize>;

    /// Converts into the row representation at the pipeline boundary.
    fn into_vrel(self) -> VRelation;
}

impl Carrier for VRelation {
    fn scan_query_atom(
        db: &Database,
        q: &ConjunctiveQuery,
        a: AtomId,
        budget: &mut Budget,
    ) -> Result<Self, EvalError> {
        scan::scan_query_atom(db, q, a, budget)
    }

    fn natural_join(&self, other: &Self, budget: &mut Budget) -> Result<Self, EvalError> {
        ops::natural_join(self, other, budget)
    }

    fn index_seek_join(
        db: &Database,
        q: &ConjunctiveQuery,
        a: AtomId,
        acc: &Self,
        budget: &mut Budget,
    ) -> Result<Option<Self>, EvalError> {
        iseek::index_seek_join(db, q, a, acc, budget)
    }

    fn semijoin(&self, other: &Self, budget: &mut Budget) -> Result<Self, EvalError> {
        ops::semijoin(self, other, budget)
    }

    fn project(
        &self,
        vars: &[String],
        distinct: bool,
        budget: &mut Budget,
    ) -> Result<Self, EvalError> {
        ops::project(self, vars, distinct, budget)
    }

    fn project_onto_available(
        &self,
        vars: &[String],
        budget: &mut Budget,
    ) -> Result<Self, EvalError> {
        ops::project_onto_available(self, vars, budget)
    }

    fn neutral() -> Self {
        VRelation::neutral()
    }

    fn len(&self) -> usize {
        VRelation::len(self)
    }

    fn cols(&self) -> &[String] {
        VRelation::cols(self)
    }

    fn col_index(&self, v: &str) -> Option<usize> {
        VRelation::col_index(self, v)
    }

    fn into_vrel(self) -> VRelation {
        self
    }
}

impl Carrier for CRel {
    fn scan_query_atom(
        db: &Database,
        q: &ConjunctiveQuery,
        a: AtomId,
        budget: &mut Budget,
    ) -> Result<Self, EvalError> {
        scan::scan_query_atom_c(db, q, a, budget)
    }

    fn natural_join(&self, other: &Self, budget: &mut Budget) -> Result<Self, EvalError> {
        cops::natural_join(self, other, budget)
    }

    fn index_seek_join(
        db: &Database,
        q: &ConjunctiveQuery,
        a: AtomId,
        acc: &Self,
        budget: &mut Budget,
    ) -> Result<Option<Self>, EvalError> {
        iseek::index_seek_join_c(db, q, a, acc, budget)
    }

    fn semijoin(&self, other: &Self, budget: &mut Budget) -> Result<Self, EvalError> {
        cops::semijoin(self, other, budget)
    }

    fn project(
        &self,
        vars: &[String],
        distinct: bool,
        budget: &mut Budget,
    ) -> Result<Self, EvalError> {
        cops::project(self, vars, distinct, budget)
    }

    fn project_onto_available(
        &self,
        vars: &[String],
        budget: &mut Budget,
    ) -> Result<Self, EvalError> {
        cops::project_onto_available(self, vars, budget)
    }

    fn neutral() -> Self {
        CRel::neutral()
    }

    fn len(&self) -> usize {
        CRel::len(self)
    }

    fn cols(&self) -> &[String] {
        CRel::cols(self)
    }

    fn col_index(&self, v: &str) -> Option<usize> {
        CRel::col_index(self, v)
    }

    fn into_vrel(self) -> VRelation {
        self.to_vrel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::{ColumnType, Schema};
    use crate::value::Value;
    use htqo_cq::CqBuilder;

    fn db() -> Database {
        let mut db = Database::new();
        let mut r = Relation::new(Schema::new(&[
            ("a", ColumnType::Int),
            ("b", ColumnType::Int),
        ]));
        r.extend_rows(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ])
        .unwrap();
        db.insert_table("r", r);
        db
    }

    /// One pipeline, both carriers: identical answers, identical charges.
    fn run<C: Carrier>(budget: &mut Budget) -> VRelation {
        let q = CqBuilder::new()
            .atom("r", "r", &[("a", "X"), ("b", "Y")])
            .out_var("X")
            .build();
        let s = C::scan_query_atom(&db(), &q, htqo_cq::AtomId(0), budget).unwrap();
        let j = s.natural_join(&C::neutral(), budget).unwrap();
        let p = j.project(&["X".to_string()], true, budget).unwrap();
        p.into_vrel()
    }

    #[test]
    fn carriers_agree() {
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let rows = run::<VRelation>(&mut b1);
        let cols = run::<CRel>(&mut b2);
        assert!(rows.set_eq(&cols));
        assert_eq!(b1.charged(), b2.charged());
    }
}
