//! Secondary join indexes: equality lookups from a join-key value to the
//! base-table rows that carry it.
//!
//! An index maps an *encoded* key to the ascending rowids whose indexed
//! cell equals it. Keys are encoded by [`encode_key`], which is injective
//! with respect to [`Value`] equality: two cells encode to the same bytes
//! iff the engine's join kernels would treat them as equal (NULLs match
//! each other, floats are normalized so `NaN == NaN` and `-0.0 == 0.0`,
//! and types never cross — `Int(1)` and `Float(1.0)` stay distinct). The
//! encoding is also order-preserving within a type, so sorted-key
//! structures (the paged B-tree in `htqo-storage`) can binary-search it.
//!
//! Implementations live on both sides of the storage boundary:
//! [`MemIndex`] here (hash-build-once, used by tests and as the oracle),
//! and the paged B-tree in `htqo-storage` that seeks through the buffer
//! pool. The seek-join kernels ([`crate::iseek`]) only see the
//! [`JoinIndex`] trait, so both back ends produce bit-identical joins.

use crate::dict;
use crate::error::EvalError;
use crate::relation::Relation;
use crate::value::{norm_f64, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Type tag leading every encoded key (distinct types never compare equal).
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DATE: u8 = 4;

/// Appends the injective, order-preserving encoding of `v` to `out`.
///
/// `encode_key(a) == encode_key(b)` iff `a == b` under [`Value`]'s
/// equality (the join-key semantics), and byte order matches [`Value`]'s
/// total order within each type.
pub fn encode_key(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            // Flip the sign bit so the unsigned byte order matches i64 order.
            out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            // Normalize (all NaNs coincide, -0.0 == 0.0), then apply the
            // standard order-preserving IEEE-754 transform.
            let b = norm_f64(*x).to_bits();
            let ordered = if b >> 63 == 1 { !b } else { b | (1 << 63) };
            out.extend_from_slice(&ordered.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&((*d as u32) ^ (1 << 31)).to_be_bytes());
        }
    }
}

/// The encoding of `v` as an owned buffer (see [`encode_key`]).
pub fn key_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    encode_key(v, &mut out);
    out
}

/// An equality index over one column of a stored relation.
///
/// `seek` returns the rowids (ascending) whose indexed cell encodes to
/// `key`. A NULL key returns the NULL rows — join-key semantics, where
/// NULLs match each other.
pub trait JoinIndex: Send + Sync + fmt::Debug {
    /// Rowids carrying `key` (an [`encode_key`] buffer), ascending.
    fn seek(&self, key: &[u8]) -> Result<Vec<u32>, EvalError>;

    /// Number of distinct keys in the index (costing input).
    fn distinct_keys(&self) -> usize;

    /// Total number of indexed rows (costing input).
    fn entries(&self) -> usize;
}

/// An in-memory [`JoinIndex`]: sorted encoded keys with ascending rowid
/// posting lists, built in one pass over a stored relation. The oracle
/// implementation the paged B-tree is pinned against.
pub struct MemIndex {
    keys: Vec<Box<[u8]>>,
    posts: Vec<Vec<u32>>,
    entries: usize,
}

impl MemIndex {
    /// Builds the index over column `col` of `rel`.
    pub fn build(rel: &Relation, col: usize) -> MemIndex {
        let reader = dict::reader();
        let column = rel.column(col);
        let mut map: BTreeMap<Vec<u8>, Vec<u32>> = BTreeMap::new();
        for i in 0..rel.len() {
            let key = key_bytes(&column.value_with(i, &reader));
            map.entry(key).or_default().push(i as u32);
        }
        let entries = rel.len();
        let (keys, posts): (Vec<Box<[u8]>>, Vec<Vec<u32>>) = map
            .into_iter()
            .map(|(k, v)| (k.into_boxed_slice(), v))
            .unzip();
        MemIndex {
            keys,
            posts,
            entries,
        }
    }

    /// Sorted `(encoded key, ascending rowids)` pairs — the bulk-load
    /// input for the paged B-tree.
    pub fn pairs(&self) -> impl Iterator<Item = (&[u8], &[u32])> {
        self.keys
            .iter()
            .zip(&self.posts)
            .map(|(k, p)| (&**k, &p[..]))
    }
}

impl fmt::Debug for MemIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemIndex")
            .field("distinct_keys", &self.keys.len())
            .field("entries", &self.entries)
            .finish()
    }
}

impl JoinIndex for MemIndex {
    fn seek(&self, key: &[u8]) -> Result<Vec<u32>, EvalError> {
        match self.keys.binary_search_by(|k| (**k).cmp(key)) {
            Ok(i) => Ok(self.posts[i].clone()),
            Err(_) => Ok(Vec::new()),
        }
    }

    fn distinct_keys(&self) -> usize {
        self.keys.len()
    }

    fn entries(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    #[test]
    fn encoding_is_injective_for_value_equality() {
        let pairs = [
            (Value::Int(1), Value::Float(1.0), false),
            (Value::Float(0.0), Value::Float(-0.0), true),
            (Value::Float(f64::NAN), Value::Float(-f64::NAN), true),
            (Value::Null, Value::Null, true),
            (Value::Int(3), Value::Date(3), false),
            (Value::str("a"), Value::str("a"), true),
            (Value::str("a"), Value::str("b"), false),
        ];
        for (a, b, eq) in pairs {
            assert_eq!(key_bytes(&a) == key_bytes(&b), eq, "{a:?} vs {b:?}");
            assert_eq!(a == b, eq, "Value equality drifted for {a:?} vs {b:?}");
        }
    }

    #[test]
    fn encoding_preserves_order_within_type() {
        let ints = [i64::MIN, -2, 0, 5, i64::MAX];
        for w in ints.windows(2) {
            assert!(key_bytes(&Value::Int(w[0])) < key_bytes(&Value::Int(w[1])));
        }
        let floats = [f64::NEG_INFINITY, -1.5, 0.0, 2.5, f64::INFINITY];
        for w in floats.windows(2) {
            assert!(key_bytes(&Value::Float(w[0])) < key_bytes(&Value::Float(w[1])));
        }
        let dates = [i32::MIN, -1, 0, 7, i32::MAX];
        for w in dates.windows(2) {
            assert!(key_bytes(&Value::Date(w[0])) < key_bytes(&Value::Date(w[1])));
        }
    }

    #[test]
    fn mem_index_seeks_ascending_rowids() {
        let mut rel = Relation::new(Schema::new(&[("k", ColumnType::Int)]));
        for k in [5i64, 3, 5, 1, 5] {
            rel.push_row(vec![Value::Int(k)]).unwrap();
        }
        let idx = MemIndex::build(&rel, 0);
        assert_eq!(idx.seek(&key_bytes(&Value::Int(5))).unwrap(), vec![0, 2, 4]);
        assert_eq!(idx.seek(&key_bytes(&Value::Int(1))).unwrap(), vec![3]);
        assert_eq!(
            idx.seek(&key_bytes(&Value::Int(9))).unwrap(),
            Vec::<u32>::new()
        );
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.entries(), 5);
    }

    #[test]
    fn mem_index_matches_nulls_to_nulls() {
        let mut rel = Relation::new(Schema::new(&[("k", ColumnType::Str)]));
        rel.push_row(vec![Value::str("x")]).unwrap();
        rel.push_row(vec![Value::Null]).unwrap();
        let idx = MemIndex::build(&rel, 0);
        assert_eq!(idx.seek(&key_bytes(&Value::Null)).unwrap(), vec![1]);
        assert_eq!(idx.seek(&key_bytes(&Value::str("x"))).unwrap(), vec![0]);
    }
}
