//! Base relations: a schema plus a vector of rows.

use crate::schema::{ColumnType, Schema};
use crate::value::{Row, Value};
use std::fmt;

/// Errors raised when mutating a relation.
#[derive(Clone, Debug, PartialEq)]
pub enum RelationError {
    /// Row arity does not match the schema.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Row arity received.
        got: usize,
    },
    /// A cell's type does not match its column (NULL is always accepted).
    TypeMismatch {
        /// Offending column name.
        column: String,
        /// Expected column type.
        expected: ColumnType,
        /// Received value's type name.
        got: &'static str,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            RelationError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(f, "column `{column}` expects {expected:?}, got {got}")
            }
        }
    }
}

impl std::error::Error for RelationError {}

/// A stored relation (bag of rows, insertion-ordered).
#[derive(Clone, Debug, Default)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Row>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Appends a row after arity/type checking.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), RelationError> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (value, col) in row.iter().zip(self.schema.columns()) {
            let ok = matches!(
                (value, col.ty),
                (Value::Null, _)
                    | (Value::Int(_), ColumnType::Int)
                    | (Value::Float(_), ColumnType::Float)
                    | (Value::Str(_), ColumnType::Str)
                    | (Value::Date(_), ColumnType::Date)
            );
            if !ok {
                return Err(RelationError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty,
                    got: value.type_name(),
                });
            }
        }
        self.rows.push(row.into_boxed_slice());
        Ok(())
    }

    /// Appends many rows (each checked).
    pub fn extend_rows<I: IntoIterator<Item = Vec<Value>>>(
        &mut self,
        rows: I,
    ) -> Result<(), RelationError> {
        for r in rows {
            self.push_row(r)?;
        }
        Ok(())
    }

    /// Reserves capacity for `n` more rows.
    pub fn reserve(&mut self, n: usize) {
        self.rows.reserve(n);
    }

    /// Approximate in-memory size in bytes (used to map "database size" to
    /// the paper's MB axis in Figure 8).
    pub fn approx_bytes(&self) -> usize {
        let cell = std::mem::size_of::<Value>();
        let mut total = self.rows.len() * (std::mem::size_of::<Row>() + self.schema.arity() * cell);
        // Count string payloads.
        for row in &self.rows {
            for v in row.iter() {
                if let Value::Str(s) = v {
                    total += s.len();
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(&[("id", ColumnType::Int), ("name", ColumnType::Str)])
    }

    #[test]
    fn push_checks_arity() {
        let mut r = Relation::new(schema());
        let err = r.push_row(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            RelationError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn push_checks_types() {
        let mut r = Relation::new(schema());
        let err = r
            .push_row(vec![Value::str("x"), Value::str("y")])
            .unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn null_is_accepted_anywhere() {
        let mut r = Relation::new(schema());
        r.push_row(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn extend_rows_and_accessors() {
        let mut r = Relation::new(schema());
        r.extend_rows(vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
        ])
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[1][0], Value::Int(2));
        assert!(r.approx_bytes() > 0);
    }
}
