//! Base relations, stored **columnar**: a schema plus one typed
//! [`Column`] per attribute (strings dictionary-encoded through
//! [`crate::dict`]). Scans read the columns directly; the row accessors
//! ([`Relation::row`], [`Relation::iter_rows`], [`Relation::to_rows`])
//! materialize boxed rows on demand as the compatibility view for the
//! row-based oracles, CSV export and tests.

use crate::column::Column;
use crate::dict::{self, DictReader};
use crate::schema::{ColumnType, Schema};
use crate::value::{Row, Value};
use std::fmt;

/// Errors raised when mutating a relation.
#[derive(Clone, Debug, PartialEq)]
pub enum RelationError {
    /// Row arity does not match the schema.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Row arity received.
        got: usize,
    },
    /// A cell's type does not match its column (NULL is always accepted).
    TypeMismatch {
        /// Offending column name.
        column: String,
        /// Expected column type.
        expected: ColumnType,
        /// Received value's type name.
        got: &'static str,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            RelationError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(f, "column `{column}` expects {expected:?}, got {got}")
            }
        }
    }
}

impl std::error::Error for RelationError {}

/// A stored relation (bag of rows, insertion-ordered), laid out one typed
/// column per attribute.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
    /// Total bytes of string payload pushed, counted per occurrence (the
    /// row representation stored one `Arc<str>` per cell, so duplicated
    /// strings counted once per row); keeps [`Relation::approx_bytes`]
    /// numerically identical to the historical row-layout formula that
    /// calibrates the Figure 8 "database size (MB)" axis.
    str_bytes: usize,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema.columns().iter().map(|c| Column::new(c.ty)).collect();
        Relation {
            schema,
            columns,
            len: 0,
            str_bytes: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stored columns, parallel to the schema.
    pub fn columns_data(&self) -> &[Column] {
        &self.columns
    }

    /// Column `i` of the stored data.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Row `i`, materialized (acquires the dictionary lock once; prefer
    /// [`Relation::iter_rows`] / [`Relation::to_rows`] for whole-relation
    /// passes).
    pub fn row(&self, i: usize) -> Row {
        self.row_with(i, &dict::reader())
    }

    /// Row `i`, materialized through an already-held dictionary reader.
    pub fn row_with(&self, i: usize, reader: &DictReader) -> Row {
        assert!(i < self.len, "row {i} out of bounds ({} rows)", self.len);
        let row: Vec<Value> = self
            .columns
            .iter()
            .map(|c| c.value_with(i, reader))
            .collect();
        row.into_boxed_slice()
    }

    /// Iterates materialized rows. The dictionary lock is taken per row,
    /// not across the whole iteration, so callers may freely intern (e.g.
    /// push into another relation) between items.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len).map(|i| self.row(i))
    }

    /// All rows, materialized in one pass under a single dictionary lock.
    pub fn to_rows(&self) -> Vec<Row> {
        let reader = dict::reader();
        (0..self.len).map(|i| self.row_with(i, &reader)).collect()
    }

    /// Validates `row` against the schema.
    fn check_row(&self, row: &[Value]) -> Result<(), RelationError> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (value, col) in row.iter().zip(self.schema.columns()) {
            let ok = matches!(
                (value, col.ty),
                (Value::Null, _)
                    | (Value::Int(_), ColumnType::Int)
                    | (Value::Float(_), ColumnType::Float)
                    | (Value::Str(_), ColumnType::Str)
                    | (Value::Date(_), ColumnType::Date)
            );
            if !ok {
                return Err(RelationError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty,
                    got: value.type_name(),
                });
            }
        }
        Ok(())
    }

    /// Appends a validated row to the columns (no checks here).
    fn push_unchecked_inner(&mut self, row: &[Value]) {
        for (col, value) in self.columns.iter_mut().zip(row) {
            if let Value::Str(s) = value {
                self.str_bytes += s.len();
            }
            col.push_value(value);
        }
        self.len += 1;
    }

    /// Appends a row after arity/type checking.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), RelationError> {
        self.check_row(&row)?;
        self.push_unchecked_inner(&row);
        Ok(())
    }

    /// Appends many rows (each checked).
    pub fn extend_rows<I: IntoIterator<Item = Vec<Value>>>(
        &mut self,
        rows: I,
    ) -> Result<(), RelationError> {
        for r in rows {
            self.push_row(r)?;
        }
        Ok(())
    }

    /// Appends many rows with schema checks compiled to `debug_assert!`s
    /// only — the bulk-load path for generated data whose types are
    /// correct by construction (`tpch::dbgen`). In release builds this
    /// skips the per-row arity/type validation entirely.
    pub fn push_many_unchecked<I: IntoIterator<Item = Vec<Value>>>(&mut self, rows: I) {
        for row in rows {
            debug_assert!(
                self.check_row(&row).is_ok(),
                "push_many_unchecked: row violates schema: {:?}",
                self.check_row(&row)
            );
            self.push_unchecked_inner(&row);
        }
    }

    /// Reserves capacity for `n` more rows.
    pub fn reserve(&mut self, n: usize) {
        for col in &mut self.columns {
            col.reserve(n);
        }
    }

    /// Approximate in-memory size in bytes (used to map "database size"
    /// to the paper's MB axis in Figure 8). Deliberately the **row**
    /// representation's formula — two words of `Box<[Value]>` header plus
    /// `arity` cells plus string payloads per row — so the axis
    /// calibration is unchanged by the columnar storage rewrite.
    pub fn approx_bytes(&self) -> usize {
        let cell = std::mem::size_of::<Value>();
        self.len * (std::mem::size_of::<Row>() + self.schema.arity() * cell) + self.str_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(&[("id", ColumnType::Int), ("name", ColumnType::Str)])
    }

    #[test]
    fn push_checks_arity() {
        let mut r = Relation::new(schema());
        let err = r.push_row(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            RelationError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn push_checks_types() {
        let mut r = Relation::new(schema());
        let err = r
            .push_row(vec![Value::str("x"), Value::str("y")])
            .unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn null_is_accepted_anywhere() {
        let mut r = Relation::new(schema());
        r.push_row(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(&*r.row(0), &[Value::Null, Value::Null]);
    }

    #[test]
    fn extend_rows_and_accessors() {
        let mut r = Relation::new(schema());
        r.extend_rows(vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
        ])
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1)[0], Value::Int(2));
        assert!(r.approx_bytes() > 0);
    }

    #[test]
    fn rows_roundtrip_through_columns() {
        let mut r = Relation::new(Schema::new(&[
            ("i", ColumnType::Int),
            ("f", ColumnType::Float),
            ("s", ColumnType::Str),
            ("d", ColumnType::Date),
        ]));
        let rows = vec![
            vec![
                Value::Int(-5),
                Value::Float(2.5),
                Value::str("dup"),
                Value::Date(100),
            ],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
            vec![
                Value::Int(7),
                Value::Float(-0.0),
                Value::str("dup"),
                Value::Date(-3),
            ],
        ];
        r.extend_rows(rows.clone()).unwrap();
        let back = r.to_rows();
        for (got, want) in back.iter().zip(&rows) {
            assert_eq!(got.as_ref(), want.as_slice());
        }
        assert_eq!(r.iter_rows().count(), 3);
    }

    #[test]
    fn push_many_unchecked_matches_checked_push() {
        let mut a = Relation::new(schema());
        let mut b = Relation::new(schema());
        let rows = vec![
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Null, Value::str("y")],
        ];
        a.extend_rows(rows.clone()).unwrap();
        b.push_many_unchecked(rows);
        assert_eq!(a.to_rows(), b.to_rows());
        assert_eq!(a.approx_bytes(), b.approx_bytes());
    }

    #[test]
    fn approx_bytes_uses_row_formula() {
        let mut r = Relation::new(schema());
        r.push_row(vec![Value::Int(1), Value::str("abcd")]).unwrap();
        r.push_row(vec![Value::Int(2), Value::str("abcd")]).unwrap();
        let cell = std::mem::size_of::<Value>();
        let expected = 2 * (std::mem::size_of::<Row>() + 2 * cell) + 8;
        assert_eq!(r.approx_bytes(), expected);
    }
}
