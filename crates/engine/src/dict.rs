//! The process-wide string dictionary backing columnar string storage.
//!
//! Columnar relations store strings as fixed-width `u32` *codes* into this
//! dictionary, so join keys, group keys and dedup hashes over string
//! columns compare and hash machine words instead of chasing `Arc<str>`
//! pointers. One dictionary is shared by the whole catalog (not one per
//! relation) so a code is meaningful across relations: two cells are equal
//! iff their codes are equal, and a join between any two columnar
//! relations never has to re-encode either side.
//!
//! The dictionary also memoizes each string's 64-bit content hash at
//! intern time ([`DictReader::hash_of`]). Kernels hash *content*, not
//! codes, so the order in which strings were first interned (which varies
//! across processes and test interleavings) never leaks into hash-derived
//! row orders such as the partitioned join's partition assignment.
//!
//! Interning takes the write lock and happens only on load paths (CSV
//! import, `dbgen`, row→columnar conversion); kernels are read-only and
//! take a [`DictReader`] once per column pass, then index with plain
//! loads.

use crate::hash::FxHashMap;
use htqo_hypergraph::fxhash::fx_hash_one;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard};

/// Code reserved for NULL slots in string columns; never interned.
pub const NULL_CODE: u32 = u32::MAX;

#[derive(Default)]
struct DictInner {
    map: FxHashMap<Arc<str>, u32>,
    strs: Vec<Arc<str>>,
    hashes: Vec<u64>,
}

fn dict() -> &'static RwLock<DictInner> {
    static DICT: OnceLock<RwLock<DictInner>> = OnceLock::new();
    DICT.get_or_init(|| RwLock::new(DictInner::default()))
}

/// Resident heap bytes of the dictionary, maintained at intern time.
/// Strings are never evicted, so this only grows; ingest paths snapshot
/// it before and after a load and charge the delta to their budget.
static RESIDENT_BYTES: AtomicU64 = AtomicU64::new(0);

/// Per-string bookkeeping overhead beyond the text itself: the `Arc`
/// header, the map entry, and the `strs`/`hashes` slots.
const ENTRY_OVERHEAD: u64 = 64;

/// Total heap bytes resident in the dictionary (text plus bookkeeping).
pub fn resident_bytes() -> u64 {
    RESIDENT_BYTES.load(Ordering::Relaxed)
}

/// Content hash used for dictionary codes and `Mixed`-column string cells
/// (must agree, so a coded cell and a boxed cell with the same text hash
/// equal).
pub fn str_hash(s: &str) -> u64 {
    fx_hash_one(&s)
}

/// Interns `s`, returning its code (idempotent).
pub fn intern(s: &str) -> u32 {
    // Fast path: already interned.
    if let Some(&c) = dict().read().expect("dict poisoned").map.get(s) {
        return c;
    }
    let mut d = dict().write().expect("dict poisoned");
    if let Some(&c) = d.map.get(s) {
        return c;
    }
    let code = u32::try_from(d.strs.len()).expect("string dictionary overflow");
    assert!(code != NULL_CODE, "string dictionary full");
    let arc: Arc<str> = Arc::from(s);
    d.strs.push(arc.clone());
    d.hashes.push(str_hash(s));
    d.map.insert(arc, code);
    RESIDENT_BYTES.fetch_add(s.len() as u64 + ENTRY_OVERHEAD, Ordering::Relaxed);
    code
}

/// Interns an already-allocated `Arc<str>` without copying it on a miss.
pub fn intern_arc(s: &Arc<str>) -> u32 {
    if let Some(&c) = dict().read().expect("dict poisoned").map.get(&**s) {
        return c;
    }
    let mut d = dict().write().expect("dict poisoned");
    if let Some(&c) = d.map.get(&**s) {
        return c;
    }
    let code = u32::try_from(d.strs.len()).expect("string dictionary overflow");
    assert!(code != NULL_CODE, "string dictionary full");
    d.strs.push(s.clone());
    d.hashes.push(str_hash(s));
    d.map.insert(s.clone(), code);
    RESIDENT_BYTES.fetch_add(s.len() as u64 + ENTRY_OVERHEAD, Ordering::Relaxed);
    code
}

/// Resolves a code to its string (cheap `Arc` clone).
pub fn resolve(code: u32) -> Arc<str> {
    dict().read().expect("dict poisoned").strs[code as usize].clone()
}

/// A read guard over the dictionary: take once per column pass, then
/// resolve/hash codes with plain indexed loads.
pub struct DictReader(RwLockReadGuard<'static, DictInner>);

/// Acquires a read view of the dictionary.
pub fn reader() -> DictReader {
    DictReader(dict().read().expect("dict poisoned"))
}

impl DictReader {
    /// The string behind `code`.
    pub fn str_of(&self, code: u32) -> &str {
        &self.0.strs[code as usize]
    }

    /// Shared handle to the string behind `code`.
    pub fn arc_of(&self, code: u32) -> Arc<str> {
        self.0.strs[code as usize].clone()
    }

    /// The memoized content hash of the string behind `code`.
    #[inline]
    pub fn hash_of(&self, code: u32) -> u64 {
        self.0.hashes[code as usize]
    }

    /// The code of `s`, if it has been interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.0.map.get(s).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_content_based() {
        let a = intern("columnar-test-alpha");
        let b = intern("columnar-test-alpha");
        assert_eq!(a, b);
        let c = intern("columnar-test-beta");
        assert_ne!(a, c);
        assert_eq!(&*resolve(a), "columnar-test-alpha");
    }

    #[test]
    fn intern_arc_matches_intern() {
        let s: Arc<str> = Arc::from("columnar-test-gamma");
        let a = intern_arc(&s);
        assert_eq!(a, intern("columnar-test-gamma"));
    }

    #[test]
    fn reader_exposes_hashes() {
        let code = intern("columnar-test-delta");
        let d = reader();
        assert_eq!(d.hash_of(code), str_hash("columnar-test-delta"));
        assert_eq!(d.code_of("columnar-test-delta"), Some(code));
        assert_eq!(d.str_of(code), "columnar-test-delta");
    }
}
