//! Grace-style spill-to-disk support for the join and aggregation
//! kernels (the memory governor's external-memory escape hatch).
//!
//! When a byte reservation is denied mid-build (see
//! [`Budget::try_reserve_bytes`](crate::error::Budget::try_reserve_bytes)),
//! an operator partitions its input to checksummed temp files under a
//! per-operator [`SpillDir`] and re-processes partition by partition,
//! recursing with a level-salted partition function when a partition is
//! still too big (skew). The row frame format is shared by both carriers:
//!
//! ```text
//! frame   := len:u32 LE | checksum:u64 LE | payload
//! payload := value*            (one frame per row)
//! value   := 0x00                          -- NULL
//!          | 0x01 i64:LE                   -- Int
//!          | 0x02 f64-bits:LE              -- Float
//!          | 0x03 len:u32 LE utf8-bytes    -- Str (re-interned on read)
//!          | 0x04 i32:LE                   -- Date
//! ```
//!
//! The checksum is the engine's FxHash over the payload bytes; a
//! mismatch (torn write, bit rot, truncation) surfaces as a clean
//! [`EvalError::SpillIo`], never a panic or a wrong answer. Temp files
//! live in `HTQO_SPILL_DIR` (or the system temp dir) and are removed
//! when the [`SpillDir`] guard drops — including on panic or
//! cancellation unwinds — with an explicit, failpoint-instrumented
//! [`SpillDir::cleanup`] for the normal path.
//!
//! Failpoint sites: `spill::write` (per frame written), `spill::read`
//! (per frame read), `spill::cleanup` (explicit cleanup only; the Drop
//! fallback never fires a failpoint, since panicking during an unwind
//! would abort).

use crate::error::EvalError;
use crate::hash::FxHasher;
use crate::value::{Row, Value};
use std::fs;
use std::hash::{Hash, Hasher};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Partition fan-out per spill level (8 = 3 bits). Small enough that a
/// recursion level costs few file handles, large enough that two levels
/// already split 64 ways.
pub const SPILL_FANOUT: usize = 8;

/// Maximum recursive re-partitioning depth. At the bottom the operator
/// reserves memory unconditionally and surfaces a clean
/// `MemoryExceeded` if the pool cannot cover even a maximally split
/// partition (e.g. one giant duplicate key).
pub const MAX_SPILL_LEVEL: u32 = 6;

/// Assigns `hash` to one of [`SPILL_FANOUT`] partitions at `level`.
///
/// Level-salted and deliberately different from the parallel kernels'
/// [`crate::hash::partition_of`] (which takes the high bits directly):
/// every level remixes with a distinct odd multiplier so rows that
/// collided at level *k* redistribute at level *k + 1*, and rows that
/// landed in one in-memory parallel partition still spread across spill
/// partitions.
#[inline]
pub fn spill_partition(hash: u64, level: u32) -> usize {
    let salt = (level as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let x = (hash ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let x = x ^ (x >> 32);
    (x as usize) & (SPILL_FANOUT - 1)
}

fn io_err(context: &str, e: std::io::Error) -> EvalError {
    EvalError::SpillIo(format!("{context}: {e}"))
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    payload.hash(&mut h);
    h.finish()
}

/// Monotonic suffix making concurrent spill dirs of one process unique.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A per-operator spill directory with guaranteed reclamation: removal
/// happens in [`SpillDir::cleanup`] (normal path, failpoint-checked) or
/// in `Drop` (error/panic/cancellation unwinds, best effort, no
/// failpoints). Nothing outside this directory is ever touched.
pub struct SpillDir {
    path: PathBuf,
    file_seq: AtomicU64,
    cleaned: bool,
}

impl SpillDir {
    /// Creates a fresh unique directory under `base` (when `Some`, e.g.
    /// from `Budget::spill_dir`), else under `HTQO_SPILL_DIR`, else the
    /// system temp dir.
    pub fn create(base: Option<&Path>) -> Result<SpillDir, EvalError> {
        let base = match base {
            Some(p) => p.to_path_buf(),
            None => match std::env::var_os("HTQO_SPILL_DIR") {
                Some(d) if !d.is_empty() => PathBuf::from(d),
                _ => std::env::temp_dir(),
            },
        };
        let unique = format!(
            "htqo-spill-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let path = base.join(unique);
        fs::create_dir_all(&path).map_err(|e| io_err("creating spill dir", e))?;
        Ok(SpillDir {
            path,
            file_seq: AtomicU64::new(0),
            cleaned: false,
        })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A fresh file path inside the directory, tagged for debuggability
    /// (`tag` must be filename-safe).
    pub fn next_file(&self, tag: &str) -> PathBuf {
        let n = self.file_seq.fetch_add(1, Ordering::Relaxed);
        self.path.join(format!("{tag}-{n}.spill"))
    }

    /// Removes the directory and everything in it. The explicit-path
    /// twin of the `Drop` fallback, with a `spill::cleanup` failpoint so
    /// the chaos suite can inject cleanup failures; even when removal
    /// errors, the guard stops retrying (the OS temp reaper owns leaks
    /// past this point — we never leave *silently*).
    pub fn cleanup(&mut self) -> Result<(), EvalError> {
        crate::fail_point!("spill::cleanup");
        self.cleaned = true;
        fs::remove_dir_all(&self.path).map_err(|e| io_err("removing spill dir", e))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        if !self.cleaned {
            // Best effort, no failpoints: this runs on panic unwinds.
            let _ = fs::remove_dir_all(&self.path);
        }
    }
}

/// A finished spill file: its path plus row/byte counts (the byte count
/// feeds the re-load reservation estimate).
#[derive(Debug)]
pub struct SpillFile {
    /// Path inside the owning [`SpillDir`].
    pub path: PathBuf,
    /// Frames (rows) written.
    pub rows: u64,
    /// Total bytes written (frame headers included).
    pub bytes: u64,
}

/// Buffered frame writer (see the module docs for the format).
pub struct SpillWriter {
    w: BufWriter<fs::File>,
    path: PathBuf,
    scratch: Vec<u8>,
    rows: u64,
    bytes: u64,
}

impl SpillWriter {
    /// Creates (truncates) `path` for writing.
    pub fn create(path: PathBuf) -> Result<SpillWriter, EvalError> {
        let f = fs::File::create(&path).map_err(|e| io_err("creating spill file", e))?;
        Ok(SpillWriter {
            w: BufWriter::new(f),
            path,
            scratch: Vec::new(),
            rows: 0,
            bytes: 0,
        })
    }

    /// Appends one row as a checksummed frame.
    pub fn write_row(&mut self, row: &[Value]) -> Result<(), EvalError> {
        crate::fail_point!("spill::write");
        self.scratch.clear();
        for v in row {
            encode_value(v, &mut self.scratch);
        }
        let len = u32::try_from(self.scratch.len())
            .map_err(|_| EvalError::SpillIo("spill row over 4 GiB".into()))?;
        let sum = checksum(&self.scratch);
        self.w
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.w.write_all(&sum.to_le_bytes()))
            .and_then(|()| self.w.write_all(&self.scratch))
            .map_err(|e| io_err("writing spill frame", e))?;
        self.rows += 1;
        self.bytes += 12 + self.scratch.len() as u64;
        Ok(())
    }

    /// Flushes and closes, returning the file's stats.
    pub fn finish(mut self) -> Result<SpillFile, EvalError> {
        self.w
            .flush()
            .map_err(|e| io_err("flushing spill file", e))?;
        Ok(SpillFile {
            path: std::mem::take(&mut self.path),
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

/// Buffered frame reader with checksum verification.
pub struct SpillReader {
    r: BufReader<fs::File>,
    buf: Vec<u8>,
}

impl SpillReader {
    /// Opens a file written by [`SpillWriter`].
    pub fn open(path: &Path) -> Result<SpillReader, EvalError> {
        let f = fs::File::open(path).map_err(|e| io_err("opening spill file", e))?;
        Ok(SpillReader {
            r: BufReader::new(f),
            buf: Vec::new(),
        })
    }

    /// Reads the next row, `None` at a clean end of file. A truncated
    /// frame or checksum mismatch is [`EvalError::SpillIo`].
    pub fn read_row(&mut self) -> Result<Option<Row>, EvalError> {
        crate::fail_point!("spill::read");
        let mut len = [0u8; 4];
        match self.r.read_exact(&mut len) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(io_err("reading spill frame header", e)),
        }
        let len = u32::from_le_bytes(len) as usize;
        let mut sum = [0u8; 8];
        self.r
            .read_exact(&mut sum)
            .map_err(|e| io_err("reading spill checksum", e))?;
        let expected = u64::from_le_bytes(sum);
        self.buf.resize(len, 0);
        self.r
            .read_exact(&mut self.buf)
            .map_err(|e| io_err("reading spill payload", e))?;
        if checksum(&self.buf) != expected {
            return Err(EvalError::SpillIo(
                "spill frame checksum mismatch (corrupt or torn write)".into(),
            ));
        }
        let mut vals = Vec::new();
        let mut at = 0usize;
        while at < self.buf.len() {
            let (v, next) = decode_value(&self.buf, at)?;
            vals.push(v);
            at = next;
        }
        Ok(Some(vals.into_boxed_slice()))
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(4);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn decode_value(buf: &[u8], at: usize) -> Result<(Value, usize), EvalError> {
    let corrupt = || EvalError::SpillIo("truncated value in spill payload".into());
    let tag = *buf.get(at).ok_or_else(corrupt)?;
    let at = at + 1;
    let take = |n: usize| buf.get(at..at + n).ok_or_else(corrupt);
    Ok(match tag {
        0 => (Value::Null, at),
        1 => (
            Value::Int(i64::from_le_bytes(take(8)?.try_into().unwrap())),
            at + 8,
        ),
        2 => (
            Value::Float(f64::from_bits(u64::from_le_bytes(
                take(8)?.try_into().unwrap(),
            ))),
            at + 8,
        ),
        3 => {
            let n = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            let bytes = buf.get(at + 4..at + 4 + n).ok_or_else(corrupt)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| EvalError::SpillIo("invalid utf-8 in spill payload".into()))?;
            (Value::str(s), at + 4 + n)
        }
        4 => (
            Value::Date(i32::from_le_bytes(take(4)?.try_into().unwrap())),
            at + 4,
        ),
        _ => {
            return Err(EvalError::SpillIo(format!(
                "unknown value tag {tag} in spill payload"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: Vec<Value>) -> Row {
        vals.into_boxed_slice()
    }

    #[test]
    fn round_trips_all_value_types() {
        let mut dir = SpillDir::create(None).unwrap();
        let rows = vec![
            row(vec![
                Value::Null,
                Value::Int(-42),
                Value::Float(1.5),
                Value::str("héllo, world"),
                Value::Date(8766),
            ]),
            row(vec![Value::Float(f64::NAN), Value::str("")]),
            row(vec![]),
        ];
        let path = dir.next_file("t");
        let mut w = SpillWriter::create(path).unwrap();
        for r in &rows {
            w.write_row(r).unwrap();
        }
        let f = w.finish().unwrap();
        assert_eq!(f.rows, 3);
        let mut r = SpillReader::open(&f.path).unwrap();
        let mut back = Vec::new();
        while let Some(row) = r.read_row().unwrap() {
            back.push(row);
        }
        assert_eq!(back, rows);
        dir.cleanup().unwrap();
    }

    #[test]
    fn checksum_detects_corruption() {
        let dir = SpillDir::create(None).unwrap();
        let path = dir.next_file("c");
        let mut w = SpillWriter::create(path).unwrap();
        w.write_row(&row(vec![Value::Int(7), Value::str("abcdef")]))
            .unwrap();
        let f = w.finish().unwrap();
        // Flip a payload byte.
        let mut bytes = fs::read(&f.path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&f.path, bytes).unwrap();
        let mut r = SpillReader::open(&f.path).unwrap();
        let err = r.read_row().unwrap_err();
        assert!(matches!(err, EvalError::SpillIo(ref m) if m.contains("checksum")));
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let dir = SpillDir::create(None).unwrap();
        let path = dir.next_file("t");
        let mut w = SpillWriter::create(path).unwrap();
        w.write_row(&row(vec![Value::Int(1), Value::Int(2)]))
            .unwrap();
        let f = w.finish().unwrap();
        let bytes = fs::read(&f.path).unwrap();
        fs::write(&f.path, &bytes[..bytes.len() - 3]).unwrap();
        let mut r = SpillReader::open(&f.path).unwrap();
        assert!(matches!(r.read_row(), Err(EvalError::SpillIo(_))));
    }

    #[test]
    fn dir_guard_removes_on_drop_and_cleanup() {
        let dir = SpillDir::create(None).unwrap();
        let p = dir.path().to_path_buf();
        let mut w = SpillWriter::create(dir.next_file("x")).unwrap();
        w.write_row(&row(vec![Value::Int(1)])).unwrap();
        w.finish().unwrap();
        assert!(p.exists());
        drop(dir);
        assert!(!p.exists(), "Drop must reclaim the spill dir");

        let mut dir = SpillDir::create(None).unwrap();
        let p = dir.path().to_path_buf();
        dir.cleanup().unwrap();
        assert!(!p.exists());
        drop(dir); // idempotent after cleanup
    }

    #[test]
    fn dir_guard_survives_panic_unwind() {
        let dir = SpillDir::create(None).unwrap();
        let p = dir.path().to_path_buf();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _w = SpillWriter::create(dir.next_file("p")).unwrap();
            panic!("deliberate");
        }));
        assert!(res.is_err());
        assert!(!p.exists(), "unwind must reclaim the spill dir");
    }

    #[test]
    fn level_salting_redistributes_partitions() {
        // Rows colliding in one level-0 partition must spread at level 1.
        let hashes: Vec<u64> = (0..64u64)
            .map(|i| crate::hash::hash_key(&row(vec![Value::Int(i as i64)]), &[0]))
            .filter(|&h| spill_partition(h, 0) == 0)
            .collect();
        assert!(hashes.len() > 1, "need some level-0 collisions");
        let spread: std::collections::HashSet<usize> =
            hashes.iter().map(|&h| spill_partition(h, 1)).collect();
        assert!(
            spread.len() > 1,
            "level salt failed to redistribute: {spread:?}"
        );
    }
}
