//! Minimal parallel runtime for the execution layer.
//!
//! The environment has no registry access, so instead of `rayon` this
//! module provides the two primitives the evaluators need — an indexed
//! [`parallel_map`] and a two-way [`join2`] — on top of
//! `std::thread::scope`. A global permit pool bounds the number of live
//! worker threads across *nested* parallel sections, so recursive
//! tree-parallel evaluation cannot oversubscribe the machine.
//!
//! # Panic containment
//!
//! A panic inside a mapped closure must not abort the process or leak
//! worker permits: both primitives run user closures under
//! `catch_unwind`, guarantee permit return via a drop guard, and surface
//! the first panic as [`EvalError::WorkerPanicked`]. Remaining items are
//! abandoned (the map is all-or-nothing), and since shared [`Budget`]
//! handles flush on drop, budget accounting stays exact across a
//! contained panic. The hybrid optimizer's fallback ladder relies on
//! this: a panicking plan degrades to the next rung instead of taking the
//! process down.
//!
//! [`Budget`]: crate::error::Budget
//!
//! Thread count resolution order: explicit `workers` argument >
//! [`set_threads`] > `HTQO_THREADS` env var > `available_parallelism()`.
//! Requests from [`set_threads`] and the env var are clamped to the
//! machine's [`hardware_threads`] — oversubscribing a small host only adds
//! scheduling overhead (a 4-thread pool on a 1-CPU box measurably slows
//! the bushy workload). Tests that deliberately oversubscribe to exercise
//! the parallel schedule use [`set_threads_exact`].

use crate::error::EvalError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicIsize, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// The thread count most recently *asked for* (before clamping); `0` =
/// no explicit request yet. Reported in `QueryOutcome` so a clamped
/// `--threads` is visible rather than silent.
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

/// Carrier default: `0` = unset (env var / columnar), `1` = rows,
/// `2` = columnar.
static CARRIER: AtomicU8 = AtomicU8::new(0);

/// Worker permits beyond the calling thread. `-1` = uninitialized.
static PERMITS: AtomicIsize = AtomicIsize::new(-1);

/// The machine's available parallelism (cached; at least 1).
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// `(requested, effective)` default thread counts from the environment.
fn default_threads_pair() -> (usize, usize) {
    static DEFAULT: OnceLock<(usize, usize)> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let requested = std::env::var("HTQO_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(hardware_threads);
        (requested, requested.min(hardware_threads()))
    })
}

fn default_threads() -> usize {
    default_threads_pair().1
}

/// The execution-layer thread count currently in effect.
pub fn num_threads() -> usize {
    match CONFIGURED.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// The thread count currently *requested* (via [`set_threads`],
/// [`set_threads_exact`] or `HTQO_THREADS`), before the hardware clamp.
/// Equals [`num_threads`] unless the request was clamped.
pub fn requested_threads() -> usize {
    match REQUESTED.load(Ordering::Relaxed) {
        0 => default_threads_pair().0,
        n => n,
    }
}

/// Overrides the thread count process-wide (the `--threads` knob of the
/// figure harnesses). `1` disables parallel execution entirely. The
/// request is clamped to [`hardware_threads`]: extra workers on an
/// already-saturated host only add scheduling overhead. The pre-clamp
/// request stays visible through [`requested_threads`].
pub fn set_threads(n: usize) {
    REQUESTED.store(n.max(1), Ordering::Relaxed);
    set_effective_threads(n.max(1).min(hardware_threads()));
}

/// Like [`set_threads`], but without the hardware clamp — for tests that
/// need a parallel schedule to exist even on a single-core host (panic
/// containment, determinism-across-interleavings suites).
pub fn set_threads_exact(n: usize) {
    REQUESTED.store(n.max(1), Ordering::Relaxed);
    set_effective_threads(n.max(1));
}

fn set_effective_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
    // Re-arm the permit pool for the new width.
    PERMITS.store(n as isize - 1, Ordering::Relaxed);
}

/// Worker permits currently available beyond the calling thread. Equals
/// `num_threads() - 1` whenever no parallel section is in flight — the
/// invariant the chaos suite asserts after every injected fault to prove
/// the pool never leaks.
pub fn permits_available() -> isize {
    match PERMITS.load(Ordering::Relaxed) {
        -1 => num_threads() as isize - 1, // pool not yet armed
        n => n,
    }
}

/// Whether evaluators default to the columnar carrier ([`crate::crel::CRel`])
/// rather than the row representation. Resolution order:
/// [`set_columnar_default`] > `HTQO_COLUMNAR` env var (`0`/`false` turns
/// it off) > columnar.
pub fn columnar_default() -> bool {
    match CARRIER.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static DEFAULT: OnceLock<bool> = OnceLock::new();
            *DEFAULT.get_or_init(|| {
                !matches!(
                    std::env::var("HTQO_COLUMNAR").as_deref(),
                    Ok("0") | Ok("false") | Ok("off")
                )
            })
        }
    }
}

/// Overrides the carrier default process-wide (the `--columnar` /
/// `--rows` knob of the figure harnesses).
pub fn set_columnar_default(columnar: bool) {
    CARRIER.store(if columnar { 2 } else { 1 }, Ordering::Relaxed);
}

/// Factorized-result default: `0` = unset (env var / on), `1` = off,
/// `2` = on.
static FACTORIZED: AtomicU8 = AtomicU8::new(0);

/// Whether eligible aggregate queries default to the factorized
/// (cover-based) evaluation path ([`crate::factorized`]) instead of
/// materializing the full join. Resolution order:
/// [`set_factorized_default`] > `HTQO_FACTORIZED` env var (`0`/`false`/
/// `off` turns it off) > on.
pub fn factorized_default() -> bool {
    match FACTORIZED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static DEFAULT: OnceLock<bool> = OnceLock::new();
            *DEFAULT.get_or_init(|| {
                !matches!(
                    std::env::var("HTQO_FACTORIZED").as_deref(),
                    Ok("0") | Ok("false") | Ok("off")
                )
            })
        }
    }
}

/// Overrides the factorized-result default process-wide (the
/// `--factorized` / `--materialized` knob of the figure harnesses).
pub fn set_factorized_default(factorized: bool) {
    FACTORIZED.store(if factorized { 2 } else { 1 }, Ordering::Relaxed);
}

/// Process-wide memory-pool override: `0` = unset (env var), `u64::MAX`
/// = explicitly unlimited, anything else = the byte limit.
static MEM_LIMIT: AtomicU64 = AtomicU64::new(0);

/// Parses a byte count with an optional `K`/`M`/`G` suffix (case
/// insensitive, powers of 1024): `"512M"` → 536870912. Shared by the
/// `HTQO_MEM_LIMIT` env knob and the harnesses' `--mem-limit` flag.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_shl(shift)
}

/// The process-wide memory limit in effect, if any. Resolution order:
/// [`set_mem_limit_default`] > `HTQO_MEM_LIMIT` env var (bytes, with
/// optional `K`/`M`/`G` suffix) > unlimited.
pub fn mem_limit_default() -> Option<u64> {
    match MEM_LIMIT.load(Ordering::Relaxed) {
        0 => {
            static DEFAULT: OnceLock<Option<u64>> = OnceLock::new();
            *DEFAULT.get_or_init(|| {
                std::env::var("HTQO_MEM_LIMIT")
                    .ok()
                    .and_then(|v| parse_bytes(&v))
                    .filter(|&n| n > 0)
            })
        }
        u64::MAX => None,
        n => Some(n),
    }
}

/// Overrides the memory limit process-wide (the `--mem-limit` knob of
/// the figure harnesses). `None` means explicitly unlimited.
pub fn set_mem_limit_default(limit: Option<u64>) {
    MEM_LIMIT.store(limit.unwrap_or(u64::MAX).max(1), Ordering::Relaxed);
}

/// Sentinel-packed plan-cache capacity: 0 = unset (fall through to the
/// env var / compiled default), otherwise `capacity + 1` so an explicit
/// capacity of 0 (caching disabled) is representable.
static PLAN_CACHE: AtomicU64 = AtomicU64::new(0);

/// Compiled-in default capacity of the optimizer's plan cache.
pub const PLAN_CACHE_DEFAULT: usize = 128;

/// The process-wide plan-cache capacity (entries). Resolution order:
/// [`set_plan_cache_default`] > `HTQO_PLAN_CACHE` env var >
/// [`PLAN_CACHE_DEFAULT`] (128). A capacity of 0 disables plan caching.
pub fn plan_cache_default() -> usize {
    match PLAN_CACHE.load(Ordering::Relaxed) {
        0 => {
            static DEFAULT: OnceLock<usize> = OnceLock::new();
            *DEFAULT.get_or_init(|| {
                std::env::var("HTQO_PLAN_CACHE")
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(PLAN_CACHE_DEFAULT)
            })
        }
        n => (n - 1) as usize,
    }
}

/// Overrides the plan-cache capacity process-wide. `0` disables caching.
/// Only optimizers constructed after the call observe the new value.
pub fn set_plan_cache_default(capacity: usize) {
    PLAN_CACHE.store(capacity as u64 + 1, Ordering::Relaxed);
}

/// Index-seek-join default: `0` = unset (env var / on), `1` = off,
/// `2` = on.
static INDEX_JOIN: AtomicU8 = AtomicU8::new(0);

/// Whether vertex joins may use index-nested-loop seeks
/// ([`crate::iseek`]) over registered secondary indexes instead of
/// ChainTable hash builds. Resolution order: [`set_index_join_default`] >
/// `HTQO_INDEX_JOIN` env var (`0`/`false`/`off` turns it off) > on.
/// Irrelevant (and free) when the catalog has no indexes.
pub fn index_join_default() -> bool {
    match INDEX_JOIN.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static DEFAULT: OnceLock<bool> = OnceLock::new();
            *DEFAULT.get_or_init(|| {
                !matches!(
                    std::env::var("HTQO_INDEX_JOIN").as_deref(),
                    Ok("0") | Ok("false") | Ok("off")
                )
            })
        }
    }
}

/// Overrides the index-seek-join default process-wide.
pub fn set_index_join_default(on: bool) {
    INDEX_JOIN.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Execution-schedule knobs for the evaluators
/// (`evaluate_qhd_with` and friends in the downstream crates).
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Upper bound on worker threads for this evaluation. `1` forces a
    /// fully sequential schedule (the seed behavior); the default is the
    /// process-wide [`num_threads`].
    pub threads: usize,
    /// Run the pipeline on the columnar carrier ([`crate::crel::CRel`])
    /// instead of boxed rows. The default is the process-wide
    /// [`columnar_default`]. Both carriers produce identical answers and
    /// budget charges; rows survive as the oracle path.
    pub columnar: bool,
    /// Byte budget for this query's materialized state (hash tables,
    /// intermediate rows, aggregation state, dictionary growth). `None`
    /// = unlimited. When set, kernels that would exceed it spill to disk
    /// (see [`crate::spill`]) or fail with
    /// [`crate::EvalError::MemoryExceeded`]. The default is the
    /// process-wide [`mem_limit_default`] (`HTQO_MEM_LIMIT`).
    pub mem_limit: Option<u64>,
    /// Let eligible aggregate queries run on the factorized (cover-based)
    /// result representation ([`crate::factorized`]) instead of
    /// materializing the full join; ineligible queries fall back to full
    /// materialization either way. The default is the process-wide
    /// [`factorized_default`] (`HTQO_FACTORIZED`).
    pub factorized: bool,
    /// Let vertex joins pick index-nested-loop seeks over registered
    /// secondary indexes instead of hash builds where the accumulator is
    /// small relative to the indexed table. A no-op on catalogs without
    /// indexes. The default is the process-wide [`index_join_default`]
    /// (`HTQO_INDEX_JOIN`).
    pub index_join: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: num_threads(),
            columnar: columnar_default(),
            mem_limit: mem_limit_default(),
            factorized: factorized_default(),
            index_join: index_join_default(),
        }
    }
}

/// Claims up to `want` worker permits from the global pool.
fn acquire_permits(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let _ = PERMITS.compare_exchange(
        -1,
        num_threads() as isize - 1,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    let mut got = 0;
    while got < want {
        let cur = PERMITS.load(Ordering::Relaxed);
        if cur <= 0 {
            break;
        }
        let take = (cur as usize).min(want - got);
        if PERMITS
            .compare_exchange(
                cur,
                cur - take as isize,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            got += take;
        }
    }
    got
}

fn release_permits(n: usize) {
    if n > 0 {
        PERMITS.fetch_add(n as isize, Ordering::Relaxed);
    }
}

/// Returns permits on drop, so a panic unwinding through a parallel
/// section can never leak them.
struct PermitGuard(usize);

impl Drop for PermitGuard {
    fn drop(&mut self) {
        release_permits(self.0);
    }
}

/// Renders a `catch_unwind` payload for [`EvalError::WorkerPanicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies `f` to every item, in parallel when worker permits are
/// available, and returns the results **in input order**. Falls back to a
/// plain sequential map when `workers <= 1`, for a single item, or when
/// the permit pool is exhausted (deep nesting).
///
/// A panic in `f` on any thread of the parallel schedule is contained:
/// remaining items are abandoned, permits are returned, and the call
/// yields `Err(EvalError::WorkerPanicked)` carrying the first panic's
/// payload. On the sequential fast path there is no worker thread to
/// contain, so a panic propagates to the caller as usual (the hybrid
/// optimizer adds its own `catch_unwind` around whole-plan execution).
///
/// `workers` is an upper bound on concurrency for this call;
/// [`num_threads`] is the usual argument.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Result<Vec<R>, EvalError>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 || workers <= 1 {
        return Ok(items.into_iter().map(f).collect());
    }
    let extra = acquire_permits(workers.min(n) - 1);
    if extra == 0 {
        return Ok(items.into_iter().map(f).collect());
    }
    let _guard = PermitGuard(extra);

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let panicked: Mutex<Option<String>> = Mutex::new(None);
    let worker = |out: &mut Vec<(usize, R)>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = slots[i].lock().unwrap().take().expect("claimed once");
        // The fail point runs inside the same catch_unwind as `f`, so an
        // injected `exec::worker` panic exercises the containment path.
        match catch_unwind(AssertUnwindSafe(|| {
            crate::fail_point_unit!("exec::worker");
            f(item)
        })) {
            Ok(r) => out.push((i, r)),
            Err(payload) => {
                let msg = panic_message(payload);
                let mut first = panicked.lock().unwrap_or_else(|p| p.into_inner());
                first.get_or_insert(msg);
                // Stop every worker from claiming further items.
                next.store(n, Ordering::Relaxed);
                break;
            }
        }
    };

    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..extra)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    worker(&mut out);
                    out
                })
            })
            .collect();
        // The calling thread works too.
        worker(&mut tagged);
        for h in handles {
            // Workers catch panics internally, so join always succeeds.
            tagged.extend(h.join().expect("worker loop contains panics"));
        }
    });

    if let Some(message) = panicked.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(EvalError::WorkerPanicked { message });
    }
    tagged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), n);
    Ok(tagged.into_iter().map(|(_, r)| r).collect())
}

/// Runs two closures, concurrently when a worker permit is available, and
/// returns both results. Panic containment mirrors [`parallel_map`]: on
/// the concurrent schedule a panic in either closure becomes
/// `Err(EvalError::WorkerPanicked)` (first panic wins) with the permit
/// returned; on the sequential fallback panics propagate.
pub fn join2<A, B, FA, FB>(workers: usize, fa: FA, fb: FB) -> Result<(A, B), EvalError>
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if workers <= 1 || acquire_permits(1) == 0 {
        return Ok((fa(), fb()));
    }
    let _guard = PermitGuard(1);
    let (ra, rb) = std::thread::scope(|s| {
        let hb = s.spawn(|| catch_unwind(AssertUnwindSafe(fb)));
        let ra = catch_unwind(AssertUnwindSafe(fa));
        (ra, hb.join().expect("worker catches panics"))
    });
    match (ra, rb) {
        (Ok(a), Ok(b)) => Ok((a, b)),
        (Err(p), _) | (_, Err(p)) => Err(EvalError::WorkerPanicked {
            message: panic_message(p),
        }),
    }
}

/// Splits `0..len` into at most `chunks` contiguous `(start, end)` ranges
/// of near-equal size (none empty).
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let rem = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < rem);
        out.push((start, start + size));
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = parallel_map(input.clone(), 8, |x| x * 2).unwrap();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Sequential fallback agrees.
        let out1 = parallel_map(input.clone(), 1, |x| x * 2).unwrap();
        assert_eq!(out, out1);
    }

    #[test]
    fn nested_parallel_maps_terminate() {
        let out = parallel_map((0..16).collect::<Vec<u64>>(), 4, |i| {
            parallel_map((0..16).collect::<Vec<u64>>(), 4, move |j| i * j)
                .unwrap()
                .into_iter()
                .sum::<u64>()
        })
        .unwrap();
        let expect: Vec<u64> = (0..16).map(|i| (0..16).map(|j| i * j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn join2_returns_both() {
        assert_eq!(join2(4, || 1, || "x").unwrap(), (1, "x"));
        assert_eq!(join2(1, || 2, || 3).unwrap(), (2, 3));
    }

    /// Serializes tests that swap the global panic hook.
    fn hook_lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parallel_map_contains_worker_panics() {
        let _g = hook_lock();
        // Containment only exists on the parallel schedule; force a pool
        // wide enough to take it even on a single-core host.
        let threads_before = num_threads();
        set_threads_exact(4);
        let before = permits_available();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let out = parallel_map((0..64).collect::<Vec<u64>>(), 4, |i| {
            if i == 13 {
                panic!("boom at {i}");
            }
            i * 2
        });
        std::panic::set_hook(hook);
        match out {
            Err(EvalError::WorkerPanicked { message }) => assert!(message.contains("boom")),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert_eq!(permits_available(), before, "permit pool leaked");
        set_threads(threads_before);
    }

    #[test]
    fn join2_contains_worker_panics() {
        let _g = hook_lock();
        let threads_before = num_threads();
        set_threads_exact(4);
        let before = permits_available();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = join2(4, || 1u64, || -> u64 { panic!("join2 side b") });
        std::panic::set_hook(hook);
        assert!(
            matches!(out, Err(EvalError::WorkerPanicked { ref message }) if message.contains("side b"))
        );
        assert_eq!(permits_available(), before, "permit pool leaked");
        set_threads(threads_before);
    }

    #[test]
    fn chunk_ranges_cover() {
        for len in [0usize, 1, 7, 64, 100] {
            for chunks in [1usize, 3, 8, 200] {
                let ranges = chunk_ranges(len, chunks);
                let total: usize = ranges.iter().map(|(a, b)| b - a).sum();
                assert_eq!(total, len);
                assert!(ranges.iter().all(|(a, b)| a < b));
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn threads_knob() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn set_threads_clamps_to_hardware_but_records_the_request() {
        let threads_before = num_threads();
        let requested_before = requested_threads();
        let huge = hardware_threads() * 64;
        set_threads(huge);
        assert_eq!(num_threads(), hardware_threads(), "request not clamped");
        assert_eq!(requested_threads(), huge, "pre-clamp request lost");
        // The exact variant bypasses the clamp (test-suite escape hatch).
        set_threads_exact(huge);
        assert_eq!(num_threads(), huge);
        set_threads_exact(threads_before);
        REQUESTED.store(requested_before, Ordering::Relaxed);
    }
}
