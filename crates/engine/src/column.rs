//! Typed columns: the unit of columnar storage.
//!
//! A [`Column`] is a flat vector of one of the engine's four concrete cell
//! types — `i64`, `f64`, `i32` date, or a `u32` code into the global
//! string [`dict`]ionary — plus a lazily-allocated null bitmap. Kernels
//! that hash, compare or gather cells touch one contiguous machine-word
//! array per column instead of chasing per-row `Box<[Value]>` heap
//! objects.
//!
//! A fifth variant, `Mixed`, stores boxed [`Value`]s verbatim. Base
//! relations never produce it (their schemas are typed), but intermediate
//! results converted from arbitrary row data (`CRel::from_vrel`, property
//! tests) may hold heterogeneous columns, and `Mixed` keeps every columnar
//! kernel total over them. Cross-variant equality and hashing follow
//! `Value` semantics exactly — `Null == Null`, `Int(1) != Float(1.0)`,
//! NaNs coincide — and equal cells hash equal **across variants**, because
//! each cell hashes as `mix(type tag, payload)` with string payloads
//! hashed by content (via the dictionary's memoized hashes), never by
//! code.

use crate::dict::{self, DictReader, NULL_CODE};
use crate::schema::ColumnType;
use crate::value::{norm_f64, Value};
use std::cmp::Ordering;

/// Seed multiplier of the FxHasher fold (same constant as
/// [`crate::hash::FxHasher`]).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Splitmix64-style finalizer keyed by a type tag; the per-cell hash.
/// `const` so [`NULL_HASH`] can be computed at compile time.
const fn mix(tag: u64, payload: u64) -> u64 {
    let mut z = payload ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash of a NULL cell, identical in every column variant.
pub const NULL_HASH: u64 = mix(0, 0);

#[inline]
fn hash_int(x: i64) -> u64 {
    mix(1, x as u64)
}

#[inline]
fn hash_float(x: f64) -> u64 {
    mix(2, norm_f64(x).to_bits())
}

#[inline]
fn hash_str_content(content_hash: u64) -> u64 {
    mix(3, content_hash)
}

#[inline]
fn hash_date(d: i32) -> u64 {
    mix(4, d as i64 as u64)
}

/// Cell hash of a boxed [`Value`] (the `Mixed` path); agrees with the
/// typed-column hashes above so equal cells hash equal across variants.
#[inline]
pub fn hash_value_cell(v: &Value) -> u64 {
    match v {
        Value::Null => NULL_HASH,
        Value::Int(i) => hash_int(*i),
        Value::Float(x) => hash_float(*x),
        Value::Str(s) => hash_str_content(dict::str_hash(s)),
        Value::Date(d) => hash_date(*d),
    }
}

/// Folds a cell hash into a row's running key hash (the FxHasher step).
#[inline]
pub fn combine_hash(acc: u64, cell: u64) -> u64 {
    (acc.rotate_left(5) ^ cell).wrapping_mul(FX_SEED)
}

/// Avalanche finalizer applied after the last column's fold; spreads
/// entropy into the high bits so they can drive partitioning (same
/// finalizer as [`crate::hash::hash_key`]).
#[inline]
pub fn finish_hash(x: u64) -> u64 {
    let x = (x ^ (x >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^ (x >> 32)
}

/// A lazily-allocated null bitmap: no allocation until the first NULL, so
/// the common all-valid column costs one empty `Vec`.
///
/// Only `Int`/`Float`/`Date` columns use it — string columns mark NULL
/// slots with [`NULL_CODE`] and `Mixed` columns store `Value::Null`
/// directly.
#[derive(Clone, Debug, Default)]
pub struct NullMask {
    bits: Vec<u64>,
}

impl NullMask {
    /// Marks row `i` as NULL (allocating on first use).
    pub fn set_null(&mut self, i: usize) {
        let word = i / 64;
        if self.bits.len() <= word {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1 << (i % 64);
    }

    /// True if row `i` is NULL. Rows past the allocated words are valid.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self.bits.get(i / 64) {
            Some(w) => (w >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// True if any row is NULL (never a false positive: bits are only
    /// allocated by [`NullMask::set_null`]).
    #[inline]
    pub fn any(&self) -> bool {
        !self.bits.is_empty()
    }
}

/// The typed payload of a column.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// 64-bit integers (NULL slots hold 0; see the mask).
    Int(Vec<i64>),
    /// 64-bit floats (NULL slots hold 0.0; see the mask).
    Float(Vec<f64>),
    /// Dates as days since 1970-01-01 (NULL slots hold 0; see the mask).
    Date(Vec<i32>),
    /// Codes into the global string dictionary; NULL slots hold
    /// [`NULL_CODE`].
    Str(Vec<u32>),
    /// Boxed values verbatim (heterogeneous intermediate columns).
    Mixed(Vec<Value>),
}

/// One column: typed payload plus null mask.
#[derive(Clone, Debug)]
pub struct Column {
    data: ColumnData,
    nulls: NullMask,
}

impl Column {
    /// An empty column of a schema type.
    pub fn new(ty: ColumnType) -> Column {
        Column::with_capacity(ty, 0)
    }

    /// An empty column of a schema type with reserved capacity.
    pub fn with_capacity(ty: ColumnType, cap: usize) -> Column {
        let data = match ty {
            ColumnType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            ColumnType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            ColumnType::Date => ColumnData::Date(Vec::with_capacity(cap)),
            ColumnType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        };
        Column {
            data,
            nulls: NullMask::default(),
        }
    }

    /// An empty `Mixed` column (heterogeneous fallback).
    pub fn mixed_with_capacity(cap: usize) -> Column {
        Column {
            data: ColumnData::Mixed(Vec::with_capacity(cap)),
            nulls: NullMask::default(),
        }
    }

    /// An empty column shaped like `self` (same variant, no rows).
    pub fn empty_like(&self, cap: usize) -> Column {
        let data = match &self.data {
            ColumnData::Int(_) => ColumnData::Int(Vec::with_capacity(cap)),
            ColumnData::Float(_) => ColumnData::Float(Vec::with_capacity(cap)),
            ColumnData::Date(_) => ColumnData::Date(Vec::with_capacity(cap)),
            ColumnData::Str(_) => ColumnData::Str(Vec::with_capacity(cap)),
            ColumnData::Mixed(_) => ColumnData::Mixed(Vec::with_capacity(cap)),
        };
        Column {
            data,
            nulls: NullMask::default(),
        }
    }

    /// Reserves capacity for `n` more cells.
    pub fn reserve(&mut self, n: usize) {
        match &mut self.data {
            ColumnData::Int(a) => a.reserve(n),
            ColumnData::Float(a) => a.reserve(n),
            ColumnData::Date(a) => a.reserve(n),
            ColumnData::Str(a) => a.reserve(n),
            ColumnData::Mixed(a) => a.reserve(n),
        }
    }

    /// The typed payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null mask (meaningful for `Int`/`Float`/`Date` only).
    pub fn nulls(&self) -> &NullMask {
        &self.nulls
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(a) => a.len(),
            ColumnData::Float(a) => a.len(),
            ColumnData::Date(a) => a.len(),
            ColumnData::Str(a) => a.len(),
            ColumnData::Mixed(a) => a.len(),
        }
    }

    /// True if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if cell `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Str(a) => a[i] == NULL_CODE,
            ColumnData::Mixed(a) => a[i].is_null(),
            _ => self.nulls.get(i),
        }
    }

    /// Appends a cell. The value's variant must match the column's (NULL
    /// is accepted everywhere); base relations validate before calling.
    pub fn push_value(&mut self, v: &Value) {
        match (&mut self.data, v) {
            (ColumnData::Int(a), Value::Int(x)) => a.push(*x),
            (ColumnData::Float(a), Value::Float(x)) => a.push(*x),
            (ColumnData::Date(a), Value::Date(x)) => a.push(*x),
            (ColumnData::Str(a), Value::Str(s)) => a.push(dict::intern_arc(s)),
            (ColumnData::Str(a), Value::Null) => a.push(NULL_CODE),
            (ColumnData::Mixed(a), v) => a.push(v.clone()),
            (ColumnData::Int(a), Value::Null) => {
                a.push(0);
                self.nulls.set_null(a.len() - 1);
            }
            (ColumnData::Float(a), Value::Null) => {
                a.push(0.0);
                self.nulls.set_null(a.len() - 1);
            }
            (ColumnData::Date(a), Value::Null) => {
                a.push(0);
                self.nulls.set_null(a.len() - 1);
            }
            (_, v) => panic!("column variant does not accept a {}", v.type_name()),
        }
    }

    /// Cell `i` as a boxed [`Value`], resolving string codes through
    /// `reader`.
    pub fn value_with(&self, i: usize, reader: &DictReader) -> Value {
        match &self.data {
            ColumnData::Int(a) => {
                if self.nulls.get(i) {
                    Value::Null
                } else {
                    Value::Int(a[i])
                }
            }
            ColumnData::Float(a) => {
                if self.nulls.get(i) {
                    Value::Null
                } else {
                    Value::Float(a[i])
                }
            }
            ColumnData::Date(a) => {
                if self.nulls.get(i) {
                    Value::Null
                } else {
                    Value::Date(a[i])
                }
            }
            ColumnData::Str(a) => {
                if a[i] == NULL_CODE {
                    Value::Null
                } else {
                    Value::Str(reader.arc_of(a[i]))
                }
            }
            ColumnData::Mixed(a) => a[i].clone(),
        }
    }

    /// Cell `i` as a boxed [`Value`] (acquires the dictionary lock; use
    /// [`Column::value_with`] in loops).
    pub fn value(&self, i: usize) -> Value {
        self.value_with(i, &dict::reader())
    }

    /// Hash of cell `i` (consistent with [`Column::eq_at`] across
    /// variants).
    #[inline]
    pub fn hash_at(&self, i: usize, reader: &DictReader) -> u64 {
        match &self.data {
            ColumnData::Int(a) => {
                if self.nulls.get(i) {
                    NULL_HASH
                } else {
                    hash_int(a[i])
                }
            }
            ColumnData::Float(a) => {
                if self.nulls.get(i) {
                    NULL_HASH
                } else {
                    hash_float(a[i])
                }
            }
            ColumnData::Date(a) => {
                if self.nulls.get(i) {
                    NULL_HASH
                } else {
                    hash_date(a[i])
                }
            }
            ColumnData::Str(a) => {
                if a[i] == NULL_CODE {
                    NULL_HASH
                } else {
                    hash_str_content(reader.hash_of(a[i]))
                }
            }
            ColumnData::Mixed(a) => hash_value_cell(&a[i]),
        }
    }

    /// Folds every cell's hash into `acc` (one slot per row) with the
    /// FxHasher step — the vectorized analogue of hashing one more key
    /// column into every row's [`crate::hash::hash_key`]. Callers run this
    /// once per key column, then [`finish_hash`] each slot.
    pub fn write_hashes(&self, acc: &mut [u64], reader: &DictReader) {
        assert_eq!(acc.len(), self.len(), "hash accumulator length");
        match &self.data {
            ColumnData::Int(a) => {
                if self.nulls.any() {
                    for (i, (h, &x)) in acc.iter_mut().zip(a).enumerate() {
                        let c = if self.nulls.get(i) {
                            NULL_HASH
                        } else {
                            hash_int(x)
                        };
                        *h = combine_hash(*h, c);
                    }
                } else {
                    for (h, &x) in acc.iter_mut().zip(a) {
                        *h = combine_hash(*h, hash_int(x));
                    }
                }
            }
            ColumnData::Float(a) => {
                if self.nulls.any() {
                    for (i, (h, &x)) in acc.iter_mut().zip(a).enumerate() {
                        let c = if self.nulls.get(i) {
                            NULL_HASH
                        } else {
                            hash_float(x)
                        };
                        *h = combine_hash(*h, c);
                    }
                } else {
                    for (h, &x) in acc.iter_mut().zip(a) {
                        *h = combine_hash(*h, hash_float(x));
                    }
                }
            }
            ColumnData::Date(a) => {
                if self.nulls.any() {
                    for (i, (h, &x)) in acc.iter_mut().zip(a).enumerate() {
                        let c = if self.nulls.get(i) {
                            NULL_HASH
                        } else {
                            hash_date(x)
                        };
                        *h = combine_hash(*h, c);
                    }
                } else {
                    for (h, &x) in acc.iter_mut().zip(a) {
                        *h = combine_hash(*h, hash_date(x));
                    }
                }
            }
            ColumnData::Str(a) => {
                for (h, &c) in acc.iter_mut().zip(a) {
                    let ch = if c == NULL_CODE {
                        NULL_HASH
                    } else {
                        hash_str_content(reader.hash_of(c))
                    };
                    *h = combine_hash(*h, ch);
                }
            }
            ColumnData::Mixed(a) => {
                for (h, v) in acc.iter_mut().zip(a) {
                    *h = combine_hash(*h, hash_value_cell(v));
                }
            }
        }
    }

    /// True if cell `i` equals cell `j` of `other`, with `Value`
    /// semantics: `Null == Null`, types strict (`Int(1) != Float(1.0)`),
    /// NaNs equal. Total across variant combinations.
    pub fn eq_at(&self, i: usize, other: &Column, j: usize, reader: &DictReader) -> bool {
        let a_null = self.is_null(i);
        let b_null = other.is_null(j);
        if a_null || b_null {
            return a_null && b_null;
        }
        match (&self.data, &other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a[i] == b[j],
            (ColumnData::Float(a), ColumnData::Float(b)) => {
                norm_f64(a[i]).total_cmp(&norm_f64(b[j])) == Ordering::Equal
            }
            (ColumnData::Date(a), ColumnData::Date(b)) => a[i] == b[j],
            // One global dictionary: equal content iff equal code.
            (ColumnData::Str(a), ColumnData::Str(b)) => a[i] == b[j],
            (ColumnData::Mixed(a), ColumnData::Mixed(b)) => a[i] == b[j],
            (ColumnData::Mixed(a), _) => other.eq_value(j, &a[i], reader),
            (_, ColumnData::Mixed(b)) => self.eq_value(i, &b[j], reader),
            _ => false,
        }
    }

    /// True if cell `i` equals the boxed value `v` (`Value` semantics).
    pub fn eq_value(&self, i: usize, v: &Value, reader: &DictReader) -> bool {
        if self.is_null(i) {
            return v.is_null();
        }
        match (&self.data, v) {
            (ColumnData::Int(a), Value::Int(x)) => a[i] == *x,
            (ColumnData::Float(a), Value::Float(x)) => {
                norm_f64(a[i]).total_cmp(&norm_f64(*x)) == Ordering::Equal
            }
            (ColumnData::Date(a), Value::Date(x)) => a[i] == *x,
            (ColumnData::Str(a), Value::Str(s)) => reader.str_of(a[i]) == &**s,
            (ColumnData::Mixed(a), v) => &a[i] == v,
            _ => false,
        }
    }

    /// SQL comparison of cell `i` against constant `v` (the scan filter
    /// path): numerics compare numerically, NULL or incompatible types
    /// yield `None` — exactly [`Value::sql_cmp`].
    pub fn cmp_value(&self, i: usize, v: &Value, reader: &DictReader) -> Option<Ordering> {
        if self.is_null(i) || v.is_null() {
            return None;
        }
        match (&self.data, v) {
            (ColumnData::Int(a), Value::Int(x)) => Some(a[i].cmp(x)),
            (ColumnData::Int(a), Value::Float(x)) => Some((a[i] as f64).total_cmp(x)),
            (ColumnData::Float(a), Value::Int(x)) => Some(a[i].total_cmp(&(*x as f64))),
            (ColumnData::Float(a), Value::Float(x)) => Some(a[i].total_cmp(x)),
            (ColumnData::Date(a), Value::Date(x)) => Some(a[i].cmp(x)),
            (ColumnData::Str(a), Value::Str(s)) => Some(reader.str_of(a[i]).cmp(&**s)),
            (ColumnData::Mixed(a), v) => a[i].sql_cmp(v),
            _ => None,
        }
    }

    /// Gathers `idx` into a new column of the same variant — the columnar
    /// join's output constructor (one `memcpy`-like pass per column
    /// instead of per-row cell clones).
    pub fn gather(&self, idx: &[u32]) -> Column {
        match &self.data {
            ColumnData::Int(a) => {
                let data: Vec<i64> = idx.iter().map(|&i| a[i as usize]).collect();
                let mut nulls = NullMask::default();
                if self.nulls.any() {
                    for (out, &i) in idx.iter().enumerate() {
                        if self.nulls.get(i as usize) {
                            nulls.set_null(out);
                        }
                    }
                }
                Column {
                    data: ColumnData::Int(data),
                    nulls,
                }
            }
            ColumnData::Float(a) => {
                let data: Vec<f64> = idx.iter().map(|&i| a[i as usize]).collect();
                let mut nulls = NullMask::default();
                if self.nulls.any() {
                    for (out, &i) in idx.iter().enumerate() {
                        if self.nulls.get(i as usize) {
                            nulls.set_null(out);
                        }
                    }
                }
                Column {
                    data: ColumnData::Float(data),
                    nulls,
                }
            }
            ColumnData::Date(a) => {
                let data: Vec<i32> = idx.iter().map(|&i| a[i as usize]).collect();
                let mut nulls = NullMask::default();
                if self.nulls.any() {
                    for (out, &i) in idx.iter().enumerate() {
                        if self.nulls.get(i as usize) {
                            nulls.set_null(out);
                        }
                    }
                }
                Column {
                    data: ColumnData::Date(data),
                    nulls,
                }
            }
            ColumnData::Str(a) => Column {
                data: ColumnData::Str(idx.iter().map(|&i| a[i as usize]).collect()),
                nulls: NullMask::default(),
            },
            ColumnData::Mixed(a) => Column {
                data: ColumnData::Mixed(idx.iter().map(|&i| a[i as usize].clone()).collect()),
                nulls: NullMask::default(),
            },
        }
    }

    /// Appends all cells of `other` (same variant; partition-merge path).
    pub fn extend_from(&mut self, other: &Column) {
        let off = self.len();
        match (&mut self.data, &other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
            (ColumnData::Float(a), ColumnData::Float(b)) => a.extend_from_slice(b),
            (ColumnData::Date(a), ColumnData::Date(b)) => a.extend_from_slice(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend_from_slice(b),
            (ColumnData::Mixed(a), ColumnData::Mixed(b)) => a.extend(b.iter().cloned()),
            _ => panic!("column variant mismatch in extend_from"),
        }
        if other.nulls.any() {
            for j in 0..other.len() {
                if other.nulls.get(j) {
                    self.nulls.set_null(off + j);
                }
            }
        }
    }

    /// Heap bytes of the payload vector (used by size accounting).
    pub fn payload_bytes(&self) -> usize {
        match &self.data {
            ColumnData::Int(a) => a.len() * std::mem::size_of::<i64>(),
            ColumnData::Float(a) => a.len() * std::mem::size_of::<f64>(),
            ColumnData::Date(a) => a.len() * std::mem::size_of::<i32>(),
            ColumnData::Str(a) => a.len() * std::mem::size_of::<u32>(),
            ColumnData::Mixed(a) => a.len() * std::mem::size_of::<Value>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col_of(ty: ColumnType, vals: &[Value]) -> Column {
        let mut c = Column::new(ty);
        for v in vals {
            c.push_value(v);
        }
        c
    }

    fn mixed_of(vals: &[Value]) -> Column {
        let mut c = Column::mixed_with_capacity(vals.len());
        for v in vals {
            c.push_value(v);
        }
        c
    }

    #[test]
    fn roundtrip_with_nulls() {
        let vals = [Value::Int(3), Value::Null, Value::Int(-7)];
        let c = col_of(ColumnType::Int, &vals);
        assert_eq!(c.len(), 3);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&c.value(i), v);
            assert_eq!(c.is_null(i), v.is_null());
        }
    }

    #[test]
    fn str_roundtrip_interns_content() {
        let vals = [Value::str("aa"), Value::Null, Value::str("aa")];
        let c = col_of(ColumnType::Str, &vals);
        assert_eq!(c.value(0), Value::str("aa"));
        assert_eq!(c.value(1), Value::Null);
        let ColumnData::Str(codes) = c.data() else {
            panic!("variant")
        };
        assert_eq!(codes[0], codes[2]);
        assert_eq!(codes[1], NULL_CODE);
    }

    #[test]
    fn cross_variant_eq_and_hash_agree() {
        let typed = col_of(
            ColumnType::Float,
            &[Value::Float(0.0), Value::Float(f64::NAN), Value::Null],
        );
        let mixed = mixed_of(&[Value::Float(-0.0), Value::Float(f64::NAN), Value::Null]);
        let r = dict::reader();
        for i in 0..3 {
            assert!(typed.eq_at(i, &mixed, i, &r), "cell {i}");
            assert_eq!(typed.hash_at(i, &r), mixed.hash_at(i, &r), "cell {i}");
        }
        // Type-strict: Int(1) != Float(1.0), and hashes are free to differ.
        let ints = col_of(ColumnType::Int, &[Value::Int(1)]);
        let floats = mixed_of(&[Value::Float(1.0)]);
        assert!(!ints.eq_at(0, &floats, 0, &r));
    }

    #[test]
    fn str_hash_is_content_based_across_variants() {
        let typed = col_of(ColumnType::Str, &[Value::str("hello-col")]);
        let mixed = mixed_of(&[Value::str("hello-col")]);
        let r = dict::reader();
        assert!(typed.eq_at(0, &mixed, 0, &r));
        assert_eq!(typed.hash_at(0, &r), mixed.hash_at(0, &r));
    }

    #[test]
    fn write_hashes_matches_hash_at_fold() {
        let c = col_of(
            ColumnType::Int,
            &[Value::Int(1), Value::Null, Value::Int(99)],
        );
        let r = dict::reader();
        let mut acc = vec![0u64; 3];
        c.write_hashes(&mut acc, &r);
        for (i, &h) in acc.iter().enumerate() {
            assert_eq!(h, combine_hash(0, c.hash_at(i, &r)));
        }
    }

    #[test]
    fn gather_and_extend() {
        let c = col_of(
            ColumnType::Int,
            &[Value::Int(10), Value::Null, Value::Int(30)],
        );
        let g = c.gather(&[2, 0, 1, 1]);
        assert_eq!(g.value(0), Value::Int(30));
        assert_eq!(g.value(1), Value::Int(10));
        assert_eq!(g.value(2), Value::Null);
        assert_eq!(g.value(3), Value::Null);
        let mut d = c.empty_like(0);
        d.extend_from(&c);
        d.extend_from(&g);
        assert_eq!(d.len(), 7);
        assert_eq!(d.value(3), Value::Int(30));
        assert_eq!(d.value(6), Value::Null);
    }

    #[test]
    fn cmp_value_is_sql_cmp() {
        let c = col_of(ColumnType::Int, &[Value::Int(2), Value::Null]);
        // Intern before taking the reader: building a string column under a
        // held `DictReader` would upgrade read → write on the same thread
        // and deadlock.
        let s = col_of(ColumnType::Str, &[Value::str("mm")]);
        let r = dict::reader();
        assert_eq!(c.cmp_value(0, &Value::Float(2.5), &r), Some(Ordering::Less));
        assert_eq!(c.cmp_value(0, &Value::str("x"), &r), None);
        assert_eq!(c.cmp_value(1, &Value::Int(0), &r), None);
        assert_eq!(s.cmp_value(0, &Value::str("zz"), &r), Some(Ordering::Less));
    }
}
