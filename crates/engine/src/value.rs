//! Runtime values. The engine is dynamically typed at the cell level: a
//! small enum with total ordering and hashing so any value can participate
//! in hash joins, grouping and sorting.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single cell value.
///
/// `Float` carries a total order (IEEE `total_cmp`) and normalizes NaN for
/// hashing, so `Value` can be used as a hash-join or group-by key without
/// caveats. `Null` compares equal to itself and sorts first; SQL
/// three-valued logic is not modelled (the paper's queries never need it),
/// but comparisons against `Null` simply fail predicates.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float (totally ordered; NaN normalized).
    Float(f64),
    /// Interned string (cheap to clone).
    Str(Arc<str>),
    /// Date as days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Type tag used in ordering across types and in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Date(_) => "date",
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Date(_) => 4,
        }
    }

    /// Numeric view (ints widen to float), if the value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style comparison: `Int` and `Float` compare numerically;
    /// comparing `Null` or incompatible types yields `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Some(x.total_cmp(&y)),
                _ => None,
            },
        }
    }
}

/// Normalizes a float so that all NaNs coincide and `-0.0 == 0.0`, keeping
/// `Eq`, `Ord` and `Hash` mutually consistent (also used by the columnar
/// cell hashes in `column`).
pub(crate) fn norm_f64(x: f64) -> f64 {
    if x.is_nan() {
        f64::NAN
    } else if x == 0.0 {
        0.0
    } else {
        x
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => {
                norm_f64(*a).total_cmp(&norm_f64(*b)) == Ordering::Equal
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(x) => {
                // Normalize NaNs and -0.0 so equal-by-total_cmp hashes equal.
                norm_f64(*x).to_bits().hash(state);
            }
            Value::Str(s) => s.hash(state),
            Value::Date(d) => d.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: by type rank, then by value (used for deterministic
    /// sorting of heterogeneous data; SQL comparisons use
    /// [`Value::sql_cmp`]).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => norm_f64(*a).total_cmp(&norm_f64(*b)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            // Mixed numerics compare numerically for stable sorts.
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(&norm_f64(*b)),
            (Value::Float(a), Value::Int(b)) => norm_f64(*a).total_cmp(&(*b as f64)),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => f.write_str(&htqo_cq::date::format_date(*d)),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<&htqo_cq::Literal> for Value {
    fn from(l: &htqo_cq::Literal) -> Self {
        match l {
            htqo_cq::Literal::Int(i) => Value::Int(*i),
            htqo_cq::Literal::Float(x) => Value::Float(*x),
            htqo_cq::Literal::Str(s) => Value::str(s),
            htqo_cq::Literal::Date(d) => Value::Date(*d),
        }
    }
}

/// A tuple of values. Boxed slice keeps rows at two words.
pub type Row = Box<[Value]>;

/// Approximate heap bytes of one materialized [`Row`] of `width` values:
/// the boxed slice itself plus a small allocator-header allowance. String
/// payloads are shared `Arc<str>` interned at ingest, so per-row charges
/// deliberately exclude them — ingest charges them once.
pub(crate) fn row_heap_bytes(width: usize) -> u64 {
    (width * std::mem::size_of::<Value>() + 16) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equality_and_hashing_for_floats() {
        let mut m: HashMap<Value, i32> = HashMap::new();
        m.insert(Value::Float(0.0), 1);
        assert_eq!(m.get(&Value::Float(-0.0)), Some(&1));
        m.insert(Value::Float(f64::NAN), 2);
        assert_eq!(m.get(&Value::Float(f64::NAN)), Some(&2));
    }

    #[test]
    fn sql_cmp_mixed_numerics() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::Date(5).sql_cmp(&Value::Date(4)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn total_order_is_deterministic() {
        let mut vals = [
            Value::str("b"),
            Value::Int(3),
            Value::Null,
            Value::Float(1.5),
            Value::Date(10),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        // Mixed numerics compare numerically: 1.5 < 3.
        assert_eq!(vals[1], Value::Float(1.5));
        assert_eq!(vals[2], Value::Int(3));
    }

    #[test]
    fn literal_conversion() {
        let v: Value = (&htqo_cq::Literal::Str("x".into())).into();
        assert_eq!(v, Value::str("x"));
        let d: Value = (&htqo_cq::Literal::Date(100)).into();
        assert_eq!(d, Value::Date(100));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(0).to_string(), "1970-01-01");
    }
}
