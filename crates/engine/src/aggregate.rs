//! Final aggregation (step (4) of the paper's pipeline): given the answer
//! of `CQ(Q)` as a [`VRelation`] over `out(Q)`, compute GROUP BY groups,
//! aggregate functions, final projection (dropping hidden rowid guards) and
//! ORDER BY.

use crate::cops;
use crate::crel::CRel;
use crate::dict;
use crate::error::{Budget, EvalError, SpillMode};
use crate::expr::eval_scalar;
use crate::hash::{hash_key, FxHashMap};
use crate::ops::{self, sort_by};
use crate::spill::{SpillDir, SpillFile, SpillReader, MAX_SPILL_LEVEL};
use crate::value::{row_heap_bytes, Row, Value};
use crate::vrel::VRelation;
use htqo_cq::isolator::is_hidden_label;
use htqo_cq::{AggFunc, ConjunctiveQuery, OutputItem, SortDir};
use std::collections::HashMap;

/// Visible output items of `q` and their (uniquified) labels.
pub(crate) fn visible_output(q: &ConjunctiveQuery) -> (Vec<&OutputItem>, Vec<String>) {
    let visible: Vec<&OutputItem> = q
        .output
        .iter()
        .filter(|o| !is_hidden_label(o.label()))
        .collect();
    // SQL allows duplicate output column names (`SELECT a.x, b.x`); our
    // relations do not, so repeated labels get a numeric suffix.
    let labels = uniquify(
        &visible
            .iter()
            .map(|o| o.label().to_string())
            .collect::<Vec<_>>(),
    );
    (visible, labels)
}

/// Visible head variables in SELECT order (errors on aggregates — callers
/// check `q.has_aggregates()` first).
fn head_vars(visible: &[&OutputItem]) -> Vec<String> {
    visible
        .iter()
        .map(|o| match o {
            OutputItem::Var { var, .. } => var.clone(),
            OutputItem::Aggregate { .. } => unreachable!("filtered above"),
        })
        .collect()
}

/// Computes the final output of `q` from the answer relation of `CQ(Q)`.
///
/// `answer` must contain every variable of `out(Q)` as a column (hidden
/// rowid variables included); its rows are assumed distinct.
pub fn finalize(
    answer: &VRelation,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    crate::fail_point!("aggregate::finalize");
    let (visible, labels) = visible_output(q);
    let result = if q.has_aggregates() {
        aggregate(answer, q, &visible, &labels, budget)?
    } else {
        // No aggregates: project the answer onto the distinct visible head
        // variables (set semantics, matching the CQ answer definition),
        // then lay the columns out in SELECT order (a variable may be
        // selected more than once).
        let vars = head_vars(&visible);
        let mut distinct_vars = vars.clone();
        distinct_vars.dedup_preserving();
        let projected = crate::ops::project(answer, &distinct_vars, true, budget)?;
        let idx: Vec<usize> = vars
            .iter()
            .map(|v| projected.col_index(v).expect("just projected"))
            .collect();
        let rows: Vec<crate::value::Row> = projected
            .rows()
            .iter()
            .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
            .collect();
        VRelation::from_rows(labels.clone(), rows)
    };
    finalize_tail(result, q, budget)
}

/// [`finalize`] over the columnar carrier: the grouping/projection front
/// runs column-at-a-time (vectorized group-key hashing, gather-based
/// layout), then the small post-aggregation result flows through the same
/// HAVING / ORDER BY / LIMIT tail as the row path.
pub fn finalize_c(
    answer: &CRel,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    crate::fail_point!("aggregate::finalize");
    let (visible, labels) = visible_output(q);
    let result = if q.has_aggregates() {
        aggregate_c(answer, q, &visible, &labels, budget)?
    } else {
        let vars = head_vars(&visible);
        let mut distinct_vars = vars.clone();
        distinct_vars.dedup_preserving();
        let projected = cops::project(answer, &distinct_vars, true, budget)?;
        // SELECT-order layout: a repeated variable is a column clone, not
        // a per-row copy.
        let idx: Vec<usize> = vars
            .iter()
            .map(|v| projected.col_index(v).expect("just projected"))
            .collect();
        let columns: Vec<crate::column::Column> =
            idx.iter().map(|&i| projected.column(i).clone()).collect();
        CRel::new(labels.clone(), columns, projected.len()).to_vrel()
    };
    finalize_tail(result, q, budget)
}

/// The shared post-aggregation tail: HAVING, ORDER BY, LIMIT.
pub(crate) fn finalize_tail(
    result: VRelation,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    // HAVING over output labels (post-aggregation row filter).
    let result = if q.having.is_empty() {
        result
    } else {
        let idx: Vec<(usize, htqo_cq::CmpOp, crate::value::Value)> = q
            .having
            .iter()
            .map(|(label, op, lit)| {
                let i = result
                    .col_index(label)
                    .ok_or_else(|| EvalError::UnknownVariable(label.clone()))?;
                Ok((i, *op, crate::value::Value::from(lit)))
            })
            .collect::<Result<_, EvalError>>()?;
        crate::ops::select_rows(
            &result,
            |row| {
                Ok(idx
                    .iter()
                    .all(|(i, op, v)| crate::expr::apply_cmp(*op, &row[*i], v)))
            },
            budget,
        )?
    };

    // ORDER BY over output labels, then LIMIT.
    let result = if q.order_by.is_empty() {
        result
    } else {
        let keys: Vec<(String, bool)> = q
            .order_by
            .iter()
            .map(|(label, dir)| (label.clone(), *dir == SortDir::Desc))
            .collect();
        sort_by(&result, &keys)?
    };
    Ok(match q.limit {
        Some(n) if n < result.len() => {
            VRelation::from_rows(result.cols().to_vec(), result.rows()[..n].to_vec())
        }
        _ => result,
    })
}

/// Appends `_2`, `_3`, … to repeated labels.
fn uniquify(labels: &[String]) -> Vec<String> {
    let mut seen: HashMap<String, usize> = HashMap::new();
    labels
        .iter()
        .map(|l| {
            let n = seen.entry(l.clone()).or_insert(0);
            *n += 1;
            if *n == 1 {
                l.clone()
            } else {
                format!("{l}_{n}")
            }
        })
        .collect()
}

/// First-occurrence dedup for small vectors.
trait DedupPreserving {
    fn dedup_preserving(&mut self);
}

impl DedupPreserving for Vec<String> {
    fn dedup_preserving(&mut self) {
        let mut seen = Vec::new();
        self.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(v.clone());
                true
            }
        });
    }
}

/// Resolves the GROUP BY column positions and validates that every
/// non-aggregate visible item is a grouping variable.
pub(crate) fn group_layout(
    cols: &[String],
    q: &ConjunctiveQuery,
    visible: &[&OutputItem],
) -> Result<Vec<usize>, EvalError> {
    let group_idx: Vec<usize> = q
        .group_by
        .iter()
        .map(|v| {
            cols.iter()
                .position(|c| c == v)
                .ok_or_else(|| EvalError::UnknownVariable(v.clone()))
        })
        .collect::<Result<_, _>>()?;
    for item in visible {
        if let OutputItem::Var { var, .. } = item {
            if !q.group_by.contains(var) {
                return Err(EvalError::Internal(format!(
                    "output variable `{var}` is neither aggregated nor grouped"
                )));
            }
        }
    }
    Ok(group_idx)
}

/// Resident bytes one group costs the governor: its key row, its
/// accumulators, and a map-entry allowance.
pub(crate) fn group_state_bytes(key_width: usize, n_items: usize) -> u64 {
    row_heap_bytes(key_width) + (n_items * std::mem::size_of::<Accumulator>()) as u64 + 48
}

/// A denied group-state reservation as a typed error.
pub(crate) fn group_state_exceeded(budget: &Budget, requested: u64) -> EvalError {
    EvalError::MemoryExceeded {
        requested,
        reserved: budget.mem_used(),
        pool: budget.mem_limit().unwrap_or(0),
    }
}

fn aggregate(
    answer: &VRelation,
    q: &ConjunctiveQuery,
    visible: &[&OutputItem],
    labels: &[String],
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let group_idx = group_layout(answer.cols(), q, visible)?;
    // Spill requires a group key to partition on; a global aggregate's
    // state is one row of accumulators and never spills.
    let spillable =
        !group_idx.is_empty() && answer.len() > 1 && budget.spill_mode() != SpillMode::Off;
    if spillable && budget.spill_mode() == SpillMode::Force {
        return aggregate_spilled(
            answer.len(),
            |i| answer.rows()[i].clone(),
            |i| hash_key(&answer.rows()[i], &group_idx),
            answer.cols(),
            &group_idx,
            q,
            visible,
            labels,
            budget,
        );
    }
    match aggregate_rows(answer, &group_idx, q, visible, labels, budget) {
        Err(EvalError::MemoryExceeded { .. }) if spillable => aggregate_spilled(
            answer.len(),
            |i| answer.rows()[i].clone(),
            |i| hash_key(&answer.rows()[i], &group_idx),
            answer.cols(),
            &group_idx,
            q,
            visible,
            labels,
            budget,
        ),
        r => r,
    }
}

/// In-memory row-carrier aggregation. Group state is charged to the byte
/// pool as groups appear and released when the function returns; the
/// (usually much smaller) output rows are charged on success. A denied
/// group reservation surfaces as [`EvalError::MemoryExceeded`] — the
/// callers' cue to re-run through the spill driver.
fn aggregate_rows(
    answer: &VRelation,
    group_idx: &[usize],
    q: &ConjunctiveQuery,
    visible: &[&OutputItem],
    labels: &[String],
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let mut accrued = 0u64;
    let result = aggregate_rows_inner(answer, group_idx, q, visible, labels, budget, &mut accrued);
    budget.uncharge_bytes(accrued);
    let out = result?;
    budget.charge_bytes(out.len() as u64 * row_heap_bytes(out.cols().len()))?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn aggregate_rows_inner(
    answer: &VRelation,
    group_idx: &[usize],
    q: &ConjunctiveQuery,
    visible: &[&OutputItem],
    labels: &[String],
    budget: &mut Budget,
    accrued: &mut u64,
) -> Result<VRelation, EvalError> {
    let group_bytes = group_state_bytes(group_idx.len(), visible.len());
    let mut groups: HashMap<Row, Vec<Accumulator>> = HashMap::new();
    // Deterministic group ordering: remember first-seen order.
    let mut order: Vec<Row> = Vec::new();

    let cols = answer.cols().to_vec();
    for row in answer.rows() {
        let key: Row = group_idx.iter().map(|&i| row[i].clone()).collect();
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                if !budget.try_reserve_bytes(group_bytes) {
                    return Err(group_state_exceeded(budget, group_bytes));
                }
                *accrued += group_bytes;
                budget.charge(1)?;
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| visible.iter().map(|o| Accumulator::for_item(o)).collect())
            }
        };
        for (acc, item) in accs.iter_mut().zip(visible) {
            acc.feed(item, &cols, row)?;
        }
    }

    // Global aggregate over empty input still produces one row.
    if groups.is_empty() && q.group_by.is_empty() {
        let key: Row = Vec::new().into_boxed_slice();
        order.push(key.clone());
        groups.insert(
            key,
            visible.iter().map(|o| Accumulator::for_item(o)).collect(),
        );
    }

    let mut out = VRelation::empty(labels.to_vec());
    for key in order {
        let accs = &groups[&key];
        let mut row: Vec<Value> = Vec::with_capacity(visible.len());
        for (acc, item) in accs.iter().zip(visible) {
            row.push(match item {
                OutputItem::Var { var, .. } => {
                    let gpos = q.group_by.iter().position(|g| g == var).expect("validated");
                    key[gpos].clone()
                }
                OutputItem::Aggregate { .. } => acc.finish(),
            });
        }
        out.push(row.into_boxed_slice());
    }
    Ok(out)
}

/// Spilled aggregation driver, shared by both carriers: the input is
/// hash-partitioned by its group key to checksummed temp files (so a
/// group lives in exactly one partition and no cross-partition merge is
/// ever needed), then each partition is aggregated in memory — recursing
/// with a re-salted partition function when a partition still does not
/// fit. Rows within a group keep their input order through every level,
/// so order-sensitive float accumulation matches the in-memory path
/// bit for bit.
#[allow(clippy::too_many_arguments)]
fn aggregate_spilled(
    n: usize,
    row: impl FnMut(usize) -> Row,
    hash: impl Fn(usize) -> u64,
    cols: &[String],
    group_idx: &[usize],
    q: &ConjunctiveQuery,
    visible: &[&OutputItem],
    labels: &[String],
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let stats = budget.spill_stats();
    let mut dir = SpillDir::create(budget.spill_dir())?;
    let parts = ops::partition_side(&dir, "g", n, row, hash, 0, &stats)?;
    let mut out = VRelation::empty(labels.to_vec());
    for p in &parts {
        aggregate_spilled_partition(
            &dir, p, 0, cols, group_idx, q, visible, labels, budget, &mut out,
        )?;
    }
    dir.cleanup()?;
    Ok(out)
}

/// Aggregates one spilled partition: loads its rows (reserving their
/// bytes) and aggregates in memory, re-partitioning one level deeper when
/// either the load reservation or the in-memory group state is denied. At
/// [`MAX_SPILL_LEVEL`] the denial surfaces as a clean `MemoryExceeded`
/// (one pathological group key can defeat any amount of partitioning).
#[allow(clippy::too_many_arguments)]
fn aggregate_spilled_partition(
    dir: &SpillDir,
    file: &SpillFile,
    level: u32,
    cols: &[String],
    group_idx: &[usize],
    q: &ConjunctiveQuery,
    visible: &[&OutputItem],
    labels: &[String],
    budget: &mut Budget,
    out: &mut VRelation,
) -> Result<(), EvalError> {
    if file.rows == 0 {
        return Ok(());
    }
    if budget.try_reserve_bytes(file.bytes) {
        let mut rows: Vec<Row> = Vec::with_capacity(file.rows as usize);
        let mut reader = SpillReader::open(&file.path)?;
        while let Some(frame) = reader.read_row()? {
            rows.push(ops::split_frame(frame)?.1);
        }
        drop(reader);
        let rel = VRelation::from_rows(cols.to_vec(), rows);
        let r = aggregate_rows(&rel, group_idx, q, visible, labels, budget);
        budget.uncharge_bytes(file.bytes);
        match r {
            Ok(part) => {
                for row in part.rows() {
                    out.push(row.clone());
                }
                Ok(())
            }
            Err(EvalError::MemoryExceeded { .. }) if level < MAX_SPILL_LEVEL => {
                aggregate_repartition(
                    dir, file, level, cols, group_idx, q, visible, labels, budget, out,
                )
            }
            Err(e) => Err(e),
        }
    } else if level < MAX_SPILL_LEVEL {
        aggregate_repartition(
            dir, file, level, cols, group_idx, q, visible, labels, budget, out,
        )
    } else {
        Err(group_state_exceeded(budget, file.bytes))
    }
}

/// Splits a spilled partition one level deeper and aggregates the pieces.
#[allow(clippy::too_many_arguments)]
fn aggregate_repartition(
    dir: &SpillDir,
    file: &SpillFile,
    level: u32,
    cols: &[String],
    group_idx: &[usize],
    q: &ConjunctiveQuery,
    visible: &[&OutputItem],
    labels: &[String],
    budget: &mut Budget,
    out: &mut VRelation,
) -> Result<(), EvalError> {
    let stats = budget.spill_stats();
    let subs = ops::repartition_file(dir, "g", file, level + 1, &stats)?;
    for s in &subs {
        aggregate_spilled_partition(
            dir,
            s,
            level + 1,
            cols,
            group_idx,
            q,
            visible,
            labels,
            budget,
            out,
        )?;
    }
    Ok(())
}

/// Columnar grouping: group identity is decided by one vectorized
/// key-hash pass over the GROUP BY columns plus typed cell verification —
/// no boxed `Row` keys are built for the hash map. Accumulator feeding
/// still materializes a row per input tuple *only* when some aggregate
/// carries a scalar expression (which is row-shaped by nature);
/// `COUNT(*)`-style aggregates run without touching a `Value`.
fn aggregate_c(
    answer: &CRel,
    q: &ConjunctiveQuery,
    visible: &[&OutputItem],
    labels: &[String],
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let group_idx = group_layout(answer.cols(), q, visible)?;
    let spillable =
        !group_idx.is_empty() && answer.len() > 1 && budget.spill_mode() != SpillMode::Off;
    let spill = |budget: &mut Budget| {
        // Rows stream straight out of the columns into the partition
        // files; decoded partitions aggregate through the row core (its
        // `Value`s round-trip the dictionary content-identically).
        let reader = dict::reader();
        let hashes = cops::key_hashes(answer, &group_idx, &reader);
        aggregate_spilled(
            answer.len(),
            |i| {
                answer
                    .columns()
                    .iter()
                    .map(|c| c.value_with(i, &reader))
                    .collect()
            },
            |i| hashes[i],
            answer.cols(),
            &group_idx,
            q,
            visible,
            labels,
            budget,
        )
    };
    if spillable && budget.spill_mode() == SpillMode::Force {
        return spill(budget);
    }
    match aggregate_c_mem(answer, &group_idx, q, visible, labels, budget) {
        Err(EvalError::MemoryExceeded { .. }) if spillable => spill(budget),
        r => r,
    }
}

/// In-memory columnar aggregation core; byte accounting mirrors
/// [`aggregate_rows`] (group state accrues against the pool, the hash
/// array is reserved up front, output rows are charged on success).
fn aggregate_c_mem(
    answer: &CRel,
    group_idx: &[usize],
    q: &ConjunctiveQuery,
    visible: &[&OutputItem],
    labels: &[String],
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let hash_bytes = 8 * answer.len() as u64;
    if !budget.try_reserve_bytes(hash_bytes) {
        return Err(group_state_exceeded(budget, hash_bytes));
    }
    let mut accrued = 0u64;
    let result = aggregate_c_inner(answer, group_idx, q, visible, labels, budget, &mut accrued);
    budget.uncharge_bytes(hash_bytes + accrued);
    let out = result?;
    budget.charge_bytes(out.len() as u64 * row_heap_bytes(out.cols().len()))?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn aggregate_c_inner(
    answer: &CRel,
    group_idx: &[usize],
    q: &ConjunctiveQuery,
    visible: &[&OutputItem],
    labels: &[String],
    budget: &mut Budget,
    accrued: &mut u64,
) -> Result<VRelation, EvalError> {
    let group_bytes = group_state_bytes(group_idx.len(), visible.len());
    let needs_row = visible
        .iter()
        .any(|o| matches!(o, OutputItem::Aggregate { expr: Some(_), .. }));
    let cols = answer.cols().to_vec();

    let reader = dict::reader();
    let hashes = cops::key_hashes(answer, group_idx, &reader);
    // hash → candidate group ids; groups remember their first-seen row.
    let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    let mut first_row: Vec<u32> = Vec::new();
    let mut accs: Vec<Vec<Accumulator>> = Vec::new();
    let mut scratch: Row = Vec::new().into_boxed_slice();
    for (i, &h) in hashes.iter().enumerate() {
        let bucket = buckets.entry(h).or_default();
        let gid = bucket.iter().copied().find(|&g| {
            let j = first_row[g as usize] as usize;
            group_idx
                .iter()
                .all(|&c| answer.column(c).eq_at(i, answer.column(c), j, &reader))
        });
        let gid = match gid {
            Some(g) => g as usize,
            None => {
                if !budget.try_reserve_bytes(group_bytes) {
                    return Err(group_state_exceeded(budget, group_bytes));
                }
                *accrued += group_bytes;
                budget.charge(1)?;
                let g = first_row.len();
                bucket.push(g as u32);
                first_row.push(i as u32);
                accs.push(visible.iter().map(|o| Accumulator::for_item(o)).collect());
                g
            }
        };
        if needs_row {
            let row: Vec<Value> = answer
                .columns()
                .iter()
                .map(|c| c.value_with(i, &reader))
                .collect();
            scratch = row.into_boxed_slice();
        }
        for (acc, item) in accs[gid].iter_mut().zip(visible) {
            acc.feed(item, &cols, &scratch)?;
        }
    }

    // Global aggregate over empty input still produces one row.
    if accs.is_empty() && q.group_by.is_empty() {
        first_row.push(0);
        accs.push(visible.iter().map(|o| Accumulator::for_item(o)).collect());
    }

    let mut out = VRelation::empty(labels.to_vec());
    for (g, group_accs) in accs.iter().enumerate() {
        let mut row: Vec<Value> = Vec::with_capacity(visible.len());
        for (acc, item) in group_accs.iter().zip(visible) {
            row.push(match item {
                OutputItem::Var { var, .. } => {
                    let gpos = q.group_by.iter().position(|g| g == var).expect("validated");
                    answer
                        .column(group_idx[gpos])
                        .value_with(first_row[g] as usize, &reader)
                }
                OutputItem::Aggregate { .. } => acc.finish(),
            });
        }
        out.push(row.into_boxed_slice());
    }
    Ok(out)
}

/// Why [`Accumulator::feed_weighted`] cannot reproduce the plain
/// row-at-a-time feed bit for bit — the factorized front's cue to fall
/// back to full materialization.
pub(crate) enum WeightedFeedError {
    /// The iterated feed would accumulate floats, whose rounding depends
    /// on input order; a weighted shortcut cannot be bit-identical.
    OrderSensitive,
    /// A count would overflow `u64` under weighting.
    Overflow,
    /// A genuine evaluation error (bad scalar expression, non-numeric
    /// SUM input) that the materialized path would also surface.
    Eval(EvalError),
}

/// Streaming accumulator for one output item.
pub(crate) enum Accumulator {
    /// Placeholder for plain grouping variables.
    Group,
    Sum {
        int: i64,
        float: f64,
        any_float: bool,
        n: u64,
    },
    Count {
        n: u64,
    },
    MinMax {
        best: Option<Value>,
        min: bool,
    },
    Avg {
        sum: f64,
        n: u64,
    },
}

impl Accumulator {
    pub(crate) fn for_item(item: &OutputItem) -> Accumulator {
        match item {
            OutputItem::Var { .. } => Accumulator::Group,
            OutputItem::Aggregate { func, .. } => match func {
                AggFunc::Sum => Accumulator::Sum {
                    int: 0,
                    float: 0.0,
                    any_float: false,
                    n: 0,
                },
                AggFunc::Count => Accumulator::Count { n: 0 },
                AggFunc::Min => Accumulator::MinMax {
                    best: None,
                    min: true,
                },
                AggFunc::Max => Accumulator::MinMax {
                    best: None,
                    min: false,
                },
                AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
            },
        }
    }

    fn feed(&mut self, item: &OutputItem, cols: &[String], row: &Row) -> Result<(), EvalError> {
        let OutputItem::Aggregate { expr, .. } = item else {
            return Ok(());
        };
        let value = match expr {
            Some(e) => eval_scalar(e, cols, row)?,
            None => Value::Int(1), // COUNT(*): any non-null marker
        };
        match self {
            Accumulator::Group => {}
            Accumulator::Count { n } => {
                if !value.is_null() {
                    *n += 1;
                }
            }
            Accumulator::Sum {
                int,
                float,
                any_float,
                n,
            } => match value {
                Value::Null => {}
                Value::Int(i) => {
                    *int = int.wrapping_add(i);
                    *n += 1;
                }
                Value::Float(x) => {
                    *float += x;
                    *any_float = true;
                    *n += 1;
                }
                other => {
                    return Err(EvalError::Internal(format!(
                        "SUM over non-numeric value ({})",
                        other.type_name()
                    )))
                }
            },
            Accumulator::MinMax { best, min } => {
                if value.is_null() {
                    return Ok(());
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let ord = value.cmp(b);
                        if *min {
                            ord.is_lt()
                        } else {
                            ord.is_gt()
                        }
                    }
                };
                if better {
                    *best = Some(value);
                }
            }
            Accumulator::Avg { sum, n } => {
                if let Some(x) = value.as_f64() {
                    *sum += x;
                    *n += 1;
                } else if !value.is_null() {
                    return Err(EvalError::Internal("AVG over non-numeric value".into()));
                }
            }
        }
        Ok(())
    }

    /// Feeds one answer-row multiplicity class of `weight` rows at once —
    /// the factorized aggregate front's replacement for calling
    /// [`Accumulator::feed`] `weight` times. Exact (bit-identical to the
    /// iterated feed) for grouping placeholders, COUNT, integer SUM and
    /// MIN/MAX; declines with [`WeightedFeedError::OrderSensitive`] when
    /// the iterated feed would accumulate floats (whose rounding depends
    /// on input order) and with [`WeightedFeedError::Overflow`] when a
    /// count would wrap where the iterated path could not.
    pub(crate) fn feed_weighted(
        &mut self,
        item: &OutputItem,
        cols: &[String],
        row: &Row,
        weight: u64,
    ) -> Result<(), WeightedFeedError> {
        let OutputItem::Aggregate { expr, .. } = item else {
            return Ok(());
        };
        let value = match expr {
            Some(e) => eval_scalar(e, cols, row).map_err(WeightedFeedError::Eval)?,
            None => Value::Int(1), // COUNT(*): any non-null marker
        };
        match self {
            Accumulator::Group => {}
            Accumulator::Count { n } => {
                if !value.is_null() {
                    // COUNT's counter *is* the result: overflow must not
                    // silently wrap.
                    *n = n.checked_add(weight).ok_or(WeightedFeedError::Overflow)?;
                }
            }
            Accumulator::Sum {
                int,
                float: _,
                any_float: _,
                n,
            } => match value {
                Value::Null => {}
                Value::Int(i) => {
                    // `weight` wrapping adds of `i` ≡ one wrapping add of
                    // `i * weight` mod 2^64, so this is exact.
                    *int = int.wrapping_add(i.wrapping_mul(weight as i64));
                    // `n` only decides SUM-of-nothing-is-NULL; saturation
                    // preserves its zero/non-zero meaning.
                    *n = n.saturating_add(weight);
                }
                Value::Float(_) => return Err(WeightedFeedError::OrderSensitive),
                other => {
                    return Err(WeightedFeedError::Eval(EvalError::Internal(format!(
                        "SUM over non-numeric value ({})",
                        other.type_name()
                    ))))
                }
            },
            Accumulator::MinMax { best, min } => {
                // Order- and multiplicity-free: feed the value once.
                if value.is_null() {
                    return Ok(());
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let ord = value.cmp(b);
                        if *min {
                            ord.is_lt()
                        } else {
                            ord.is_gt()
                        }
                    }
                };
                if better {
                    *best = Some(value);
                }
            }
            // AVG divides an order-sensitively accumulated float sum;
            // callers exclude it statically, but stay safe here too.
            Accumulator::Avg { .. } => return Err(WeightedFeedError::OrderSensitive),
        }
        Ok(())
    }

    pub(crate) fn finish(&self) -> Value {
        match self {
            Accumulator::Group => Value::Null,
            Accumulator::Count { n } => Value::Int(*n as i64),
            Accumulator::Sum {
                int,
                float,
                any_float,
                n,
            } => {
                if *n == 0 {
                    Value::Null
                } else if *any_float {
                    Value::Float(*float + *int as f64)
                } else {
                    Value::Int(*int)
                }
            }
            Accumulator::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
            Accumulator::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *n as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_cq::{AggFunc, CqBuilder, ScalarExpr};

    fn answer(cols: &[&str], rows: Vec<Vec<Value>>) -> VRelation {
        VRelation::from_rows(
            cols.iter().map(|c| c.to_string()).collect(),
            rows.into_iter().map(|r| r.into_boxed_slice()).collect(),
        )
    }

    #[test]
    fn group_by_sum() {
        let q = CqBuilder::new()
            .atom_vars("r", &["G", "X"])
            .out_var("G")
            .out_agg(AggFunc::Sum, Some(ScalarExpr::Var("X".into())), "total")
            .group("G")
            .build();
        let a = answer(
            &["G", "X"],
            vec![
                vec![Value::str("a"), Value::Int(1)],
                vec![Value::str("a"), Value::Int(2)],
                vec![Value::str("b"), Value::Int(5)],
            ],
        );
        let mut budget = Budget::unlimited();
        let out = finalize(&a, &q, &mut budget).unwrap();
        assert_eq!(out.cols(), &["G".to_string(), "total".to_string()]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.value(0, "total"), Some(&Value::Int(3)));
        assert_eq!(out.value(1, "total"), Some(&Value::Int(5)));
    }

    #[test]
    fn count_star_and_empty_input() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X"])
            .out_agg(AggFunc::Count, None, "n")
            .build();
        let a = answer(&[], vec![]);
        let mut budget = Budget::unlimited();
        let out = finalize(&a, &q, &mut budget).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, "n"), Some(&Value::Int(0)));
    }

    #[test]
    fn sum_over_empty_group_is_null_globally() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X"])
            .out_agg(AggFunc::Sum, Some(ScalarExpr::Var("X".into())), "s")
            .build();
        let a = answer(&["X"], vec![]);
        let mut budget = Budget::unlimited();
        let out = finalize(&a, &q, &mut budget).unwrap();
        assert_eq!(out.value(0, "s"), Some(&Value::Null));
    }

    #[test]
    fn min_max_avg() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X"])
            .out_agg(AggFunc::Min, Some(ScalarExpr::Var("X".into())), "lo")
            .out_agg(AggFunc::Max, Some(ScalarExpr::Var("X".into())), "hi")
            .out_agg(AggFunc::Avg, Some(ScalarExpr::Var("X".into())), "avg")
            .build();
        let a = answer(
            &["X"],
            vec![
                vec![Value::Int(3)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        );
        let mut budget = Budget::unlimited();
        let out = finalize(&a, &q, &mut budget).unwrap();
        assert_eq!(out.value(0, "lo"), Some(&Value::Int(1)));
        assert_eq!(out.value(0, "hi"), Some(&Value::Int(3)));
        assert_eq!(out.value(0, "avg"), Some(&Value::Float(2.0)));
    }

    #[test]
    fn hidden_rowids_are_dropped_but_preserve_multiplicity() {
        // Two answer rows differ only in the hidden rowid: the sum must see
        // both.
        let q = CqBuilder::new()
            .atom_vars("r", &["X"])
            .out_agg(AggFunc::Sum, Some(ScalarExpr::Var("X".into())), "s")
            .out_var("__rid_r") // hidden multiplicity guard
            .build();
        let a = answer(
            &["X", "__rid_r"],
            vec![
                vec![Value::Int(5), Value::Int(0)],
                vec![Value::Int(5), Value::Int(1)],
            ],
        );
        let mut budget = Budget::unlimited();
        let out = finalize(&a, &q, &mut budget).unwrap();
        assert_eq!(out.cols(), &["s".to_string()]);
        assert_eq!(out.value(0, "s"), Some(&Value::Int(10)));
    }

    #[test]
    fn ungrouped_output_variable_is_an_error() {
        let q = CqBuilder::new()
            .atom_vars("r", &["G", "X"])
            .out_var("G")
            .out_agg(AggFunc::Sum, Some(ScalarExpr::Var("X".into())), "s")
            .build(); // no GROUP BY G
        let a = answer(&["G", "X"], vec![vec![Value::Int(1), Value::Int(1)]]);
        let mut budget = Budget::unlimited();
        assert!(finalize(&a, &q, &mut budget).is_err());
    }

    #[test]
    fn order_by_applies_to_output() {
        let q = CqBuilder::new()
            .atom_vars("r", &["G", "X"])
            .out_var("G")
            .out_agg(AggFunc::Sum, Some(ScalarExpr::Var("X".into())), "total")
            .group("G")
            .order("total", SortDir::Desc)
            .build();
        let a = answer(
            &["G", "X"],
            vec![
                vec![Value::str("a"), Value::Int(1)],
                vec![Value::str("b"), Value::Int(5)],
            ],
        );
        let mut budget = Budget::unlimited();
        let out = finalize(&a, &q, &mut budget).unwrap();
        assert_eq!(out.value(0, "G"), Some(&Value::str("b")));
    }

    #[test]
    fn having_filters_groups() {
        let q = CqBuilder::new()
            .atom_vars("r", &["G", "X"])
            .out_var("G")
            .out_agg(AggFunc::Sum, Some(ScalarExpr::Var("X".into())), "total")
            .group("G")
            .having("total", htqo_cq::CmpOp::Ge, htqo_cq::Literal::Int(4))
            .build();
        let a = answer(
            &["G", "X"],
            vec![
                vec![Value::str("a"), Value::Int(1)],
                vec![Value::str("a"), Value::Int(2)],
                vec![Value::str("b"), Value::Int(5)],
            ],
        );
        let mut budget = Budget::unlimited();
        let out = finalize(&a, &q, &mut budget).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, "G"), Some(&Value::str("b")));
        // Unknown HAVING label surfaces as an error (guarded upstream by
        // the isolator, but the engine stays defensive).
        let bad = CqBuilder::new()
            .atom_vars("r", &["G"])
            .out_var("G")
            .group("G")
            .having("zz", htqo_cq::CmpOp::Eq, htqo_cq::Literal::Int(1))
            .build();
        assert!(finalize(&a, &bad, &mut budget).is_err());
    }

    #[test]
    fn limit_truncates_after_sort() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X"])
            .out_var("X")
            .order("X", SortDir::Desc)
            .limit(2)
            .build();
        let a = answer(
            &["X"],
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(3)],
                vec![Value::Int(2)],
            ],
        );
        let mut budget = Budget::unlimited();
        let out = finalize(&a, &q, &mut budget).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.value(0, "X"), Some(&Value::Int(3)));
        assert_eq!(out.value(1, "X"), Some(&Value::Int(2)));
    }

    /// The columnar front agrees with the row front — answers and budget
    /// charges — across the aggregate, projection, HAVING and ORDER BY
    /// paths.
    #[test]
    fn finalize_c_matches_row_finalize() {
        let queries = vec![
            CqBuilder::new()
                .atom_vars("r", &["G", "X"])
                .out_var("G")
                .out_agg(AggFunc::Sum, Some(ScalarExpr::Var("X".into())), "total")
                .group("G")
                .order("total", SortDir::Desc)
                .build(),
            CqBuilder::new()
                .atom_vars("r", &["G", "X"])
                .out_var("G")
                .out_agg(AggFunc::Count, None, "n")
                .out_agg(AggFunc::Avg, Some(ScalarExpr::Var("X".into())), "avg")
                .group("G")
                .having("n", htqo_cq::CmpOp::Ge, htqo_cq::Literal::Int(2))
                .build(),
            CqBuilder::new()
                .atom_vars("r", &["G", "X"])
                .out_var("G")
                .out_var("X")
                .order("X", SortDir::Asc)
                .limit(2)
                .build(),
        ];
        let a = answer(
            &["G", "X"],
            vec![
                vec![Value::str("a"), Value::Int(1)],
                vec![Value::str("a"), Value::Int(2)],
                vec![Value::str("b"), Value::Int(5)],
                vec![Value::Null, Value::Int(7)],
            ],
        );
        let ca = crate::crel::CRel::from_vrel(&a);
        for q in &queries {
            let mut b1 = Budget::unlimited();
            let mut b2 = Budget::unlimited();
            let row = finalize(&a, q, &mut b1).unwrap();
            let col = finalize_c(&ca, q, &mut b2).unwrap();
            assert_eq!(row, col);
            assert_eq!(b1.charged(), b2.charged());
        }
    }

    #[test]
    fn finalize_c_empty_global_aggregate() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X"])
            .out_agg(AggFunc::Count, None, "n")
            .build();
        let ca = crate::crel::CRel::empty(vec!["X".into()]);
        let mut budget = Budget::unlimited();
        let out = finalize_c(&ca, &q, &mut budget).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, "n"), Some(&Value::Int(0)));
    }

    #[test]
    fn no_aggregates_projects_distinct() {
        let q = CqBuilder::new()
            .atom_vars("r", &["X", "Y"])
            .out_var("X")
            .build();
        let a = answer(
            &["X", "Y"],
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(20)],
            ],
        );
        let mut budget = Budget::unlimited();
        let out = finalize(&a, &q, &mut budget).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.cols(), &["X".to_string()]);
    }
}
