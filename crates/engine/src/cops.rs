//! Columnar physical operators over [`CRel`]s — the column-at-a-time
//! counterparts of [`crate::ops`].
//!
//! The kernels share the row kernels' shape exactly (build on the smaller
//! side, the [`ChainTable`] chained-index hash table, hash partitioning
//! above [`PARALLEL_ROW_THRESHOLD`] with a fixed partition count, and the
//! same per-materialized-tuple [`Budget`] charges) but never touch a
//! boxed `Value` on the hot path:
//!
//! - key hashes are produced by one vectorized pass per key column
//!   ([`crate::column::Column::write_hashes`]) over flat typed vectors;
//! - candidate matches are verified by typed cell comparisons
//!   ([`crate::column::Column::eq_at`]) — string cells compare by `u32`
//!   dictionary code;
//! - output is materialized by collecting matching `(build, probe)` row
//!   index pairs and running one gather pass per output column, instead
//!   of cloning cells row by row.
//!
//! String cell hashes are content-based (memoized in the dictionary), so
//! hash-derived orders — partition assignment, dedup bucket order — do
//! not depend on dictionary interning order, and kernel output order is
//! reproducible across processes. Like the row kernels, sequential and
//! partitioned paths produce identical bags, with probe order preserved
//! within a partition and partitions concatenated in index order.

use crate::chain::ChainTable;
use crate::column::{finish_hash, Column};
use crate::crel::CRel;
use crate::dict::{self, DictReader};
use crate::error::{Budget, EvalError};
use crate::exec;
use crate::hash::{partition_of, FxHashMap};
use crate::ops::{self, PARALLEL_ROW_THRESHOLD};
use crate::value::Row;
use crate::vrel::VRelation;

/// Matching `(build, probe)` row index lists produced by a join kernel.
type PairLists = (Vec<u32>, Vec<u32>);

/// Bytes one matching `(build, probe)` index pair occupies in the
/// kernels' pair lists (two `u32`s) — the columnar counterpart of the row
/// kernels' per-output-row charge.
pub(crate) const PAIR_BYTES: u64 = 8;

/// Row `i` of `rel` as a boxed row, streamed straight out of the columns.
fn materialize_row(rel: &CRel, i: usize, reader: &DictReader) -> Row {
    rel.columns()
        .iter()
        .map(|c| c.value_with(i, reader))
        .collect()
}

/// Resident payload bytes of a columnar relation (sum of its columns'
/// typed vectors), charged when a kernel materializes its output.
pub(crate) fn crel_payload_bytes(r: &CRel) -> u64 {
    r.columns().iter().map(|c| c.payload_bytes() as u64).sum()
}

/// Column positions of the shared variables in `a` and `b`, plus the
/// positions in `b` of its non-shared columns.
fn join_layout(a: &CRel, b: &CRel) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut a_shared = Vec::new();
    let mut b_shared = Vec::new();
    for (i, c) in a.cols().iter().enumerate() {
        if let Some(j) = b.col_index(c) {
            a_shared.push(i);
            b_shared.push(j);
        }
    }
    let b_rest: Vec<usize> = (0..b.cols().len())
        .filter(|j| !b_shared.contains(j))
        .collect();
    (a_shared, b_shared, b_rest)
}

/// 64-bit key hash of every row over the key columns `idx`: one
/// [`Column::write_hashes`] pass per column, then the avalanche
/// finalizer. An empty key hashes every row to the same constant (cross
/// products), matching [`crate::hash::hash_key`]'s convention.
pub fn key_hashes(rel: &CRel, idx: &[usize], reader: &DictReader) -> Vec<u64> {
    let mut acc = vec![0u64; rel.len()];
    for &c in idx {
        rel.column(c).write_hashes(&mut acc, reader);
    }
    for h in &mut acc {
        *h = finish_hash(*h);
    }
    acc
}

/// True if row `i` of `a` and row `j` of `b` agree on the paired key
/// columns (`Value` equality semantics).
#[inline]
fn rows_key_eq(
    a: &CRel,
    i: usize,
    b: &CRel,
    j: usize,
    a_idx: &[usize],
    b_idx: &[usize],
    reader: &DictReader,
) -> bool {
    a_idx
        .iter()
        .zip(b_idx)
        .all(|(&x, &y)| a.column(x).eq_at(i, b.column(y), j, reader))
}

/// Permutes the columns of `r` to `desired` (must be a permutation) — a
/// pointer shuffle, no row data is copied.
fn reorder(r: CRel, desired: &[String]) -> CRel {
    let mut columns: Vec<Option<Column>> = r.columns().to_vec().into_iter().map(Some).collect();
    let len = r.len();
    let out_columns: Vec<Column> = desired
        .iter()
        .map(|c| {
            let i = r.col_index(c).expect("reorder: missing column");
            columns[i].take().expect("reorder: duplicate column")
        })
        .collect();
    CRel::new(desired.to_vec(), out_columns, len)
}

/// Natural join of `a` and `b` on their shared variables — the columnar
/// [`crate::ops::natural_join`]. Same budget charges, same output bag,
/// same deterministic ordering contract.
pub fn natural_join(a: &CRel, b: &CRel, budget: &mut Budget) -> Result<CRel, EvalError> {
    crate::fail_point!("cops::join");
    budget.join_stats().add_hash_build();
    let (build, probe, swapped) = if a.len() <= b.len() {
        (a, b, false)
    } else {
        (b, a, true)
    };
    let (build_shared, probe_shared, probe_rest) = join_layout(build, probe);

    let mut out_cols: Vec<String> = build.cols().to_vec();
    out_cols.extend(probe_rest.iter().map(|&j| probe.cols()[j].clone()));

    let out = if ops::join_build_reservation(budget, &build_shared, build.len(), probe.len())? {
        // Grace spill path: the shared row-carrier machinery, fed rows
        // streamed straight out of the columns (no row-carrier copy of
        // either input is ever materialized).
        let reader = dict::reader();
        let build_hashes = key_hashes(build, &build_shared, &reader);
        let probe_hashes = key_hashes(probe, &probe_shared, &reader);
        let rows = ops::grace_join_spill(
            build.len(),
            |i| materialize_row(build, i, &reader),
            |i| build_hashes[i],
            probe.len(),
            |i| materialize_row(probe, i, &reader),
            |i| probe_hashes[i],
            &build_shared,
            &probe_shared,
            &probe_rest,
            build.cols().len(),
            budget,
        )?;
        drop(reader);
        // Re-encoding interns into the dictionary, so the reader must be
        // released first.
        CRel::from_vrel(&VRelation::from_rows(out_cols, rows))
    } else {
        let threads = exec::num_threads();
        let result = if !build_shared.is_empty()
            && threads > 1
            && build.len() + probe.len() >= PARALLEL_ROW_THRESHOLD
        {
            join_pairs_partitioned(build, probe, &build_shared, &probe_shared, threads, budget)
        } else {
            join_pairs_sequential(build, probe, &build_shared, &probe_shared, budget)
        };
        // The build table (and hash scratch) is gone either way.
        budget.uncharge_bytes(ops::join_build_bytes(build.len(), probe.len()));
        let (build_idx, probe_idx) = result?;

        // Output construction: one gather pass per column.
        let mut columns: Vec<Column> = Vec::with_capacity(out_cols.len());
        for c in build.columns() {
            columns.push(c.gather(&build_idx));
        }
        for &j in &probe_rest {
            columns.push(probe.column(j).gather(&probe_idx));
        }
        let n = build_idx.len();
        let out = CRel::new(out_cols, columns, n);
        budget.charge_bytes(crel_payload_bytes(&out))?;
        out
    };

    if swapped {
        let desired: Vec<String> = {
            let mut cols: Vec<String> = a.cols().to_vec();
            cols.extend(b.cols().iter().filter(|c| !a.cols().contains(c)).cloned());
            cols
        };
        return Ok(reorder(out, &desired));
    }
    Ok(out)
}

/// Sequential kernel: matching `(build, probe)` row pairs in probe-major
/// order (ascending build chain within a probe row).
fn join_pairs_sequential(
    build: &CRel,
    probe: &CRel,
    build_shared: &[usize],
    probe_shared: &[usize],
    budget: &mut Budget,
) -> Result<PairLists, EvalError> {
    let reader = dict::reader();
    let build_hashes = key_hashes(build, build_shared, &reader);
    let probe_hashes = key_hashes(probe, probe_shared, &reader);
    let table = ChainTable::build(build.len(), |i| build_hashes[i]);
    let mut build_idx: Vec<u32> = Vec::new();
    let mut probe_idx: Vec<u32> = Vec::new();
    for (pi, &ph) in probe_hashes.iter().enumerate() {
        table.for_each(ph, |bi| {
            if rows_key_eq(build, bi, probe, pi, build_shared, probe_shared, &reader) {
                budget.charge(1)?;
                budget.charge_bytes(PAIR_BYTES)?;
                build_idx.push(bi as u32);
                probe_idx.push(pi as u32);
            }
            Ok(())
        })?;
    }
    Ok((build_idx, probe_idx))
}

/// Partitioned parallel kernel: split both sides by the high hash bits,
/// build+probe per partition on the worker pool, concatenate pair lists
/// in partition order (deterministic for any thread count).
fn join_pairs_partitioned(
    build: &CRel,
    probe: &CRel,
    build_shared: &[usize],
    probe_shared: &[usize],
    threads: usize,
    budget: &mut Budget,
) -> Result<PairLists, EvalError> {
    // Fixed partition count, matching the row kernel.
    let bits = 6u32;
    let nparts = 1usize << bits;

    let reader = dict::reader();
    let build_hashes = key_hashes(build, build_shared, &reader);
    let probe_hashes = key_hashes(probe, probe_shared, &reader);
    drop(reader);

    let bucket = |hashes: &[u64]| -> Vec<Vec<u32>> {
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); nparts];
        for (i, &h) in hashes.iter().enumerate() {
            parts[partition_of(h, bits)].push(i as u32);
        }
        parts
    };
    let build_parts = bucket(&build_hashes);
    let probe_parts = bucket(&probe_hashes);

    let shared = budget.fork();
    let tasks: Vec<usize> = (0..nparts).collect();
    let results = exec::parallel_map(tasks, threads, |p| {
        crate::fail_point!("cops::join::partition");
        let reader = dict::reader();
        let mut bud = shared.clone();
        let bp = &build_parts[p];
        let table = ChainTable::build(bp.len(), |k| build_hashes[bp[k] as usize]);
        let mut build_idx: Vec<u32> = Vec::new();
        let mut probe_idx: Vec<u32> = Vec::new();
        for &pi in &probe_parts[p] {
            table.for_each(probe_hashes[pi as usize], |k| {
                let bi = bp[k] as usize;
                if rows_key_eq(
                    build,
                    bi,
                    probe,
                    pi as usize,
                    build_shared,
                    probe_shared,
                    &reader,
                ) {
                    bud.charge(1)?;
                    bud.charge_bytes(PAIR_BYTES)?;
                    build_idx.push(bi as u32);
                    probe_idx.push(pi);
                }
                Ok(())
            })?;
        }
        Ok((build_idx, probe_idx))
    });

    // Budget exhaustion first (deterministic for any thread count), then
    // a contained worker panic, then the first per-partition error, then
    // concatenation in partition order — mirrors
    // `ops::merge_partition_results`.
    budget.check_exceeded()?;
    let results = results?;
    let mut parts = Vec::with_capacity(results.len());
    for r in results {
        parts.push(r?);
    }
    let total: usize = parts.iter().map(|(b, _)| b.len()).sum();
    let mut build_idx = Vec::with_capacity(total);
    let mut probe_idx = Vec::with_capacity(total);
    for (b, p) in parts {
        build_idx.extend(b);
        probe_idx.extend(p);
    }
    Ok((build_idx, probe_idx))
}

/// Semijoin `a ⋉ b` — the columnar [`crate::ops::semijoin`].
pub fn semijoin(a: &CRel, b: &CRel, budget: &mut Budget) -> Result<CRel, EvalError> {
    crate::fail_point!("cops::semijoin");
    let (a_shared, b_shared, _) = join_layout(a, b);
    if a_shared.is_empty() {
        return if b.is_empty() {
            Ok(CRel::empty(a.cols().to_vec()))
        } else {
            budget.charge(a.len() as u64)?;
            budget.charge_bytes(crel_payload_bytes(a))?;
            Ok(a.clone())
        };
    }

    // Build table + both hash arrays, released when the kernel returns
    // (mirrors the row semijoin: the reducer side is expected to fit).
    let table_bytes = ops::join_build_bytes(b.len(), a.len());
    budget.reserve_bytes(table_bytes)?;
    let reader = dict::reader();
    let b_hashes = key_hashes(b, &b_shared, &reader);
    let a_hashes = key_hashes(a, &a_shared, &reader);
    let table = ChainTable::build(b.len(), |i| b_hashes[i]);
    let matches = |ai: usize, reader: &DictReader| {
        table.any(a_hashes[ai], |bi| {
            rows_key_eq(a, ai, b, bi, &a_shared, &b_shared, reader)
        })
    };

    let threads = exec::num_threads();
    let keep_result: Result<Vec<u32>, EvalError> =
        if threads > 1 && a.len() + b.len() >= PARALLEL_ROW_THRESHOLD {
            drop(reader);
            let shared = budget.fork();
            let chunks = exec::chunk_ranges(a.len(), threads * 4);
            let results = exec::parallel_map(chunks, threads, |(lo, hi)| {
                let reader = dict::reader();
                let mut bud = shared.clone();
                let mut out = Vec::new();
                for i in lo..hi {
                    if matches(i, &reader) {
                        bud.charge(1)?;
                        bud.charge_bytes(4)?;
                        out.push(i as u32);
                    }
                }
                Ok(out)
            });
            let merge = |results: Result<Vec<Result<Vec<u32>, EvalError>>, EvalError>,
                         budget: &mut Budget|
             -> Result<Vec<u32>, EvalError> {
                budget.check_exceeded()?;
                let mut parts = Vec::new();
                for r in results? {
                    parts.push(r?);
                }
                Ok(parts.into_iter().flatten().collect())
            };
            merge(results, budget)
        } else {
            let mut run = || {
                let mut out = Vec::new();
                for i in 0..a.len() {
                    if matches(i, &reader) {
                        budget.charge(1)?;
                        budget.charge_bytes(4)?;
                        out.push(i as u32);
                    }
                }
                Ok(out)
            };
            run()
        };
    budget.uncharge_bytes(table_bytes);
    let keep = keep_result?;
    let columns: Vec<Column> = a.columns().iter().map(|c| c.gather(&keep)).collect();
    let out = CRel::new(a.cols().to_vec(), columns, keep.len());
    budget.charge_bytes(crel_payload_bytes(&out))?;
    Ok(out)
}

/// Projects `a` onto `vars` — the columnar [`crate::ops::project`].
/// Distinct mode dedups via per-row key hashes with typed verification;
/// bag mode is a column clone (no per-cell work at all).
pub fn project(
    a: &CRel,
    vars: &[String],
    distinct: bool,
    budget: &mut Budget,
) -> Result<CRel, EvalError> {
    crate::fail_point!("cops::project");
    let idx: Vec<usize> = vars
        .iter()
        .map(|v| {
            a.col_index(v)
                .ok_or_else(|| EvalError::UnknownVariable(v.clone()))
        })
        .collect::<Result<_, _>>()?;
    if distinct {
        // Dedup state: the hash array plus the bucket map, reserved as one
        // block and released once the kept indices are gathered.
        let map_bytes =
            8 * a.len() as u64 + (a.len() * std::mem::size_of::<(u64, Vec<u32>)>()) as u64;
        budget.reserve_bytes(map_bytes)?;
        let reader = dict::reader();
        let hashes = key_hashes(a, &idx, &reader);
        let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        seen.reserve(a.len());
        let mut keep: Vec<u32> = Vec::new();
        let mut run = || {
            for (i, &h) in hashes.iter().enumerate() {
                let bucket = seen.entry(h).or_default();
                let dup = bucket
                    .iter()
                    .any(|&oi| rows_key_eq(a, i, a, oi as usize, &idx, &idx, &reader));
                if !dup {
                    budget.charge(1)?;
                    budget.charge_bytes(4)?;
                    bucket.push(i as u32);
                    keep.push(i as u32);
                }
            }
            Ok(())
        };
        let result: Result<(), EvalError> = run();
        budget.uncharge_bytes(map_bytes);
        result?;
        let columns: Vec<Column> = idx.iter().map(|&c| a.column(c).gather(&keep)).collect();
        let out = CRel::new(vars.to_vec(), columns, keep.len());
        budget.charge_bytes(crel_payload_bytes(&out))?;
        Ok(out)
    } else {
        budget.charge(a.len() as u64)?;
        let columns: Vec<Column> = idx.iter().map(|&c| a.column(c).clone()).collect();
        let out = CRel::new(vars.to_vec(), columns, a.len());
        budget.charge_bytes(crel_payload_bytes(&out))?;
        Ok(out)
    }
}

/// Projects onto the intersection of `a`'s columns and `vars`, distinct —
/// the columnar [`crate::ops::project_onto_available`].
pub fn project_onto_available(
    a: &CRel,
    vars: &[String],
    budget: &mut Budget,
) -> Result<CRel, EvalError> {
    let avail: Vec<String> = vars
        .iter()
        .filter(|v| a.col_index(v).is_some())
        .cloned()
        .collect();
    if avail.len() == a.cols().len() {
        return Ok(a.clone());
    }
    project(a, &avail, true, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::value::Value;
    use crate::vrel::VRelation;

    fn vrel(cols: &[&str], rows: &[&[i64]]) -> VRelation {
        VRelation::from_rows(
            cols.iter().map(|c| c.to_string()).collect(),
            rows.iter()
                .map(|r| r.iter().map(|&i| Value::Int(i)).collect())
                .collect(),
        )
    }

    fn crel(cols: &[&str], rows: &[&[i64]]) -> CRel {
        CRel::from_vrel(&vrel(cols, rows))
    }

    #[test]
    fn join_matches_row_kernel() {
        let a = vrel(&["x", "y"], &[&[1, 10], &[2, 20], &[3, 20]]);
        let b = vrel(&["y", "z"], &[&[10, 100], &[20, 200], &[20, 201]]);
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let row = ops::natural_join(&a, &b, &mut b1).unwrap();
        let col = natural_join(&CRel::from_vrel(&a), &CRel::from_vrel(&b), &mut b2).unwrap();
        assert!(col.to_vrel().set_eq(&row));
        assert_eq!(b1.charged(), b2.charged());
    }

    #[test]
    fn join_with_neutral_is_identity() {
        let a = crel(&["x"], &[&[1], &[2]]);
        let mut budget = Budget::unlimited();
        let j = natural_join(&a, &CRel::neutral(), &mut budget).unwrap();
        assert!(j.to_vrel().set_eq(&a.to_vrel()));
        let j2 = natural_join(&CRel::neutral(), &a, &mut budget).unwrap();
        assert!(j2.to_vrel().set_eq(&a.to_vrel()));
    }

    #[test]
    fn cross_product_when_no_shared_columns() {
        let a = crel(&["x"], &[&[1], &[2]]);
        let b = crel(&["y"], &[&[7], &[8], &[9]]);
        let mut budget = Budget::unlimited();
        let j = natural_join(&a, &b, &mut budget).unwrap();
        assert_eq!(j.len(), 6);
        assert_eq!(budget.charged(), 6);
    }

    #[test]
    fn join_respects_budget() {
        let a = crel(&["x"], &[&[1], &[2], &[3]]);
        let b = crel(&["y"], &[&[1], &[2], &[3]]);
        let mut budget = Budget::unlimited().with_max_tuples(5);
        assert!(natural_join(&a, &b, &mut budget)
            .unwrap_err()
            .is_resource_limit());
    }

    #[test]
    fn swapped_sides_preserve_caller_column_order() {
        let a = vrel(&["x", "y"], &[&[1, 10], &[2, 20], &[3, 20]]);
        let b = vrel(&["y"], &[&[20]]);
        let mut budget = Budget::unlimited();
        let ab = natural_join(&CRel::from_vrel(&a), &CRel::from_vrel(&b), &mut budget).unwrap();
        let ba = natural_join(&CRel::from_vrel(&b), &CRel::from_vrel(&a), &mut budget).unwrap();
        assert_eq!(ab.cols(), &["x".to_string(), "y".to_string()]);
        assert_eq!(ba.cols(), &["y".to_string(), "x".to_string()]);
        assert!(ab.to_vrel().set_eq(&ba.to_vrel()));
    }

    #[test]
    fn semijoin_matches_row_kernel() {
        let a = vrel(&["x", "y"], &[&[1, 10], &[2, 20], &[3, 30]]);
        let b = vrel(&["y", "z"], &[&[10, 0], &[30, 0]]);
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let row = ops::semijoin(&a, &b, &mut b1).unwrap();
        let col = semijoin(&CRel::from_vrel(&a), &CRel::from_vrel(&b), &mut b2).unwrap();
        assert!(col.to_vrel().set_eq(&row));
        assert_eq!(b1.charged(), b2.charged());
    }

    #[test]
    fn semijoin_no_shared_columns() {
        let a = crel(&["x"], &[&[1], &[2]]);
        let empty = CRel::empty(vec!["y".into()]);
        let some = crel(&["y"], &[&[9]]);
        let mut budget = Budget::unlimited();
        assert!(semijoin(&a, &empty, &mut budget).unwrap().is_empty());
        assert!(semijoin(&a, &some, &mut budget)
            .unwrap()
            .to_vrel()
            .set_eq(&a.to_vrel()));
    }

    #[test]
    fn project_distinct_and_bag() {
        let a = crel(&["x", "y"], &[&[1, 10], &[1, 20], &[2, 10]]);
        let mut budget = Budget::unlimited();
        let p = project(&a, &["x".to_string()], true, &mut budget).unwrap();
        assert_eq!(p.len(), 2);
        let p2 = project(&a, &["x".to_string()], false, &mut budget).unwrap();
        assert_eq!(p2.len(), 3);
        assert!(matches!(
            project(&a, &["zz".to_string()], true, &mut budget),
            Err(EvalError::UnknownVariable(_))
        ));
    }

    #[test]
    fn project_onto_available_ignores_missing() {
        let a = crel(&["x", "y"], &[&[1, 10]]);
        let mut budget = Budget::unlimited();
        let p =
            project_onto_available(&a, &["x".to_string(), "w".to_string()], &mut budget).unwrap();
        assert_eq!(p.cols(), &["x".to_string()]);
    }

    #[test]
    fn large_join_partitioned_matches_sequential() {
        // Above the parallel threshold, with duplicate keys and strings.
        let n = 6000usize;
        let mk = |shift: i64| {
            let rows: Vec<Box<[Value]>> = (0..n)
                .map(|i| {
                    vec![
                        Value::Int((i as i64 + shift) % 97),
                        Value::str(&format!("s{}", i % 13)),
                    ]
                    .into_boxed_slice()
                })
                .collect();
            rows
        };
        let a = VRelation::from_rows(vec!["k".into(), "sa".into()], mk(0));
        let b = VRelation::from_rows(vec!["k".into(), "sb".into()], mk(3));
        let ca = CRel::from_vrel(&a);
        let cb = CRel::from_vrel(&b);
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let threads_before = exec::num_threads();
        exec::set_threads_exact(1);
        let seq = natural_join(&ca, &cb, &mut b1).unwrap();
        exec::set_threads_exact(4);
        let par = natural_join(&ca, &cb, &mut b2).unwrap();
        exec::set_threads_exact(threads_before);
        assert_eq!(seq.len(), par.len());
        assert_eq!(b1.charged(), b2.charged());
        assert_eq!(seq.to_vrel().sorted_rows(), par.to_vrel().sorted_rows());
    }
}
