//! Fault injection for robustness testing.
//!
//! Named *fail points* are compiled into the hot kernels (join, semijoin,
//! projection, scan, aggregation, the exec worker loop) behind the
//! `failpoints` cargo feature. Each site can be armed to inject a
//! structured [`EvalError`], a delay, or a deliberate panic — which is how
//! the chaos suite proves that every operator either returns the
//! oracle-correct answer or a clean error, with no escaped panics and no
//! leaked permits/budget.
//!
//! Cost model:
//! - feature off (the default for `--no-default-features` builds): the
//!   [`fail_point!`] macro folds to a constant-false branch — zero cost;
//! - feature on but no site armed: one relaxed atomic load per site hit;
//! - armed: a mutex-guarded registry lookup per hit (testing only).
//!
//! Sites are armed programmatically with [`configure`] or from the
//! environment via `HTQO_FAILPOINTS`, a `;`-separated list of
//! `site=action[@skip]` clauses where `action` is `error`, `panic`, or
//! `delay(<ms>)` and the optional `@skip` lets the first *skip* hits pass
//! (e.g. `HTQO_FAILPOINTS="ops::join=error;scan::atom=delay(5)@2"`).
//! [`clear`] resets everything (tests must call it between cases).

use crate::error::EvalError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed fail point does when hit.
#[derive(Clone, Debug, PartialEq)]
pub enum FailAction {
    /// Return `EvalError::Internal("injected failure at `<site>`")`.
    Error,
    /// Panic with a payload containing [`PANIC_MARKER`] and the site name.
    Panic,
    /// Sleep for the given duration, then continue normally. Used to
    /// widen race windows (e.g. for cancellation tests).
    Delay(Duration),
}

/// Substring present in every injected panic payload, so test panic hooks
/// can distinguish deliberate chaos panics from real bugs.
pub const PANIC_MARKER: &str = "htqo-failpoint";

/// Every fail-point site compiled into the engine and the downstream
/// evaluator/optimizer crates, sorted by name. [`configure_from_spec`]
/// (and therefore `HTQO_FAILPOINTS`) validates site names against this
/// list, so a typo'd site is a hard error instead of a silently dormant
/// clause. Keep in sync with the `fail_point!` invocations; the
/// `sites_are_sorted_and_documented` test cross-checks DESIGN.md.
pub const SITES: &[&str] = &[
    "aggregate::finalize",
    "bushy::node",
    "cops::join",
    "cops::join::partition",
    "cops::project",
    "cops::semijoin",
    "exec::worker",
    "factorized::build",
    "factorized::enumerate",
    "iseek::join",
    "ops::join",
    "ops::join::partition",
    "ops::project",
    "ops::semijoin",
    "qeval::bottom_up",
    "qeval::vertex",
    "scan::atom",
    "spill::cleanup",
    "spill::read",
    "spill::write",
    "storage::catalog_rename",
    "storage::checkpoint",
    "storage::page_read",
    "storage::page_write",
    "storage::wal_append",
    "storage::wal_fsync",
];

/// The enumerable registry of fail-point site names (see [`SITES`]).
pub fn sites() -> &'static [&'static str] {
    SITES
}

/// Why an `HTQO_FAILPOINTS`-style spec was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A clause failed to parse (missing `=`, bad action, bad number).
    Parse(String),
    /// A clause named a site that is not in [`sites`].
    UnknownSite(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(m) => write!(f, "{m}"),
            SpecError::UnknownSite(site) => write!(
                f,
                "unknown fail-point site `{site}` (known sites: {})",
                SITES.join(", ")
            ),
        }
    }
}

impl std::error::Error for SpecError {}

struct SiteState {
    action: FailAction,
    /// Hits to let pass before firing.
    skip: u64,
    /// Remaining fires (`None` = unlimited).
    times: Option<u64>,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: std::sync::OnceLock<Mutex<HashMap<String, SiteState>>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Whether any site is currently armed. `false` also covers the
/// feature-off build, where this folds to a constant.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Fast dormancy check used by the [`fail_point!`] macros. With the
/// `failpoints` feature off this is a constant `false` (the whole site
/// folds away); with it on, the first call reads `HTQO_FAILPOINTS` once,
/// then it is a single relaxed load.
#[inline]
pub fn armed() -> bool {
    #[cfg(not(feature = "failpoints"))]
    {
        false
    }
    #[cfg(feature = "failpoints")]
    {
        use std::sync::Once;
        static ENV_INIT: Once = Once::new();
        ENV_INIT.call_once(|| {
            if let Ok(spec) = std::env::var("HTQO_FAILPOINTS") {
                if let Err(e) = configure_from_spec(&spec) {
                    eprintln!("HTQO_FAILPOINTS ignored: {e}");
                }
            }
        });
        ARMED.load(Ordering::Relaxed)
    }
}

/// Arms `site` with `action`, letting the first `skip` hits pass and
/// firing at most `times` times (`None` = unlimited).
pub fn configure(site: &str, action: FailAction, skip: u64, times: Option<u64>) {
    let mut reg = registry().lock().unwrap();
    reg.insert(
        site.to_string(),
        SiteState {
            action,
            skip,
            times,
            hits: 0,
        },
    );
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms every site and resets hit counters. Chaos tests call this
/// between cases; it is also safe to call when nothing is armed.
pub fn clear() {
    registry().lock().unwrap().clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Parses and applies an `HTQO_FAILPOINTS`-style spec (see module docs).
/// Site names are validated against [`sites`]; an unknown name is a
/// [`SpecError::UnknownSite`] and nothing from the spec is armed.
pub fn configure_from_spec(spec: &str) -> Result<(), SpecError> {
    // Two passes: validate the whole spec first so a bad trailing clause
    // doesn't leave a half-armed registry.
    let mut parsed: Vec<(String, FailAction, u64)> = Vec::new();
    for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
        let (site, rest) = clause
            .split_once('=')
            .ok_or_else(|| SpecError::Parse(format!("missing `=` in clause `{clause}`")))?;
        let site = site.trim();
        if !SITES.contains(&site) {
            return Err(SpecError::UnknownSite(site.to_string()));
        }
        let (action_str, skip) = match rest.split_once('@') {
            Some((a, s)) => (
                a,
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| SpecError::Parse(format!("bad skip count in `{clause}`")))?,
            ),
            None => (rest, 0),
        };
        let action_str = action_str.trim();
        let action = if action_str == "error" {
            FailAction::Error
        } else if action_str == "panic" {
            FailAction::Panic
        } else if let Some(ms) = action_str
            .strip_prefix("delay(")
            .and_then(|s| s.strip_suffix(')'))
        {
            let ms: u64 = ms
                .trim()
                .parse()
                .map_err(|_| SpecError::Parse(format!("bad delay in `{clause}`")))?;
            FailAction::Delay(Duration::from_millis(ms))
        } else {
            return Err(SpecError::Parse(format!(
                "unknown action `{action_str}` in `{clause}`"
            )));
        };
        parsed.push((site.to_string(), action, skip));
    }
    for (site, action, skip) in parsed {
        configure(&site, action, skip, None);
    }
    Ok(())
}

/// Looks up `site` and decides whether it fires this hit.
fn fire(site: &str) -> Option<FailAction> {
    let mut reg = registry().lock().unwrap();
    let state = reg.get_mut(site)?;
    state.hits += 1;
    if state.hits <= state.skip {
        return None;
    }
    if let Some(times) = state.times.as_mut() {
        if *times == 0 {
            return None;
        }
        *times -= 1;
    }
    Some(state.action.clone())
}

/// Evaluates an armed site in a `Result` context: may return an injected
/// error, panic, or sleep. Called by [`fail_point!`]; only reached when
/// [`armed`] returned true.
pub fn eval(site: &str) -> Result<(), EvalError> {
    match fire(site) {
        None => Ok(()),
        Some(FailAction::Error) => {
            Err(EvalError::Internal(format!("injected failure at `{site}`")))
        }
        Some(FailAction::Panic) => panic!("{PANIC_MARKER}: injected panic at `{site}`"),
        Some(FailAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

/// Evaluates an armed site where no `Result` can be returned (e.g. the
/// exec worker loop): `Error` is treated as `Panic` so the site still
/// exercises the containment path; `Delay` sleeps.
pub fn eval_unit(site: &str) {
    match fire(site) {
        None => {}
        Some(FailAction::Error) | Some(FailAction::Panic) => {
            panic!("{PANIC_MARKER}: injected panic at `{site}`")
        }
        Some(FailAction::Delay(d)) => std::thread::sleep(d),
    }
}

/// Fault-injection site in a `Result<_, EvalError>` context. Expands to a
/// dormant branch; see the module docs for the cost model.
///
/// The macro routes through [`armed`]/[`eval`] — always-present functions
/// in *this* crate — so the `failpoints` cfg is resolved against the
/// engine's features even when the macro is invoked from another crate.
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        if $crate::failpoint::armed() {
            $crate::failpoint::eval($site)?;
        }
    };
}

/// Fault-injection site in a context that cannot return an error (panics
/// and delays only). Same dormancy properties as [`fail_point!`].
#[macro_export]
macro_rules! fail_point_unit {
    ($site:expr) => {
        if $crate::failpoint::armed() {
            $crate::failpoint::eval_unit($site);
        }
    };
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // The registry is global; serialize the tests touching it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn dormant_sites_are_free() {
        let _g = lock();
        clear();
        assert!(!armed());
        // A fail_point! in a function body compiles and is a no-op.
        fn site() -> Result<(), EvalError> {
            fail_point!("test::dormant");
            Ok(())
        }
        assert!(site().is_ok());
    }

    #[test]
    fn error_injection_with_skip_and_times() {
        let _g = lock();
        clear();
        configure("test::err", FailAction::Error, 1, Some(1));
        assert!(armed());
        assert!(eval("test::err").is_ok(), "first hit skipped");
        let err = eval("test::err").unwrap_err();
        assert!(matches!(err, EvalError::Internal(ref m) if m.contains("test::err")));
        assert!(eval("test::err").is_ok(), "times=1 exhausted");
        clear();
        assert!(!armed());
    }

    #[test]
    fn spec_parsing() {
        let _g = lock();
        clear();
        configure_from_spec("ops::join=error; scan::atom=delay(5)@2 ;exec::worker=panic").unwrap();
        assert!(eval("ops::join").is_err());
        assert!(eval("scan::atom").is_ok()); // skipped (1/2)
        assert!(eval("scan::atom").is_ok()); // skipped (2/2)
        let t = std::time::Instant::now();
        assert!(eval("scan::atom").is_ok()); // delay fires
        assert!(t.elapsed() >= Duration::from_millis(5));
        assert!(matches!(
            configure_from_spec("bad"),
            Err(SpecError::Parse(_))
        ));
        assert!(matches!(
            configure_from_spec("ops::join=frobnicate"),
            Err(SpecError::Parse(_))
        ));
        assert!(matches!(
            configure_from_spec("ops::join=delay(abc)"),
            Err(SpecError::Parse(_))
        ));
        clear();
    }

    /// A typo'd site name is a typed error, and a rejected spec arms
    /// nothing — not even its valid clauses.
    #[test]
    fn unknown_site_is_a_typed_error_and_arms_nothing() {
        let _g = lock();
        clear();
        let err = configure_from_spec("ops::join=error;no::such::site=panic").unwrap_err();
        assert_eq!(err, SpecError::UnknownSite("no::such::site".into()));
        assert!(err.to_string().contains("no::such::site"));
        assert!(!armed(), "a rejected spec must arm nothing");
        clear();
    }

    /// The registry is sorted (stable output for docs/tools), duplicate
    /// free, and in sync with the DESIGN.md §3.9 site table in **both**
    /// directions: every registered site has a table row, and every
    /// table row names a registered site.
    #[test]
    fn sites_are_sorted_and_documented() {
        let mut sorted = SITES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, SITES, "SITES must be sorted and unique");
        let design = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
        let text = std::fs::read_to_string(design).expect("DESIGN.md readable");
        // The §3.9 table rows have the shape: | `site::name` | where... |
        let documented: Vec<&str> = text
            .lines()
            .filter_map(|l| {
                let rest = l.trim().strip_prefix("| `")?;
                let (site, _) = rest.split_once('`')?;
                site.contains("::").then_some(site)
            })
            .collect();
        for site in sites() {
            assert!(
                documented.contains(site),
                "fail-point site `{site}` has no row in the DESIGN.md §3.9 table"
            );
        }
        for site in &documented {
            assert!(
                SITES.contains(site),
                "DESIGN.md documents `{site}` but the registry does not define it"
            );
        }
        assert_eq!(documented.len(), SITES.len(), "duplicate table rows");
    }

    #[test]
    fn panic_injection_carries_marker() {
        let _g = lock();
        clear();
        configure("test::panic", FailAction::Panic, 0, None);
        let res = std::panic::catch_unwind(|| eval("test::panic"));
        clear();
        let payload = res.unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains(PANIC_MARKER));
        assert!(msg.contains("test::panic"));
    }
}
