//! The chained-index hash table shared by the row ([`crate::ops`]) and
//! columnar ([`crate::cops`]) join kernels.

use crate::error::EvalError;

/// Sentinel terminating a [`ChainTable`] bucket chain.
pub(crate) const CHAIN_END: u32 = u32::MAX;

/// A chained-index hash table over build rows: an open-addressed slot
/// array maps a key hash to the first row of its chain, `next` links rows
/// sharing a hash. Key hashes arrive already well mixed (the kernels'
/// avalanche finalizers), so slots are probed by masking the hash
/// directly — no second hash function, no general-purpose map. Exactly
/// two allocations per build regardless of key distribution (the seed
/// kernel allocated a boxed key per row).
pub(crate) struct ChainTable {
    mask: usize,
    /// `(key hash, chain head)`; a head of [`CHAIN_END`] marks an empty slot.
    slots: Vec<(u64, u32)>,
    next: Vec<u32>,
}

impl ChainTable {
    /// Bytes a table over `n` rows will allocate (slot array + chain
    /// links), for memory-governor reservations *before* the build.
    pub(crate) fn byte_estimate(n: usize) -> u64 {
        let cap = (n.max(4) * 2).next_power_of_two();
        (cap * std::mem::size_of::<(u64, u32)>() + n * std::mem::size_of::<u32>()) as u64
    }

    /// Builds chains over `n` rows whose key hash is `hash(i)`. Iterates
    /// in reverse so each chain lists rows in ascending order. Slot count
    /// is `2n` rounded up to a power of two (≤50% load factor).
    pub(crate) fn build(n: usize, hash: impl Fn(usize) -> u64) -> ChainTable {
        let cap = (n.max(4) * 2).next_power_of_two();
        let mask = cap - 1;
        let mut slots: Vec<(u64, u32)> = vec![(0, CHAIN_END); cap];
        let mut next = vec![CHAIN_END; n];
        for i in (0..n).rev() {
            let h = hash(i);
            let mut s = (h as usize) & mask;
            loop {
                let (sh, head) = slots[s];
                if head == CHAIN_END {
                    slots[s] = (h, i as u32);
                    break;
                }
                if sh == h {
                    next[i] = head;
                    slots[s].1 = i as u32;
                    break;
                }
                s = (s + 1) & mask;
            }
        }
        ChainTable { mask, slots, next }
    }

    /// First row of the chain for `hash`, or [`CHAIN_END`].
    #[inline]
    pub(crate) fn head(&self, hash: u64) -> u32 {
        let mut s = (hash as usize) & self.mask;
        loop {
            let (sh, head) = self.slots[s];
            if head == CHAIN_END || sh == hash {
                return head;
            }
            s = (s + 1) & self.mask;
        }
    }

    /// The row after `i` in its chain, or [`CHAIN_END`]. Cursor primitive
    /// for the factorized-result enumerator ([`crate::factorized`]),
    /// which holds its position in a chain across `next()` calls.
    #[inline]
    pub(crate) fn next_row(&self, i: u32) -> u32 {
        self.next[i as usize]
    }

    /// Iterates the chain for `hash`, calling `f` with each row index.
    #[inline]
    pub(crate) fn for_each(
        &self,
        hash: u64,
        mut f: impl FnMut(usize) -> Result<(), EvalError>,
    ) -> Result<(), EvalError> {
        let mut i = self.head(hash);
        while i != CHAIN_END {
            f(i as usize)?;
            i = self.next[i as usize];
        }
        Ok(())
    }

    /// True if any row in the chain for `hash` satisfies `f`.
    #[inline]
    pub(crate) fn any(&self, hash: u64, mut f: impl FnMut(usize) -> bool) -> bool {
        let mut i = self.head(hash);
        while i != CHAIN_END {
            if f(i as usize) {
                return true;
            }
            i = self.next[i as usize];
        }
        false
    }
}
