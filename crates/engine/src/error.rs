//! Evaluation errors and resource guards.
//!
//! The paper reports baseline executions that "do not terminate after more
//! than 10 minutes"; our harness reproduces those DNF data points with a
//! [`Budget`] that bounds wall-clock time and the number of materialized
//! intermediate tuples (a deterministic proxy for work).

use std::fmt;
use std::time::{Duration, Instant};

/// Errors surfaced during query evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The evaluation materialized more intermediate tuples than allowed.
    TupleBudgetExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The evaluation ran past its deadline.
    Timeout {
        /// The configured limit.
        limit: Duration,
    },
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist in its relation.
    UnknownColumn {
        /// Relation name.
        relation: String,
        /// Column name.
        column: String,
    },
    /// A referenced variable is missing from an intermediate relation.
    UnknownVariable(String),
    /// Anything else (plan inconsistencies, type errors in expressions).
    Internal(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TupleBudgetExceeded { limit } => {
                write!(f, "tuple budget exceeded ({limit} tuples)")
            }
            EvalError::Timeout { limit } => write!(f, "timed out after {limit:?}"),
            EvalError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EvalError::UnknownColumn { relation, column } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            EvalError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            EvalError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl EvalError {
    /// True for resource-limit errors (`DNF` data points in the harness).
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self,
            EvalError::TupleBudgetExceeded { .. } | EvalError::Timeout { .. }
        )
    }
}

/// A work budget threaded through every operator.
///
/// `charge(n)` accounts for `n` freshly materialized tuples; the deadline
/// is polled at most every few thousand charges to keep the common path
/// cheap.
#[derive(Clone, Debug)]
pub struct Budget {
    max_tuples: Option<u64>,
    deadline: Option<(Instant, Duration)>,
    charged: u64,
    since_time_check: u64,
}

/// How often (in charged tuples) the deadline is polled.
const TIME_CHECK_INTERVAL: u64 = 4096;

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Self {
        Budget {
            max_tuples: None,
            deadline: None,
            charged: 0,
            since_time_check: 0,
        }
    }

    /// Limits the number of materialized tuples.
    pub fn with_max_tuples(mut self, n: u64) -> Self {
        self.max_tuples = Some(n);
        self
    }

    /// Limits wall-clock time, starting now.
    pub fn with_timeout(mut self, limit: Duration) -> Self {
        self.deadline = Some((Instant::now() + limit, limit));
        self
    }

    /// Total tuples charged so far.
    pub fn charged(&self) -> u64 {
        self.charged
    }

    /// Accounts for `n` materialized tuples.
    pub fn charge(&mut self, n: u64) -> Result<(), EvalError> {
        self.charged += n;
        if let Some(limit) = self.max_tuples {
            if self.charged > limit {
                return Err(EvalError::TupleBudgetExceeded { limit });
            }
        }
        if let Some((deadline, limit)) = self.deadline {
            self.since_time_check += n;
            if self.since_time_check >= TIME_CHECK_INTERVAL {
                self.since_time_check = 0;
                if Instant::now() > deadline {
                    return Err(EvalError::Timeout { limit });
                }
            }
        }
        Ok(())
    }

    /// Forces a deadline check (called between operators).
    pub fn check_time(&mut self) -> Result<(), EvalError> {
        if let Some((deadline, limit)) = self.deadline {
            if Instant::now() > deadline {
                return Err(EvalError::Timeout { limit });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails() {
        let mut b = Budget::unlimited();
        for _ in 0..100 {
            b.charge(1_000_000).unwrap();
        }
        assert_eq!(b.charged(), 100_000_000);
    }

    #[test]
    fn tuple_budget_trips() {
        let mut b = Budget::unlimited().with_max_tuples(10);
        b.charge(10).unwrap();
        let err = b.charge(1).unwrap_err();
        assert_eq!(err, EvalError::TupleBudgetExceeded { limit: 10 });
        assert!(err.is_resource_limit());
    }

    #[test]
    fn timeout_trips() {
        let mut b = Budget::unlimited().with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(5));
        // charge() may need several calls to hit the polling interval;
        // check_time is immediate.
        let err = b.check_time().unwrap_err();
        assert!(matches!(err, EvalError::Timeout { .. }));
    }

    #[test]
    fn display_messages() {
        assert!(EvalError::UnknownTable("t".into()).to_string().contains("`t`"));
        assert!(!EvalError::UnknownVariable("v".into()).is_resource_limit());
    }
}
