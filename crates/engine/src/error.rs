//! Evaluation errors and resource guards.
//!
//! The paper reports baseline executions that "do not terminate after more
//! than 10 minutes"; our harness reproduces those DNF data points with a
//! [`Budget`] that bounds wall-clock time and the number of materialized
//! intermediate tuples (a deterministic proxy for work). The budget also
//! carries the cooperative-cancellation token ([`CancelToken`]): any
//! in-flight evaluation can be aborted from another thread, observed at
//! the same polling points as the deadline.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced during query evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The evaluation materialized more intermediate tuples than allowed.
    TupleBudgetExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The evaluation ran past its deadline.
    Timeout {
        /// The configured limit.
        limit: Duration,
    },
    /// The evaluation was cancelled from another thread via its budget's
    /// [`CancelToken`]. Not a resource limit: a cancelled run is neither a
    /// DNF data point nor retried by the fallback ladder.
    Cancelled,
    /// A worker thread of the parallel execution layer panicked. The
    /// panic was contained by [`crate::exec`]: permits were returned to
    /// the pool and the shared budget stayed consistent, so the caller
    /// can retry (e.g. on a different plan) or report cleanly.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist in its relation.
    UnknownColumn {
        /// Relation name.
        relation: String,
        /// Column name.
        column: String,
    },
    /// A referenced variable is missing from an intermediate relation.
    UnknownVariable(String),
    /// A byte reservation was denied by the memory governor and the
    /// operator could not (or was not allowed to) spill. A resource
    /// limit like [`EvalError::TupleBudgetExceeded`]; the hybrid
    /// optimizer's ladder retries the same rung with spill forced on
    /// before degrading the plan.
    MemoryExceeded {
        /// Bytes the denied reservation asked for (0 when the limit was
        /// observed at a merge point rather than a reservation site).
        requested: u64,
        /// Bytes already reserved by this query when the denial happened.
        reserved: u64,
        /// The configured per-query byte pool ([`Budget::with_mem_limit`]).
        pool: u64,
    },
    /// An I/O failure on a spill temp file (write, read, checksum
    /// mismatch, or cleanup). Retryable — a re-run may succeed, and the
    /// in-memory rungs below do not touch the disk — but not a resource
    /// limit.
    SpillIo(String),
    /// A persisted page failed its checksum on read: a torn write, a
    /// bit flip, or an overwritten extent. Retryable like
    /// [`EvalError::SpillIo`] (the in-memory rungs do not touch the
    /// disk, and crash recovery may restore the page from the WAL), but
    /// never silently accepted.
    CorruptPage {
        /// The page file holding the corrupt page.
        file: String,
        /// The page id whose checksum failed.
        pid: u64,
    },
    /// Anything else (plan inconsistencies, type errors in expressions).
    Internal(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TupleBudgetExceeded { limit } => {
                write!(f, "tuple budget exceeded ({limit} tuples)")
            }
            EvalError::Timeout { limit } => write!(f, "timed out after {limit:?}"),
            EvalError::Cancelled => write!(f, "evaluation cancelled"),
            EvalError::WorkerPanicked { message } => {
                write!(f, "worker thread panicked: {message}")
            }
            EvalError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EvalError::UnknownColumn { relation, column } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            EvalError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            EvalError::MemoryExceeded {
                requested,
                reserved,
                pool,
            } => write!(
                f,
                "memory budget exceeded (requested {requested} B with {reserved} B \
                 reserved of a {pool} B pool)"
            ),
            EvalError::SpillIo(m) => write!(f, "spill i/o error: {m}"),
            EvalError::CorruptPage { file, pid } => {
                write!(f, "corrupt page {pid} in {file} (checksum mismatch)")
            }
            EvalError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl EvalError {
    /// True for resource-limit errors (`DNF` data points in the harness).
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self,
            EvalError::TupleBudgetExceeded { .. }
                | EvalError::Timeout { .. }
                | EvalError::MemoryExceeded { .. }
        )
    }

    /// True if this error came from a [`CancelToken`].
    pub fn is_cancelled(&self) -> bool {
        matches!(self, EvalError::Cancelled)
    }

    /// True for errors that a *different plan* (or a bigger budget) could
    /// plausibly avoid: resource limits, contained worker panics, and
    /// internal plan inconsistencies. Semantic errors (unknown
    /// table/column/variable) and cancellation are final — no fallback
    /// rung can answer them. This classification drives the hybrid
    /// optimizer's graceful-degradation ladder.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            EvalError::TupleBudgetExceeded { .. }
                | EvalError::Timeout { .. }
                | EvalError::WorkerPanicked { .. }
                | EvalError::MemoryExceeded { .. }
                | EvalError::SpillIo(_)
                | EvalError::CorruptPage { .. }
                | EvalError::Internal(_)
        )
    }
}

/// A shared cancellation flag: clone it, hand one copy to
/// [`Budget::with_cancel_token`], keep the other, and call
/// [`CancelToken::cancel`] from any thread to abort the evaluation. The
/// evaluation observes the flag at the budget's existing polling points
/// (`charge` every [`TIME_CHECK_INTERVAL`] tuples, `check_time` between
/// operators, `check_exceeded` at parallel merge points) and surfaces
/// [`EvalError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// When the join/aggregation kernels are allowed to spill partitions to
/// disk instead of failing a denied byte reservation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpillMode {
    /// Never spill: a denied reservation is [`EvalError::MemoryExceeded`].
    Off,
    /// Spill when (and only when) a reservation is denied mid-build.
    #[default]
    Auto,
    /// Spill unconditionally at every spill-capable site — the hybrid
    /// ladder's "retry the same rung with spill forced on", and the mode
    /// the benches use to measure the external-memory path.
    Force,
}

/// Spill-volume counters shared (via `Arc`) by every handle cloned from
/// one root budget, including the renewed/escalated budgets of the
/// fallback ladder — so `QueryOutcome` can report the whole query's spill
/// traffic no matter which rung produced it.
#[derive(Debug, Default)]
pub struct SpillStats {
    bytes_written: AtomicU64,
    partitions: AtomicU64,
}

impl SpillStats {
    /// Records `bytes` written to a spill file.
    pub fn add_bytes(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `n` spill partitions created.
    pub fn add_partitions(&self, n: u64) {
        self.partitions.fetch_add(n, Ordering::Relaxed);
    }

    /// Total bytes written to spill files so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total spill partitions created so far (the partition fan-out,
    /// summed over every spilling operator and recursion level).
    pub fn partitions(&self) -> u64 {
        self.partitions.load(Ordering::Relaxed)
    }
}

/// Per-query join-strategy counters, shared (via `Arc`) like
/// [`SpillStats`]: every handle cloned, forked, renewed or escalated from
/// one root budget accumulates into the same counters, so `QueryOutcome`
/// can report how many vertex joins ran as hash builds vs index seeks no
/// matter which rung or worker thread executed them.
#[derive(Debug, Default)]
pub struct JoinStats {
    hash_builds: AtomicU64,
    index_seeks: AtomicU64,
}

impl JoinStats {
    /// Records one hash-build join (a ChainTable build on either carrier).
    pub fn add_hash_build(&self) {
        self.hash_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one index-nested-loop seek join.
    pub fn add_index_seek(&self) {
        self.index_seeks.fetch_add(1, Ordering::Relaxed);
    }

    /// Hash-build joins executed so far.
    pub fn hash_builds(&self) -> u64 {
        self.hash_builds.load(Ordering::Relaxed)
    }

    /// Index-seek joins executed so far.
    pub fn index_seeks(&self) -> u64 {
        self.index_seeks.load(Ordering::Relaxed)
    }
}

/// A work budget threaded through every operator.
///
/// `charge(n)` accounts for `n` freshly materialized tuples; the deadline
/// and cancellation token are polled at most every few thousand charges
/// to keep the common path cheap.
///
/// # Concurrency
///
/// A budget starts with a plain local counter. [`Budget::fork`] promotes
/// the counter to a shared atomic and returns a sibling handle charging
/// the *same* pool, which is how the parallel execution layer keeps
/// accounting exact across worker threads: every handle sees the global
/// total, so the tuple limit trips if and only if the combined work
/// exceeds it — independent of thread count or interleaving (the sum of
/// charges is order-free). Call [`Budget::check_exceeded`] at merge points
/// to surface exhaustion deterministically after parallel sections.
#[derive(Clone, Debug)]
pub struct Budget {
    max_tuples: Option<u64>,
    deadline: Option<(Instant, Duration)>,
    cancel: Option<CancelToken>,
    counter: Counter,
    since_time_check: u64,
    /// Per-query byte pool (the memory governor); `None` = ungoverned.
    mem_limit: Option<u64>,
    /// Bytes counter, batched/forked exactly like the tuple counter.
    bytes: Counter,
    spill_mode: SpillMode,
    /// Override for the spill temp directory (default: `HTQO_SPILL_DIR`
    /// or the system temp dir, resolved by `crate::spill`).
    spill_dir: Option<Arc<PathBuf>>,
    spill_stats: Arc<SpillStats>,
    join_stats: Arc<JoinStats>,
}

/// Local or shared tuple counter. A shared handle batches its charges in
/// `pending` and flushes to the pool every [`FLUSH_INTERVAL`] tuples (and
/// on drop), so hot join loops do not pay one atomic RMW per output row.
/// Exhaustion is then observed at flush points and at
/// [`Budget::check_exceeded`] merge points; a worker can overshoot the
/// limit by at most `FLUSH_INTERVAL` tuples before noticing, but *whether*
/// the limit trips depends only on the order-free combined total.
#[derive(Debug)]
enum Counter {
    Local(u64),
    Shared { pool: Arc<AtomicU64>, pending: u64 },
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        match self {
            Counter::Local(n) => Counter::Local(*n),
            // Pending charges belong to the handle that accrued them; a
            // clone starts with its own empty batch (copying `pending`
            // would double-count on flush).
            Counter::Shared { pool, .. } => Counter::Shared {
                pool: Arc::clone(pool),
                pending: 0,
            },
        }
    }
}

/// How often (in charged tuples) the deadline and cancellation token are
/// polled.
const TIME_CHECK_INTERVAL: u64 = 4096;

/// How many tuples a shared [`Counter`] handle batches locally before
/// flushing to the shared pool.
const FLUSH_INTERVAL: u64 = 1024;

/// How many charged bytes a shared handle batches before flushing. Same
/// role as [`FLUSH_INTERVAL`], scaled to bytes: a worker can overshoot
/// the byte pool by at most this much before noticing.
const BYTE_FLUSH_INTERVAL: u64 = 256 * 1024;

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Self {
        Budget {
            max_tuples: None,
            deadline: None,
            cancel: None,
            counter: Counter::Local(0),
            since_time_check: 0,
            mem_limit: None,
            bytes: Counter::Local(0),
            spill_mode: SpillMode::default(),
            spill_dir: None,
            spill_stats: Arc::new(SpillStats::default()),
            join_stats: Arc::new(JoinStats::default()),
        }
    }

    /// Limits the number of materialized tuples.
    pub fn with_max_tuples(mut self, n: u64) -> Self {
        self.max_tuples = Some(n);
        self
    }

    /// Limits wall-clock time, starting now.
    pub fn with_timeout(mut self, limit: Duration) -> Self {
        self.deadline = Some((Instant::now() + limit, limit));
        self
    }

    /// Attaches a cancellation token. Keep a clone of the token; calling
    /// [`CancelToken::cancel`] on it aborts the evaluation with
    /// [`EvalError::Cancelled`] at the next polling point.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps the bytes this query may hold reserved at once (the memory
    /// governor's per-query pool, usually sized from `HTQO_MEM_LIMIT` /
    /// `ExecOptions::mem_limit`).
    pub fn with_mem_limit(mut self, bytes: u64) -> Self {
        self.mem_limit = Some(bytes);
        self
    }

    /// Sets the byte limit only if none is configured yet — how
    /// evaluator entry points apply `ExecOptions::mem_limit` without
    /// overriding an explicitly budgeted caller.
    pub fn apply_mem_limit(&mut self, limit: Option<u64>) {
        if self.mem_limit.is_none() {
            self.mem_limit = limit;
        }
    }

    /// Sets the spill policy (see [`SpillMode`]).
    pub fn with_spill_mode(mut self, mode: SpillMode) -> Self {
        self.spill_mode = mode;
        self
    }

    /// Overrides the directory spill temp files are created under.
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = Some(Arc::new(dir));
        self
    }

    /// The configured tuple limit, if any.
    pub fn max_tuples(&self) -> Option<u64> {
        self.max_tuples
    }

    /// The configured byte pool, if any.
    pub fn mem_limit(&self) -> Option<u64> {
        self.mem_limit
    }

    /// The spill policy.
    pub fn spill_mode(&self) -> SpillMode {
        self.spill_mode
    }

    /// The configured spill-directory override, if any.
    pub fn spill_dir(&self) -> Option<&Path> {
        self.spill_dir.as_deref().map(|p| p.as_path())
    }

    /// Spill-volume counters for this query (shared across forks,
    /// renewals and escalations of this budget).
    pub fn spill_stats(&self) -> Arc<SpillStats> {
        Arc::clone(&self.spill_stats)
    }

    /// Join-strategy counters for this query (shared across forks,
    /// renewals and escalations of this budget).
    pub fn join_stats(&self) -> Arc<JoinStats> {
        Arc::clone(&self.join_stats)
    }

    /// The configured wall-clock limit, if any (the original duration,
    /// not the remaining time).
    pub fn timeout(&self) -> Option<Duration> {
        self.deadline.map(|(_, limit)| limit)
    }

    /// A fresh budget with the same limits and cancellation token but a
    /// zeroed counter and a deadline restarted from now. This is what the
    /// hybrid optimizer's fallback ladder hands each retry rung: the rung
    /// gets a full budget of its own, while cancellation still spans the
    /// whole query.
    pub fn renewed(&self) -> Budget {
        let mut b = Budget::unlimited();
        b.max_tuples = self.max_tuples;
        if let Some((_, limit)) = self.deadline {
            b = b.with_timeout(limit);
        }
        b.cancel = self.cancel.clone();
        b.mem_limit = self.mem_limit;
        b.spill_mode = self.spill_mode;
        b.spill_dir = self.spill_dir.clone();
        // Spill volume and join counters accumulate across rungs of one
        // query.
        b.spill_stats = Arc::clone(&self.spill_stats);
        b.join_stats = Arc::clone(&self.join_stats);
        b
    }

    /// Like [`Budget::renewed`], but with both limits scaled by `factor`
    /// (the ladder's optional budget escalation). Unlimited dimensions
    /// stay unlimited; `factor` must be positive.
    pub fn escalated(&self, factor: f64) -> Budget {
        let mut b = self.renewed();
        if let Some(n) = b.max_tuples {
            b.max_tuples = Some((n as f64 * factor).min(u64::MAX as f64) as u64);
        }
        if let Some((_, limit)) = self.deadline {
            b = b.with_timeout(limit.mul_f64(factor));
        }
        if let Some(n) = b.mem_limit {
            b.mem_limit = Some((n as f64 * factor).min(u64::MAX as f64) as u64);
        }
        b
    }

    /// Total tuples charged so far (across all forked handles, plus this
    /// handle's unflushed batch).
    pub fn charged(&self) -> u64 {
        match &self.counter {
            Counter::Local(n) => *n,
            Counter::Shared { pool, pending } => pool.load(Ordering::Relaxed) + pending,
        }
    }

    /// Total bytes currently reserved (across all forked handles, plus
    /// this handle's unflushed batch) — the byte analog of
    /// [`Budget::charged`], minus whatever was released with
    /// [`Budget::uncharge_bytes`].
    pub fn mem_used(&self) -> u64 {
        match &self.bytes {
            Counter::Local(n) => *n,
            Counter::Shared { pool, pending } => pool.load(Ordering::Relaxed) + pending,
        }
    }

    /// Promotes the counter to a shared atomic (if not already) and
    /// returns a sibling handle charging the same pool. The handle is
    /// `Send`; give one to each parallel task. The byte pool is promoted
    /// and shared the same way, so memory accounting stays exact across
    /// worker threads.
    pub fn fork(&mut self) -> Budget {
        if let Counter::Local(n) = self.counter {
            self.counter = Counter::Shared {
                pool: Arc::new(AtomicU64::new(n)),
                pending: 0,
            };
        }
        if let Counter::Local(n) = self.bytes {
            self.bytes = Counter::Shared {
                pool: Arc::new(AtomicU64::new(n)),
                pending: 0,
            };
        }
        self.clone()
    }

    /// Accounts for `n` materialized tuples.
    pub fn charge(&mut self, n: u64) -> Result<(), EvalError> {
        let total = match &mut self.counter {
            Counter::Local(c) => {
                *c += n;
                Some(*c)
            }
            Counter::Shared { pool, pending } => {
                *pending += n;
                if *pending >= FLUSH_INTERVAL {
                    let flushed = std::mem::take(pending);
                    Some(pool.fetch_add(flushed, Ordering::Relaxed) + flushed)
                } else {
                    None // exhaustion observed at the next flush or merge
                }
            }
        };
        if let (Some(total), Some(limit)) = (total, self.max_tuples) {
            if total > limit {
                return Err(EvalError::TupleBudgetExceeded { limit });
            }
        }
        if self.deadline.is_some() || self.cancel.is_some() {
            self.since_time_check += n;
            if self.since_time_check >= TIME_CHECK_INTERVAL {
                self.since_time_check = 0;
                self.check_cancelled()?;
                if let Some((deadline, limit)) = self.deadline {
                    if Instant::now() > deadline {
                        return Err(EvalError::Timeout { limit });
                    }
                }
            }
        }
        Ok(())
    }

    /// Accounts for `n` freshly materialized bytes. Mirrors
    /// [`Budget::charge`]: local counters trip inline, shared handles
    /// batch up to [`BYTE_FLUSH_INTERVAL`] bytes and observe the pool at
    /// flush points — whether the limit trips depends only on the
    /// order-free combined total. With no limit this is a plain add.
    pub fn charge_bytes(&mut self, n: u64) -> Result<(), EvalError> {
        let total = match &mut self.bytes {
            Counter::Local(c) => {
                *c += n;
                Some(*c)
            }
            Counter::Shared { pool, pending } => {
                *pending += n;
                if *pending >= BYTE_FLUSH_INTERVAL {
                    let flushed = std::mem::take(pending);
                    Some(pool.fetch_add(flushed, Ordering::Relaxed) + flushed)
                } else {
                    None // exhaustion observed at the next flush or merge
                }
            }
        };
        if let (Some(total), Some(limit)) = (total, self.mem_limit) {
            if total > limit {
                return Err(EvalError::MemoryExceeded {
                    requested: n,
                    reserved: total,
                    pool: limit,
                });
            }
        }
        Ok(())
    }

    /// Tries to reserve `n` bytes from the pool: on success the bytes are
    /// charged and `true` is returned; on denial *nothing* is charged and
    /// the caller decides between spilling and failing. This is the
    /// spill-decision point of the join/aggregation kernels. Without a
    /// configured limit the reservation always succeeds.
    pub fn try_reserve_bytes(&mut self, n: u64) -> bool {
        let Some(limit) = self.mem_limit else {
            // Ungoverned: keep accounting (cheap add), never deny.
            let _ = self.charge_bytes(n);
            return true;
        };
        match &mut self.bytes {
            Counter::Local(c) => {
                if *c + n <= limit {
                    *c += n;
                    true
                } else {
                    false
                }
            }
            Counter::Shared { pool, pending } => {
                // Flush first so the CAS below sees this handle's own
                // pending charges; then atomically claim the bytes.
                if *pending > 0 {
                    pool.fetch_add(std::mem::take(pending), Ordering::Relaxed);
                }
                pool.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                    (cur + n <= limit).then_some(cur + n)
                })
                .is_ok()
            }
        }
    }

    /// Like [`Budget::try_reserve_bytes`], but a denial is a hard
    /// [`EvalError::MemoryExceeded`]. Used where no spill alternative
    /// exists (or recursion bottomed out).
    pub fn reserve_bytes(&mut self, n: u64) -> Result<(), EvalError> {
        if self.try_reserve_bytes(n) {
            Ok(())
        } else {
            Err(EvalError::MemoryExceeded {
                requested: n,
                reserved: self.mem_used(),
                pool: self.mem_limit.unwrap_or(0),
            })
        }
    }

    /// Returns `n` previously charged/reserved bytes to the pool (e.g.
    /// when a hash table or a spilled build side is dropped). Saturating:
    /// releasing more than is visibly reserved clamps at zero rather than
    /// underflowing siblings' unflushed batches.
    pub fn uncharge_bytes(&mut self, n: u64) {
        match &mut self.bytes {
            Counter::Local(c) => *c = c.saturating_sub(n),
            Counter::Shared { pool, pending } => {
                // Drain this handle's own pending batch first; only the
                // remainder touches the shared pool.
                let from_pending = (*pending).min(n);
                *pending -= from_pending;
                let rest = n - from_pending;
                if rest > 0 {
                    let _ = pool.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                        Some(cur.saturating_sub(rest))
                    });
                }
            }
        }
    }

    /// Deterministic exhaustion check for merge points after parallel
    /// sections: errors iff the *combined* charges of all handles exceed
    /// the tuple limit, regardless of which worker crossed it first.
    /// Cancellation is polled here too (merge points are natural abort
    /// points), after the — deterministic — tuple check.
    pub fn check_exceeded(&self) -> Result<(), EvalError> {
        if let Some(limit) = self.max_tuples {
            if self.charged() > limit {
                return Err(EvalError::TupleBudgetExceeded { limit });
            }
        }
        if let Some(limit) = self.mem_limit {
            let used = self.mem_used();
            if used > limit {
                return Err(EvalError::MemoryExceeded {
                    requested: 0,
                    reserved: used,
                    pool: limit,
                });
            }
        }
        self.check_cancelled()
    }

    /// Flushes this handle's unflushed batches (tuples and bytes) to the
    /// shared pools (no-op for local counters). Called on drop, so totals
    /// are exact by the time any merge point runs `check_exceeded`.
    fn flush(&mut self) {
        if let Counter::Shared { pool, pending } = &mut self.counter {
            if *pending > 0 {
                pool.fetch_add(std::mem::take(pending), Ordering::Relaxed);
            }
        }
        if let Counter::Shared { pool, pending } = &mut self.bytes {
            if *pending > 0 {
                pool.fetch_add(std::mem::take(pending), Ordering::Relaxed);
            }
        }
    }

    /// Forces a deadline + cancellation check (called between operators).
    /// Also flushes this handle's pending batch first, so an error
    /// observed here leaves [`Budget::charged`] exact for the DNF report.
    pub fn check_time(&mut self) -> Result<(), EvalError> {
        self.flush();
        self.check_cancelled()?;
        if let Some((deadline, limit)) = self.deadline {
            if Instant::now() > deadline {
                return Err(EvalError::Timeout { limit });
            }
        }
        Ok(())
    }

    /// Errors iff the attached token (if any) has been cancelled.
    pub fn check_cancelled(&self) -> Result<(), EvalError> {
        match &self.cancel {
            Some(token) if token.is_cancelled() => Err(EvalError::Cancelled),
            _ => Ok(()),
        }
    }
}

impl Drop for Budget {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails() {
        let mut b = Budget::unlimited();
        for _ in 0..100 {
            b.charge(1_000_000).unwrap();
        }
        assert_eq!(b.charged(), 100_000_000);
    }

    #[test]
    fn tuple_budget_trips() {
        let mut b = Budget::unlimited().with_max_tuples(10);
        b.charge(10).unwrap();
        let err = b.charge(1).unwrap_err();
        assert_eq!(err, EvalError::TupleBudgetExceeded { limit: 10 });
        assert!(err.is_resource_limit());
    }

    #[test]
    fn timeout_trips() {
        let mut b = Budget::unlimited().with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(5));
        // charge() may need several calls to hit the polling interval;
        // check_time is immediate.
        let err = b.check_time().unwrap_err();
        assert!(matches!(err, EvalError::Timeout { .. }));
    }

    #[test]
    fn display_messages() {
        assert!(EvalError::UnknownTable("t".into())
            .to_string()
            .contains("`t`"));
        assert!(!EvalError::UnknownVariable("v".into()).is_resource_limit());
        assert!(EvalError::Cancelled.to_string().contains("cancelled"));
        assert!(EvalError::WorkerPanicked {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
    }

    #[test]
    fn error_classification() {
        assert!(!EvalError::Cancelled.is_resource_limit());
        assert!(EvalError::Cancelled.is_cancelled());
        assert!(!EvalError::Cancelled.is_retryable());
        let wp = EvalError::WorkerPanicked {
            message: "x".into(),
        };
        assert!(!wp.is_resource_limit());
        assert!(wp.is_retryable());
        assert!(EvalError::TupleBudgetExceeded { limit: 1 }.is_retryable());
        assert!(EvalError::Timeout {
            limit: Duration::from_secs(1)
        }
        .is_retryable());
        assert!(EvalError::Internal("plan".into()).is_retryable());
        assert!(!EvalError::UnknownTable("t".into()).is_retryable());
        assert!(!EvalError::UnknownVariable("v".into()).is_retryable());
    }

    #[test]
    fn cancellation_is_observed_at_all_polling_points() {
        let token = CancelToken::new();
        let mut b = Budget::unlimited().with_cancel_token(token.clone());
        b.charge(10).unwrap();
        assert!(b.check_time().is_ok());
        assert!(b.check_exceeded().is_ok());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(b.check_time().unwrap_err(), EvalError::Cancelled);
        assert_eq!(b.check_exceeded().unwrap_err(), EvalError::Cancelled);
        assert_eq!(b.check_cancelled().unwrap_err(), EvalError::Cancelled);
        // charge() observes it at the polling interval.
        let err = (0..TIME_CHECK_INTERVAL + 1)
            .find_map(|_| b.charge(1).err())
            .expect("cancellation observed within one polling interval");
        assert_eq!(err, EvalError::Cancelled);
    }

    #[test]
    fn cancellation_crosses_forked_handles() {
        let token = CancelToken::new();
        let mut b = Budget::unlimited().with_cancel_token(token.clone());
        let mut h = b.fork();
        token.cancel();
        assert_eq!(h.check_time().unwrap_err(), EvalError::Cancelled);
        assert_eq!(b.check_exceeded().unwrap_err(), EvalError::Cancelled);
    }

    #[test]
    fn renewed_keeps_limits_but_resets_charges() {
        let token = CancelToken::new();
        let mut b = Budget::unlimited()
            .with_max_tuples(100)
            .with_cancel_token(token.clone());
        b.charge(60).unwrap();
        let mut r = b.renewed();
        assert_eq!(r.charged(), 0);
        assert_eq!(r.max_tuples(), Some(100));
        r.charge(100).unwrap();
        assert!(r.charge(1).is_err());
        // The token spans renewals.
        token.cancel();
        assert!(b.renewed().check_cancelled().is_err());
    }

    #[test]
    fn escalated_scales_limits() {
        let b = Budget::unlimited()
            .with_max_tuples(100)
            .with_timeout(Duration::from_secs(2));
        let e = b.escalated(10.0);
        assert_eq!(e.max_tuples(), Some(1000));
        assert_eq!(e.timeout(), Some(Duration::from_secs(20)));
        // Unlimited stays unlimited.
        assert_eq!(Budget::unlimited().escalated(10.0).max_tuples(), None);
    }

    #[test]
    fn forked_handles_share_the_pool() {
        let mut b = Budget::unlimited().with_max_tuples(100);
        b.charge(30).unwrap();
        let mut h1 = b.fork();
        let mut h2 = b.fork();
        h1.charge(30).unwrap();
        h2.charge(30).unwrap();
        // Shared-handle charges are batched; they become visible to
        // siblings when the handle flushes (here: on drop).
        drop(h1);
        drop(h2);
        assert_eq!(b.charged(), 90);
        // The combined pool trips at the merge point no matter which
        // handle's charges crossed the limit.
        let mut h3 = b.fork();
        h3.charge(20).unwrap(); // batched, not yet observed
        drop(h3);
        let err = b.check_exceeded().unwrap_err();
        assert_eq!(err, EvalError::TupleBudgetExceeded { limit: 100 });
    }

    #[test]
    fn check_time_flushes_pending_charges() {
        // A timeout (or cancellation) observed between operators must
        // leave `charged()` exact for the DNF report: check_time flushes
        // the handle's pending batch before checking.
        let mut b = Budget::unlimited();
        let mut h = b.fork();
        h.charge(10).unwrap(); // < FLUSH_INTERVAL: still pending
        assert_eq!(b.charged(), 0);
        h.check_time().unwrap();
        assert_eq!(b.charged(), 10, "check_time must flush pending charges");
    }

    #[test]
    fn shared_handle_trips_inline_on_flush() {
        let mut b = Budget::unlimited().with_max_tuples(100);
        let mut h = b.fork();
        // A charge reaching FLUSH_INTERVAL flushes and observes the
        // limit immediately, bounding how far a worker can overshoot.
        let err = h.charge(FLUSH_INTERVAL).unwrap_err();
        assert_eq!(err, EvalError::TupleBudgetExceeded { limit: 100 });
    }

    #[test]
    fn forked_charges_from_threads_are_exact() {
        let mut b = Budget::unlimited();
        let handles: Vec<Budget> = (0..8).map(|_| b.fork()).collect();
        std::thread::scope(|s| {
            for mut h in handles {
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.charge(1).unwrap();
                    }
                });
            }
        });
        assert_eq!(b.charged(), 8000);
        assert!(b.check_exceeded().is_ok());
    }

    #[test]
    fn check_exceeded_without_limit_never_errs() {
        let mut b = Budget::unlimited();
        b.charge(u64::MAX / 2).unwrap();
        assert!(b.check_exceeded().is_ok());
    }

    #[test]
    fn memory_error_classification() {
        let me = EvalError::MemoryExceeded {
            requested: 100,
            reserved: 900,
            pool: 1000,
        };
        assert!(me.is_resource_limit());
        assert!(me.is_retryable());
        assert!(me.to_string().contains("100 B"));
        let io = EvalError::SpillIo("disk full".into());
        assert!(!io.is_resource_limit());
        assert!(io.is_retryable());
        assert!(io.to_string().contains("disk full"));
    }

    #[test]
    fn byte_budget_trips() {
        let mut b = Budget::unlimited().with_mem_limit(100);
        assert_eq!(b.mem_limit(), Some(100));
        b.charge_bytes(100).unwrap();
        let err = b.charge_bytes(1).unwrap_err();
        assert_eq!(
            err,
            EvalError::MemoryExceeded {
                requested: 1,
                reserved: 101,
                pool: 100,
            }
        );
    }

    #[test]
    fn reservation_denial_charges_nothing() {
        let mut b = Budget::unlimited().with_mem_limit(100);
        assert!(b.try_reserve_bytes(60));
        assert_eq!(b.mem_used(), 60);
        assert!(!b.try_reserve_bytes(60), "would exceed the pool");
        assert_eq!(b.mem_used(), 60, "denied reservation charged nothing");
        assert!(b.try_reserve_bytes(40), "exact fit still succeeds");
        let err = b.reserve_bytes(1).unwrap_err();
        assert_eq!(
            err,
            EvalError::MemoryExceeded {
                requested: 1,
                reserved: 100,
                pool: 100,
            }
        );
    }

    #[test]
    fn uncharge_returns_bytes_to_the_pool() {
        let mut b = Budget::unlimited().with_mem_limit(100);
        b.reserve_bytes(80).unwrap();
        assert!(!b.try_reserve_bytes(80));
        b.uncharge_bytes(80);
        assert_eq!(b.mem_used(), 0);
        assert!(b.try_reserve_bytes(80));
        // Saturating: over-release clamps at zero.
        b.uncharge_bytes(u64::MAX);
        assert_eq!(b.mem_used(), 0);
    }

    #[test]
    fn unlimited_byte_pool_never_denies() {
        let mut b = Budget::unlimited();
        assert!(b.try_reserve_bytes(u64::MAX / 2));
        b.charge_bytes(1000).unwrap();
        assert!(b.check_exceeded().is_ok());
        // Accounting still tracks usage for diagnostics.
        assert_eq!(b.mem_used(), u64::MAX / 2 + 1000);
    }

    #[test]
    fn forked_byte_handles_share_the_pool() {
        let mut b = Budget::unlimited().with_mem_limit(100_000);
        b.charge_bytes(30_000).unwrap();
        let mut h1 = b.fork();
        let mut h2 = b.fork();
        h1.charge_bytes(30_000).unwrap();
        h2.charge_bytes(30_000).unwrap();
        drop(h1);
        drop(h2);
        assert_eq!(b.mem_used(), 90_000);
        // A shared-handle reservation sees the combined total.
        let mut h3 = b.fork();
        assert!(!h3.try_reserve_bytes(20_000));
        assert!(h3.try_reserve_bytes(10_000));
        drop(h3);
        assert_eq!(b.mem_used(), 100_000);
    }

    #[test]
    fn shared_byte_handle_trips_inline_on_flush() {
        let mut b = Budget::unlimited().with_mem_limit(100);
        let mut h = b.fork();
        let err = h.charge_bytes(BYTE_FLUSH_INTERVAL).unwrap_err();
        assert!(matches!(err, EvalError::MemoryExceeded { .. }));
    }

    #[test]
    fn check_exceeded_observes_byte_pool() {
        let mut b = Budget::unlimited().with_mem_limit(100);
        let mut h = b.fork();
        h.charge_bytes(200).ok(); // batched: may not trip inline
        drop(h); // flush
        let err = b.check_exceeded().unwrap_err();
        assert!(matches!(
            err,
            EvalError::MemoryExceeded {
                requested: 0,
                reserved: 200,
                pool: 100,
            }
        ));
    }

    #[test]
    fn renewed_and_escalated_carry_memory_config() {
        let b = Budget::unlimited()
            .with_mem_limit(1000)
            .with_spill_mode(SpillMode::Force)
            .with_spill_dir(PathBuf::from("/tmp/htqo-test-spill"));
        let stats = b.spill_stats();
        stats.add_bytes(7);
        b.join_stats().add_index_seek();
        b.join_stats().add_hash_build();
        let r = b.renewed();
        assert_eq!(r.join_stats().index_seeks(), 1, "join stats span renewals");
        assert_eq!(r.join_stats().hash_builds(), 1);
        assert_eq!(r.mem_limit(), Some(1000));
        assert_eq!(r.spill_mode(), SpillMode::Force);
        assert_eq!(r.spill_dir(), Some(Path::new("/tmp/htqo-test-spill")));
        assert_eq!(r.spill_stats().bytes_written(), 7, "stats span renewals");
        let e = b.escalated(2.0);
        assert_eq!(e.mem_limit(), Some(2000));
        assert_eq!(Budget::unlimited().escalated(2.0).mem_limit(), None);
    }

    #[test]
    fn apply_mem_limit_only_fills_unset() {
        let mut b = Budget::unlimited();
        b.apply_mem_limit(Some(500));
        assert_eq!(b.mem_limit(), Some(500));
        b.apply_mem_limit(Some(900));
        assert_eq!(b.mem_limit(), Some(500), "explicit limit wins");
        b.apply_mem_limit(None);
        assert_eq!(b.mem_limit(), Some(500));
    }

    /// Byte analog of `forked_charges_from_threads_are_exact`: the pool
    /// total is exact and thread-count-invariant.
    #[test]
    fn forked_byte_charges_from_threads_are_exact() {
        let mut b = Budget::unlimited();
        let handles: Vec<Budget> = (0..8).map(|_| b.fork()).collect();
        std::thread::scope(|s| {
            for mut h in handles {
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.charge_bytes(3).unwrap();
                    }
                    h.uncharge_bytes(1000);
                });
            }
        });
        assert_eq!(b.mem_used(), 8 * (3000 - 1000));
        assert!(b.check_exceeded().is_ok());
    }

    /// Bytes stay exact when workers panic mid-charge: the handle's Drop
    /// flushes its pending batch during unwind.
    #[test]
    fn byte_pool_exact_after_worker_panic() {
        let mut b = Budget::unlimited();
        let handles: Vec<Budget> = (0..4).map(|_| b.fork()).collect();
        std::thread::scope(|s| {
            for (i, mut h) in handles.into_iter().enumerate() {
                s.spawn(move || {
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        h.charge_bytes(100).unwrap();
                        if i % 2 == 0 {
                            panic!("deliberate");
                        }
                        h.charge_bytes(100).unwrap();
                    }));
                });
            }
        });
        // 2 workers charged 100, 2 charged 200 — all flushed on drop.
        assert_eq!(b.mem_used(), 2 * 100 + 2 * 200);
    }
}
