//! Evaluation errors and resource guards.
//!
//! The paper reports baseline executions that "do not terminate after more
//! than 10 minutes"; our harness reproduces those DNF data points with a
//! [`Budget`] that bounds wall-clock time and the number of materialized
//! intermediate tuples (a deterministic proxy for work).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced during query evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The evaluation materialized more intermediate tuples than allowed.
    TupleBudgetExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The evaluation ran past its deadline.
    Timeout {
        /// The configured limit.
        limit: Duration,
    },
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist in its relation.
    UnknownColumn {
        /// Relation name.
        relation: String,
        /// Column name.
        column: String,
    },
    /// A referenced variable is missing from an intermediate relation.
    UnknownVariable(String),
    /// Anything else (plan inconsistencies, type errors in expressions).
    Internal(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TupleBudgetExceeded { limit } => {
                write!(f, "tuple budget exceeded ({limit} tuples)")
            }
            EvalError::Timeout { limit } => write!(f, "timed out after {limit:?}"),
            EvalError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EvalError::UnknownColumn { relation, column } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            EvalError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            EvalError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl EvalError {
    /// True for resource-limit errors (`DNF` data points in the harness).
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self,
            EvalError::TupleBudgetExceeded { .. } | EvalError::Timeout { .. }
        )
    }
}

/// A work budget threaded through every operator.
///
/// `charge(n)` accounts for `n` freshly materialized tuples; the deadline
/// is polled at most every few thousand charges to keep the common path
/// cheap.
///
/// # Concurrency
///
/// A budget starts with a plain local counter. [`Budget::fork`] promotes
/// the counter to a shared atomic and returns a sibling handle charging
/// the *same* pool, which is how the parallel execution layer keeps
/// accounting exact across worker threads: every handle sees the global
/// total, so the tuple limit trips if and only if the combined work
/// exceeds it — independent of thread count or interleaving (the sum of
/// charges is order-free). Call [`Budget::check_exceeded`] at merge points
/// to surface exhaustion deterministically after parallel sections.
#[derive(Clone, Debug)]
pub struct Budget {
    max_tuples: Option<u64>,
    deadline: Option<(Instant, Duration)>,
    counter: Counter,
    since_time_check: u64,
}

/// Local or shared tuple counter. A shared handle batches its charges in
/// `pending` and flushes to the pool every [`FLUSH_INTERVAL`] tuples (and
/// on drop), so hot join loops do not pay one atomic RMW per output row.
/// Exhaustion is then observed at flush points and at
/// [`Budget::check_exceeded`] merge points; a worker can overshoot the
/// limit by at most `FLUSH_INTERVAL` tuples before noticing, but *whether*
/// the limit trips depends only on the order-free combined total.
#[derive(Debug)]
enum Counter {
    Local(u64),
    Shared { pool: Arc<AtomicU64>, pending: u64 },
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        match self {
            Counter::Local(n) => Counter::Local(*n),
            // Pending charges belong to the handle that accrued them; a
            // clone starts with its own empty batch (copying `pending`
            // would double-count on flush).
            Counter::Shared { pool, .. } => Counter::Shared {
                pool: Arc::clone(pool),
                pending: 0,
            },
        }
    }
}

/// How often (in charged tuples) the deadline is polled.
const TIME_CHECK_INTERVAL: u64 = 4096;

/// How many tuples a shared [`Counter`] handle batches locally before
/// flushing to the shared pool.
const FLUSH_INTERVAL: u64 = 1024;

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Self {
        Budget {
            max_tuples: None,
            deadline: None,
            counter: Counter::Local(0),
            since_time_check: 0,
        }
    }

    /// Limits the number of materialized tuples.
    pub fn with_max_tuples(mut self, n: u64) -> Self {
        self.max_tuples = Some(n);
        self
    }

    /// Limits wall-clock time, starting now.
    pub fn with_timeout(mut self, limit: Duration) -> Self {
        self.deadline = Some((Instant::now() + limit, limit));
        self
    }

    /// Total tuples charged so far (across all forked handles, plus this
    /// handle's unflushed batch).
    pub fn charged(&self) -> u64 {
        match &self.counter {
            Counter::Local(n) => *n,
            Counter::Shared { pool, pending } => pool.load(Ordering::Relaxed) + pending,
        }
    }

    /// Promotes the counter to a shared atomic (if not already) and
    /// returns a sibling handle charging the same pool. The handle is
    /// `Send`; give one to each parallel task.
    pub fn fork(&mut self) -> Budget {
        if let Counter::Local(n) = self.counter {
            self.counter = Counter::Shared {
                pool: Arc::new(AtomicU64::new(n)),
                pending: 0,
            };
        }
        self.clone()
    }

    /// Accounts for `n` materialized tuples.
    pub fn charge(&mut self, n: u64) -> Result<(), EvalError> {
        let total = match &mut self.counter {
            Counter::Local(c) => {
                *c += n;
                Some(*c)
            }
            Counter::Shared { pool, pending } => {
                *pending += n;
                if *pending >= FLUSH_INTERVAL {
                    let flushed = std::mem::take(pending);
                    Some(pool.fetch_add(flushed, Ordering::Relaxed) + flushed)
                } else {
                    None // exhaustion observed at the next flush or merge
                }
            }
        };
        if let (Some(total), Some(limit)) = (total, self.max_tuples) {
            if total > limit {
                return Err(EvalError::TupleBudgetExceeded { limit });
            }
        }
        if let Some((deadline, limit)) = self.deadline {
            self.since_time_check += n;
            if self.since_time_check >= TIME_CHECK_INTERVAL {
                self.since_time_check = 0;
                if Instant::now() > deadline {
                    return Err(EvalError::Timeout { limit });
                }
            }
        }
        Ok(())
    }

    /// Deterministic exhaustion check for merge points after parallel
    /// sections: errors iff the *combined* charges of all handles exceed
    /// the tuple limit, regardless of which worker crossed it first.
    pub fn check_exceeded(&self) -> Result<(), EvalError> {
        if let Some(limit) = self.max_tuples {
            if self.charged() > limit {
                return Err(EvalError::TupleBudgetExceeded { limit });
            }
        }
        Ok(())
    }

    /// Flushes this handle's unflushed batch to the shared pool (no-op
    /// for local counters). Called on drop, so totals are exact by the
    /// time any merge point runs `check_exceeded`.
    fn flush(&mut self) {
        if let Counter::Shared { pool, pending } = &mut self.counter {
            if *pending > 0 {
                pool.fetch_add(std::mem::take(pending), Ordering::Relaxed);
            }
        }
    }

    /// Forces a deadline check (called between operators).
    pub fn check_time(&mut self) -> Result<(), EvalError> {
        if let Some((deadline, limit)) = self.deadline {
            if Instant::now() > deadline {
                return Err(EvalError::Timeout { limit });
            }
        }
        Ok(())
    }
}

impl Drop for Budget {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails() {
        let mut b = Budget::unlimited();
        for _ in 0..100 {
            b.charge(1_000_000).unwrap();
        }
        assert_eq!(b.charged(), 100_000_000);
    }

    #[test]
    fn tuple_budget_trips() {
        let mut b = Budget::unlimited().with_max_tuples(10);
        b.charge(10).unwrap();
        let err = b.charge(1).unwrap_err();
        assert_eq!(err, EvalError::TupleBudgetExceeded { limit: 10 });
        assert!(err.is_resource_limit());
    }

    #[test]
    fn timeout_trips() {
        let mut b = Budget::unlimited().with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(5));
        // charge() may need several calls to hit the polling interval;
        // check_time is immediate.
        let err = b.check_time().unwrap_err();
        assert!(matches!(err, EvalError::Timeout { .. }));
    }

    #[test]
    fn display_messages() {
        assert!(EvalError::UnknownTable("t".into())
            .to_string()
            .contains("`t`"));
        assert!(!EvalError::UnknownVariable("v".into()).is_resource_limit());
    }

    #[test]
    fn forked_handles_share_the_pool() {
        let mut b = Budget::unlimited().with_max_tuples(100);
        b.charge(30).unwrap();
        let mut h1 = b.fork();
        let mut h2 = b.fork();
        h1.charge(30).unwrap();
        h2.charge(30).unwrap();
        // Shared-handle charges are batched; they become visible to
        // siblings when the handle flushes (here: on drop).
        drop(h1);
        drop(h2);
        assert_eq!(b.charged(), 90);
        // The combined pool trips at the merge point no matter which
        // handle's charges crossed the limit.
        let mut h3 = b.fork();
        h3.charge(20).unwrap(); // batched, not yet observed
        drop(h3);
        let err = b.check_exceeded().unwrap_err();
        assert_eq!(err, EvalError::TupleBudgetExceeded { limit: 100 });
    }

    #[test]
    fn shared_handle_trips_inline_on_flush() {
        let mut b = Budget::unlimited().with_max_tuples(100);
        let mut h = b.fork();
        // A charge reaching FLUSH_INTERVAL flushes and observes the
        // limit immediately, bounding how far a worker can overshoot.
        let err = h.charge(FLUSH_INTERVAL).unwrap_err();
        assert_eq!(err, EvalError::TupleBudgetExceeded { limit: 100 });
    }

    #[test]
    fn forked_charges_from_threads_are_exact() {
        let mut b = Budget::unlimited();
        let handles: Vec<Budget> = (0..8).map(|_| b.fork()).collect();
        std::thread::scope(|s| {
            for mut h in handles {
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.charge(1).unwrap();
                    }
                });
            }
        });
        assert_eq!(b.charged(), 8000);
        assert!(b.check_exceeded().is_ok());
    }

    #[test]
    fn check_exceeded_without_limit_never_errs() {
        let mut b = Budget::unlimited();
        b.charge(u64::MAX / 2).unwrap();
        assert!(b.check_exceeded().is_ok());
    }
}
