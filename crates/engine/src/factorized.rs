//! Factorized query results (the paper's output-polynomial guarantee made
//! practical): after semijoin reduction, keep the per-vertex reduced
//! relations plus join-key linkage instead of materializing the full join
//! bottom-up. The *cover* supports
//!
//! * exact answer counting and weighted aggregation (COUNT / SUM / MIN /
//!   MAX / GROUP BY) without ever enumerating the answer — per-vertex
//!   partial counts are multiplied along join keys, and
//! * constant-delay enumeration of the answer tuples, lazily stitching
//!   vertex rows via [`ChainTable`] chain cursors.
//!
//! Both run over either carrier. The representation is exact only when the
//! linked relations are *stitchable* (every variable a vertex shares with
//! its parent's scope is a column of the parent) and each vertex's answer
//! columns functionally determine its link columns; `build_cover` verifies
//! both and reports [`CoverError::Ineligible`] otherwise, the caller's cue
//! to fall back to full materialization (which can spill). Denied byte
//! reservations degrade the same way — the factorized path never spills
//! itself.
//!
//! See DESIGN.md §3.11 for the eligibility proof sketch.

use crate::aggregate::{self, Accumulator, WeightedFeedError};
use crate::carrier::Carrier;
use crate::chain::{ChainTable, CHAIN_END};
use crate::column::{combine_hash, finish_hash};
use crate::cops;
use crate::crel::CRel;
use crate::dict::{self, DictReader};
use crate::error::{Budget, EvalError};
use crate::hash::{hash_key, keys_eq, FxHashMap};
use crate::value::{row_heap_bytes, Row, Value};
use crate::vrel::VRelation;
use htqo_cq::{ConjunctiveQuery, OutputItem};
use std::collections::{HashMap, HashSet};

/// Why a factorized attempt did not produce a result.
#[derive(Debug)]
pub enum CoverError {
    /// The query/data combination cannot be represented factorized
    /// *exactly* (or was denied the memory to try); the caller should
    /// fall back to the materialized pipeline. Carries a human-readable
    /// reason for `QueryOutcome` telemetry.
    Ineligible(String),
    /// A genuine evaluation error; surface it unchanged — falling back
    /// would either repeat it or mask it.
    Eval(EvalError),
}

/// Routes an operator error: a denied reservation degrades to fallback
/// (the materialized pipeline can spill where the cover cannot), anything
/// else propagates.
fn degrade(e: EvalError) -> CoverError {
    match e {
        EvalError::MemoryExceeded { .. } => {
            CoverError::Ineligible("factorized state denied a byte reservation".into())
        }
        other => CoverError::Eval(other),
    }
}

/// `fail_point!` needs an `EvalError` result context; this wraps one site
/// for use inside `CoverError`-returning code.
fn fp(site: &str) -> Result<(), EvalError> {
    crate::fail_point!(site);
    Ok(())
}

/// Carrier operations the cover needs beyond [`Carrier`]: positional key
/// hashing/equality and single-cell reads, all under a per-carrier read
/// context so the columnar carrier can pin one dictionary view per batch
/// of probes (holding it across unrelated work risks writer starvation).
pub trait FactorizedCarrier: Carrier {
    /// Per-carrier read context: `()` for rows, a [`DictReader`] for the
    /// columnar carrier. Acquired fresh per build phase / enumerator call.
    type Ctx;

    /// Acquires a read context.
    fn ctx() -> Self::Ctx;

    /// Key hash of every row over columns `idx`. Must agree with
    /// [`FactorizedCarrier::key_hash_row`] and, across calls, with itself
    /// for value-equal keys (both carriers hash by value through one
    /// process-wide string dictionary).
    fn key_hashes(&self, idx: &[usize], ctx: &Self::Ctx) -> Vec<u64>;

    /// Key hash of row `i` over columns `idx`.
    fn key_hash_row(&self, i: usize, idx: &[usize], ctx: &Self::Ctx) -> u64;

    /// True if row `i` over `idx` equals `other`'s row `j` over
    /// `other_idx`, positionally.
    fn keys_eq_across(
        &self,
        i: usize,
        idx: &[usize],
        other: &Self,
        j: usize,
        other_idx: &[usize],
        ctx: &Self::Ctx,
    ) -> bool;

    /// The value at row `i`, column `c`.
    fn value_at(&self, i: usize, c: usize, ctx: &Self::Ctx) -> Value;
}

impl FactorizedCarrier for VRelation {
    type Ctx = ();

    fn ctx() -> Self::Ctx {}

    fn key_hashes(&self, idx: &[usize], _ctx: &Self::Ctx) -> Vec<u64> {
        self.rows().iter().map(|r| hash_key(r, idx)).collect()
    }

    fn key_hash_row(&self, i: usize, idx: &[usize], _ctx: &Self::Ctx) -> u64 {
        hash_key(&self.rows()[i], idx)
    }

    fn keys_eq_across(
        &self,
        i: usize,
        idx: &[usize],
        other: &Self,
        j: usize,
        other_idx: &[usize],
        _ctx: &Self::Ctx,
    ) -> bool {
        keys_eq(&self.rows()[i], idx, &other.rows()[j], other_idx)
    }

    fn value_at(&self, i: usize, c: usize, _ctx: &Self::Ctx) -> Value {
        self.rows()[i][c].clone()
    }
}

impl FactorizedCarrier for CRel {
    type Ctx = DictReader;

    fn ctx() -> Self::Ctx {
        dict::reader()
    }

    fn key_hashes(&self, idx: &[usize], ctx: &Self::Ctx) -> Vec<u64> {
        cops::key_hashes(self, idx, ctx)
    }

    fn key_hash_row(&self, i: usize, idx: &[usize], ctx: &Self::Ctx) -> u64 {
        // The single-row fold of the vectorized `write_hashes` pass —
        // pinned equivalent by `cops::tests::write_hashes_matches_hash_at_fold`.
        finish_hash(idx.iter().fold(0u64, |acc, &c| {
            combine_hash(acc, self.column(c).hash_at(i, ctx))
        }))
    }

    fn keys_eq_across(
        &self,
        i: usize,
        idx: &[usize],
        other: &Self,
        j: usize,
        other_idx: &[usize],
        ctx: &Self::Ctx,
    ) -> bool {
        idx.iter()
            .zip(other_idx)
            .all(|(&a, &b)| self.column(a).eq_at(i, other.column(b), j, ctx))
    }

    fn value_at(&self, i: usize, c: usize, ctx: &Self::Ctx) -> Value {
        self.column(c).value_with(i, ctx)
    }
}

/// Input to [`build_cover`]: one relation per decomposition vertex, its
/// parent link, and its decomposition scope (χ(v) for a hypertree, the
/// edge variables for a join forest) as variable names. Relations arrive
/// *unreduced* — the build runs its own bottom-up semijoin pass, which the
/// chain-match guarantee of the enumerator depends on.
pub struct CoverInput<C> {
    /// Per-vertex relations over the vertex's available variables.
    pub rels: Vec<C>,
    /// Parent index per vertex; `None` marks a root. Forests are allowed —
    /// the build stitches multiple roots under a synthetic neutral root
    /// (an empty join key, i.e. a cross product).
    pub parents: Vec<Option<usize>>,
    /// Decomposition scope per vertex, used for the stitchability check.
    pub scopes: Vec<Vec<String>>,
}

/// One vertex of a built [`Cover`]: its (reduced, projected) relation,
/// the positional join key against its parent, a chain table over the key
/// for parent→child probes, and the per-row answer count of its subtree.
struct CoverVertex<C> {
    rel: C,
    /// Index into `Cover::verts` (BFS order, so always smaller than the
    /// vertex's own index). The root stores `0` (unused).
    parent: usize,
    /// Join-key columns in this relation / in the parent's relation.
    key_self: Vec<usize>,
    key_parent: Vec<usize>,
    /// Chains over `key_self` hashes; `None` for the root.
    table: Option<ChainTable>,
    /// `cnt[i]` = number of distinct answer combinations contributed by
    /// this vertex's subtree when this vertex sits on row `i`.
    cnt: Vec<u64>,
}

/// A factorized answer: reduced per-vertex relations linked by join keys,
/// with per-row subtree answer counts. Produced by [`build_cover`];
/// consumed by [`finalize_cover`] (aggregation without enumeration) or
/// [`Cover::into_rows`] (constant-delay enumeration).
pub struct Cover<C: FactorizedCarrier> {
    /// Kept vertices in BFS order (index 0 is the root; parents precede
    /// children).
    verts: Vec<CoverVertex<C>>,
    /// `(vertex, column)` supplying each answer variable, in
    /// `q.out_vars()` order.
    out: Vec<(usize, usize)>,
    /// Answer variable names, in `q.out_vars()` order.
    out_names: Vec<String>,
    /// Exact number of (distinct) answer tuples.
    total: u64,
    /// Bytes of cover state currently charged to the budget; released by
    /// whichever consumer finishes with the cover.
    state_bytes: u64,
}

impl<C: FactorizedCarrier> Cover<C> {
    /// Exact answer cardinality, computed without enumeration.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes of cover state charged against the budget.
    pub fn state_bytes(&self) -> u64 {
        self.state_bytes
    }

    /// Answer column names, in `out(Q)` order (hidden rowid guards
    /// included).
    pub fn answer_cols(&self) -> &[String] {
        &self.out_names
    }

    /// Releases the cover's byte charges without consuming it further.
    /// Call when abandoning a cover that will be neither finalized nor
    /// enumerated.
    pub fn release(mut self, budget: &mut Budget) {
        budget.uncharge_bytes(self.state_bytes);
        self.state_bytes = 0;
    }

    /// Turns the cover into a constant-delay answer enumerator. The
    /// iterator takes over the cover's byte charges (released when it is
    /// exhausted or dropped) and charges one tuple per emitted row against
    /// a forked handle of `budget`.
    pub fn into_rows(self, budget: &mut Budget) -> CoverRows<C> {
        CoverRows {
            budget: budget.fork(),
            cursors: Vec::new(),
            started: false,
            done: false,
            emitted: 0,
            state_released: false,
            cover: self,
        }
    }
}

/// Everything `build_cover_inner` hands back on success.
type Built<C> = (Vec<CoverVertex<C>>, Vec<(usize, usize)>, Vec<String>, u64);

/// Builds a [`Cover`] over the linked relations of `input`, verifying the
/// exactness conditions (stitchability, answer-determines-link) along the
/// way. On any error every byte charged by the attempt is released; tuple
/// charges stay (they measure work actually performed).
pub fn build_cover<C: FactorizedCarrier>(
    input: CoverInput<C>,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
) -> Result<Cover<C>, CoverError> {
    fp("factorized::build").map_err(CoverError::Eval)?;
    budget.check_time().map_err(CoverError::Eval)?;
    let mem0 = budget.mem_used();
    match build_cover_inner(input, q, budget) {
        Ok((verts, out, out_names, total)) => Ok(Cover {
            verts,
            out,
            out_names,
            total,
            state_bytes: budget.mem_used().saturating_sub(mem0),
        }),
        Err(e) => {
            budget.uncharge_bytes(budget.mem_used().saturating_sub(mem0));
            Err(e)
        }
    }
}

#[allow(clippy::needless_range_loop)]
fn build_cover_inner<C: FactorizedCarrier>(
    input: CoverInput<C>,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
) -> Result<Built<C>, CoverError> {
    let CoverInput {
        mut rels,
        mut parents,
        mut scopes,
    } = input;
    if rels.is_empty() {
        return Err(CoverError::Ineligible("no decomposition vertices".into()));
    }
    assert_eq!(rels.len(), parents.len(), "one parent link per vertex");
    assert_eq!(rels.len(), scopes.len(), "one scope per vertex");

    // A forest stitches under a synthetic neutral root: the empty join key
    // hashes constantly, so each tree's root relation forms one chain and
    // the trees combine as a cross product — exactly the forest semantics.
    let roots: Vec<usize> = (0..rels.len()).filter(|&v| parents[v].is_none()).collect();
    let root = if roots.len() == 1 {
        roots[0]
    } else {
        rels.push(C::neutral());
        parents.push(None);
        scopes.push(Vec::new());
        let r = rels.len() - 1;
        for &v in &roots {
            parents[v] = Some(r);
        }
        r
    };
    let n = rels.len();

    // Chain cursors are u32 row indices.
    if rels.iter().any(|r| r.len() >= u32::MAX as usize) {
        return Err(CoverError::Ineligible(
            "a vertex relation exceeds the u32 row-index space".into(),
        ));
    }

    // Stitchability: a variable of `v` inside the parent's *scope* must be
    // a column of the parent's *relation*, so parent-child key equality
    // chains into global consistency (the decomposition's connectedness
    // condition does the rest).
    for v in 0..n {
        let Some(p) = parents[v] else { continue };
        for c in rels[v].cols() {
            if scopes[p].iter().any(|s| s == c) && rels[p].col_index(c).is_none() {
                return Err(CoverError::Ineligible(format!(
                    "variable `{c}` is in the parent's scope but not its relation"
                )));
            }
        }
    }

    // Parent-before-child order (BFS from the root); also validates the
    // links form one tree.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 0..n {
        if let Some(p) = parents[v] {
            children[p].push(v);
        }
    }
    let mut order = Vec::with_capacity(n);
    order.push(root);
    let mut i = 0;
    while i < order.len() {
        order.extend(children[order[i]].iter().copied());
        i += 1;
    }
    if order.len() != n {
        return Err(CoverError::Ineligible(
            "vertex links do not form a rooted tree".into(),
        ));
    }

    // Bottom-up semijoin reduction, children before parents: every
    // surviving parent row then has ≥1 match in each (already reduced)
    // child — the enumerator's chain-match guarantee.
    let mut opt: Vec<Option<C>> = rels.into_iter().map(Some).collect();
    for &v in order.iter().rev() {
        let Some(p) = parents[v] else { continue };
        budget.check_time().map_err(CoverError::Eval)?;
        let parent = opt[p].take().expect("present");
        let child = opt[v].as_ref().expect("present");
        opt[p] = Some(parent.semijoin(child, budget).map_err(degrade)?);
    }
    let rels: Vec<C> = opt.into_iter().map(|r| r.expect("present")).collect();

    // Answer variables (hidden rowid guards included).
    let out_names: Vec<String> = q.out_vars();
    let out_set: HashSet<&str> = out_names.iter().map(|s| s.as_str()).collect();

    // Subtree answer variables, for pruning.
    let mut sub_out: Vec<HashSet<String>> = rels
        .iter()
        .map(|r| {
            r.cols()
                .iter()
                .filter(|c| out_set.contains(c.as_str()))
                .cloned()
                .collect()
        })
        .collect();
    for &v in order.iter().rev() {
        if let Some(p) = parents[v] {
            let vs: Vec<String> = sub_out[v].iter().cloned().collect();
            sub_out[p].extend(vs);
        }
    }

    // Prune subtrees whose entire answer contribution is already pinned by
    // the parent row: their filtering effect is spent in the semijoin
    // reduction, and under stitchability each parent row admits exactly
    // one distinct answer combination from such a subtree.
    let mut kept = vec![false; n];
    kept[root] = true;
    for &v in &order {
        if !kept[v] {
            continue;
        }
        for &c in &children[v] {
            kept[c] = !sub_out[c].iter().all(|s| rels[v].col_index(s).is_some());
        }
    }

    // Per kept vertex, keep only answer columns and link columns (keys
    // shared with the kept parent / kept children), then project distinct.
    // Distinctness makes subtree counts count *distinct* combinations.
    let mut keeps: Vec<Vec<String>> = vec![Vec::new(); n];
    for &v in &order {
        if !kept[v] {
            continue;
        }
        keeps[v] = rels[v]
            .cols()
            .iter()
            .filter(|c| {
                out_set.contains(c.as_str())
                    || parents[v].is_some_and(|p| rels[p].col_index(c).is_some())
                    || children[v]
                        .iter()
                        .any(|&ch| kept[ch] && rels[ch].col_index(c).is_some())
            })
            .cloned()
            .collect();
    }
    let mut proj: Vec<Option<C>> = rels.into_iter().map(Some).collect();
    for &v in &order {
        if !kept[v] {
            proj[v] = None;
            continue;
        }
        let r = proj[v].take().expect("present");
        proj[v] = Some(r.project(&keeps[v], true, budget).map_err(degrade)?);
    }

    // Assemble kept vertices in BFS order; parents keep smaller indices.
    let mut remap = vec![usize::MAX; n];
    let mut verts: Vec<CoverVertex<C>> = Vec::new();
    for &v in &order {
        if !kept[v] {
            continue;
        }
        remap[v] = verts.len();
        verts.push(CoverVertex {
            rel: proj[v].take().expect("kept"),
            parent: parents[v].map(|p| remap[p]).unwrap_or(0),
            key_self: Vec::new(),
            key_parent: Vec::new(),
            table: None,
            cnt: Vec::new(),
        });
    }

    // Positional join keys child ↔ parent (shared column names).
    let mut keys: Vec<(Vec<usize>, Vec<usize>)> = vec![(Vec::new(), Vec::new())];
    for k in 1..verts.len() {
        let p = verts[k].parent;
        let mut ks = Vec::new();
        let mut kp = Vec::new();
        for (i, c) in verts[k].rel.cols().iter().enumerate() {
            if let Some(j) = verts[p].rel.col_index(c) {
                ks.push(i);
                kp.push(j);
            }
        }
        keys.push((ks, kp));
    }
    for (k, (ks, kp)) in keys.into_iter().enumerate() {
        verts[k].key_self = ks;
        verts[k].key_parent = kp;
    }

    let ctx = C::ctx();

    // Exactness: within every kept vertex, the answer columns must
    // functionally determine the link columns — otherwise one answer
    // combination could stitch in several ways and counts would inflate.
    for vert in &verts {
        let rel = &vert.rel;
        let (mut out_idx, mut link_idx) = (Vec::new(), Vec::new());
        for (i, c) in rel.cols().iter().enumerate() {
            if out_set.contains(c.as_str()) {
                out_idx.push(i);
            } else {
                link_idx.push(i);
            }
        }
        if link_idx.is_empty() {
            continue;
        }
        let fd_bytes = 12 * rel.len() as u64;
        if !budget.try_reserve_bytes(fd_bytes) {
            return Err(degrade(aggregate::group_state_exceeded(budget, fd_bytes)));
        }
        let hashes = rel.key_hashes(&out_idx, &ctx);
        let mut reps: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut violated = false;
        'rows: for (i, &h) in hashes.iter().enumerate() {
            let bucket = reps.entry(h).or_default();
            for &r in bucket.iter() {
                if rel.keys_eq_across(i, &out_idx, rel, r as usize, &out_idx, &ctx) {
                    if !rel.keys_eq_across(i, &link_idx, rel, r as usize, &link_idx, &ctx) {
                        violated = true;
                        break 'rows;
                    }
                    continue 'rows;
                }
            }
            bucket.push(i as u32);
        }
        budget.uncharge_bytes(fd_bytes);
        if violated {
            return Err(CoverError::Ineligible(
                "a vertex's answer columns do not determine its link columns".into(),
            ));
        }
    }

    // Answer variable → first kept vertex carrying it. Stitched key
    // equality makes every carrier agree, so "first" is arbitrary.
    let mut out_map = Vec::with_capacity(out_names.len());
    for name in &out_names {
        let Some(pair) = verts
            .iter()
            .enumerate()
            .find_map(|(k, vx)| vx.rel.col_index(name).map(|c| (k, c)))
        else {
            return Err(CoverError::Ineligible(format!(
                "answer variable `{name}` is not covered by any kept vertex"
            )));
        };
        out_map.push(pair);
    }

    // Chain tables over each non-root vertex's join key (parent → child
    // probes for both counting and enumeration).
    for k in 1..verts.len() {
        budget.check_time().map_err(CoverError::Eval)?;
        let rel = &verts[k].rel;
        let bytes = ChainTable::byte_estimate(rel.len());
        if !budget.try_reserve_bytes(bytes) {
            return Err(degrade(aggregate::group_state_exceeded(budget, bytes)));
        }
        let hashes = rel.key_hashes(&verts[k].key_self, &ctx);
        verts[k].table = Some(ChainTable::build(rel.len(), |i| hashes[i]));
    }

    // Subtree answer counts, children (larger indices) before parents:
    // cnt[v][i] = ∏_{kept child c} Σ_{j matching i} cnt[c][j].
    for k in (0..verts.len()).rev() {
        let bytes = 8 * verts[k].rel.len() as u64;
        if !budget.try_reserve_bytes(bytes) {
            return Err(degrade(aggregate::group_state_exceeded(budget, bytes)));
        }
        let mut cnt = vec![1u64; verts[k].rel.len()];
        for c in (k + 1)..verts.len() {
            if verts[c].parent != k {
                continue;
            }
            budget.check_time().map_err(CoverError::Eval)?;
            let phashes = verts[k].rel.key_hashes(&verts[c].key_parent, &ctx);
            let table = verts[c].table.as_ref().expect("non-root");
            for i in 0..cnt.len() {
                let mut s: u64 = 0;
                let mut j = table.head(phashes[i]);
                while j != CHAIN_END {
                    if verts[c].rel.keys_eq_across(
                        j as usize,
                        &verts[c].key_self,
                        &verts[k].rel,
                        i,
                        &verts[c].key_parent,
                        &ctx,
                    ) {
                        s = s.checked_add(verts[c].cnt[j as usize]).ok_or_else(|| {
                            CoverError::Ineligible("answer count overflow".into())
                        })?;
                    }
                    j = table.next_row(j);
                }
                if s == 0 {
                    // Semijoin reduction guarantees a match for *live* rows;
                    // a dead row (unreachable from the root) can land here
                    // harmlessly, but bail defensively rather than emit a
                    // zero count.
                    return Err(CoverError::Ineligible(
                        "a reduced parent row lost its child match".into(),
                    ));
                }
                cnt[i] = cnt[i]
                    .checked_mul(s)
                    .ok_or_else(|| CoverError::Ineligible("answer count overflow".into()))?;
            }
        }
        verts[k].cnt = cnt;
    }

    let mut total: u64 = 0;
    for &c in &verts[0].cnt {
        total = total
            .checked_add(c)
            .ok_or_else(|| CoverError::Ineligible("answer count overflow".into()))?;
    }

    Ok((verts, out_map, out_names, total))
}

/// Computes the final aggregate output of `q` directly from a cover —
/// GROUP BY groups, aggregate functions, HAVING — without enumerating the
/// answer: each root row feeds the accumulators once, weighted by its
/// subtree answer count. Requires every grouping variable and aggregate
/// input to be a root column (the caller's static eligibility check);
/// order-sensitive accumulation (float SUM, AVG) and overflow degrade to
/// [`CoverError::Ineligible`] at runtime. Consumes the cover and releases
/// its byte charges.
///
/// Group rows come out in root-row first-seen order, which can differ from
/// the materialized pipeline's answer-row order — callers gate this path
/// to queries without ORDER BY/LIMIT, where output order is unspecified.
pub fn finalize_cover<C: FactorizedCarrier>(
    cover: Cover<C>,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
) -> Result<VRelation, CoverError> {
    let state_bytes = cover.state_bytes;
    let mut accrued = 0u64;
    let result = finalize_cover_inner(&cover, q, budget, &mut accrued);
    budget.uncharge_bytes(accrued);
    budget.uncharge_bytes(state_bytes);
    let out = result?;
    budget
        .charge_bytes(out.len() as u64 * row_heap_bytes(out.cols().len()))
        .map_err(degrade)?;
    aggregate::finalize_tail(out, q, budget).map_err(CoverError::Eval)
}

fn finalize_cover_inner<C: FactorizedCarrier>(
    cover: &Cover<C>,
    q: &ConjunctiveQuery,
    budget: &mut Budget,
    accrued: &mut u64,
) -> Result<VRelation, CoverError> {
    fp("aggregate::finalize").map_err(CoverError::Eval)?;
    let (visible, labels) = aggregate::visible_output(q);
    let root = &cover.verts[0];
    let cols = root.rel.cols().to_vec();
    let group_idx = match aggregate::group_layout(&cols, q, &visible) {
        Ok(g) => g,
        Err(EvalError::UnknownVariable(v)) => {
            return Err(CoverError::Ineligible(format!(
                "grouping variable `{v}` is not a root column"
            )))
        }
        Err(e) => return Err(CoverError::Eval(e)),
    };

    let group_bytes = aggregate::group_state_bytes(group_idx.len(), visible.len());
    let mut groups: HashMap<Row, Vec<Accumulator>> = HashMap::new();
    let mut order: Vec<Row> = Vec::new();
    let ctx = C::ctx();
    for i in 0..root.rel.len() {
        if i.is_multiple_of(8192) {
            budget.check_time().map_err(CoverError::Eval)?;
        }
        let weight = root.cnt[i];
        let row: Row = (0..cols.len())
            .map(|c| root.rel.value_at(i, c, &ctx))
            .collect();
        let key: Row = group_idx.iter().map(|&gi| row[gi].clone()).collect();
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                if !budget.try_reserve_bytes(group_bytes) {
                    return Err(degrade(aggregate::group_state_exceeded(
                        budget,
                        group_bytes,
                    )));
                }
                *accrued += group_bytes;
                budget.charge(1).map_err(CoverError::Eval)?;
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| visible.iter().map(|o| Accumulator::for_item(o)).collect())
            }
        };
        for (acc, item) in accs.iter_mut().zip(&visible) {
            acc.feed_weighted(item, &cols, &row, weight)
                .map_err(|e| match e {
                    WeightedFeedError::OrderSensitive => CoverError::Ineligible(
                        "order-sensitive float accumulation requires enumeration".into(),
                    ),
                    WeightedFeedError::Overflow => {
                        CoverError::Ineligible("aggregate count overflow".into())
                    }
                    WeightedFeedError::Eval(EvalError::UnknownVariable(v)) => {
                        CoverError::Ineligible(format!(
                            "aggregate input `{v}` is not a root column"
                        ))
                    }
                    WeightedFeedError::Eval(e) => CoverError::Eval(e),
                })?;
        }
    }

    // Global aggregate over empty input still produces one row.
    if groups.is_empty() && q.group_by.is_empty() {
        let key: Row = Vec::new().into_boxed_slice();
        order.push(key.clone());
        groups.insert(
            key,
            visible.iter().map(|o| Accumulator::for_item(o)).collect(),
        );
    }

    let mut out = VRelation::empty(labels.to_vec());
    for key in order {
        let accs = &groups[&key];
        let mut row: Vec<Value> = Vec::with_capacity(visible.len());
        for (acc, item) in accs.iter().zip(&visible) {
            row.push(match item {
                OutputItem::Var { var, .. } => {
                    let gpos = q.group_by.iter().position(|g| g == var).expect("validated");
                    key[gpos].clone()
                }
                OutputItem::Aggregate { .. } => acc.finish(),
            });
        }
        out.push(row.into_boxed_slice());
    }
    Ok(out)
}

/// Constant-delay answer enumerator over a [`Cover`]: an odometer of chain
/// cursors, one per non-root vertex, stitching vertex rows into answer
/// tuples on demand. Each `next()` walks at most one chain segment per
/// vertex (hash-collision skips aside), so the delay between consecutive
/// answers is independent of the answer count.
///
/// Yields `Result` rows so budget exhaustion and timeouts surface
/// mid-stream; after an error the iterator is fused. Dropping the iterator
/// (fully consumed or not) releases the cover's byte charges.
pub struct CoverRows<C: FactorizedCarrier> {
    cover: Cover<C>,
    budget: Budget,
    /// Current row per vertex, indexed like `Cover::verts`.
    cursors: Vec<u32>,
    started: bool,
    done: bool,
    emitted: u64,
    state_released: bool,
}

impl<C: FactorizedCarrier> CoverRows<C> {
    /// Answer column names, in `out(Q)` order.
    pub fn cols(&self) -> &[String] {
        &self.cover.out_names
    }

    /// Exact number of rows this enumerator yields in total.
    pub fn total(&self) -> u64 {
        self.cover.total
    }

    fn finish(&mut self) {
        self.done = true;
        if !self.state_released {
            self.state_released = true;
            self.budget.uncharge_bytes(self.cover.state_bytes);
        }
    }

    /// Positions vertex `k`'s cursor on the first row matching its
    /// parent's current row. Semijoin reduction + the root being live
    /// guarantee a match exists; a missing one is an internal error.
    fn prime(&mut self, k: usize, ctx: &C::Ctx) -> Result<(), EvalError> {
        let vx = &self.cover.verts[k];
        let parent = &self.cover.verts[vx.parent];
        let prow = self.cursors[vx.parent] as usize;
        let h = parent.rel.key_hash_row(prow, &vx.key_parent, ctx);
        let table = vx.table.as_ref().expect("non-root has a table");
        let mut j = table.head(h);
        while j != CHAIN_END {
            if vx.rel.keys_eq_across(
                j as usize,
                &vx.key_self,
                &parent.rel,
                prow,
                &vx.key_parent,
                ctx,
            ) {
                break;
            }
            j = table.next_row(j);
        }
        if j == CHAIN_END {
            return Err(EvalError::Internal(
                "factorized enumeration lost a guaranteed child match".into(),
            ));
        }
        self.cursors[k] = j;
        Ok(())
    }

    /// Advances vertex `k`'s cursor to the next row matching its parent's
    /// current row, or reports exhaustion of this chain.
    fn advance(&mut self, k: usize, ctx: &C::Ctx) -> bool {
        let vx = &self.cover.verts[k];
        let parent = &self.cover.verts[vx.parent];
        let prow = self.cursors[vx.parent] as usize;
        let table = vx.table.as_ref().expect("non-root has a table");
        let mut j = table.next_row(self.cursors[k]);
        while j != CHAIN_END {
            if vx.rel.keys_eq_across(
                j as usize,
                &vx.key_self,
                &parent.rel,
                prow,
                &vx.key_parent,
                ctx,
            ) {
                self.cursors[k] = j;
                return true;
            }
            j = table.next_row(j);
        }
        false
    }

    fn step(&mut self) -> Result<Option<Row>, EvalError> {
        fp("factorized::enumerate")?;
        let ctx = C::ctx();
        let nv = self.cover.verts.len();
        if !self.started {
            self.started = true;
            if self.cover.total == 0 {
                return Ok(None);
            }
            self.cursors = vec![0; nv];
            for k in 1..nv {
                self.prime(k, &ctx)?;
            }
        } else {
            // Advance the deepest advanceable digit; re-prime everything
            // after it. Digits advance child-most first so every parent
            // combination pairs with every child combination exactly once.
            let mut k = nv - 1;
            loop {
                if k == 0 {
                    let next = self.cursors[0] as usize + 1;
                    if next >= self.cover.verts[0].rel.len() {
                        return Ok(None);
                    }
                    self.cursors[0] = next as u32;
                    break;
                }
                if self.advance(k, &ctx) {
                    break;
                }
                k -= 1;
            }
            for j in (k + 1)..nv {
                self.prime(j, &ctx)?;
            }
        }

        self.emitted += 1;
        self.budget.charge(1)?;
        if self.emitted.is_multiple_of(1024) {
            self.budget.check_time()?;
            self.budget.check_exceeded()?;
        }
        let row: Row = self
            .cover
            .out
            .iter()
            .map(|&(k, c)| {
                self.cover.verts[k]
                    .rel
                    .value_at(self.cursors[k] as usize, c, &ctx)
            })
            .collect();
        Ok(Some(row))
    }
}

impl<C: FactorizedCarrier> Iterator for CoverRows<C> {
    type Item = Result<Row, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.step() {
            Ok(Some(row)) => Some(Ok(row)),
            Ok(None) => {
                self.finish();
                None
            }
            Err(e) => {
                self.finish();
                Some(Err(e))
            }
        }
    }
}

impl<C: FactorizedCarrier> Drop for CoverRows<C> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vrel::VRelation;
    use htqo_cq::CqBuilder;

    fn rel(cols: &[&str], rows: &[&[i64]]) -> VRelation {
        VRelation::from_rows(
            cols.iter().map(|c| c.to_string()).collect(),
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
                .collect(),
        )
    }

    /// R(a,b) ⋈ S(b,c): 2×2 fan-out per b value.
    fn two_vertex_input() -> (CoverInput<VRelation>, ConjunctiveQuery) {
        let r = rel(&["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]);
        let s = rel(&["b", "c"], &[&[10, 7], &[10, 8], &[20, 9], &[30, 5]]);
        let q = CqBuilder::new()
            .atom_vars("R", &["a", "b"])
            .atom_vars("S", &["b", "c"])
            .out_var("a")
            .out_var("b")
            .out_var("c")
            .build();
        (
            CoverInput {
                rels: vec![r, s],
                parents: vec![None, Some(0)],
                scopes: vec![vec!["a".into(), "b".into()], vec!["b".into(), "c".into()]],
            },
            q,
        )
    }

    #[test]
    fn counts_and_enumerates_two_vertex_join() {
        let (input, q) = two_vertex_input();
        let mut budget = Budget::unlimited();
        let cover = build_cover(input, &q, &mut budget).expect("eligible");
        // a=1,2 × c=7,8 (b=10) plus a=3 × c=9 (b=20) = 5 answers.
        assert_eq!(cover.total(), 5);
        assert!(cover.state_bytes() > 0);
        let mut rows: Vec<Row> = cover
            .into_rows(&mut budget)
            .collect::<Result<_, _>>()
            .expect("no budget in play");
        rows.sort();
        let expect = rel(
            &["a", "b", "c"],
            &[
                &[1, 10, 7],
                &[1, 10, 8],
                &[2, 10, 7],
                &[2, 10, 8],
                &[3, 20, 9],
            ],
        );
        assert_eq!(rows, expect.rows().to_vec());
        // The enumerator released every byte it held.
        assert_eq!(budget.mem_used(), 0);
    }

    #[test]
    fn weighted_count_multiplies_subtree_counts() {
        // Hidden rowid guards (the SQL front's bag-semantics device) make
        // every base row a distinct answer, so COUNT(*) GROUP BY b must
        // multiply R's and S's per-b multiplicities: b=10 → 2·2, b=20 → 1.
        let r = rel(&["b", "__rid_r"], &[&[10, 1], &[10, 2], &[20, 3]]);
        let s = rel(&["b", "__rid_s"], &[&[10, 7], &[10, 8], &[20, 9]]);
        let q = CqBuilder::new()
            .atom_vars("R", &["b", "__rid_r"])
            .atom_vars("S", &["b", "__rid_s"])
            .out_var("b")
            .out_agg(htqo_cq::AggFunc::Count, None, "n")
            .out_var("__rid_r")
            .out_var("__rid_s")
            .group("b")
            .build();
        let input = CoverInput {
            rels: vec![r, s],
            parents: vec![None, Some(0)],
            scopes: vec![
                vec!["b".into(), "__rid_r".into()],
                vec!["b".into(), "__rid_s".into()],
            ],
        };
        let mut budget = Budget::unlimited();
        let cover = build_cover(input, &q, &mut budget).expect("eligible");
        assert_eq!(cover.total(), 5);
        let out = finalize_cover(cover, &q, &mut budget).expect("countable");
        let mut rows = out.rows().to_vec();
        rows.sort();
        let expect = rel(&["b", "n"], &[&[10, 4], &[20, 1]]);
        assert_eq!(rows, expect.rows().to_vec());
    }

    #[test]
    fn forest_stitches_as_cross_product() {
        let r = rel(&["a"], &[&[1], &[2]]);
        let s = rel(&["b"], &[&[7], &[8], &[9]]);
        let q = CqBuilder::new()
            .atom_vars("R", &["a"])
            .atom_vars("S", &["b"])
            .out_var("a")
            .out_var("b")
            .build();
        let input = CoverInput {
            rels: vec![r, s],
            parents: vec![None, None],
            scopes: vec![vec!["a".into()], vec!["b".into()]],
        };
        let mut budget = Budget::unlimited();
        let cover = build_cover(input, &q, &mut budget).expect("eligible");
        assert_eq!(cover.total(), 6);
        let rows: Result<Vec<Row>, _> = cover.into_rows(&mut budget).collect();
        assert_eq!(rows.expect("ok").len(), 6);
    }

    #[test]
    fn empty_component_empties_the_forest() {
        let r = rel(&["a"], &[&[1]]);
        let s = rel(&["b"], &[]);
        let q = CqBuilder::new()
            .atom_vars("R", &["a"])
            .atom_vars("S", &["b"])
            .out_var("a")
            .out_var("b")
            .build();
        let input = CoverInput {
            rels: vec![r, s],
            parents: vec![None, None],
            scopes: vec![vec!["a".into()], vec!["b".into()]],
        };
        let mut budget = Budget::unlimited();
        let cover = build_cover(input, &q, &mut budget).expect("eligible");
        assert_eq!(cover.total(), 0);
        assert_eq!(cover.into_rows(&mut budget).count(), 0);
    }

    #[test]
    fn fd_violation_is_ineligible() {
        // T(a, x) with a ∉ out sharing `a` with the root's scope but the
        // answer column x NOT determining a: x=1 stitches via a=10 and
        // a=20 — the cover would double-count.
        let r = rel(&["a"], &[&[10], &[20]]);
        let t = rel(&["a", "x"], &[&[10, 1], &[20, 1]]);
        let q = CqBuilder::new()
            .atom_vars("R", &["a"])
            .atom_vars("T", &["a", "x"])
            .out_var("x")
            .build();
        let input = CoverInput {
            rels: vec![r, t],
            parents: vec![None, Some(0)],
            scopes: vec![vec!["a".into()], vec!["a".into(), "x".into()]],
        };
        let mut budget = Budget::unlimited();
        match build_cover(input, &q, &mut budget) {
            Err(CoverError::Ineligible(reason)) => {
                assert!(reason.contains("determine"), "unexpected reason: {reason}")
            }
            other => panic!(
                "expected FD ineligibility, got {:?}",
                other.map(|c| c.total())
            ),
        }
        // The failed attempt released everything it charged.
        assert_eq!(budget.mem_used(), 0);
    }

    #[test]
    fn boolean_query_emits_one_empty_row() {
        let r = rel(&["a"], &[&[1], &[2]]);
        let q = CqBuilder::new().atom_vars("R", &["a"]).build();
        let input = CoverInput {
            rels: vec![r],
            parents: vec![None],
            scopes: vec![vec!["a".into()]],
        };
        let mut budget = Budget::unlimited();
        let cover = build_cover(input, &q, &mut budget).expect("eligible");
        assert_eq!(cover.total(), 1);
        let rows: Result<Vec<Row>, _> = cover.into_rows(&mut budget).collect();
        assert_eq!(rows.expect("ok"), vec![Vec::new().into_boxed_slice()]);
    }
}
