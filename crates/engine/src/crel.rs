//! Columnar intermediate relations over *query variables* — the
//! column-at-a-time counterpart of [`VRelation`].
//!
//! A [`CRel`] carries one typed [`Column`] per query variable. Scans build
//! it straight from columnar base relations, the kernels in
//! [`crate::cops`] join/semijoin/project it by hashing flat columns and
//! gathering row indices, and [`CRel::to_vrel`] converts back to the row
//! representation at the pipeline boundary (final answers, oracles,
//! `finalize`'s ORDER BY tail).
//!
//! Zero-column relations are meaningful here just as for [`VRelation`]:
//! [`CRel::neutral`] is one empty tuple (the join identity), so `len` is
//! tracked explicitly rather than derived from a first column.

use crate::column::Column;
use crate::dict;
use crate::schema::ColumnType;
use crate::value::{Row, Value};
use crate::vrel::VRelation;
use std::collections::HashSet;

/// A columnar relation whose columns are named by query variables.
#[derive(Clone, Debug)]
pub struct CRel {
    cols: Vec<String>,
    columns: Vec<Column>,
    len: usize,
}

impl CRel {
    /// Assembles a relation from named columns (all of length `len`).
    ///
    /// # Panics
    /// Panics on duplicate variable names or column length mismatches.
    pub fn new(cols: Vec<String>, columns: Vec<Column>, len: usize) -> Self {
        assert_eq!(cols.len(), columns.len(), "name/column count mismatch");
        let mut seen = HashSet::new();
        for c in &cols {
            assert!(seen.insert(c.clone()), "duplicate variable `{c}`");
        }
        for col in &columns {
            assert_eq!(col.len(), len, "column length mismatch");
        }
        CRel { cols, columns, len }
    }

    /// An empty relation over the given variables (all columns `Mixed`
    /// until rows arrive via kernels, which always gather typed columns
    /// from typed inputs).
    pub fn empty(cols: Vec<String>) -> Self {
        let columns = cols
            .iter()
            .map(|_| Column::mixed_with_capacity(0))
            .collect();
        CRel::new(cols, columns, 0)
    }

    /// The *neutral* relation: zero columns, one (empty) row — the
    /// identity of natural join.
    pub fn neutral() -> Self {
        CRel {
            cols: Vec::new(),
            columns: Vec::new(),
            len: 1,
        }
    }

    /// Variable names in column order.
    pub fn cols(&self) -> &[String] {
        &self.cols
    }

    /// The columns, parallel to [`CRel::cols`].
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Position of variable `v`.
    pub fn col_index(&self, v: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == v)
    }

    /// Converts a row relation to columnar form. Each column is typed by
    /// inference (first non-NULL value's type; heterogeneous columns fall
    /// back to `Mixed`), so the conversion is total over arbitrary row
    /// data and [`CRel::to_vrel`] is its exact inverse.
    pub fn from_vrel(v: &VRelation) -> CRel {
        let arity = v.cols().len();
        let rows = v.rows();
        let mut columns = Vec::with_capacity(arity);
        for c in 0..arity {
            let mut ty: Option<ColumnType> = None;
            let mut mixed = false;
            for row in rows {
                let t = match &row[c] {
                    Value::Null => continue,
                    Value::Int(_) => ColumnType::Int,
                    Value::Float(_) => ColumnType::Float,
                    Value::Str(_) => ColumnType::Str,
                    Value::Date(_) => ColumnType::Date,
                };
                match ty {
                    None => ty = Some(t),
                    Some(prev) if prev != t => {
                        mixed = true;
                        break;
                    }
                    Some(_) => {}
                }
            }
            let mut col = if mixed {
                Column::mixed_with_capacity(rows.len())
            } else {
                // All-NULL columns type as Int arbitrarily; every cell
                // reads back as `Value::Null` either way.
                Column::with_capacity(ty.unwrap_or(ColumnType::Int), rows.len())
            };
            for row in rows {
                col.push_value(&row[c]);
            }
            columns.push(col);
        }
        CRel {
            cols: v.cols().to_vec(),
            columns,
            len: rows.len(),
        }
    }

    /// Materializes the rows (one dictionary read-lock for the whole
    /// pass).
    pub fn to_vrel(&self) -> VRelation {
        let reader = dict::reader();
        let mut rows: Vec<Row> = Vec::with_capacity(self.len);
        for i in 0..self.len {
            let row: Vec<Value> = self
                .columns
                .iter()
                .map(|c| c.value_with(i, &reader))
                .collect();
            rows.push(row.into_boxed_slice());
        }
        VRelation::from_rows(self.cols.clone(), rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrel(cols: &[&str], rows: Vec<Vec<Value>>) -> VRelation {
        VRelation::from_rows(
            cols.iter().map(|c| c.to_string()).collect(),
            rows.into_iter().map(Vec::into_boxed_slice).collect(),
        )
    }

    #[test]
    fn roundtrip_typed_columns() {
        let v = vrel(
            &["x", "s"],
            vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Null, Value::str("a")],
                vec![Value::Int(3), Value::Null],
            ],
        );
        let c = CRel::from_vrel(&v);
        assert_eq!(c.len(), 3);
        assert_eq!(c.to_vrel(), v);
    }

    #[test]
    fn heterogeneous_column_falls_back_to_mixed() {
        let v = vrel(
            &["x"],
            vec![
                vec![Value::Int(1)],
                vec![Value::str("two")],
                vec![Value::Float(3.0)],
            ],
        );
        let c = CRel::from_vrel(&v);
        assert_eq!(c.to_vrel(), v);
    }

    #[test]
    fn neutral_is_one_empty_row() {
        let n = CRel::neutral();
        assert_eq!(n.len(), 1);
        assert_eq!(n.cols().len(), 0);
        let v = n.to_vrel();
        assert_eq!(v.len(), 1);
        assert!(v.set_eq(&VRelation::neutral()));
        assert_eq!(CRel::from_vrel(&VRelation::neutral()).len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_columns_panic() {
        CRel::empty(vec!["x".into(), "x".into()]);
    }
}
