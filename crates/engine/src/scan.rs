//! Atom scans: turn a stored relation into an intermediate relation over
//! the atom's query variables, applying the atom's constant filters
//! (selection push-down) and materializing the hidden `__rowid` column when
//! the isolator's multiplicity guard asked for it.
//!
//! The scan is columnar end to end ([`scan_atom_c`]): filters compare
//! typed cells against the resolved constants in place, the surviving row
//! indices are gathered once per output column, and no boxed `Value` is
//! touched. The row-returning [`scan_atom`] is the same scan followed by a
//! [`crate::crel::CRel::to_vrel`] conversion (identical budget charges).

use crate::column::Column;
use crate::crel::CRel;
use crate::dict;
use crate::error::{Budget, EvalError};
use crate::expr::cmp_matches;
use crate::schema::{ColumnType, Database};
use crate::value::Value;
use crate::vrel::VRelation;
use htqo_cq::isolator::ROWID_COLUMN;
use htqo_cq::{Atom, ConjunctiveQuery, Filter};

/// Where an output variable's value comes from.
enum Source {
    /// A column of the base relation.
    Col(usize),
    /// The hidden row identifier.
    RowId,
}

/// Scans `atom` from `db` into a columnar relation, applying `filters`
/// (which must all belong to the atom). Repeated variables within the
/// atom (e.g. `r(X, X)`) impose within-tuple equality.
pub fn scan_atom_c(
    db: &Database,
    atom: &Atom,
    filters: &[&Filter],
    budget: &mut Budget,
) -> Result<CRel, EvalError> {
    crate::fail_point!("scan::atom");
    let rel = db
        .table(&atom.relation)
        .ok_or_else(|| EvalError::UnknownTable(atom.relation.clone()))?;
    let schema = rel.schema();

    // Resolve filters to column indices and values.
    let resolved_filters: Vec<(usize, htqo_cq::CmpOp, Value)> = filters
        .iter()
        .map(|f| {
            let idx = schema
                .index_of(&f.column)
                .ok_or_else(|| EvalError::UnknownColumn {
                    relation: atom.relation.clone(),
                    column: f.column.clone(),
                })?;
            Ok((idx, f.op, Value::from(&f.value)))
        })
        .collect::<Result<_, EvalError>>()?;

    // Distinct output variables (first-occurrence order) and their sources.
    let mut out_vars: Vec<String> = Vec::new();
    let mut sources: Vec<Source> = Vec::new();
    // For repeated variables: (first source position, other column index).
    let mut equalities: Vec<(usize, usize)> = Vec::new();
    for (column, var) in &atom.args {
        let src = if column == ROWID_COLUMN {
            Source::RowId
        } else {
            Source::Col(
                schema
                    .index_of(column)
                    .ok_or_else(|| EvalError::UnknownColumn {
                        relation: atom.relation.clone(),
                        column: column.clone(),
                    })?,
            )
        };
        if let Some(pos) = out_vars.iter().position(|v| v == var) {
            // Rowid repetition cannot add a constraint (it is unique).
            if let (Source::Col(a), Source::Col(b)) = (&sources[pos], &src) {
                equalities.push((*a, *b));
            }
        } else {
            out_vars.push(var.clone());
            sources.push(src);
        }
    }

    // Selection: evaluate filters and within-tuple equalities against the
    // typed columns in place, collecting surviving row indices.
    let reader = dict::reader();
    let mut sel: Vec<u32> = Vec::new();
    for rowid in 0..rel.len() {
        if !resolved_filters
            .iter()
            .all(|(i, op, v)| cmp_matches(*op, rel.column(*i).cmp_value(rowid, v, &reader)))
        {
            continue;
        }
        if !equalities
            .iter()
            .all(|(a, b)| rel.column(*a).eq_at(rowid, rel.column(*b), rowid, &reader))
        {
            continue;
        }
        budget.charge(1)?;
        sel.push(rowid as u32);
    }
    drop(reader);

    // Projection: one gather per output column.
    let columns: Vec<Column> = sources
        .iter()
        .map(|s| match s {
            Source::Col(i) => rel.column(*i).gather(&sel),
            Source::RowId => {
                let mut c = Column::with_capacity(ColumnType::Int, sel.len());
                for &i in &sel {
                    c.push_value(&Value::Int(i as i64));
                }
                c
            }
        })
        .collect();
    let out = CRel::new(out_vars, columns, sel.len());
    budget.charge_bytes(crate::cops::crel_payload_bytes(&out))?;
    Ok(out)
}

/// Scans `atom` into a row relation: the columnar scan plus a row
/// conversion (compatibility view; identical budget charges).
pub fn scan_atom(
    db: &Database,
    atom: &Atom,
    filters: &[&Filter],
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    Ok(scan_atom_c(db, atom, filters, budget)?.to_vrel())
}

/// Convenience: scans atom `a` of `q` with its own filters (columnar).
pub fn scan_query_atom_c(
    db: &Database,
    q: &ConjunctiveQuery,
    a: htqo_cq::AtomId,
    budget: &mut Budget,
) -> Result<CRel, EvalError> {
    let filters: Vec<&Filter> = q.filters_of(a).collect();
    scan_atom_c(db, q.atom(a), &filters, budget)
}

/// Convenience: scans atom `a` of `q` with its own filters (rows).
pub fn scan_query_atom(
    db: &Database,
    q: &ConjunctiveQuery,
    a: htqo_cq::AtomId,
    budget: &mut Budget,
) -> Result<VRelation, EvalError> {
    let filters: Vec<&Filter> = q.filters_of(a).collect();
    scan_atom(db, q.atom(a), &filters, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::{ColumnType, Schema};
    use htqo_cq::{AtomId, CmpOp, CqBuilder, Literal};

    fn db() -> Database {
        let mut db = Database::new();
        let mut r = Relation::new(Schema::new(&[
            ("a", ColumnType::Int),
            ("b", ColumnType::Int),
            ("name", ColumnType::Str),
        ]));
        r.extend_rows(vec![
            vec![Value::Int(1), Value::Int(1), Value::str("x")],
            vec![Value::Int(1), Value::Int(2), Value::str("y")],
            vec![Value::Int(3), Value::Int(3), Value::str("x")],
        ])
        .unwrap();
        db.insert_table("r", r);
        db
    }

    #[test]
    fn plain_scan_projects_used_columns() {
        let q = CqBuilder::new()
            .atom("r", "r", &[("a", "X"), ("b", "Y")])
            .out_var("X")
            .build();
        let mut budget = Budget::unlimited();
        let v = scan_query_atom(&db(), &q, AtomId(0), &mut budget).unwrap();
        assert_eq!(v.cols(), &["X".to_string(), "Y".to_string()]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn filters_are_applied() {
        let q = CqBuilder::new()
            .atom("r", "r", &[("a", "X")])
            .out_var("X")
            .filter(0, "name", CmpOp::Eq, Literal::Str("x".into()))
            .build();
        let mut budget = Budget::unlimited();
        let v = scan_query_atom(&db(), &q, AtomId(0), &mut budget).unwrap();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn repeated_variable_means_equality() {
        let q = CqBuilder::new()
            .atom("r", "r", &[("a", "X"), ("b", "X")])
            .out_var("X")
            .build();
        let mut budget = Budget::unlimited();
        let v = scan_query_atom(&db(), &q, AtomId(0), &mut budget).unwrap();
        // Only rows with a == b survive.
        assert_eq!(v.len(), 2);
        assert_eq!(v.cols(), &["X".to_string()]);
    }

    #[test]
    fn rowid_column_materializes_indices() {
        let q = CqBuilder::new()
            .atom("r", "r", &[("a", "X"), (ROWID_COLUMN, "RID")])
            .out_var("X")
            .build();
        let mut budget = Budget::unlimited();
        let v = scan_query_atom(&db(), &q, AtomId(0), &mut budget).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.value(2, "RID"), Some(&Value::Int(2)));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let q = CqBuilder::new()
            .atom("missing", "missing", &[("a", "X")])
            .out_var("X")
            .build();
        let mut budget = Budget::unlimited();
        assert!(matches!(
            scan_query_atom(&db(), &q, AtomId(0), &mut budget),
            Err(EvalError::UnknownTable(_))
        ));
        let q2 = CqBuilder::new()
            .atom("r", "r", &[("zz", "X")])
            .out_var("X")
            .build();
        assert!(matches!(
            scan_query_atom(&db(), &q2, AtomId(0), &mut budget),
            Err(EvalError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn scan_respects_budget() {
        let q = CqBuilder::new()
            .atom("r", "r", &[("a", "X")])
            .out_var("X")
            .build();
        let mut budget = Budget::unlimited().with_max_tuples(2);
        assert!(scan_query_atom(&db(), &q, AtomId(0), &mut budget).is_err());
    }

    #[test]
    fn date_filter_comparisons() {
        let mut db = Database::new();
        let mut t = Relation::new(Schema::new(&[("d", ColumnType::Date)]));
        t.extend_rows(vec![vec![Value::Date(10)], vec![Value::Date(20)]])
            .unwrap();
        db.insert_table("t", t);
        let q = CqBuilder::new()
            .atom("t", "t", &[("d", "D")])
            .out_var("D")
            .filter(0, "d", CmpOp::Ge, Literal::Date(15))
            .build();
        let mut budget = Budget::unlimited();
        let v = scan_query_atom(&db, &q, AtomId(0), &mut budget).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v.value(0, "D"), Some(&Value::Date(20)));
    }
}
