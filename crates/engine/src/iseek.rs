//! Index-nested-loop (seek) joins: the per-vertex alternative to
//! ChainTable hash builds when a secondary index covers the join key.
//!
//! Instead of scanning the atom's base table and building a hash table
//! over it, the kernels probe a registered [`JoinIndex`] once per
//! accumulator row and fetch only the matching base rows. On a selective
//! join (small accumulator against a large indexed table) this skips the
//! dominant build cost entirely — and it never materializes the scanned
//! atom, so the tuple budget records only the *output* rows, which is the
//! paper's work measure for an index-backed vertex join.
//!
//! Output contract: identical to `scan` + `natural_join` — the result's
//! columns are `acc.cols ++ (atom vars − acc.cols)` in first-occurrence
//! order, and the row bag is exactly the natural join's (the oracle
//! suites pin `sorted_rows` equality). The atom's residual predicates
//! (constant filters, within-tuple equalities, and every shared variable
//! including the seek key) are re-applied per fetched row, so the index
//! is trusted only as a *superset* filter.
//!
//! Budget charges follow each carrier's own join convention: the row
//! kernel charges one tuple plus `row_heap_bytes` per emitted row; the
//! columnar kernel charges one tuple plus `PAIR_BYTES` per matched pair
//! and the gathered payload at the end. Both carriers make identical
//! tuple charges and identical plan decisions, preserving the
//! carrier-equivalence invariants.

use crate::column::Column;
use crate::cops;
use crate::crel::CRel;
use crate::dict::{self, DictReader};
use crate::error::{Budget, EvalError};
use crate::expr::cmp_matches;
use crate::index::{encode_key, JoinIndex};
use crate::relation::Relation;
use crate::schema::{ColumnType, Database};
use crate::value::{row_heap_bytes, Value};
use crate::vrel::VRelation;
use htqo_cq::isolator::ROWID_COLUMN;
use htqo_cq::{Atom, AtomId, CmpOp, ConjunctiveQuery, Filter};
use std::sync::Arc;

/// Where an output variable's value comes from (mirrors `scan`).
enum Source {
    Col(usize),
    RowId,
}

/// A resolved seek join: the atom's scan metadata plus the chosen index
/// and the accumulator column it is probed with.
struct SeekPlan<'a> {
    rel: &'a Relation,
    filters: Vec<(usize, CmpOp, Value)>,
    out_vars: Vec<String>,
    sources: Vec<Source>,
    equalities: Vec<(usize, usize)>,
    /// `(acc column, source position)` for every variable shared with the
    /// accumulator — all re-checked per fetched row.
    shared: Vec<(usize, usize)>,
    /// Source positions of atom-only output variables, in first-occurrence
    /// order (the `b.cols − a.cols` tail of the output).
    rest: Vec<usize>,
    index: Arc<dyn JoinIndex>,
    /// Accumulator column holding the seek key.
    seek_acc_col: usize,
}

impl<'a> SeekPlan<'a> {
    /// Resolves atom `a` against an accumulator over `acc_cols`. Returns
    /// `None` when no registered index covers a shared variable's base
    /// column (the caller falls back to scan + hash join).
    fn resolve(
        db: &'a Database,
        q: &ConjunctiveQuery,
        a: AtomId,
        acc_cols: &[String],
    ) -> Result<Option<SeekPlan<'a>>, EvalError> {
        let atom: &Atom = q.atom(a);
        let filters: Vec<&Filter> = q.filters_of(a).collect();
        let rel = db
            .table(&atom.relation)
            .ok_or_else(|| EvalError::UnknownTable(atom.relation.clone()))?;
        let schema = rel.schema();

        let resolved_filters: Vec<(usize, CmpOp, Value)> = filters
            .iter()
            .map(|f| {
                let idx = schema
                    .index_of(&f.column)
                    .ok_or_else(|| EvalError::UnknownColumn {
                        relation: atom.relation.clone(),
                        column: f.column.clone(),
                    })?;
                Ok((idx, f.op, Value::from(&f.value)))
            })
            .collect::<Result<_, EvalError>>()?;

        let mut out_vars: Vec<String> = Vec::new();
        let mut sources: Vec<Source> = Vec::new();
        let mut equalities: Vec<(usize, usize)> = Vec::new();
        for (column, var) in &atom.args {
            let src =
                if column == ROWID_COLUMN {
                    Source::RowId
                } else {
                    Source::Col(schema.index_of(column).ok_or_else(|| {
                        EvalError::UnknownColumn {
                            relation: atom.relation.clone(),
                            column: column.clone(),
                        }
                    })?)
                };
            if let Some(pos) = out_vars.iter().position(|v| v == var) {
                if let (Source::Col(a), Source::Col(b)) = (&sources[pos], &src) {
                    equalities.push((*a, *b));
                }
            } else {
                out_vars.push(var.clone());
                sources.push(src);
            }
        }

        let mut shared: Vec<(usize, usize)> = Vec::new();
        let mut rest: Vec<usize> = Vec::new();
        for (pos, var) in out_vars.iter().enumerate() {
            match acc_cols.iter().position(|c| c == var) {
                Some(acc_idx) => shared.push((acc_idx, pos)),
                None => rest.push(pos),
            }
        }

        // Pick the first shared variable whose base column carries an
        // index (first-occurrence order keeps the choice deterministic).
        let chosen = shared.iter().find_map(|&(acc_idx, pos)| {
            if let Source::Col(ci) = sources[pos] {
                let name = &schema.columns()[ci].name;
                db.index_on(&atom.relation, name)
                    .map(|idx| (acc_idx, Arc::clone(idx)))
            } else {
                None
            }
        });
        let Some((seek_acc_col, index)) = chosen else {
            return Ok(None);
        };

        Ok(Some(SeekPlan {
            rel,
            filters: resolved_filters,
            out_vars,
            sources,
            equalities,
            shared,
            rest,
            index,
            seek_acc_col,
        }))
    }

    /// The atom's cell for output-variable source `pos` at `rowid`.
    fn cell(&self, pos: usize, rowid: usize, reader: &DictReader) -> Value {
        match self.sources[pos] {
            Source::Col(i) => self.rel.column(i).value_with(rowid, reader),
            Source::RowId => Value::Int(rowid as i64),
        }
    }

    /// Constant filters and within-tuple equalities at `rowid`.
    fn base_matches(&self, rowid: usize, reader: &DictReader) -> bool {
        self.filters
            .iter()
            .all(|(i, op, v)| cmp_matches(*op, self.rel.column(*i).cmp_value(rowid, v, reader)))
            && self.equalities.iter().all(|(a, b)| {
                self.rel
                    .column(*a)
                    .eq_at(rowid, self.rel.column(*b), rowid, reader)
            })
    }
}

/// True if joining atom `a` into an accumulator over `cols` can use an
/// index seek (some shared variable's base column is indexed). Resolution
/// errors report `false` — the scan path will surface them.
pub fn seek_eligible(db: &Database, q: &ConjunctiveQuery, a: AtomId, cols: &[String]) -> bool {
    matches!(SeekPlan::resolve(db, q, a, cols), Ok(Some(_)))
}

/// Joins atom `a` into `acc` by index seeks (row carrier). Returns
/// `Ok(None)` when the atom is not seek-eligible.
pub fn index_seek_join(
    db: &Database,
    q: &ConjunctiveQuery,
    a: AtomId,
    acc: &VRelation,
    budget: &mut Budget,
) -> Result<Option<VRelation>, EvalError> {
    let Some(plan) = SeekPlan::resolve(db, q, a, acc.cols())? else {
        return Ok(None);
    };
    crate::fail_point!("iseek::join");
    budget.join_stats().add_index_seek();
    let reader = dict::reader();
    let width = acc.cols().len() + plan.rest.len();
    let mut cols: Vec<String> = acc.cols().to_vec();
    cols.extend(plan.rest.iter().map(|&p| plan.out_vars[p].clone()));
    let mut out = VRelation::empty(cols);
    let mut key = Vec::with_capacity(9);
    for row in acc.rows() {
        key.clear();
        encode_key(&row[plan.seek_acc_col], &mut key);
        for rowid in plan.index.seek(&key)? {
            let r = rowid as usize;
            if !plan.base_matches(r, &reader) {
                continue;
            }
            if !plan
                .shared
                .iter()
                .all(|&(ai, sp)| plan.cell(sp, r, &reader) == row[ai])
            {
                continue;
            }
            budget.charge(1)?;
            budget.charge_bytes(row_heap_bytes(width))?;
            let mut new_row: Vec<Value> = Vec::with_capacity(width);
            new_row.extend(row.iter().cloned());
            for &p in &plan.rest {
                new_row.push(plan.cell(p, r, &reader));
            }
            out.push(new_row.into_boxed_slice());
        }
    }
    Ok(Some(out))
}

/// Joins atom `a` into `acc` by index seeks (columnar carrier). Returns
/// `Ok(None)` when the atom is not seek-eligible. Decisions and tuple
/// charges are identical to [`index_seek_join`].
pub fn index_seek_join_c(
    db: &Database,
    q: &ConjunctiveQuery,
    a: AtomId,
    acc: &CRel,
    budget: &mut Budget,
) -> Result<Option<CRel>, EvalError> {
    let Some(plan) = SeekPlan::resolve(db, q, a, acc.cols())? else {
        return Ok(None);
    };
    crate::fail_point!("iseek::join");
    budget.join_stats().add_index_seek();
    let reader = dict::reader();
    let mut acc_sel: Vec<u32> = Vec::new();
    let mut base_sel: Vec<u32> = Vec::new();
    let seek_col = acc.column(plan.seek_acc_col);
    let mut key = Vec::with_capacity(9);
    for i in 0..acc.len() {
        key.clear();
        encode_key(&seek_col.value_with(i, &reader), &mut key);
        for rowid in plan.index.seek(&key)? {
            let r = rowid as usize;
            if !plan.base_matches(r, &reader) {
                continue;
            }
            if !plan
                .shared
                .iter()
                .all(|&(ai, sp)| plan.cell(sp, r, &reader) == acc.column(ai).value_with(i, &reader))
            {
                continue;
            }
            budget.charge(1)?;
            budget.charge_bytes(cops::PAIR_BYTES)?;
            acc_sel.push(i as u32);
            base_sel.push(rowid);
        }
    }
    let mut cols: Vec<String> = acc.cols().to_vec();
    let mut columns: Vec<Column> = acc.columns().iter().map(|c| c.gather(&acc_sel)).collect();
    for &p in &plan.rest {
        cols.push(plan.out_vars[p].clone());
        columns.push(match plan.sources[p] {
            Source::Col(ci) => plan.rel.column(ci).gather(&base_sel),
            Source::RowId => {
                let mut c = Column::with_capacity(ColumnType::Int, base_sel.len());
                for &r in &base_sel {
                    c.push_value(&Value::Int(r as i64));
                }
                c
            }
        });
    }
    let out = CRel::new(cols, columns, acc_sel.len());
    budget.charge_bytes(cops::crel_payload_bytes(&out))?;
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carrier::Carrier;
    use crate::index::MemIndex;
    use crate::ops;
    use crate::scan;
    use crate::schema::Schema;
    use htqo_cq::{CqBuilder, Literal};

    /// A catalog with an indexed fact table and a small probe table.
    fn db() -> Database {
        let mut db = Database::new();
        let mut fact = Relation::new(Schema::new(&[
            ("k", ColumnType::Int),
            ("payload", ColumnType::Str),
        ]));
        for i in 0..200i64 {
            fact.push_row(vec![Value::Int(i % 50), Value::str(&format!("p{i}"))])
                .unwrap();
        }
        fact.push_row(vec![Value::Null, Value::str("null-key")])
            .unwrap();
        let mut probe = Relation::new(Schema::new(&[
            ("k", ColumnType::Int),
            ("tag", ColumnType::Str),
        ]));
        for (k, t) in [(3i64, "a"), (7, "b"), (3, "c")] {
            probe.push_row(vec![Value::Int(k), Value::str(t)]).unwrap();
        }
        probe.push_row(vec![Value::Null, Value::str("n")]).unwrap();
        db.insert_table("fact", fact);
        db.insert_table("probe", probe);
        let idx = MemIndex::build(db.table("fact").unwrap(), 0);
        db.register_index("fact", "k", Arc::new(idx));
        db
    }

    fn query() -> ConjunctiveQuery {
        CqBuilder::new()
            .atom("probe", "probe", &[("k", "K"), ("tag", "T")])
            .atom("fact", "fact", &[("k", "K"), ("payload", "P")])
            .out_var("K")
            .out_var("T")
            .out_var("P")
            .build()
    }

    #[test]
    fn seek_join_matches_hash_join_on_both_carriers() {
        let db = db();
        let q = query();
        let mut b = Budget::unlimited();
        let acc = scan::scan_query_atom(&db, &q, AtomId(0), &mut b).unwrap();
        let oracle = {
            let scanned = scan::scan_query_atom(&db, &q, AtomId(1), &mut b).unwrap();
            ops::natural_join(&acc, &scanned, &mut b).unwrap()
        };
        let seek = index_seek_join(&db, &q, AtomId(1), &acc, &mut b)
            .unwrap()
            .expect("eligible");
        assert_eq!(seek.cols(), oracle.cols(), "column contract drifted");
        assert_eq!(seek.sorted_rows(), oracle.sorted_rows());

        let acc_c = scan::scan_query_atom_c(&db, &q, AtomId(0), &mut b).unwrap();
        let seek_c = index_seek_join_c(&db, &q, AtomId(1), &acc_c, &mut b)
            .unwrap()
            .expect("eligible");
        assert_eq!(seek_c.to_vrel().sorted_rows(), oracle.sorted_rows());
        assert_eq!(b.join_stats().index_seeks(), 2);
    }

    #[test]
    fn seek_join_charges_only_output_tuples() {
        let db = db();
        let q = query();
        let mut b = Budget::unlimited();
        let acc = scan::scan_query_atom(&db, &q, AtomId(0), &mut b).unwrap();
        let before = b.charged();
        let seek = index_seek_join(&db, &q, AtomId(1), &acc, &mut b)
            .unwrap()
            .unwrap();
        assert_eq!(b.charged() - before, seek.len() as u64);
    }

    #[test]
    fn seek_join_applies_residual_filters() {
        let db = db();
        let q = CqBuilder::new()
            .atom("probe", "probe", &[("k", "K"), ("tag", "T")])
            .atom("fact", "fact", &[("k", "K"), ("payload", "P")])
            .filter(1, "payload", CmpOp::Eq, Literal::Str("p3".into()))
            .out_var("K")
            .out_var("P")
            .build();
        let mut b = Budget::unlimited();
        let acc = scan::scan_query_atom(&db, &q, AtomId(0), &mut b).unwrap();
        let seek = index_seek_join(&db, &q, AtomId(1), &acc, &mut b)
            .unwrap()
            .unwrap();
        // Only fact row 3 (k=3) has payload "p3"; probe has two k=3 rows.
        assert_eq!(seek.len(), 2);
        let oracle = {
            let scanned = scan::scan_query_atom(&db, &q, AtomId(1), &mut b).unwrap();
            ops::natural_join(&acc, &scanned, &mut b).unwrap()
        };
        assert_eq!(seek.sorted_rows(), oracle.sorted_rows());
    }

    #[test]
    fn seek_join_matches_nulls_like_hash_join() {
        let db = db();
        let q = query();
        let mut b = Budget::unlimited();
        let acc = scan::scan_query_atom(&db, &q, AtomId(0), &mut b).unwrap();
        let seek = index_seek_join(&db, &q, AtomId(1), &acc, &mut b)
            .unwrap()
            .unwrap();
        // The NULL probe row matches the NULL fact row (join-key
        // semantics), same as the hash oracle.
        let oracle = {
            let scanned = scan::scan_query_atom(&db, &q, AtomId(1), &mut b).unwrap();
            ops::natural_join(&acc, &scanned, &mut b).unwrap()
        };
        assert!(oracle
            .sorted_rows()
            .iter()
            .any(|r| r.iter().any(|v| v.is_null())));
        assert_eq!(seek.sorted_rows(), oracle.sorted_rows());
    }

    #[test]
    fn unindexed_atom_is_not_eligible() {
        let db = db();
        let q = CqBuilder::new()
            .atom("fact", "fact", &[("k", "K"), ("payload", "P")])
            .atom("probe", "probe", &[("k", "K"), ("tag", "T")])
            .out_var("K")
            .build();
        let mut b = Budget::unlimited();
        let acc = scan::scan_query_atom(&db, &q, AtomId(0), &mut b).unwrap();
        // probe carries no index.
        assert!(index_seek_join(&db, &q, AtomId(1), &acc, &mut b)
            .unwrap()
            .is_none());
        assert!(!seek_eligible(&db, &q, AtomId(1), acc.cols()));
        assert!(seek_eligible(&db, &query(), AtomId(1), &["K".to_string()]));
    }

    #[test]
    fn carrier_trait_dispatches_seek_join() {
        let db = db();
        let q = query();
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let acc = VRelation::scan_query_atom(&db, &q, AtomId(0), &mut b1).unwrap();
        let acc_c = CRel::scan_query_atom(&db, &q, AtomId(0), &mut b2).unwrap();
        let r1 = Carrier::index_seek_join(&db, &q, AtomId(1), &acc, &mut b1)
            .unwrap()
            .unwrap();
        let r2 = Carrier::index_seek_join(&db, &q, AtomId(1), &acc_c, &mut b2)
            .unwrap()
            .unwrap();
        assert_eq!(r1.sorted_rows(), r2.to_vrel().sorted_rows());
        assert_eq!(b1.charged(), b2.charged(), "carrier charge parity");
    }
}
