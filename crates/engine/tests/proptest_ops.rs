//! Property tests for the relational operators: the hash join against a
//! nested-loop oracle, algebraic identities, and budget accounting.

use htqo_engine::error::Budget;
use htqo_engine::ops::{natural_join, nested_loop_join, project, semijoin, sort_by};
use htqo_engine::value::Value;
use htqo_engine::vrel::VRelation;
use proptest::prelude::*;

/// A random small relation over a subset of the variables {x, y, z, w}.
fn arb_vrel() -> impl Strategy<Value = VRelation> {
    (
        1usize..=3,
        prop::collection::vec(prop::collection::vec(0i64..5, 3), 0..25),
    )
        .prop_map(|(ncols, rows)| {
            let names = ["x", "y", "z"];
            let cols: Vec<String> = names[..ncols].iter().map(|s| s.to_string()).collect();
            VRelation::from_rows(
                cols,
                rows.into_iter()
                    .map(|r| r[..ncols].iter().map(|&i| Value::Int(i)).collect())
                    .collect(),
            )
        })
}

/// Like [`arb_vrel`] but over {y, z, w} so joins share a varying subset.
fn arb_vrel_shifted() -> impl Strategy<Value = VRelation> {
    (
        1usize..=3,
        prop::collection::vec(prop::collection::vec(0i64..5, 3), 0..25),
    )
        .prop_map(|(ncols, rows)| {
            let names = ["y", "z", "w"];
            let cols: Vec<String> = names[..ncols].iter().map(|s| s.to_string()).collect();
            VRelation::from_rows(
                cols,
                rows.into_iter()
                    .map(|r| r[..ncols].iter().map(|&i| Value::Int(i)).collect())
                    .collect(),
            )
        })
}

proptest! {
    /// Hash join ≡ nested-loop join.
    #[test]
    fn hash_join_matches_nested_loop(a in arb_vrel(), b in arb_vrel_shifted()) {
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let hash = natural_join(&a, &b, &mut b1).unwrap();
        let nl = nested_loop_join(&a, &b, &mut b2).unwrap();
        // Bag equality: sort both row vectors.
        prop_assert_eq!(hash.cols(), nl.cols());
        prop_assert_eq!(hash.sorted_rows(), nl.sorted_rows());
        // Both charge one unit per produced row.
        prop_assert_eq!(b1.charged(), hash.len() as u64);
        prop_assert_eq!(b2.charged(), nl.len() as u64);
    }

    /// Join is commutative up to column order.
    #[test]
    fn join_commutative(a in arb_vrel(), b in arb_vrel_shifted()) {
        let mut budget = Budget::unlimited();
        let ab = natural_join(&a, &b, &mut budget).unwrap();
        let ba = natural_join(&b, &a, &mut budget).unwrap();
        prop_assert_eq!(ab.len(), ba.len());
        let mut ab_d = ab.clone();
        let mut ba_d = ba.clone();
        ab_d.dedup();
        ba_d.dedup();
        prop_assert!(ab_d.set_eq(&ba_d));
    }

    /// Semijoin is the projection of the join onto the left columns.
    #[test]
    fn semijoin_is_projected_join(a in arb_vrel(), b in arb_vrel_shifted()) {
        let mut budget = Budget::unlimited();
        let semi = semijoin(&a, &b, &mut budget).unwrap();
        let join = natural_join(&a, &b, &mut budget).unwrap();
        let projected = project(&join, a.cols(), true, &mut budget).unwrap();
        // semi has bag semantics on `a`; compare as sets.
        let mut semi_d = semi.clone();
        semi_d.dedup();
        prop_assert!(semi_d.set_eq(&projected));
    }

    /// Joining with the neutral relation is the identity.
    #[test]
    fn neutral_identity(a in arb_vrel()) {
        let mut budget = Budget::unlimited();
        let j = natural_join(&a, &VRelation::neutral(), &mut budget).unwrap();
        prop_assert_eq!(j.sorted_rows(), a.sorted_rows());
    }

    /// Projection onto all columns (distinct) never grows the relation and
    /// is idempotent.
    #[test]
    fn project_distinct_idempotent(a in arb_vrel()) {
        let mut budget = Budget::unlimited();
        let cols = a.cols().to_vec();
        let once = project(&a, &cols, true, &mut budget).unwrap();
        let twice = project(&once, &cols, true, &mut budget).unwrap();
        prop_assert!(once.len() <= a.len());
        prop_assert_eq!(once.sorted_rows(), twice.sorted_rows());
    }

    /// Sorting preserves the bag of rows.
    #[test]
    fn sort_preserves_rows(a in arb_vrel()) {
        let keys: Vec<(String, bool)> = a.cols().iter().map(|c| (c.clone(), false)).collect();
        let sorted = sort_by(&a, &keys).unwrap();
        prop_assert_eq!(sorted.sorted_rows(), a.sorted_rows());
        // And the result really is ordered by the total order.
        let rows = sorted.rows();
        for w in rows.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}

proptest! {
    /// CSV round-trips arbitrary relations (including NULLs, quotes,
    /// commas and newline-free strings).
    #[test]
    fn csv_round_trip(rows in prop::collection::vec((any::<Option<i64>>(), "[ -~]{0,12}"), 0..30)) {
        use htqo_engine::schema::{ColumnType, Schema};
        use htqo_engine::relation::Relation;
        let mut rel = Relation::new(Schema::new(&[("n", ColumnType::Int), ("s", ColumnType::Str)]));
        for (n, s) in &rows {
            rel.push_row(vec![
                n.map(Value::Int).unwrap_or(Value::Null),
                Value::str(s),
            ])
            .unwrap();
        }
        let mut buf = Vec::new();
        htqo_engine::write_csv(&rel, &mut buf).unwrap();
        let back = htqo_engine::read_csv(&buf[..]).unwrap();
        prop_assert_eq!(back.schema(), rel.schema());
        prop_assert_eq!(back.to_rows(), rel.to_rows());
    }
}
