//! Property tests for the columnar storage layer: row↔columnar
//! round-trips (NULLs, NaN floats, duplicate strings, mixed-type
//! columns) and the columnar join kernel against the seed row kernel as
//! the oracle.

use htqo_engine::crel::CRel;
use htqo_engine::error::Budget;
use htqo_engine::ops::{natural_join_seed, semijoin};
use htqo_engine::relation::Relation;
use htqo_engine::schema::{ColumnType, Schema};
use htqo_engine::value::Value;
use htqo_engine::vrel::VRelation;
use htqo_engine::{cops, ops};
use proptest::prelude::*;

/// An arbitrary cell: NULLs, negative ints, floats including NaN, ±0.0
/// and infinities, strings from a tiny pool (dictionary codes repeat),
/// and dates.
fn arb_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        3 => any::<i64>().prop_map(Value::Int),
        2 => prop_oneof![
            any::<f64>().prop_map(Value::Float),
            Just(Value::Float(f64::NAN)),
            Just(Value::Float(-0.0)),
            Just(Value::Float(f64::INFINITY)),
        ],
        3 => prop_oneof![
            Just(Value::str("alpha")),
            Just(Value::str("beta")),
            Just(Value::str("")),
            "[a-c]{1,4}".prop_map(|s| Value::str(&s)),
        ],
        1 => (-40000i32..40000).prop_map(Value::Date),
    ]
}

/// An arbitrary intermediate relation over a prefix of `names`, with
/// heterogeneous columns (each cell drawn independently).
fn arb_mixed_vrel(names: &'static [&'static str]) -> impl Strategy<Value = VRelation> {
    let max = names.len();
    (1usize..=max).prop_flat_map(move |ncols| {
        prop::collection::vec(prop::collection::vec(arb_cell(), ncols), 0..25).prop_map(
            move |rows| {
                let cols: Vec<String> = names[..ncols].iter().map(|s| s.to_string()).collect();
                VRelation::from_rows(
                    cols,
                    rows.into_iter().map(|r| r.into_boxed_slice()).collect(),
                )
            },
        )
    })
}

proptest! {
    /// `CRel::from_vrel` ∘ `CRel::to_vrel` is the identity on arbitrary
    /// row data — NULLs, NaNs, duplicate strings, mixed-type columns.
    #[test]
    fn crel_roundtrip_is_identity(v in arb_mixed_vrel(&["x", "y", "z"])) {
        let c = CRel::from_vrel(&v);
        prop_assert_eq!(c.len(), v.len());
        prop_assert_eq!(c.to_vrel(), v);
    }

    /// Typed base-relation storage round-trips through the columns:
    /// nullable Int/Float/Str/Date columns with duplicate strings.
    #[test]
    fn relation_roundtrip_is_identity(
        rows in prop::collection::vec(
            (
                any::<Option<i64>>(),
                prop::option::of(prop_oneof![
                    any::<f64>(),
                    Just(f64::NAN),
                    Just(-0.0f64),
                ]),
                prop::option::of(prop_oneof![
                    Just("dup".to_string()),
                    "[a-d]{0,5}".prop_map(|s| s),
                ]),
                any::<Option<i32>>(),
            ),
            0..30,
        )
    ) {
        let mut rel = Relation::new(Schema::new(&[
            ("i", ColumnType::Int),
            ("f", ColumnType::Float),
            ("s", ColumnType::Str),
            ("d", ColumnType::Date),
        ]));
        let rows: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|(i, f, s, d)| {
                vec![
                    i.map(Value::Int).unwrap_or(Value::Null),
                    f.map(Value::Float).unwrap_or(Value::Null),
                    s.map(|s| Value::str(&s)).unwrap_or(Value::Null),
                    d.map(Value::Date).unwrap_or(Value::Null),
                ]
            })
            .collect();
        rel.extend_rows(rows.clone()).unwrap();
        let back = rel.to_rows();
        prop_assert_eq!(back.len(), rows.len());
        for (got, want) in back.iter().zip(&rows) {
            prop_assert_eq!(got.as_ref(), want.as_slice());
        }
    }

    /// Columnar natural join ≡ the seed row join (the original boxed-key
    /// kernel, kept as the oracle): same bag of rows, same budget charges.
    #[test]
    fn columnar_join_matches_seed_kernel(
        a in arb_mixed_vrel(&["x", "y", "z"]),
        b in arb_mixed_vrel(&["y", "z", "w"]),
    ) {
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let seed = natural_join_seed(&a, &b, &mut b1).unwrap();
        let col = cops::natural_join(&CRel::from_vrel(&a), &CRel::from_vrel(&b), &mut b2)
            .unwrap()
            .to_vrel();
        prop_assert_eq!(seed.cols(), col.cols());
        prop_assert_eq!(seed.sorted_rows(), col.sorted_rows());
        prop_assert_eq!(b1.charged(), b2.charged());
    }

    /// Columnar semijoin ≡ row semijoin.
    #[test]
    fn columnar_semijoin_matches_row_kernel(
        a in arb_mixed_vrel(&["x", "y"]),
        b in arb_mixed_vrel(&["y", "w"]),
    ) {
        let mut b1 = Budget::unlimited();
        let mut b2 = Budget::unlimited();
        let row = semijoin(&a, &b, &mut b1).unwrap();
        let col = cops::semijoin(&CRel::from_vrel(&a), &CRel::from_vrel(&b), &mut b2)
            .unwrap()
            .to_vrel();
        prop_assert_eq!(row.sorted_rows(), col.sorted_rows());
        prop_assert_eq!(b1.charged(), b2.charged());
    }

    /// Columnar distinct projection ≡ row projection (first-seen order is
    /// part of the contract, so compare rows exactly, not as sets).
    #[test]
    fn columnar_project_matches_row_kernel(a in arb_mixed_vrel(&["x", "y", "z"])) {
        let keep: Vec<String> = a.cols()[..1.min(a.cols().len())].to_vec();
        for distinct in [true, false] {
            let mut b1 = Budget::unlimited();
            let mut b2 = Budget::unlimited();
            let row = ops::project(&a, &keep, distinct, &mut b1).unwrap();
            let col = cops::project(&CRel::from_vrel(&a), &keep, distinct, &mut b2)
                .unwrap()
                .to_vrel();
            prop_assert_eq!(&row, &col);
            prop_assert_eq!(b1.charged(), b2.charged());
        }
    }
}
