//! Allocation regression guard for the join-kernel overhaul.
//!
//! The seed `natural_join` boxed one `Box<[Value]>` key per build *and*
//! probe row; the overhauled kernel hashes key columns in place. This test
//! counts heap allocations with a counting global allocator and pins the
//! improvement: joining the same inputs must allocate well under half of
//! what the seed kernel allocates.
//!
//! (Integration test = its own binary, so the global allocator and the
//! counter see only this file's work.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use htqo_engine::cops;
use htqo_engine::crel::CRel;
use htqo_engine::error::Budget;
use htqo_engine::ops::{natural_join, natural_join_seed, PARALLEL_ROW_THRESHOLD};
use htqo_engine::value::Value;
use htqo_engine::vrel::VRelation;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs_of<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (ALLOCS.load(Ordering::Relaxed) - before, r)
}

/// Two relations sharing column `x`, sized to stay on the sequential
/// kernel path (below [`PARALLEL_ROW_THRESHOLD`]) so the count is
/// single-threaded-deterministic.
fn inputs(rows: usize) -> (VRelation, VRelation) {
    let mut a: Vec<_> = Vec::with_capacity(rows);
    let mut b: Vec<_> = Vec::with_capacity(rows);
    for i in 0..rows as i64 {
        // Sparse matches: the output stays small, so output-row
        // construction does not drown out the per-row key costs.
        a.push(vec![Value::Int(i), Value::Int(i * 2)].into_boxed_slice());
        b.push(vec![Value::Int(i * 7), Value::Int(i)].into_boxed_slice());
    }
    (
        VRelation::from_rows(vec!["x".into(), "y".into()], a),
        VRelation::from_rows(vec!["x".into(), "z".into()], b),
    )
}

#[test]
fn hash_kernel_allocates_under_half_of_seed() {
    let rows = PARALLEL_ROW_THRESHOLD / 2 - 100; // combined < threshold
    let (a, b) = inputs(rows);

    // Warm up both paths once so lazily-initialized state is excluded.
    let mut budget = Budget::unlimited();
    let _ = natural_join_seed(&a, &b, &mut budget).unwrap();
    let _ = natural_join(&a, &b, &mut budget).unwrap();

    let (seed_allocs, seed_out) = allocs_of(|| {
        let mut budget = Budget::unlimited();
        natural_join_seed(&a, &b, &mut budget).unwrap()
    });
    let (hash_allocs, hash_out) = allocs_of(|| {
        let mut budget = Budget::unlimited();
        natural_join(&a, &b, &mut budget).unwrap()
    });

    assert!(seed_out.set_eq(&hash_out), "kernels disagree");
    // The seed kernel boxes ~2 keys/row (build + probe) on top of the
    // table internals; the in-place kernel must beat half its count.
    assert!(
        hash_allocs * 2 < seed_allocs,
        "expected the in-place kernel to allocate <half of the seed kernel: \
         seed={seed_allocs}, hash={hash_allocs} ({rows} rows/side)"
    );
}

/// Two relations with many matches, so output-row construction dominates:
/// `x` values repeat, each probe row matches several build rows.
fn dense_inputs(rows: usize) -> (VRelation, VRelation) {
    let mut a: Vec<_> = Vec::with_capacity(rows);
    let mut b: Vec<_> = Vec::with_capacity(rows);
    for i in 0..rows as i64 {
        a.push(vec![Value::Int(i % 200), Value::Int(i)].into_boxed_slice());
        b.push(vec![Value::Int(i % 200), Value::Int(i * 3)].into_boxed_slice());
    }
    (
        VRelation::from_rows(vec!["x".into(), "y".into()], a),
        VRelation::from_rows(vec!["x".into(), "z".into()], b),
    )
}

/// The columnar kernel gathers output columns instead of boxing one
/// `Box<[Value]>` per joined row, so its allocations **per joined row**
/// must drop well below the row kernel's (which pays ≥1 allocation per
/// output row just to materialize it).
#[test]
fn columnar_join_allocates_fraction_per_joined_row() {
    let rows = 1500usize; // combined < PARALLEL_ROW_THRESHOLD
    assert!(2 * rows < PARALLEL_ROW_THRESHOLD);
    let (a, b) = dense_inputs(rows);
    // Conversions (and dictionary warm-up) happen outside the counter.
    let ca = CRel::from_vrel(&a);
    let cb = CRel::from_vrel(&b);
    let mut budget = Budget::unlimited();
    let _ = natural_join(&a, &b, &mut budget).unwrap();
    let _ = cops::natural_join(&ca, &cb, &mut budget).unwrap();

    let (row_allocs, row_out) = allocs_of(|| {
        let mut budget = Budget::unlimited();
        natural_join(&a, &b, &mut budget).unwrap()
    });
    let (col_allocs, col_out) = allocs_of(|| {
        let mut budget = Budget::unlimited();
        cops::natural_join(&ca, &cb, &mut budget).unwrap()
    });

    let n = row_out.len();
    assert_eq!(n, col_out.len(), "kernels disagree on output size");
    assert!(n > 5000, "inputs should join densely, got {n} rows");
    // The row kernel boxes every output row; the columnar kernel's
    // allocations are per *column* and per index-vector growth, so per
    // joined row they must come in at a small fraction.
    assert!(
        col_allocs * 4 < row_allocs,
        "expected the columnar kernel to allocate <1/4 of the row kernel \
         on a dense join: row={row_allocs}, columnar={col_allocs} ({n} joined rows)"
    );
}
