//! `ANALYZE`: full-scan statistics gathering (the *Statistics Picker* of
//! the paper's architecture).
//!
//! The implementation is deliberately thorough — exact distinct counts and
//! equi-depth histograms require a full sort of every column — because the
//! paper's point in Section 6.1 is precisely that *gathering statistics is
//! expensive* (≈800 s for 1 GB) while *building a structural plan is not*
//! (≈1.5 s, independent of database size). The `stats_vs_decomp` harness
//! reproduces that comparison.

use crate::stats::{ColumnStats, DbStats, EquiDepthHistogram, TableStats};
use htqo_engine::dict;
use htqo_engine::schema::Database;
use htqo_engine::value::Value;
use std::collections::BTreeMap;
use std::collections::HashSet;
use std::time::Instant;

/// Default number of histogram buckets (PostgreSQL's
/// `default_statistics_target` is 100).
pub const DEFAULT_BUCKETS: usize = 100;

/// Gathers full statistics for every table of `db`.
pub fn analyze(db: &Database) -> DbStats {
    analyze_with_buckets(db, DEFAULT_BUCKETS)
}

/// Gathers full statistics with a custom histogram resolution.
pub fn analyze_with_buckets(db: &Database, buckets: usize) -> DbStats {
    let start = Instant::now();
    let mut stats = DbStats::default();
    for (name, rel) in db.tables() {
        let mut table = TableStats {
            rows: rel.len() as u64,
            columns: BTreeMap::new(),
        };
        for (ci, col) in rel.schema().columns().iter().enumerate() {
            // Columnar storage: walk the one stored column directly.
            let stored = rel.column(ci);
            let reader = dict::reader();
            let mut values: Vec<Value> = Vec::with_capacity(rel.len());
            let mut nulls = 0u64;
            for i in 0..rel.len() {
                if stored.is_null(i) {
                    nulls += 1;
                } else {
                    values.push(stored.value_with(i, &reader));
                }
            }
            drop(reader);
            values.sort();
            let distinct = {
                // Sorted: count boundaries (exact).
                let mut d = 0u64;
                let mut prev: Option<&Value> = None;
                for v in &values {
                    if prev != Some(v) {
                        d += 1;
                        prev = Some(v);
                    }
                }
                d
            };
            let histogram = EquiDepthHistogram::from_sorted(&values, buckets);
            table.columns.insert(
                col.name.clone(),
                ColumnStats {
                    distinct,
                    nulls,
                    min: values.first().cloned(),
                    max: values.last().cloned(),
                    histogram,
                },
            );
        }
        stats.tables.insert(name.to_string(), table);
    }
    stats.gather_seconds = start.elapsed().as_secs_f64();
    stats
}

/// Sampled `ANALYZE`: statistics from a deterministic 1-in-`step` row
/// sample (distinct counts scaled up linearly — a standard, crude
/// estimator). Used to show the speed/accuracy trade-off in the examples.
pub fn analyze_sampled(db: &Database, step: usize) -> DbStats {
    let start = Instant::now();
    let step = step.max(1);
    let mut stats = DbStats::default();
    for (name, rel) in db.tables() {
        let mut table = TableStats {
            rows: rel.len() as u64,
            columns: BTreeMap::new(),
        };
        for (ci, col) in rel.schema().columns().iter().enumerate() {
            let stored = rel.column(ci);
            let reader = dict::reader();
            let mut seen: HashSet<Value> = HashSet::new();
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            let mut sampled = 0u64;
            for i in (0..rel.len()).step_by(step) {
                if stored.is_null(i) {
                    continue;
                }
                let v = stored.value_with(i, &reader);
                sampled += 1;
                if min.as_ref().is_none_or(|m| &v < m) {
                    min = Some(v.clone());
                }
                if max.as_ref().is_none_or(|m| &v > m) {
                    max = Some(v.clone());
                }
                seen.insert(v);
            }
            drop(reader);
            let scale = if sampled == 0 {
                1.0
            } else {
                rel.len() as f64 / sampled as f64
            };
            let distinct = ((seen.len() as f64) * scale).round().max(seen.len() as f64) as u64;
            table.columns.insert(
                col.name.clone(),
                ColumnStats {
                    distinct: distinct.min(rel.len() as u64),
                    nulls: 0,
                    min,
                    max,
                    histogram: None,
                },
            );
        }
        stats.tables.insert(name.to_string(), table);
    }
    stats.gather_seconds = start.elapsed().as_secs_f64();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use htqo_engine::relation::Relation;
    use htqo_engine::schema::{ColumnType, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        let mut r = Relation::new(Schema::new(&[
            ("a", ColumnType::Int),
            ("s", ColumnType::Str),
        ]));
        for i in 0..50 {
            r.push_row(vec![Value::Int(i % 10), Value::str(&format!("v{}", i % 3))])
                .unwrap();
        }
        r.push_row(vec![Value::Null, Value::Null]).unwrap();
        db.insert_table("r", r);
        db
    }

    #[test]
    fn analyze_counts_exactly() {
        let stats = analyze(&db());
        let t = stats.table("r").unwrap();
        assert_eq!(t.rows, 51);
        let a = t.column("a").unwrap();
        assert_eq!(a.distinct, 10);
        assert_eq!(a.nulls, 1);
        assert_eq!(a.min, Some(Value::Int(0)));
        assert_eq!(a.max, Some(Value::Int(9)));
        assert!(a.histogram.is_some());
        let s = t.column("s").unwrap();
        assert_eq!(s.distinct, 3);
    }

    #[test]
    fn sampled_analyze_approximates() {
        let stats = analyze_sampled(&db(), 5);
        let t = stats.table("r").unwrap();
        let a = t.column("a").unwrap();
        // With period-10 data a 1-in-5 sample still sees several values.
        assert!(a.distinct >= 2);
        assert!(a.distinct <= 51);
        assert!(stats.gather_seconds >= 0.0);
    }

    #[test]
    fn analyze_records_time() {
        let stats = analyze(&db());
        assert!(stats.gather_seconds >= 0.0);
    }

    #[test]
    fn missing_table_lookup() {
        let stats = analyze(&db());
        assert!(stats.table("zz").is_none());
    }
}
